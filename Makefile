# Development targets for the Colibri reproduction.

PYTHON ?= python

.PHONY: install test lint flow bench examples quick clean

install:
	$(PYTHON) -m pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

# Repo-specific invariants, both tools in one process so every file is
# parsed exactly once: colibri-lint (per-file rules) over src/tests/tools
# and colibri-flow (interprocedural rules) over src/repro.  See
# docs/static_analysis.md.
lint:
	$(PYTHON) -m tools.analysis_core

# Just the interprocedural analyzer (verification-flow, determinism
# taint, obs-guard discipline, shard process-safety).
flow:
	$(PYTHON) -m colibri_flow src/repro

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Everything the paper reports, captured to the repo root.
reproduce:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
	$(PYTHON) tools/make_report.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/critical_service.py
	$(PYTHON) examples/multipath_failover.py
	$(PYTHON) examples/video_call.py
	$(PYTHON) examples/operator_day.py
	$(PYTHON) examples/ddos_defense.py
	$(PYTHON) examples/video_stream.py

quick:
	$(PYTHON) -m repro demo

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
