# Development targets for the Colibri reproduction.

PYTHON ?= python

.PHONY: install test lint bench examples quick clean

install:
	$(PYTHON) -m pip install -e '.[test]'

test:
	$(PYTHON) -m pytest tests/

# Repo-specific invariants (clock injection, seeded randomness, units,
# strippable checks, ...): see docs/static_analysis.md.
lint:
	$(PYTHON) -m tools.colibri_lint src tests tools

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Everything the paper reports, captured to the repo root.
reproduce:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
	$(PYTHON) tools/make_report.py

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/critical_service.py
	$(PYTHON) examples/multipath_failover.py
	$(PYTHON) examples/video_call.py
	$(PYTHON) examples/operator_day.py
	$(PYTHON) examples/ddos_defense.py
	$(PYTHON) examples/video_stream.py

quick:
	$(PYTHON) -m repro demo

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
