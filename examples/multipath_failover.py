#!/usr/bin/env python3
"""Path choice in action (§2.1): fallback reservations and multipath EERs.

Two capabilities unique to a path-aware substrate:

1. **fallback** — when the first path cannot admit the requested
   bandwidth, Colibri "can attempt to make a reservation on the
   alternative paths";
2. **multipath** — several EERs over disjoint paths used as one logical
   pipe (a multipath transport), surviving the loss of a path live.

Run:  python examples/multipath_failover.py
"""

from repro import ColibriNetwork, IsdAs
from repro.control import MultipathEer, reserve_segments_with_fallback
from repro.errors import InsufficientBandwidth
from repro.topology import build_core_mesh
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 1)
DST = IsdAs(1, BASE + 3)


def main():
    # A 4-AS fully meshed core: the direct SRC-DST link plus two-hop
    # detours through the other ASes.
    network = ColibriNetwork(build_core_mesh(4))
    print(f"core mesh of {len(network.ases())} ASes, full path choice\n")

    # --- 1. fallback across paths ------------------------------------------
    print("step 1: a competitor saturates the direct link")
    direct = network.path_lookup.paths(SRC, DST, limit=1)[0]
    network.cserv(SRC).setup_segment(direct.segments[0], gbps(32))

    print("step 2: our 20 Gbps request falls back to an alternative path")
    result = reserve_segments_with_fallback(
        network, SRC, DST, gbps(20), minimum=gbps(20)
    )
    winner = result.reservations[0]
    print(f"  tried {result.attempts} paths; "
          f"path #{result.path_index} admitted "
          f"{format_bandwidth(winner.bandwidth)} via "
          f"{' -> '.join(str(a) for a in winner.segment.ases)}\n")

    # --- 2. multipath EER with live failover --------------------------------
    print("step 3: reserve tubes on every remaining path, then open a")
    print("        2-subflow multipath EER")
    for path in network.path_lookup.paths(SRC, DST, limit=4):
        try:
            for segment in path.segments:
                network.cserv(segment.first_as).setup_segment(segment, gbps(2))
        except InsufficientBandwidth:
            pass
    multipath = MultipathEer.establish(network, SRC, DST, mbps(10), subflows=2)
    print(f"  {multipath.subflow_count} subflows, aggregate "
          f"{format_bandwidth(multipath.aggregate_bandwidth)}")
    for subflow in multipath._subflows:
        print("   -", " -> ".join(str(h.isd_as) for h in subflow.handle.hops))

    for index in range(30):
        multipath.send(f"chunk {index}".encode())
    print(f"  30 chunks spread as {list(multipath.distribution().values())}")

    print("\nstep 4: one path dies mid-transfer; traffic fails over")
    victim = multipath._subflows[0].handle
    network.gateway(SRC).uninstall(victim.reservation_id)
    for index in range(30, 60):
        report = multipath.send(f"chunk {index}".encode())
        assert report.delivered
    print(f"  all 60 chunks delivered; live subflows: "
          f"{len(multipath.live_subflows())}/{multipath.subflow_count}")
    print(f"  final distribution: {multipath.distribution()}")


if __name__ == "__main__":
    main()
