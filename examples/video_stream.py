#!/usr/bin/env python3
"""A CDN streaming video to an eyeball AS over a renewed EER.

The scenario §3.3 motivates: "the host can base the amount of requested
bandwidth on the expected traffic, e.g., the known bitrate of a video
stream."  EERs last only 16 s, so a 90-second stream crosses several
renewal boundaries — the multiple-version design (§4.2) keeps delivery
seamless while SegRs renew and explicitly activate underneath (§4.2).

Reservations are unidirectional; the player's acknowledgments are tiny
and ride best-effort (the traffic-split rationale of §3.4).

Run:  python examples/video_stream.py
"""

from repro import ColibriNetwork, EndHost, HostAddr, IsdAs
from repro.constants import EER_LIFETIME, SEGR_LIFETIME
from repro.control import RenewalScheduler
from repro.topology import build_two_isd_topology
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
CDN_AS = IsdAs(1, BASE + 101)
EYEBALL_AS = IsdAs(2, BASE + 101)

VIDEO_BITRATE = mbps(8)  # a 4K stream
STREAM_SECONDS = 90.0
CHUNK_BYTES = 1000


def main():
    network = ColibriNetwork(build_two_isd_topology())

    # The CDN's AS provisions segment tubes sized for many streams and
    # keeps them alive with a renewal scheduler (forecast hook included).
    segments = network.reserve_segments(CDN_AS, EYEBALL_AS, gbps(2))
    keepers = []
    for segr in segments:
        owner = network.cserv(segr.reservation_id.src_as)
        keeper = RenewalScheduler(owner)
        keeper.track_segment(segr.reservation_id, bandwidth=gbps(2))
        keepers.append(keeper)

    # The streaming server requests bandwidth for the known bitrate plus
    # headroom, with automatic EER renewal.
    server = EndHost(network, CDN_AS, HostAddr(10))
    requested = server.estimate_bandwidth_for(VIDEO_BITRATE)
    stream = server.connect(EYEBALL_AS, HostAddr(20), requested, auto_renew=True)
    print(
        f"stream reservation: {format_bandwidth(stream.reserved_bandwidth)} "
        f"(bitrate {format_bandwidth(VIDEO_BITRATE)} + headroom)"
    )

    # Stream in one-second slices so we can renew SegRs and report progress.
    bytes_per_second = int(VIDEO_BITRATE / 8)
    renewal_boundaries = 0
    for second in range(int(STREAM_SECONDS)):
        expiry_before = stream.handle.res_info.expiry
        stream.send_paced(total_bytes=bytes_per_second, packet_bytes=CHUNK_BYTES)
        for keeper in keepers:
            keeper.tick()
        if stream.handle.res_info.expiry != expiry_before:
            renewal_boundaries += 1
        if (second + 1) % 15 == 0:
            stats = stream.stats
            print(
                f"  t={second + 1:3d}s  delivered {stats.bytes_delivered / 1e6:6.1f} MB"
                f"  loss {1 - stats.delivery_rate:.2%}"
                f"  EER version {stream.handle.res_info.version}"
            )

    stats = stream.stats
    print(
        f"\nstreamed {STREAM_SECONDS:.0f}s across "
        f"{renewal_boundaries} EER renewals "
        f"(EER lifetime {EER_LIFETIME:.0f}s, SegR lifetime {SEGR_LIFETIME:.0f}s)"
    )
    print(
        f"packets {stats.packets}, delivered {stats.delivered}, "
        f"network drops {stats.network_drops} -> delivery {stats.delivery_rate:.2%}"
    )
    assert stats.delivery_rate > 0.999, "guaranteed stream should not lose packets"


if __name__ == "__main__":
    main()
