#!/usr/bin/env python3
"""Protecting a business-critical destination against DoC (§5.3).

"ASes that want maximum protection against DoC — e.g., towards
business-critical destination ASes — can preemptively set up a
low-bandwidth, inexpensive SegR to these destinations; should the need
arise, the reserved bandwidth can be flexibly increased through renewal
requests that are then protected from DoC attacks."

This example plays that playbook for a bank AS talking to a payment
processor: a tiny standing SegR in peacetime, scaled up 50x via a
(reservation-protected) renewal when an incident hits, then scaled back.

Run:  python examples/critical_service.py
"""

from repro import ColibriNetwork, EndHost, HostAddr, IsdAs
from repro.topology import build_two_isd_topology
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
BANK = IsdAs(1, BASE + 101)
PROCESSOR = IsdAs(2, BASE + 101)


def show(segments, label):
    total = sum(segr.bandwidth for segr in segments)
    print(f"{label}: standing capacity {format_bandwidth(total)} across "
          f"{len(segments)} SegRs")


def main():
    network = ColibriNetwork(build_two_isd_topology())

    # Peacetime: an inexpensive 10 Mbps standing chain, whitelisted so
    # only the bank may build EERs over it (Appendix C's whitelist).
    print("peacetime — provisioning a low-bandwidth standing reservation")
    segments = network.reserve_segments(BANK, PROCESSOR, mbps(10))
    show(segments, "  peacetime")

    bank_host = EndHost(network, BANK, HostAddr(1))
    heartbeat = bank_host.connect(PROCESSOR, HostAddr(2), mbps(1))
    assert heartbeat.send(b"heartbeat").delivered
    print("  heartbeat EER flowing at", format_bandwidth(heartbeat.reserved_bandwidth))

    # Incident: scale every SegR up through renewals.  These renewal
    # requests travel over the existing SegRs — protected control traffic
    # that best-effort floods cannot touch (§5.3).
    print("\nincident — scaling up via protected renewal requests")
    network.advance(5.0)
    for segr in segments:
        owner = network.cserv(segr.reservation_id.src_as)
        version = owner.renew_segment(segr.reservation_id, mbps(500))
        owner.activate_segment(segr.reservation_id, version)
    show(segments, "  incident")

    surge = bank_host.connect(PROCESSOR, HostAddr(2), mbps(200))
    report = surge.send(b"x" * 1000)
    print(
        f"  surge EER granted {format_bandwidth(surge.reserved_bandwidth)}, "
        f"first packet delivered: {report.delivered}"
    )

    # De-escalation: shrink back so the bandwidth returns to the pool.
    print("\nall clear — shrinking back")
    network.advance(5.0)
    for segr in segments:
        owner = network.cserv(segr.reservation_id.src_as)
        version = owner.renew_segment(segr.reservation_id, mbps(10))
        owner.activate_segment(segr.reservation_id, version)
    show(segments, "  restored")


if __name__ == "__main__":
    main()
