#!/usr/bin/env python3
"""An interactive video call: bidirectional reservations + latency SLO.

Reservations are unidirectional (§3.3), so a call needs one per
direction — asymmetric, because the downlink carries HD video while the
uplink carries voice-grade video.  The §9 benefit is what the user
feels: call latency stays flat while a best-effort flood hammers every
on-path port.

Run:  python examples/video_call.py
"""

from repro import ColibriNetwork, EndHost, HostAddr, IsdAs
from repro.app import establish_bidirectional
from repro.dataplane.queueing import TrafficClass
from repro.sim import PathPipeline
from repro.topology import build_two_isd_topology
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
ALICE_AS = IsdAs(1, BASE + 101)
BOB_AS = IsdAs(2, BASE + 101)


def main():
    network = ColibriNetwork(build_two_isd_topology())
    # Segment tubes in both directions.
    network.reserve_segments(ALICE_AS, BOB_AS, gbps(1))
    network.reserve_segments(BOB_AS, ALICE_AS, gbps(1))

    alice = EndHost(network, ALICE_AS, HostAddr(1))
    bob = EndHost(network, BOB_AS, HostAddr(2))
    downlink, uplink = establish_bidirectional(
        network, alice, bob, bandwidth_ab=mbps(6), bandwidth_ba=mbps(1.5)
    )
    print(
        f"call established: {format_bandwidth(downlink.reserved_bandwidth)} down, "
        f"{format_bandwidth(uplink.reserved_bandwidth)} up"
    )

    # Exchange some media both ways.
    for _ in range(10):
        assert downlink.send(b"v" * 700).delivered
        assert uplink.send(b"a" * 180).delivered
    print("media flowing both directions: "
          f"{downlink.stats.delivered + uplink.stats.delivered} packets, 0 loss")

    # Latency under attack: flood every on-path port with best effort.
    pipeline = PathPipeline(network, downlink.handle, capacity=mbps(100))
    clean = pipeline.send(b"v" * 700).latency
    pipeline.load_cross_traffic(rate=mbps(800), duration=1.0)
    under_attack = pipeline.send(b"v" * 700).latency
    best_effort = pipeline.send(
        b"v" * 700, traffic_class=TrafficClass.BEST_EFFORT
    ).latency
    print(f"\none-way latency, clean network:        {clean * 1000:7.2f} ms")
    print(f"one-way latency, under 8x flood:       {under_attack * 1000:7.2f} ms")
    print(f"(a best-effort call would now see:     {best_effort * 1000:7.2f} ms)")
    assert under_attack < clean * 1.5
    assert best_effort > under_attack * 50
    print("\nthe call never noticed the attack.")


if __name__ == "__main__":
    main()
