#!/usr/bin/env python3
"""Quickstart: bandwidth-guaranteed communication in ~20 lines.

Builds the paper's Fig. 1 shape (two ISDs, a core link, customer trees),
reserves segment "tubes", opens an end-to-end reservation between two
hosts, and sends guaranteed traffic across six ASes.

Run:  python examples/quickstart.py
"""

from repro import ColibriNetwork, EndHost, HostAddr, IsdAs
from repro.topology import build_two_isd_topology
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
SRC_AS = IsdAs(1, BASE + 101)  # a leaf AS in ISD 1
DST_AS = IsdAs(2, BASE + 101)  # a leaf AS in ISD 2


def main():
    # 1. Deploy Colibri on every AS of a two-ISD topology.
    network = ColibriNetwork(build_two_isd_topology())
    print(f"deployed Colibri on {len(network.ases())} ASes")

    # 2. ASes reserve the intermediate-term segment reservations (the
    #    "tubes" of §3.1): up-, core-, and down-SegR along the path.
    segments = network.reserve_segments(SRC_AS, DST_AS, bandwidth=gbps(2))
    for segr in segments:
        print(
            f"  SegR {segr.reservation_id}: "
            f"{segr.segment.segment_type.value}-segment, "
            f"{format_bandwidth(segr.bandwidth)} for {len(segr.segment)} ASes"
        )

    # 3. A host opens an end-to-end reservation over those tubes.
    alice = EndHost(network, SRC_AS, HostAddr(1))
    socket = alice.connect(DST_AS, HostAddr(2), bandwidth=mbps(50))
    print(
        f"EER {socket.handle.reservation_id} granted "
        f"{format_bandwidth(socket.reserved_bandwidth)} over "
        f"{len(socket.handle.hops)} ASes"
    )

    # 4. Send guaranteed traffic: the gateway stamps per-packet MACs, every
    #    border router authenticates statelessly and forwards.
    report = socket.send(b"hello, guaranteed internet!")
    print(f"delivered: {report.delivered}")
    for isd_as, verdict in report.verdicts:
        print(f"  {isd_as}: {verdict.value}")


if __name__ == "__main__":
    main()
