#!/usr/bin/env python3
"""A day in the life of a Colibri operator (management scalability, §1/§9).

The management story of the paper, end to end and fully automated:

* the AS's **forecaster** (§3.2) watches diurnal utilization and sizes
  segment reservations ahead of demand;
* the **renewal scheduler** (§4.2) renews and explicitly activates SegR
  versions every ~5 minutes without touching running traffic;
* the **billing agent** (§4.7/§9) accrues reserved bandwidth x time per
  neighbor and settles bilateral invoices at the end of the day.

A compressed "day" (24 simulated hours, one observation per 5 minutes)
runs in a few seconds of wall time.

Run:  python examples/operator_day.py
"""

import math

from repro import ColibriNetwork, IsdAs
from repro.control import (
    BillingAgent,
    PricingModel,
    RenewalScheduler,
    TrafficForecaster,
)
from repro.topology import build_two_isd_topology
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
OPERATOR = IsdAs(1, BASE + 1)  # the ISD-1 core AS we operate
PEER = IsdAs(2, BASE + 1)  # its settlement peer across the core link

DAY = 24 * 3600.0
STEP = 300.0  # one SegR lifetime


def demand_at(hour: float) -> float:
    """A classic diurnal curve: quiet at night, 4x peak in the evening."""
    return mbps(200) * (1.0 + 3.0 * math.exp(-((hour - 20.0) ** 2) / 8.0))


def main():
    network = ColibriNetwork(build_two_isd_topology())
    operator = network.cserv(OPERATOR)

    # The standing core SegR towards the peer ISD.
    segment = network.beaconing.core_segments(OPERATOR, PEER)[0]
    segr = operator.setup_segment(segment, demand_at(0.0))

    forecaster = TrafficForecaster(
        operator.clock, period=DAY, buckets=24, smoothing=0.6, headroom=1.15
    )
    scheduler = RenewalScheduler(operator, segr_lead=STEP / 2)
    scheduler.track_segment(
        segr.reservation_id, bandwidth_fn=forecaster.bandwidth_fn(lead=STEP)
    )
    billing = BillingAgent(
        OPERATOR, PricingModel(price_per_gbit_second=0.002, base_fee=25.0)
    )
    billing.on_grant(PEER, segr.reservation_id, segr.bandwidth, network.clock.now())

    # Warm the forecaster with "yesterday's" pattern before the day starts.
    for step in range(int(DAY / STEP)):
        forecaster.observe(demand_at(step * STEP / 3600 % 24), when=step * STEP)

    print("hour | demand      | reserved     | renewals")
    renewals = 0
    start = network.clock.now()
    for step in range(int(DAY / STEP)):
        now_hour = (network.clock.now() - start) / 3600 % 24
        utilization = demand_at(now_hour)
        forecaster.observe(utilization)
        actions = scheduler.tick()
        if actions["segments"]:
            renewals += actions["segments"]
            billing.on_adjust(
                PEER, segr.reservation_id, segr.bandwidth, network.clock.now()
            )
        if step % 12 == 0:  # print hourly
            print(
                f"{now_hour:4.0f} | {format_bandwidth(utilization):>11} | "
                f"{format_bandwidth(segr.bandwidth):>12} | {renewals:>8}"
            )
        network.advance(STEP)

    billing.on_release(PEER, segr.reservation_id, network.clock.now())
    (invoice,) = billing.settle_all(network.clock.now())
    print(f"\nend of day: {renewals} automatic renewals, zero operator actions")
    print(
        f"invoice to {invoice.neighbor}: {invoice.gbit_seconds:,.0f} Gbit-s "
        f"-> {invoice.amount:,.2f} credits "
        f"(period {invoice.period_end - invoice.period_start:,.0f} s)"
    )
    # Sanity: the reservation tracked demand — peak-hour reservation must
    # exceed the night-time one substantially.
    assert renewals > 200
    assert invoice.gbit_seconds > 0


if __name__ == "__main__":
    main()
