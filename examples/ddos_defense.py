#!/usr/bin/env python3
"""The §5 DDoS-resilience analysis, live: four adversaries, four defences.

1. replay    — an on-path AS re-injects captured packets   -> suppressed
2. spoofing  — forged packets framing a victim source AS   -> dropped
3. overuse   — a rogue AS floods over its own reservation  -> policed + blocked
4. DoC flood — setup-request flood against a CServ         -> rate limited,
               while the victim's renewal (protected control traffic) succeeds

Run:  python examples/ddos_defense.py
"""

from repro import ColibriNetwork, IsdAs
from repro.attacks import DocAttack, ReplayAttack, SpoofingAttack, VolumetricAttack
from repro.topology import build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
VICTIM = IsdAs(1, BASE + 101)
ROGUE = IsdAs(1, BASE + 111)
DST = IsdAs(2, BASE + 101)
CORE2 = IsdAs(2, BASE + 1)


def banner(title):
    print(f"\n=== {title} {'=' * (60 - len(title))}")


def replay_demo(network):
    banner("1. replay attack (on-path adversary, §5.1)")
    handle = network.establish_eer(VICTIM, DST, mbps(10))
    attack = ReplayAttack(network, vantage=CORE2)
    for index in range(5):
        attack.observe_delivery(network.send(VICTIM, handle, f"pkt{index}".encode()))
    outcome = attack.replay(copies=20)
    print(f"captured {outcome.captured} packets, replayed {outcome.replayed}")
    print(f"suppressed by duplicate filter: {outcome.replays_suppressed}")
    print(f"honest source framed/blocked:   {outcome.victim_blocked}")


def spoofing_demo(network):
    banner("2. source spoofing / bogus Colibri packets (§5.1, §7.1)")
    attack = SpoofingAttack(network, victim=VICTIM, target=IsdAs(1, BASE + 1))
    report = attack.forge_fresh(count=500)
    print(f"forged packets sent: {report.sent}")
    print(f"rejected by HVF check: {report.rejected_bad_hvf}")
    print(f"accepted: {report.accepted}")
    blocked = network.router(IsdAs(1, BASE + 1)).blocklist.is_blocked(
        VICTIM, network.clock.now()
    )
    print(f"victim blocked by framing: {blocked}")


def overuse_demo(network):
    banner("3. reservation overuse by a rogue AS (§5.1, Table 2 phase 3)")
    network.reserve_segments(ROGUE, DST, gbps(1))
    benign_handle = network.establish_eer(VICTIM, DST, mbps(8))
    rogue_handle = network.establish_eer(ROGUE, DST, mbps(8))
    attack = VolumetricAttack(network, ROGUE, VICTIM, DST)
    outcome = attack.run(rogue_handle, benign_handle, rounds=600, overuse_factor=10.0)
    print(f"rogue offered 10x its reservation ({outcome.attack_sent} packets)")
    print(f"rogue delivery rate:  {outcome.attack_delivery_rate:.1%}")
    print(f"rogue AS blocked:     {outcome.attacker_blocked}")
    print(f"benign delivery rate: {outcome.benign_delivery_rate:.1%}")


def doc_demo(network):
    banner("4. denial-of-capability flood against a CServ (§5.3)")
    victim_handle = network.establish_eer(VICTIM, DST, mbps(5))
    target_cserv = network.cserv(IsdAs(2, BASE + 1))
    target_cserv.request_limiter.rate = 5.0
    target_cserv.request_limiter.burst = 5.0
    attack = DocAttack(network, attacker=IsdAs(1, BASE + 1), target=IsdAs(2, BASE + 1))
    report = attack.flood_requests(count=60)
    network.advance(2.0)
    renewed = attack.victim_renewal_under_flood(victim_handle, VICTIM)
    print(f"flood requests sent: {report.flood_sent}")
    print(f"rejected by per-AS rate limiting: {report.flood_rejected}")
    print(f"victim EER renewal during flood succeeded: {renewed}")


def main():
    network = ColibriNetwork(build_two_isd_topology())
    network.reserve_segments(VICTIM, DST, gbps(1))
    replay_demo(network)
    spoofing_demo(network)
    overuse_demo(network)
    doc_demo(network)
    print("\nall four attacks defeated; reservation guarantees held.")


if __name__ == "__main__":
    main()
