"""Tests for the IntServ and DiffServ baselines and their documented
failure modes (the reasons Colibri exists, §1)."""

import pytest

from repro.baselines import (
    DiffServRouter,
    DscpClass,
    IntServNetwork,
    RsvpSession,
)
from repro.baselines.intserv import RSVP_STATE_LIFETIME, IntServRouter
from repro.errors import AdmissionDenied
from repro.topology import IsdAs
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
PATH = [IsdAs(1, BASE + i) for i in range(1, 5)]


class TestIntServ:
    def test_reservation_installs_state_everywhere(self):
        net = IntServNetwork(PATH, capacity=gbps(1))
        net.reserve(PATH[0], PATH[-1], mbps(10))
        assert net.total_state() == len(PATH)

    def test_per_flow_state_grows_linearly(self):
        """The scalability failure: router state = number of flows."""
        net = IntServNetwork(PATH, capacity=gbps(10))
        for _ in range(500):
            net.reserve(PATH[0], PATH[-1], mbps(1))
        for router in net.routers.values():
            assert router.state_size == 500

    def test_admission_enforced(self):
        net = IntServNetwork(PATH, capacity=mbps(100))
        net.reserve(PATH[0], PATH[-1], mbps(80))
        with pytest.raises(AdmissionDenied):
            net.reserve(PATH[0], PATH[-1], mbps(30))

    def test_failed_admission_rolls_back(self):
        net = IntServNetwork(PATH, capacity=mbps(100))
        net.routers[PATH[-1]]._reserved = mbps(95)  # last hop nearly full
        with pytest.raises(AdmissionDenied):
            net.reserve(PATH[0], PATH[-1], mbps(30))
        assert net.routers[PATH[0]].state_size == 0

    def test_forwarding_requires_state(self):
        net = IntServNetwork(PATH, capacity=gbps(1))
        session = net.reserve(PATH[0], PATH[-1], mbps(10))
        assert net.forward_packet(session)
        net.teardown(session.session_id)
        assert not net.forward_packet(session)

    def test_soft_state_expires_without_refresh(self):
        net = IntServNetwork(PATH, capacity=gbps(1))
        session = net.reserve(PATH[0], PATH[-1], mbps(10), now=0.0)
        for router in net.routers.values():
            router.refresh_sweep(now=RSVP_STATE_LIFETIME + 1)
        assert net.total_state() == 0

    def test_refresh_work_scales_with_flows(self):
        """Control-plane cost: every refresh period touches every flow at
        every router — contrast with Colibri's O(1) admission."""
        net = IntServNetwork(PATH, capacity=gbps(10))
        for _ in range(100):
            net.reserve(PATH[0], PATH[-1], mbps(1))
        router = net.routers[PATH[0]]
        router.refresh_sweep(now=1.0)
        assert router.refresh_work == 100

    def test_unauthenticated_teardown_kills_victim(self):
        """The security failure: 'an adversary can spoof protocol
        messages' — teardown needs no proof of ownership."""
        net = IntServNetwork(PATH, capacity=gbps(1))
        victim = net.reserve(PATH[0], PATH[-1], mbps(10))
        attacker_as = IsdAs(9, BASE + 999)
        net.teardown(victim.session_id, claimed_source=attacker_as)
        assert not net.forward_packet(victim)

    def test_signaling_cost_per_reservation(self):
        net = IntServNetwork(PATH, capacity=gbps(1))
        net.reserve(PATH[0], PATH[-1], mbps(10))
        assert net.signaling_messages == 2 * len(PATH)


class TestDiffServ:
    def test_priority_respected_between_classes(self):
        router = DiffServRouter(capacity=8000.0)
        router.enqueue("be-flow", 600, DscpClass.BE)
        router.enqueue("ef-flow", 600, DscpClass.EF)
        sent = router.drain(1.0)
        assert sent.get((DscpClass.EF, "ef-flow")) == 600
        assert (DscpClass.BE, "be-flow") not in sent

    def test_no_admission_no_guarantee(self):
        """Within a class there is no reservation: two EF flows just
        split whatever capacity exists."""
        router = DiffServRouter(capacity=8000.0)
        for _ in range(10):
            router.enqueue("victim", 500, DscpClass.EF)
            router.enqueue("other", 500, DscpClass.EF)
        router.drain(1.0)
        victim_rate = router.flow_rate(DscpClass.EF, "victim", 1.0)
        assert victim_rate < 8000.0  # no guaranteed share

    def test_adversarial_marking_destroys_premium_class(self):
        """The headline failure: an attacker marks its flood EF and the
        victim's premium traffic collapses.  Colibri's authenticated,
        admission-controlled EERs make this impossible (test_attacks)."""
        router = DiffServRouter(capacity=80_000.0, queue_bytes=20_000)
        duration = 1.0
        ticks = 100
        for _ in range(ticks):
            # victim offers 40 kbps worth; attacker floods 10x in EF
            router.enqueue("victim", 50, DscpClass.EF)
            for _ in range(10):
                router.enqueue("attacker", 500, DscpClass.EF)
            router.drain(duration / ticks)
        victim_rate = router.flow_rate(DscpClass.EF, "victim", duration)
        offered = 50 * ticks * 8 / duration
        assert victim_rate < offered * 0.9  # the victim lost traffic

    def test_queue_overflow_drops(self):
        router = DiffServRouter(capacity=8.0, queue_bytes=1000)
        assert router.enqueue("f", 800, DscpClass.BE)
        assert not router.enqueue("f", 800, DscpClass.BE)
        assert router.dropped[(DscpClass.BE, "f")] == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DiffServRouter(capacity=0)
