"""Tests for the paper's optional/extension features: multipath (§2.1),
traffic forecasting (§3.2), neighbor billing (§4.7/§9), intra-domain
traffic-class encoding (App. B), sample-and-hold OFD, telemetry."""

import pytest

from repro.control import (
    BillingAgent,
    MultipathEer,
    PricingModel,
    RenewalScheduler,
    TrafficForecaster,
    UsageLedger,
    reserve_segments_with_fallback,
)
from repro.dataplane import (
    InternalSwitch,
    MarkedFrame,
    OveruseFlowDetector,
    SampleAndHoldDetector,
    TrafficClass,
    classify_packet,
)
from repro.dataplane.dscp import DSCP_AF41, DSCP_DEFAULT, DSCP_EF
from repro.errors import InsufficientBandwidth
from repro.reservation.ids import ReservationId
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_core_mesh, build_two_isd_topology
from repro.util.clock import SimClock
from repro.util.units import GBPS, gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


class TestFallbackReservation:
    def test_first_path_wins_when_free(self):
        net = ColibriNetwork(build_core_mesh(4))
        result = reserve_segments_with_fallback(
            net, asid(1, 1), asid(1, 3), gbps(4)
        )
        assert result.path_index == 0
        assert result.attempts == 1
        assert not result.failures

    def test_falls_back_when_first_path_full(self):
        net = ColibriNetwork(build_core_mesh(4))
        src, dst = asid(1, 1), asid(1, 3)
        # Saturate the direct link with a competing reservation.
        direct = net.path_lookup.paths(src, dst, limit=1)[0]
        net.cserv(src).setup_segment(direct.segments[0], gbps(32))
        result = reserve_segments_with_fallback(
            net, src, dst, gbps(20), minimum=gbps(20)
        )
        assert result.path_index > 0
        assert result.failures
        # The winning chain is alive and usable for EERs.
        handle = net.establish_eer(src, dst, mbps(10))
        assert handle.granted == pytest.approx(mbps(10))

    def test_all_paths_full_raises_with_best_offer(self):
        net = ColibriNetwork(build_core_mesh(3))
        src, dst = asid(1, 1), asid(1, 2)
        for path in net.path_lookup.paths(src, dst, limit=5):
            try:
                for segment in path.segments:
                    net.cserv(segment.first_as).setup_segment(segment, gbps(32))
            except InsufficientBandwidth:
                pass
        with pytest.raises(InsufficientBandwidth):
            reserve_segments_with_fallback(
                net, src, dst, gbps(30), minimum=gbps(30)
            )

    def test_failed_attempts_leave_no_state(self):
        net = ColibriNetwork(build_core_mesh(4))
        src, dst = asid(1, 1), asid(1, 3)
        direct = net.path_lookup.paths(src, dst, limit=1)[0]
        blocker = net.cserv(src).setup_segment(direct.segments[0], gbps(32))
        before = {
            str(a): net.cserv(a).store.segment_count() for a in net.ases()
        }
        reserve_segments_with_fallback(net, src, dst, gbps(20), minimum=gbps(20))
        # Only the winning chain's ASes gained reservations; count the
        # total new records: exactly one new SegR stored at each AS of
        # the winning (2-hop-detour) path.
        after = {str(a): net.cserv(a).store.segment_count() for a in net.ases()}
        gained = sum(after[a] - before[a] for a in after)
        assert gained == 3  # one 3-AS detour segment


class TestMultipathEer:
    def make_net(self):
        net = ColibriNetwork(build_core_mesh(4))
        src, dst = asid(1, 1), asid(1, 3)
        for path in net.path_lookup.paths(src, dst, limit=4):
            for segment in path.segments:
                try:
                    net.cserv(segment.first_as).setup_segment(segment, gbps(2))
                except InsufficientBandwidth:
                    pass
        return net, src, dst

    def test_establishes_distinct_paths(self):
        net, src, dst = self.make_net()
        multipath = MultipathEer.establish(net, src, dst, mbps(10), subflows=2)
        assert multipath.subflow_count == 2
        paths = {
            tuple(hop.isd_as for hop in subflow.handle.hops)
            for subflow in multipath._subflows
        }
        assert len(paths) == 2

    def test_aggregate_bandwidth(self):
        net, src, dst = self.make_net()
        multipath = MultipathEer.establish(net, src, dst, mbps(10), subflows=2)
        assert multipath.aggregate_bandwidth == pytest.approx(mbps(20))

    def test_traffic_spreads_over_subflows(self):
        net, src, dst = self.make_net()
        multipath = MultipathEer.establish(net, src, dst, mbps(10), subflows=2)
        for index in range(40):
            assert multipath.send(f"chunk {index}".encode()).delivered
        counts = list(multipath.distribution().values())
        assert sum(counts) == 40
        assert min(counts) >= 15  # roughly even (equal weights)

    def test_failover_on_dead_subflow(self):
        net, src, dst = self.make_net()
        multipath = MultipathEer.establish(net, src, dst, mbps(10), subflows=2)
        # Kill subflow 0's reservation at its gateway: sends start failing.
        victim = multipath._subflows[0].handle
        net.gateway(src).uninstall(victim.reservation_id)
        for index in range(20):
            assert multipath.send(b"x").delivered
        assert len(multipath.live_subflows()) == 1
        assert multipath._subflows[1].delivered >= 20


class TestTrafficForecaster:
    def test_learns_flat_demand(self):
        clock = SimClock(0.0)
        forecaster = TrafficForecaster(clock, period=24.0, buckets=24, headroom=1.0)
        for hour in range(48):
            forecaster.observe(mbps(100), when=float(hour))
        assert forecaster.forecast(when=50.0) == pytest.approx(mbps(100), rel=0.01)

    def test_learns_diurnal_pattern(self):
        clock = SimClock(0.0)
        forecaster = TrafficForecaster(
            clock, period=24.0, buckets=24, headroom=1.0, smoothing=0.5
        )
        # Three "days": busy at hour 12, quiet at hour 0.
        for day in range(6):
            for hour in range(24):
                demand = mbps(500) if 10 <= hour < 14 else mbps(50)
                forecaster.observe(demand, when=day * 24.0 + hour)
        busy = forecaster.forecast(when=7 * 24.0 + 12)
        quiet = forecaster.forecast(when=7 * 24.0 + 2)
        assert busy > quiet * 1.5

    def test_headroom_applied(self):
        clock = SimClock(0.0)
        forecaster = TrafficForecaster(clock, period=24.0, headroom=1.5)
        forecaster.observe(mbps(100), when=0.0)
        assert forecaster.forecast(when=0.0) == pytest.approx(mbps(150), rel=0.05)

    def test_floor_without_data(self):
        forecaster = TrafficForecaster(SimClock(), floor=mbps(5))
        assert forecaster.forecast() == mbps(5)

    def test_drives_renewal_scheduler(self):
        net = ColibriNetwork(build_two_isd_topology())
        src, dst = asid(1, 1), asid(2, 1)
        (segr,) = net.reserve_segments(src, dst, mbps(100))
        owner = net.cserv(src)
        forecaster = TrafficForecaster(
            owner.clock, period=3600.0, buckets=6, headroom=1.2, smoothing=1.0
        )
        scheduler = RenewalScheduler(owner, segr_lead=60.0)
        scheduler.track_segment(
            segr.reservation_id, bandwidth_fn=forecaster.bandwidth_fn()
        )
        forecaster.observe(mbps(200))
        net.advance(280.0)
        forecaster.observe(mbps(200))
        assert scheduler.tick()["segments"] == 1
        # Renewed at forecast x headroom = 240 Mbps.
        assert segr.bandwidth == pytest.approx(mbps(240), rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TrafficForecaster(SimClock(), period=0)
        with pytest.raises(ValueError):
            TrafficForecaster(SimClock(), smoothing=0)
        with pytest.raises(ValueError):
            TrafficForecaster(SimClock(), headroom=0.5)
        forecaster = TrafficForecaster(SimClock())
        with pytest.raises(ValueError):
            forecaster.observe(-1.0)


class TestBilling:
    SRC = IsdAs(1, BASE + 1)
    NEIGHBOR = IsdAs(1, BASE + 2)

    def ledger(self, price=2.0, base=10.0):
        return UsageLedger(
            self.SRC, self.NEIGHBOR, PricingModel(price_per_gbit_second=price, base_fee=base)
        )

    def test_accrual_is_bandwidth_times_time(self):
        ledger = self.ledger()
        rid = ReservationId(self.NEIGHBOR, 1)
        ledger.start(rid, gbps(2), now=0.0)
        assert ledger.accrued_gbit_seconds(now=100.0) == pytest.approx(200.0)

    def test_adjust_changes_rate_midway(self):
        ledger = self.ledger()
        rid = ReservationId(self.NEIGHBOR, 1)
        ledger.start(rid, gbps(2), now=0.0)
        ledger.adjust(rid, gbps(4), now=50.0)
        # 2 Gbps x 50 s + 4 Gbps x 50 s = 300 Gbit-seconds
        assert ledger.accrued_gbit_seconds(now=100.0) == pytest.approx(300.0)

    def test_stop_ends_accrual(self):
        ledger = self.ledger()
        rid = ReservationId(self.NEIGHBOR, 1)
        ledger.start(rid, gbps(1), now=0.0)
        ledger.stop(rid, now=60.0)
        assert ledger.accrued_gbit_seconds(now=600.0) == pytest.approx(60.0)

    def test_settlement_prices_usage(self):
        ledger = self.ledger(price=2.0, base=10.0)
        rid = ReservationId(self.NEIGHBOR, 1)
        ledger.start(rid, gbps(1), now=0.0)
        invoice = ledger.settle(now=100.0)
        assert invoice.gbit_seconds == pytest.approx(100.0)
        assert invoice.amount == pytest.approx(10.0 + 200.0)
        assert invoice.line_items[0][0] == rid

    def test_settlement_resets_period(self):
        ledger = self.ledger(base=0.0)
        rid = ReservationId(self.NEIGHBOR, 1)
        ledger.start(rid, gbps(1), now=0.0)
        ledger.settle(now=100.0)
        # The open accrual continues into the new period.
        second = ledger.settle(now=150.0)
        assert second.gbit_seconds == pytest.approx(50.0)

    def test_billing_agent_per_neighbor(self):
        agent = BillingAgent(self.SRC, PricingModel(1.0))
        other = IsdAs(1, BASE + 3)
        agent.set_pricing(other, PricingModel(5.0))
        rid1, rid2 = ReservationId(self.NEIGHBOR, 1), ReservationId(other, 1)
        agent.on_grant(self.NEIGHBOR, rid1, gbps(1), now=0.0)
        agent.on_grant(other, rid2, gbps(1), now=0.0)
        invoices = {inv.neighbor: inv for inv in agent.settle_all(now=10.0)}
        assert invoices[self.NEIGHBOR].amount == pytest.approx(10.0)
        assert invoices[other].amount == pytest.approx(50.0)

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            PricingModel(1.0).price(-1.0)


class TestDscpEncoding:
    def test_class_mapping_roundtrip(self):
        from repro.dataplane.dscp import CLASS_TO_DSCP, DSCP_TO_CLASS

        for traffic_class, dscp in CLASS_TO_DSCP.items():
            assert DSCP_TO_CLASS[dscp] is traffic_class

    def test_classify_authenticated_eer(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.reserve_segments(asid(1, 101), asid(2, 101), gbps(1))
        handle = net.establish_eer(asid(1, 101), asid(2, 101), mbps(10))
        packet = net.gateway(asid(1, 101)).send(handle.reservation_id, b"x")
        assert classify_packet(packet, authenticated=True) is TrafficClass.EER_DATA
        assert classify_packet(packet, authenticated=False) is TrafficClass.BEST_EFFORT

    def test_switch_honours_gateway_marking(self):
        switch = InternalSwitch(capacity=8000.0)
        switch.ingest(MarkedFrame(600, DSCP_EF, marked_by_gateway=True))
        switch.ingest(MarkedFrame(600, DSCP_DEFAULT, marked_by_gateway=True))
        sent = switch.drain(1.0)
        assert sent[TrafficClass.EER_DATA] == 600

    def test_switch_remarks_untrusted_priority(self):
        """A malicious host writing EF into its own headers gains nothing
        (Appendix B's trust rule)."""
        switch = InternalSwitch(capacity=8000.0)
        switch.ingest(MarkedFrame(600, DSCP_EF, marked_by_gateway=False))
        switch.ingest(MarkedFrame(600, DSCP_AF41, marked_by_gateway=True))
        sent = switch.drain(1.0)
        assert switch.remarked == 1
        assert sent[TrafficClass.CONTROL] == 600
        assert sent[TrafficClass.BEST_EFFORT] == 0  # demoted behind control


class TestSampleAndHold:
    def test_overuser_detected(self):
        detector = SampleAndHoldDetector(window=1.0)
        flagged = False
        for step in range(1000):
            flagged = flagged or detector.observe(
                b"bad", 500, mbps(1), now=step * 0.001
            )  # 4x reserved
        assert flagged

    def test_conforming_flow_not_flagged(self):
        detector = SampleAndHoldDetector(window=1.0)
        for step in range(1000):
            assert not detector.observe(b"good", 125, mbps(1), now=step * 0.001)

    def test_exactness_no_false_positives_among_many(self):
        """Unlike the count-min sketch, held counters are exact: with
        many conforming flows, nobody is flagged."""
        detector = SampleAndHoldDetector(window=1.0, max_held=64)
        for step in range(1000):
            now = step * 0.001
            for index in range(50):
                detector.observe(f"flow-{index}".encode(), 125, mbps(1), now=now)
        assert not detector.suspects()

    def test_cm_sketch_same_load_may_false_positive(self):
        """The contrast case: a tiny count-min sketch over the same load
        does flag innocents (why the two designs trade off)."""
        sketch = OveruseFlowDetector(window=1.0, width=4, depth=1)
        for step in range(1000):
            now = step * 0.001
            for index in range(50):
                sketch.observe(f"flow-{index}".encode(), 125, mbps(1), now=now)
        assert sketch.suspects()

    def test_table_bounded(self):
        detector = SampleAndHoldDetector(window=10.0, max_held=16, sample_budget=100.0)
        for step in range(2000):
            detector.observe(f"f{step}".encode(), 50_000, mbps(1), now=0.001 * step)
        assert detector.memory_cells <= 16
        assert detector.table_full_events > 0

    def test_window_roll_clears(self):
        detector = SampleAndHoldDetector(window=1.0)
        for step in range(1000):
            detector.observe(b"bad", 500, mbps(1), now=step * 0.001)
        assert detector.is_suspect(b"bad")
        detector.observe(b"other", 100, mbps(1), now=2.5)
        assert not detector.is_suspect(b"bad")

    def test_zero_bandwidth_flagged(self):
        detector = SampleAndHoldDetector()
        assert detector.observe(b"dead", 100, 0.0, now=0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SampleAndHoldDetector(max_held=0)
        with pytest.raises(ValueError):
            SampleAndHoldDetector(sample_budget=0)
        with pytest.raises(ValueError):
            SampleAndHoldDetector(window=0)


class TestTelemetry:
    def test_snapshot_structure_and_totals(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.reserve_segments(asid(1, 101), asid(2, 101), gbps(1))
        handle = net.establish_eer(asid(1, 101), asid(2, 101), mbps(10))
        net.send(asid(1, 101), handle, b"one packet")
        snapshot = net.telemetry()
        total = snapshot["total"]
        assert total["segments"] == 8  # 3 SegRs stored across 8 AS records
        assert total["eers"] == 6  # the EER stored at all 6 on-path ASes
        assert total["gateway_sent"] == 1
        assert total["router_forwarded"] == 6
        assert total["router_drops"] == 0
        assert total["bus_calls"] > 0
        # Per-AS entries carry the same keys.
        one_as = snapshot[str(asid(1, 101))]
        assert one_as["gateway_sent"] == 1
