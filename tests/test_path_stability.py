"""Path stability under topology churn (§2.1).

"Since routing decisions are decoupled from the dissemination of path
information, these networks do not suffer from the long convergence
times that affect path-vector protocols […]  AS-level paths, and any
reservations on them, are stable in time and cannot be affected by
off-path entities."

These tests exercise exactly that: off-path link churn never touches an
existing reservation (packet-carried forwarding state consults no
routing table), while re-beaconing steers only *future* path discovery.
"""

import pytest

from repro.errors import NoPathError, TopologyError
from repro.sim import ColibriNetwork
from repro.topology import Beaconing, IsdAs, PathLookup, build_core_mesh, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


class TestRemoveLink:
    def test_remove_clears_interfaces(self):
        topology = build_core_mesh(3)
        link = topology.link_between(asid(1, 1), asid(1, 2))
        topology.remove_link(link)
        with pytest.raises(TopologyError):
            topology.link_between(asid(1, 1), asid(1, 2))
        assert link.a.ifid not in topology.node(asid(1, 1)).interfaces

    def test_double_remove_rejected(self):
        topology = build_core_mesh(3)
        link = topology.link_between(asid(1, 1), asid(1, 2))
        topology.remove_link(link)
        with pytest.raises(TopologyError):
            topology.remove_link(link)

    def test_rebeaconing_drops_dead_paths(self):
        topology = build_core_mesh(3)
        beaconing = Beaconing(topology)
        direct_before = beaconing.core_segments(asid(1, 1), asid(1, 2))
        assert any(len(segment) == 2 for segment in direct_before)
        topology.remove_link(topology.link_between(asid(1, 1), asid(1, 2)))
        beaconing.discover()
        remaining = beaconing.core_segments(asid(1, 1), asid(1, 2))
        assert remaining  # the detour via AS 3 survives
        assert all(len(segment) == 3 for segment in remaining)


class TestOffPathChurnDoesNotTouchReservations:
    def test_eer_survives_off_path_link_cut(self):
        """Cutting a link the reservation does not use changes nothing:
        no re-convergence, no reservation interruption (§2.1)."""
        net = ColibriNetwork(build_two_isd_topology())
        src, dst = asid(1, 101), asid(2, 101)
        net.reserve_segments(src, dst, gbps(1))
        handle = net.establish_eer(src, dst, mbps(10))
        # Cut an off-path customer link in ISD 2 (AS 2-12's uplink).
        off_path = net.topology.link_between(asid(2, 1), asid(2, 12))
        net.topology.remove_link(off_path)
        net.beaconing.discover()
        report = net.send(src, handle, b"unaffected by off-path churn")
        assert report.delivered

    def test_hijack_attempt_cannot_move_reservation(self):
        """An off-path AS adding an attractive new link (the BGP-hijack
        analog) never attracts existing reservation traffic: the path is
        pinned in the packet headers."""
        net = ColibriNetwork(build_two_isd_topology())
        src, dst = asid(1, 101), asid(2, 101)
        net.reserve_segments(src, dst, gbps(1))
        handle = net.establish_eer(src, dst, mbps(10))
        path_before = tuple(hop.isd_as for hop in handle.hops)
        # "Hijacker" 1-12 gets a shiny direct link to 1-11's customer tree.
        net.topology.add_link(asid(1, 12), asid(1, 101))
        net.beaconing.discover()
        report = net.send(src, handle, b"still on the original path")
        assert report.delivered
        assert tuple(isd_as for isd_as, _ in report.verdicts) == path_before

    def test_new_paths_discovered_after_churn(self):
        """Re-beaconing integrates new links for *future* reservations."""
        net = ColibriNetwork(build_two_isd_topology())
        net.topology.add_link(asid(1, 12), asid(1, 101))
        net.beaconing.discover()
        paths = net.path_lookup.paths(asid(1, 101), asid(1, 12))
        assert len(paths[0]) == 2  # the new direct hop


class TestOnPathFailure:
    def test_on_path_cut_detected_and_multipath_recovers(self):
        """An on-path failure does break the reservation (physics), but
        path choice means an alternative reservation exists (§2.1)."""
        net = ColibriNetwork(build_core_mesh(4))
        src, dst = asid(1, 1), asid(1, 3)
        for path in net.path_lookup.paths(src, dst, limit=3):
            for segment in path.segments:
                net.cserv(segment.first_as).setup_segment(segment, gbps(1))
        from repro.control import MultipathEer

        multipath = MultipathEer.establish(net, src, dst, mbps(10), subflows=2)
        assert multipath.subflow_count == 2
        # Simulate the direct link dying: its far-end router now drops
        # everything from src (a blunt but effective stand-in for loss).
        direct_subflow = min(
            multipath._subflows, key=lambda s: len(s.handle.hops)
        )
        last_as = direct_subflow.handle.hops[-1].isd_as
        # Drop by uninstalling the gateway side of the direct subflow.
        net.gateway(src).uninstall(direct_subflow.handle.reservation_id)
        for _ in range(10):
            assert multipath.send(b"rerouted").delivered
        assert len(multipath.live_subflows()) == 1
