"""EventJournal tests: determinism, ring retention, the query API, and
serial ≡ sharded stream merging."""

import json

import pytest

from repro.obs.events import (
    ADMISSION_DECIDED,
    BREAKER_TRANSITION,
    EVENT_TYPES,
    MONITOR_CONFIRMED_OVERUSE,
    OFD_FLAGGED,
    VERDICT_DROPPED,
    EventJournal,
    emit,
    merge_events,
    parse_jsonl,
)
from repro.obs.report import run_health_scenario
from repro.util.clock import SimClock


def make_journal(capacity=16, start=0.0):
    clock = SimClock(start=start)
    return EventJournal(clock, capacity=capacity), clock


class TestRecording:
    def test_unknown_type_rejected(self):
        journal, _ = make_journal()
        with pytest.raises(ValueError):
            journal.record("MadeUpEvent")

    def test_non_scalar_attr_rejected(self):
        journal, _ = make_journal()
        with pytest.raises(TypeError):
            journal.record(ADMISSION_DECIDED, hops=[1, 2, 3])

    def test_seq_and_time_assigned(self):
        journal, clock = make_journal(start=100.0)
        first = journal.record(ADMISSION_DECIDED, reservation="r1")
        clock.advance(1.5)
        second = journal.record(VERDICT_DROPPED, reservation="r1")
        assert (first.seq, first.time) == (0, 100.0)
        assert (second.seq, second.time) == (1, 101.5)

    def test_emit_noop_without_journal(self):
        emit(None, ADMISSION_DECIDED, reservation="r1")

        class Obs:
            journal = None

        emit(Obs(), ADMISSION_DECIDED, reservation="r1")  # still a no-op


class TestRingRetention:
    def test_eviction_counts_and_total(self):
        journal, clock = make_journal(capacity=4)
        for index in range(10):
            journal.record(ADMISSION_DECIDED, index=index)
            clock.advance(1.0)
        assert len(journal) == 4
        assert journal.total_events == 10
        assert journal.dropped_events == 6
        assert [event.attrs["index"] for event in journal.events()] == [6, 7, 8, 9]
        assert journal.stats() == {
            "capacity": 4,
            "retained": 4,
            "total": 10,
            "dropped": 6,
        }

    def test_total_count_survives_eviction(self):
        journal, _ = make_journal(capacity=2)
        for _ in range(5):
            journal.record(OFD_FLAGGED, flow="ab")
        assert journal.total_count(OFD_FLAGGED) == 5
        assert journal.count_by_type() == {OFD_FLAGGED: 2}


class TestQueryApi:
    def setup_method(self):
        self.journal, self.clock = make_journal(capacity=64, start=0.0)
        self.journal.record(ADMISSION_DECIDED, reservation="r1", isd_as="1-a")
        self.clock.advance(1.0)
        self.journal.record(VERDICT_DROPPED, reservation="r1", isd_as="2-b")
        self.clock.advance(1.0)
        self.journal.record(VERDICT_DROPPED, reservation="r2", isd_as="2-b")
        self.clock.advance(1.0)
        self.journal.record(BREAKER_TRANSITION, isd_as="1-a")

    def test_by_type(self):
        assert len(self.journal.by_type(VERDICT_DROPPED)) == 2

    def test_by_reservation(self):
        events = self.journal.by_reservation("r1")
        assert [event.type for event in events] == [
            ADMISSION_DECIDED,
            VERDICT_DROPPED,
        ]

    def test_by_as(self):
        assert len(self.journal.by_as("2-b")) == 2

    def test_window_is_half_open(self):
        assert len(self.journal.in_window(1.0, 3.0)) == 2
        assert len(self.journal.in_window(1.0, 3.0 + 1e-9)) == 3

    def test_combined_filters(self):
        events = self.journal.query(
            event_type=VERDICT_DROPPED, isd_as="2-b", start=2.0
        )
        assert len(events) == 1
        assert events[0].attrs["reservation"] == "r2"


class TestExportImport:
    def test_round_trip_byte_identical(self):
        journal, clock = make_journal(capacity=8, start=5.0)
        journal.record(ADMISSION_DECIDED, reservation="r1", granted=10.5)
        clock.advance(0.25)
        journal.record(MONITOR_CONFIRMED_OVERUSE, flow="ff", drops=3)
        text = journal.export_jsonl()
        imported = EventJournal.import_jsonl(text, SimClock(start=0.0))
        assert imported.export_jsonl() == text
        assert imported.total_count(ADMISSION_DECIDED) == 1
        # Recording continues from the imported sequence counter.
        event = imported.record(VERDICT_DROPPED, reservation="r1")
        assert event.seq == 2

    def test_export_lines_are_sorted_json(self):
        journal, _ = make_journal()
        journal.record(ADMISSION_DECIDED, z="last", a="first")
        (line,) = journal.export_jsonl().splitlines()
        assert line == json.dumps(json.loads(line), sort_keys=True)


class TestScenarioDeterminism:
    def test_same_seed_same_journal_bytes(self):
        _, obs_a = run_health_scenario(seed=3, attack=True, rounds=300)
        _, obs_b = run_health_scenario(seed=3, attack=True, rounds=300)
        export = obs_a.journal.export_jsonl()
        assert export == obs_b.journal.export_jsonl()
        assert export  # the attack run actually recorded events

    def test_journal_gauges_cover_every_type(self):
        _, obs = run_health_scenario(seed=3, attack=False, rounds=50)
        state = obs.metrics.state()
        for event_type in EVENT_TYPES:
            snake = "".join(
                "_" + c.lower() if c.isupper() else c for c in event_type
            ).lstrip("_")
            assert f"events_{snake}_total" in state


class TestMergeEvents:
    def test_serial_equals_sharded(self):
        """Splitting a workload across per-shard journals and merging
        yields the same identity stream as one serial journal."""
        serial, serial_clock = make_journal(capacity=64)
        shard_a, clock_a = make_journal(capacity=64)
        shard_b, clock_b = make_journal(capacity=64)
        for index in range(20):
            attrs = {"reservation": f"r{index % 3}", "index": index}
            serial.record(VERDICT_DROPPED, **attrs)
            shard = (shard_a, clock_a) if index % 2 == 0 else (shard_b, clock_b)
            shard[0].record(VERDICT_DROPPED, **attrs)
            for clock in (serial_clock, clock_a, clock_b):
                clock.advance(0.5)
        merged = merge_events(shard_a.events(), shard_b.events())
        assert [event.identity() for event in merged] == [
            event.identity() for event in serial.events()
        ]

    def test_merge_survives_jsonl_round_trip(self):
        shard_a, clock_a = make_journal()
        shard_b, _ = make_journal()
        shard_a.record(OFD_FLAGGED, flow="aa")
        clock_a.advance(1.0)
        shard_a.record(OFD_FLAGGED, flow="bb")
        shard_b.record(VERDICT_DROPPED, flow="aa")
        merged = merge_events(
            parse_jsonl(shard_a.export_jsonl()),
            parse_jsonl(shard_b.export_jsonl()),
        )
        assert [event.type for event in merged] == [
            OFD_FLAGGED,
            VERDICT_DROPPED,
            OFD_FLAGGED,
        ]
