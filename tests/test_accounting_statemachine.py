"""Stateful property testing of end-to-end reservation accounting.

The store state machine (``test_store_statemachine.py``) drives the
store alone.  This machine drives the *composition* the control plane
actually runs — transfer-AS admission with core contention, incremental
renewal, aborts, and expiry sweeps, including transactions that fail
midway — against a brute-force model tracking allocations, distributor
demand, and the live population.  After every step the sharded store's
incremental sums, the transfer distributor's totals, and the store
contents must match the model exactly.

This is the harness that catches all three historic accounting leaks:

* sweeps that survived a rolled-back transaction while their allocation
  releases replayed (store contents vs. model diverge);
* cap-then-release demand under-counts in the transfer distributor
  (demand totals diverge);
* demand registered before the outgoing core-SegR check denied the
  request (demand totals diverge after a denial).
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.admission.eer_admission import AsRole, EerAdmission
from repro.errors import InsufficientBandwidth, ReservationExpired
from repro.packets.fields import EerInfo
from repro.reservation import (
    E2EReservation,
    E2EVersion,
    ReservationId,
    SegmentReservation,
    SegmentVersion,
    ShardedReservationStore,
)
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField, Segment, SegmentType
from repro.util.units import gbps

SRC = IsdAs.parse("1-ff00:0:110")
FAR = IsdAs.parse("1-ff00:0:111")
UP_BW = gbps(2)
CORE_BW = gbps(1)
EER_LIFETIME = 16.0
SEGR_EXPIRY = 1e9  # the SegRs outlive every machine run


def make_segment(segment_type):
    return Segment.from_hops(
        segment_type,
        [HopField(SRC, NO_INTERFACE, 1), HopField(FAR, 1, NO_INTERFACE)],
    )


def make_segr(local_id, segment_type, bandwidth):
    return SegmentReservation(
        reservation_id=ReservationId(SRC, local_id),
        segment=make_segment(segment_type),
        first_version=SegmentVersion(
            version=1, bandwidth=bandwidth, expiry=SEGR_EXPIRY
        ),
    )


class AccountingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = ShardedReservationStore(shards=4)
        self.up = make_segr(1, SegmentType.UP, UP_BW)
        self.core = make_segr(2, SegmentType.CORE, CORE_BW)
        self.store.add_segment(self.up)
        self.store.add_segment(self.core)
        self.segment_ids = (self.up.reservation_id, self.core.reservation_id)
        self.admission = EerAdmission(SRC, self.store)
        self.now = 0.0
        self.next_eer = 1000
        # The brute-force model.
        self.eers: dict = {}  # eer id -> expiry (max over versions)
        self.allocs: dict = {sid: {} for sid in self.segment_ids}
        self.demand = 0.0  # distributor demand from `up` against `core`
        self.registered: dict = {}  # eer id -> applied demand increment

    # -- helpers -------------------------------------------------------------

    def _new_eer_id(self):
        eer_id = ReservationId(SRC, self.next_eer)
        self.next_eer += 1
        return eer_id

    def _record(self, eer_id, bandwidth, expiry):
        return E2EReservation(
            reservation_id=eer_id,
            eer_info=EerInfo(HostAddr(1), HostAddr(2)),
            hops=make_segment(SegmentType.UP).hops,
            segment_ids=self.segment_ids,
            first_version=E2EVersion(version=1, bandwidth=bandwidth, expiry=expiry),
        )

    # -- rules ---------------------------------------------------------------

    @rule(
        requested=st.floats(min_value=1e6, max_value=5e8),
        fail=st.booleans(),
    )
    def admit(self, requested, fail):
        """Transfer-AS admission under core contention, then either the
        commit transaction or a mid-transaction failure plus the cleanup
        the CServ performs (keyed demand release)."""
        eer_id = self._new_eer_id()
        try:
            decision = self.admission.decide(
                AsRole.TRANSFER,
                requested,
                self.now,
                segment_in=self.up.reservation_id,
                segment_out=self.core.reservation_id,
                core_contention=True,
                flow=eer_id,
            )
        except (InsufficientBandwidth, ReservationExpired):
            return  # invariants check the denial left no demand behind
        # Mirror the capped registration `decide` performed.
        applied = min(self.demand + requested, UP_BW) - self.demand
        self.demand += applied
        if applied > 0.0:
            self.registered[eer_id] = applied
        expiry = self.now + EER_LIFETIME
        if fail:
            with pytest.raises(RuntimeError):
                with self.store.transaction():
                    self.admission.commit(eer_id, decision, decision.granted)
                    self.store.add_eer(
                        self._record(eer_id, decision.granted, expiry)
                    )
                    raise RuntimeError("downstream AS denied")
            self.admission.distributor.release_key(eer_id)
            self.demand -= self.registered.pop(eer_id, 0.0)
            return
        with self.store.transaction():
            self.admission.commit(eer_id, decision, decision.granted)
            self.store.add_eer(self._record(eer_id, decision.granted, expiry))
        self.eers[eer_id] = expiry
        for sid in self.segment_ids:
            self.allocs[sid][eer_id] = decision.granted

    @precondition(lambda self: self.eers)
    @rule(
        data=st.data(),
        new_bandwidth=st.floats(min_value=1e6, max_value=5e8),
        fail=st.booleans(),
    )
    def renew(self, data, new_bandwidth, fail):
        """Incremental renewal: delta-recompute, then the version/alloc
        commit — or a mid-transaction failure, which must leave the
        allocations untouched."""
        eer_id = data.draw(st.sampled_from(sorted(self.eers)))
        self._renew(eer_id, new_bandwidth, fail)

    def _renew(self, eer_id, new_bandwidth, fail):
        reservation = self.store.get_eer(eer_id)
        try:
            decision = self.admission.renew_delta(
                eer_id, self.segment_ids, new_bandwidth, self.now
            )
        except ReservationExpired:
            return
        if decision.granted <= 0:
            return
        expiry = self.now + EER_LIFETIME
        version = E2EVersion(
            version=reservation.next_version_number(),
            bandwidth=decision.granted,
            expiry=expiry,
        )
        if fail:
            with pytest.raises(RuntimeError):
                with self.store.transaction():
                    reservation.add_version(version)
                    self.admission.commit_renewal(
                        eer_id, decision, decision.granted
                    )
                    self.store.touch(eer_id)
                    raise RuntimeError("response lost")
            # Object state (the version) is not store state and stays;
            # allocations rolled back.  Mirror exactly that.
            self.eers[eer_id] = max(self.eers[eer_id], expiry)
            return
        with self.store.transaction():
            reservation.add_version(version)
            reservation.prune(self.now)
            self.admission.commit_renewal(eer_id, decision, decision.granted)
            self.store.touch(eer_id)
        self.eers[eer_id] = max(self.eers[eer_id], expiry)
        for sid in self.segment_ids:
            self.allocs[sid][eer_id] = max(
                self.allocs[sid][eer_id], decision.granted
            )

    @precondition(lambda self: self.eers)
    @rule(data=st.data())
    def abort(self, data):
        """Whole-EER abort (§3.3): exact cleanup of record, allocations,
        and the EER's registered transfer demand."""
        eer_id = data.draw(st.sampled_from(sorted(self.eers)))
        self._abort(eer_id)

    def _abort(self, eer_id):
        self.admission.distributor.release_key(eer_id)
        with self.store.transaction():
            for sid in self.segment_ids:
                self.store.release_on_segment(sid, eer_id)
            self.store.remove_eer(eer_id)
        del self.eers[eer_id]
        for sid in self.segment_ids:
            self.allocs[sid].pop(eer_id, None)
        self.demand -= self.registered.pop(eer_id, 0.0)

    @rule(delta=st.floats(min_value=0.0, max_value=24.0))
    def sweep(self, delta):
        """Advance time and sweep, mirroring CServ housekeeping: expired
        EERs leave the store, their allocations, and their demand."""
        self.now += delta
        counts, dead_eers, dead_segments = self.store.sweep_expired_details(
            self.now
        )
        assert dead_segments == []
        for eer_id in dead_eers:
            self.admission.distributor.release_key(eer_id)
        expected_dead = {
            eer_id for eer_id, expiry in self.eers.items() if self.now >= expiry
        }
        assert set(dead_eers) == expected_dead
        assert counts["eers"] == len(expected_dead)
        for eer_id in expected_dead:
            del self.eers[eer_id]
            for sid in self.segment_ids:
                self.allocs[sid].pop(eer_id, None)
            self.demand -= self.registered.pop(eer_id, 0.0)

    @rule(delta=st.floats(min_value=0.0, max_value=24.0))
    def sweep_aborted(self, delta):
        """A sweep inside a failing transaction must leave no trace —
        the historic leak deleted the reservations but restored their
        allocations on rollback."""
        self.now += delta
        with pytest.raises(RuntimeError):
            with self.store.transaction():
                self.store.sweep_expired(self.now)
                raise RuntimeError("batch failed")
        # Model deliberately untouched: expired EERs are still stored
        # (and still counted) until a committed sweep collects them.

    # -- invariants -------------------------------------------------------------

    @invariant()
    def population_matches(self):
        assert self.store.eer_count() == len(self.eers)
        for eer_id in self.eers:
            assert self.store.has_eer(eer_id)

    @invariant()
    def allocation_sums_match(self):
        for sid in self.segment_ids:
            expected = sum(self.allocs[sid].values())
            assert self.store.allocated_on_segment(sid) == pytest.approx(
                expected, abs=1e-3
            )
            for eer_id, bandwidth in self.allocs[sid].items():
                assert self.store.eer_allocation(sid, eer_id) == pytest.approx(
                    bandwidth
                )

    @invariant()
    def demand_matches(self):
        actual = self.admission.distributor.total_demand(self.core.reservation_id)
        assert actual == pytest.approx(self.demand, abs=1e-3)
        assert actual == pytest.approx(
            sum(self.registered.values()), abs=1e-3
        )

    @invariant()
    def no_journal_left_behind(self):
        assert self.store._journal is None
        for shard in self.store._shards:
            assert shard._journal is None


AccountingMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=50, deadline=None
)
TestAccountingStateMachine = AccountingMachine.TestCase


def test_campaign_churn_drains_to_zero():
    """Campaign-churn mode: the accounting machine driven with the same
    shape as the flash-crowd campaign — a baseline wave, a surge wave
    with renewals, mid-transaction failures and aborts mixed in, then a
    full teardown.  After the final sweep, *every* ledger must read
    exactly zero: no residual EERs, no residual segment allocations, no
    residual transfer demand."""
    import random

    machine = AccountingMachine()
    rng = random.Random(7)
    for arrivals in (30, 200):  # baseline, then the surge
        for _ in range(arrivals):
            machine.admit(rng.uniform(1e6, 5e8), fail=rng.random() < 0.1)
            if machine.eers and rng.random() < 0.3:
                machine._renew(
                    rng.choice(sorted(machine.eers)),
                    rng.uniform(1e6, 5e8),
                    fail=rng.random() < 0.2,
                )
            if machine.eers and rng.random() < 0.1:
                machine._abort(rng.choice(sorted(machine.eers)))
            machine.sweep(rng.uniform(0.0, 0.5))
        machine.population_matches()
        machine.allocation_sums_match()
        machine.demand_matches()
    # Teardown: advance past every possible expiry and sweep.
    machine.sweep(EER_LIFETIME + 1.0)
    machine.sweep(EER_LIFETIME + 1.0)
    assert machine.store.eer_count() == 0
    for sid in machine.segment_ids:
        assert machine.store.allocated_on_segment(sid) == pytest.approx(0.0)
    assert machine.admission.distributor.total_demand(
        machine.core.reservation_id
    ) == pytest.approx(0.0, abs=1e-6)
    assert machine.registered == {}
    machine.no_journal_left_behind()
