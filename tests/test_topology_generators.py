"""Property tests for the synthetic topology generators.

The campaign harness trusts ``build_caida_like`` / ``build_power_law``
for four load-bearing properties, each checked here across three orders
of magnitude (50, 300, 2000 ASes):

* **connected** — every AS is reachable from the core fabric;
* **beaconable** — beaconing discovers at least one up-segment for
  every non-core AS (otherwise no SegR, no campaign);
* **deterministic** — the same seed yields a byte-identical serialized
  topology, and different seeds yield different ones;
* **capacity-conserving** — provider-to-customer capacities never grow
  with depth, and never decay below the ``MAX_CAPACITY_TIER`` floor.
"""

import collections

import pytest

from repro.topology import add_multihoming, build_caida_like, build_power_law
from repro.topology.beaconing import Beaconing
from repro.topology.generator import DEFAULT_CAPACITY, MAX_CAPACITY_TIER
from repro.topology.graph import LinkType
from repro.topology.serialization import dumps_topology

AS_COUNTS = (50, 300, 2000)


def _caida_params(as_count):
    if as_count <= 50:
        return dict(as_count=as_count, isd_count=2, tier1_per_isd=2)
    if as_count <= 300:
        return dict(as_count=as_count, isd_count=4, tier1_per_isd=3)
    return dict(as_count=as_count, isd_count=8, tier1_per_isd=3)


@pytest.fixture(scope="module", params=AS_COUNTS)
def caida(request):
    """One topology per size, shared by every property in this module."""
    return build_caida_like(**_caida_params(request.param))


def _undirected_reachable(topology):
    """BFS over all links from the core ASes."""
    frontier = [node.isd_as for node in topology.core_ases()]
    seen = set(frontier)
    adjacency = collections.defaultdict(list)
    for link in topology.links():
        adjacency[link.a.owner].append(link.b.owner)
        adjacency[link.b.owner].append(link.a.owner)
    while frontier:
        isd_as = frontier.pop()
        for neighbor in adjacency[isd_as]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen


def _depths(topology):
    """Hops below the core fabric, per AS (cores are depth 0)."""
    depths = {node.isd_as: 0 for node in topology.core_ases()}
    frontier = list(depths)
    while frontier:
        next_frontier = []
        for parent in frontier:
            for child in topology.children(parent):
                if child not in depths:
                    depths[child] = depths[parent] + 1
                    next_frontier.append(child)
        frontier = next_frontier
    return depths


def test_caida_connected(caida):
    everyone = {node.isd_as for node in caida.ases()}
    assert _undirected_reachable(caida) == everyone


def test_caida_as_count(caida):
    assert len(caida) == len(list(caida.ases()))
    assert len(caida) in AS_COUNTS


def test_caida_beaconable(caida):
    beaconing = Beaconing(caida)
    for node in caida.ases():
        if node.is_core:
            continue
        assert beaconing.up_segments(node.isd_as), (
            f"no up-segment beaconed for {node.isd_as}"
        )


@pytest.mark.parametrize("as_count", AS_COUNTS)
def test_caida_deterministic_per_seed(as_count):
    params = _caida_params(as_count)
    first = dumps_topology(build_caida_like(**params, seed=5))
    second = dumps_topology(build_caida_like(**params, seed=5))
    assert first == second
    assert dumps_topology(build_caida_like(**params, seed=6)) != first


def test_caida_capacity_conserving(caida):
    depths = _depths(caida)
    floor = DEFAULT_CAPACITY * 0.5**MAX_CAPACITY_TIER
    uplink = {}
    for link in caida.links():
        if link.link_type is not LinkType.PARENT_CHILD:
            continue
        child = link.b.owner
        uplink.setdefault(child, link.capacity)
        assert link.capacity == uplink[child], (
            f"multihomed {child} has unequal uplink capacities"
        )
        assert floor <= link.capacity <= DEFAULT_CAPACITY
    for link in caida.links():
        if link.link_type is not LinkType.PARENT_CHILD:
            continue
        parent, child = link.a.owner, link.b.owner
        if parent in uplink:  # parent is itself a customer of someone
            assert link.capacity <= uplink[parent], (
                f"capacity grows downward at {parent}->{child}"
            )
        assert depths[child] >= 1


def test_caida_heavy_tailed_cones(caida):
    child_counts = sorted(
        len(caida.children(node.isd_as))
        for node in caida.ases()
        if not node.is_core and caida.children(node.isd_as)
    )
    if len(caida) < 300:
        pytest.skip("tail shape only meaningful at hundreds of ASes")
    # A heavy tail: the largest cone dwarfs the median provider.
    assert child_counts[-1] >= 10 * max(1, child_counts[len(child_counts) // 2])


def test_caida_multihoming_properties(caida):
    multihomed = 0
    for node in caida.ases():
        if node.is_core:
            continue
        parents = caida.parents(node.isd_as)
        assert parents, f"{node.isd_as} has no provider"
        if len(parents) > 1:
            multihomed += 1
            assert len(parents) == 2
            for parent in parents:
                assert parent.isd == node.isd
    assert multihomed > 0, "default multihome_fraction produced no multihoming"
    # The provider relation stays acyclic even with secondary uplinks
    # (Kahn's algorithm consumes every AS).
    indegree = collections.Counter()
    nodes = {node.isd_as for node in caida.ases()}
    for isd_as in nodes:
        indegree[isd_as] = len(caida.parents(isd_as))
    ready = [isd_as for isd_as in nodes if indegree[isd_as] == 0]
    ordered = 0
    while ready:
        parent = ready.pop()
        ordered += 1
        for child in caida.children(parent):
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    assert ordered == len(nodes), "provider hierarchy has a cycle"


def test_add_multihoming_is_idempotent_on_fraction_zero():
    topology = build_caida_like(as_count=50, isd_count=2, tier1_per_isd=2)
    assert add_multihoming(topology, 0.0) == 0


def test_power_law_multihoming_knob_and_chords():
    base = build_power_law(as_count=120, isd_count=4, seed=11)
    homed = build_power_law(
        as_count=120, isd_count=4, seed=11, multihome_fraction=0.3
    )
    def count_multi(topology):
        return sum(
            1
            for node in topology.ases()
            if not node.is_core and len(topology.parents(node.isd_as)) > 1
        )
    assert count_multi(base) == 0
    assert count_multi(homed) > 0
    # Inter-ISD chords: strictly more cross-ISD core links than the
    # isd_count-edge ring alone.
    cross = sum(
        1
        for link in homed.links()
        if link.link_type is LinkType.CORE
        and link.a.owner.isd != link.b.owner.isd
    )
    assert cross > 4
