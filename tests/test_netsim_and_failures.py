"""Unit tests for the netsim building blocks and failure-injection
scenarios (mid-chain partitions must leave no state behind)."""

import pytest

from repro.control.rpc import Unreachable
from repro.dataplane.router import Verdict
from repro.sim import AtHop, ColibriNetwork, LinkSim, PortSim
from repro.sim.traffic import BestEffortSource, ReservationSource
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC = asid(1, 101)
DST = asid(2, 101)


class TestLinkSim:
    def test_transmission_time(self):
        link = LinkSim(capacity=mbps(100), delay=0.002)
        assert link.transmission_time(1250) == pytest.approx(
            0.002 + 1250 * 8 / mbps(100)
        )

    def test_zero_delay_default(self):
        assert LinkSim(capacity=mbps(8)).transmission_time(1000) == pytest.approx(
            0.001
        )


class TestAtHop:
    def test_repositions_packets(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(8))
        source = ReservationSource(net.gateway(SRC), handle, mbps(8), 500)
        adapted = AtHop(source, 3)
        packets = list(adapted.packets(net.clock.now(), 0.01))
        assert packets
        assert all(p.hop_index == 3 for p in packets)


class TestPortSim:
    def test_accounts_per_label(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.reserve_segments(SRC, DST, mbps(10))
        handle = net.establish_eer(SRC, DST, mbps(1))
        hop = [h.isd_as for h in handle.hops].index(asid(2, 1))
        source = ReservationSource(net.gateway(SRC), handle, mbps(1), 500)
        sim = PortSim(net.router(asid(2, 1)), net.clock, capacity=mbps(40))
        rates = sim.run(
            duration=0.2,
            colibri_inputs=[(1, AtHop(source, hop), "flow")],
            best_effort_inputs=[(2, BestEffortSource(mbps(5), 500))],
        )
        assert rates["flow"] * 1e9 == pytest.approx(mbps(1), rel=0.2)
        assert rates[PortSim.BEST_EFFORT] * 1e9 == pytest.approx(mbps(5), rel=0.2)

    def test_router_drop_accounting(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.reserve_segments(SRC, DST, mbps(10))
        handle = net.establish_eer(SRC, DST, mbps(1))
        hop = [h.isd_as for h in handle.hops].index(asid(2, 1))
        source = ReservationSource(net.gateway(SRC), handle, mbps(1), 500)
        router = net.router(asid(2, 1))
        router.blocklist.block(SRC)
        sim = PortSim(router, net.clock, capacity=mbps(40))
        rates = sim.run(
            duration=0.1,
            colibri_inputs=[(1, AtHop(source, hop), "flow")],
            best_effort_inputs=[],
        )
        assert "flow" not in rates
        assert sim.router_drops[Verdict.DROP_BLOCKED] > 0


class TestPartitionFailures:
    def test_mid_chain_partition_leaves_no_segr_state(self):
        """A SegReq that dies at a partitioned AS must leave zero
        reservations and zero admission state at the ASes it already
        traversed (the §3.3 cleanup guarantee under crash-failure)."""
        net = ColibriNetwork(build_two_isd_topology())
        net.bus.partition(asid(2, 1))  # the far core AS
        with pytest.raises(Unreachable):
            net.reserve_segments(SRC, DST, gbps(1))
        for isd_as in net.ases():
            cserv = net.cserv(isd_as)
            # Up-segment (entirely within ISD 1) may have succeeded; the
            # core segment crossing the partition must not exist anywhere.
            for segr in cserv.store.segments():
                assert asid(2, 1) not in segr.segment.ases

    def test_mid_chain_partition_leaves_no_eer_state(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.reserve_segments(SRC, DST, mbps(100))
        net.bus.partition(asid(2, 11))  # transit AS inside ISD 2
        with pytest.raises(Unreachable):
            net.establish_eer(SRC, DST, mbps(10))
        net.bus.heal(asid(2, 11))
        for isd_as in net.ases():
            cserv = net.cserv(isd_as)
            assert cserv.store.eer_count() == 0
            for segr in cserv.store.segments():
                assert cserv.store.allocated_on_segment(segr.reservation_id) == 0.0
        # After healing, the same EER succeeds with full bandwidth.
        handle = net.establish_eer(SRC, DST, mbps(10))
        assert handle.granted == pytest.approx(mbps(10))

    def test_partition_heal_restores_service(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.bus.partition(asid(2, 1))
        with pytest.raises(Unreachable):
            net.reserve_segments(SRC, DST, gbps(1))
        net.bus.heal(asid(2, 1))
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        assert net.send(SRC, handle, b"healed").delivered
