"""Tests for tools.colibri_flow: call-graph resolution, each CF rule's
triggers and non-triggers, suppressions, the baseline workflow, the CLI
with its JSON schema, the parse-once cache contract, and a meta-test
that the real tree stays clean."""

from __future__ import annotations

import json
import textwrap
import unittest
from pathlib import Path

from tools.analysis_core.baseline import (
    filter_findings,
    load_baseline,
    write_baseline,
)
from tools.analysis_core.cache import AstCache
from tools.colibri_flow import analyze_paths, analyze_sources
from tools.colibri_flow.callgraph import CallGraph
from tools.colibri_flow.cli import run as cli_run
from tools.colibri_flow.project import Project
from tools.colibri_flow.rules import RULES_BY_ID

REPO_ROOT = Path(__file__).resolve().parents[1]
PROD = "src/repro/example.py"


def flow(sources, rule_id):
    """Run one rule over dedented in-memory sources."""
    if isinstance(sources, str):
        sources = {PROD: sources}
    sources = {path: textwrap.dedent(src) for path, src in sources.items()}
    return analyze_sources(sources, rules=[RULES_BY_ID[rule_id]])


def hits(sources, rule_id):
    return [finding.rule_id for finding in flow(sources, rule_id)]


def graph_of(sources) -> CallGraph:
    sources = {path: textwrap.dedent(src) for path, src in sources.items()}
    return CallGraph(Project.load_sources(sources))


# ---------------------------------------------------------------------------
# Call graph


class TestCallGraph(unittest.TestCase):
    def test_module_local_call_edge(self):
        graph = graph_of(
            {PROD: "def helper():\n    return 1\ndef top():\n    return helper()\n"}
        )
        self.assertIn("repro.example.helper", graph.callees("repro.example.top"))

    def test_cross_module_import_edge(self):
        graph = graph_of(
            {
                "src/repro/a.py": "def helper():\n    return 1\n",
                "src/repro/b.py": (
                    "from repro.a import helper\n"
                    "def top():\n    return helper()\n"
                ),
            }
        )
        self.assertIn("repro.a.helper", graph.callees("repro.b.top"))

    def test_annotated_receiver_resolves_method(self):
        graph = graph_of(
            {
                PROD: (
                    "class Router:\n"
                    "    def process(self, pkt):\n        return pkt\n"
                    "def top(router: Router, pkt):\n"
                    "    return router.process(pkt)\n"
                )
            }
        )
        self.assertIn(
            "repro.example.Router.process", graph.callees("repro.example.top")
        )

    def test_bound_method_alias_resolves(self):
        # The shards.py fast-path idiom: hoist the bound method, call the
        # local name.  The receiver is untypable (closure/param), so the
        # unique-method fallback must still pin the callee.
        graph = graph_of(
            {
                PROD: (
                    "class Router:\n"
                    "    def validate_burst(self, pkts):\n        return pkts\n"
                    "def loop(router, bursts):\n"
                    "    validate_burst = router.validate_burst\n"
                    "    for burst in bursts:\n"
                    "        validate_burst(burst)\n"
                )
            }
        )
        self.assertIn(
            "repro.example.Router.validate_burst",
            graph.callees("repro.example.loop"),
        )

    def test_generic_method_name_not_guessed(self):
        # ``append`` is on the generic blacklist: a project class defining
        # it must not capture every ``x.append(...)`` call in the tree.
        graph = graph_of(
            {
                PROD: (
                    "class Journal:\n"
                    "    def append(self, entry):\n        return entry\n"
                    "def top(items):\n"
                    "    items.append(1)\n"
                )
            }
        )
        self.assertEqual(set(), graph.callees("repro.example.top"))

    def test_external_dotted_name(self):
        graph = graph_of({PROD: "import time\ndef top():\n    return time.monotonic()\n"})
        project = graph.project
        fn = project.functions["repro.example.top"]
        (call,) = graph.calls_in(fn)
        self.assertEqual("time.monotonic", graph.targets_for(fn, call).external)

    def test_nested_function_is_own_node(self):
        graph = graph_of(
            {
                PROD: (
                    "def outer():\n"
                    "    def inner():\n        return 1\n"
                    "    return inner()\n"
                )
            }
        )
        self.assertIn(
            "repro.example.outer.<locals>.inner",
            graph.callees("repro.example.outer"),
        )
        nested = graph.nested_functions("repro.example.outer")
        self.assertEqual(["inner"], [fn.name for fn in nested])


# ---------------------------------------------------------------------------
# CF001 — verification results must reach a decision


class TestCF001VerificationFlow(unittest.TestCase):
    CARRIER = textwrap.dedent(
        """
        from repro.crypto.mac import constant_time_equal

        def check(tag, expect):
            if constant_time_equal(tag, expect):
                return True
            return False
        """
    )

    def test_discarded_carrier_call_flagged(self):
        source = self.CARRIER + (
            "\ndef handle(tag, expect):\n"
            "    check(tag, expect)\n"
            "    return None\n"
        )
        self.assertIn("CF001", hits(source, "CF001"))

    def test_cross_module_discard_flagged(self):
        findings = flow(
            {
                "src/repro/a.py": textwrap.dedent(self.CARRIER),
                "src/repro/b.py": (
                    "from repro.a import check\n"
                    "def handle(tag, expect):\n"
                    "    check(tag, expect)\n"
                ),
            },
            "CF001",
        )
        self.assertEqual(["src/repro/b.py"], [f.path for f in findings])
        # The finding carries an interprocedural trace into the carrier.
        self.assertTrue(findings[0].trace)
        self.assertEqual("src/repro/a.py", findings[0].trace[0].path)

    def test_bound_method_alias_discard_flagged(self):
        source = """
            from repro.crypto.mac import constant_time_equal

            class Router:
                def validate_burst(self, pkts):
                    return [constant_time_equal(p, p) for p in pkts]

            def loop(router, bursts):
                validate_burst = router.validate_burst
                for burst in bursts:
                    validate_burst(burst)
                return len(bursts)
        """
        self.assertIn("CF001", hits(source, "CF001"))

    def test_bound_but_never_deciding_flagged(self):
        source = """
            from repro.crypto.mac import constant_time_equal

            def gate(tag, expect):
                ok = constant_time_equal(tag, expect)
                return "done"
        """
        findings = flow(source, "CF001")
        self.assertEqual(["CF001"], [f.rule_id for f in findings])
        self.assertIn("ok", findings[0].message)

    def test_unresolved_verify_statement_flagged(self):
        self.assertIn(
            "CF001",
            hits("def handle(pkt):\n    verify_hvf_chain(pkt)\n", "CF001"),
        )

    def test_branch_test_clean(self):
        source = """
            from repro.crypto.mac import constant_time_equal

            def gate(tag, expect):
                if not constant_time_equal(tag, expect):
                    raise ValueError("bad tag")
        """
        self.assertEqual([], hits(source, "CF001"))

    def test_returned_verdict_clean(self):
        source = self.CARRIER + (
            "\ndef handle(tag, expect):\n"
            "    return check(tag, expect)\n"
        )
        self.assertEqual([], hits(source, "CF001"))

    def test_raising_verifier_statement_clean(self):
        source = """
            from repro.crypto.mac import verify_mac

            def handle(key, data, tag):
                verify_mac(key, data, tag)
                return data
        """
        self.assertEqual([], hits(source, "CF001"))

    def test_bound_then_branched_clean(self):
        source = """
            from repro.crypto.mac import constant_time_equal

            def gate(tag, expect):
                ok = constant_time_equal(tag, expect)
                if not ok:
                    raise ValueError("bad tag")
        """
        self.assertEqual([], hits(source, "CF001"))

    def test_resolved_raising_verify_clean(self):
        source = """
            def verify_window(value):
                if not value:
                    raise ValueError("stale")

            def handle(value):
                verify_window(value)
                return value
        """
        self.assertEqual([], hits(source, "CF001"))

    def test_verdicts_consumed_via_all_clean(self):
        # The fixed shards.py shape: bind, branch on all(), count.
        source = self.CARRIER + (
            "\ndef loop(tags):\n"
            "    done = 0\n"
            "    for tag in tags:\n"
            "        verdicts = check(tag, tag)\n"
            "        if not verdicts:\n"
            "            raise ValueError('rejected')\n"
            "        done += 1\n"
            "    return done\n"
        )
        self.assertEqual([], hits(source, "CF001"))


# ---------------------------------------------------------------------------
# CF002 — nondeterminism taint


class TestCF002Determinism(unittest.TestCase):
    def test_wall_clock_into_attribute_store_flagged(self):
        source = """
            import time

            class Monitor:
                def touch(self):
                    self.last_seen = time.time()
        """
        self.assertIn("CF002", hits(source, "CF002"))

    def test_wall_clock_seeding_prng_flagged(self):
        source = """
            import random
            import time

            def make_rng():
                return random.Random(time.time())
        """
        self.assertIn("CF002", hits(source, "CF002"))

    def test_taint_through_helper_return_flagged(self):
        source = """
            import time

            def stamp():
                return time.time()

            def record(store):
                store["t"] = stamp()
        """
        findings = flow(source, "CF002")
        self.assertEqual(["CF002"], [f.rule_id for f in findings])
        # Trace points back at the source call inside the helper.
        self.assertTrue(
            any("time.time" in step.note for step in findings[0].trace)
        )

    def test_taint_into_storing_callee_flagged(self):
        source = """
            import time

            class Cache:
                def install(self, value):
                    self.value = value

            def refresh(cache: Cache):
                cache.install(time.time())
        """
        self.assertIn("CF002", hits(source, "CF002"))

    def test_entropy_into_module_table_flagged(self):
        source = """
            import os

            KEYS = {}

            def make_key(name):
                KEYS[name] = os.urandom(16)
        """
        self.assertIn("CF002", hits(source, "CF002"))

    def test_clock_module_exempt(self):
        source = "import time\n\nclass Clock:\n    def now(self):\n        self.t = time.time()\n        return self.t\n"
        self.assertEqual([], hits({"src/repro/util/clock.py": source}, "CF002"))

    def test_crypto_entropy_boundary_exempt(self):
        # Nonces must be unpredictable; repro/crypto is the sanctioned
        # entropy boundary just as util/clock is the wall-clock one.
        source = """
            import os

            class Sealer:
                def seal(self, payload):
                    self.nonce = os.urandom(12)
                    return self.nonce + payload
        """
        self.assertEqual([], hits({"src/repro/crypto/aead.py": source}, "CF002"))

    def test_injected_clock_clean(self):
        source = """
            def record(clock, store):
                store["t"] = clock.now()
        """
        self.assertEqual([], hits(source, "CF002"))

    def test_measurement_without_state_clean(self):
        # Reading the clock and returning the delta stores nothing.
        source = """
            import time

            def measure(work):
                start = time.time()
                work()
                return time.time() - start
        """
        self.assertEqual([], hits(source, "CF002"))

    def test_injected_seed_clean(self):
        source = """
            import random

            def make_rng(spec):
                return random.Random(spec.seed)
        """
        self.assertEqual([], hits(source, "CF002"))


# ---------------------------------------------------------------------------
# CF003 — guarded instrumentation


class TestCF003ObsGuard(unittest.TestCase):
    def test_unguarded_self_obs_flagged(self):
        source = """
            class Router:
                def process(self, pkt):
                    self.obs.tracer.start("hop")
                    return pkt
        """
        self.assertIn("CF003", hits(source, "CF003"))

    def test_unguarded_alias_flagged(self):
        source = """
            class Router:
                def process(self, pkt):
                    obs = self.obs
                    obs.metrics.observe(1)
                    return pkt
        """
        self.assertIn("CF003", hits(source, "CF003"))

    def test_optional_journal_link_flagged(self):
        # Guarding the context does not guard its Optional .journal field.
        source = """
            class Router:
                def process(self, pkt):
                    if self.obs is not None:
                        self.obs.journal.record("hop")
                    return pkt
        """
        findings = flow(source, "CF003")
        self.assertEqual(["CF003"], [f.rule_id for f in findings])
        self.assertIn("journal", findings[0].message)

    def test_guard_after_use_flagged(self):
        source = """
            class Router:
                def process(self, pkt):
                    self.obs.tracer.start("hop")
                    if self.obs is not None:
                        pass
                    return pkt
        """
        self.assertIn("CF003", hits(source, "CF003"))

    def test_is_not_none_guard_clean(self):
        source = """
            class Router:
                def process(self, pkt):
                    if self.obs is not None:
                        self.obs.tracer.start("hop")
                    return pkt
        """
        self.assertEqual([], hits(source, "CF003"))

    def test_truthiness_guard_clean(self):
        source = """
            def process(obs, pkt):
                if obs:
                    obs.metrics.observe(1)
                return pkt
        """
        self.assertEqual([], hits(source, "CF003"))

    def test_early_exit_guard_clean(self):
        source = """
            def process(obs, pkt):
                if obs is None:
                    return pkt
                obs.tracer.start("hop")
                return pkt
        """
        self.assertEqual([], hits(source, "CF003"))

    def test_and_short_circuit_clean(self):
        source = """
            def process(obs, pkt):
                span = obs and obs.tracer.start("hop")
                return pkt, span
        """
        self.assertEqual([], hits(source, "CF003"))

    def test_producer_result_is_definite(self):
        source = """
            from repro.obs import enable_observability

            def boot():
                obs = enable_observability()
                obs.tracer.start("boot")
        """
        self.assertEqual([], hits(source, "CF003"))

    def test_unguarded_sampler_chain_flagged(self):
        # The wire-path profiler guard site: obs alone does not guard
        # its Optional .sampler field.
        source = """
            class Gateway:
                def send_batch_wire(self, requests, arena):
                    obs = self.obs
                    if obs is not None:
                        if obs.sampler.tick():
                            return self._sampled(requests, arena)
                    return self._plain(requests, arena)
        """
        findings = flow(source, "CF003")
        self.assertEqual(["CF003"], [f.rule_id for f in findings])
        self.assertIn("sampler", findings[0].message)

    def test_guarded_sampler_chain_clean(self):
        # The idiom send_batch_wire / validate_wire_batch actually use:
        # guard the context, alias the sampler, guard the alias.
        source = """
            class Gateway:
                def send_batch_wire(self, requests, arena):
                    obs = self.obs
                    if obs is not None:
                        sampler = obs.sampler
                        if sampler is not None and sampler.tick():
                            return self._sampled(requests, arena, sampler)
                    return self._plain(requests, arena)
        """
        self.assertEqual([], hits(source, "CF003"))

    def test_trace_context_emit_guard_clean(self):
        # The RPC-framing site: a guarded ternary over the tracer is a
        # guard, and the produced context gates the frame emit.
        source = """
            class Bus:
                def call(self, method, trace=None):
                    tracer = self.obs.tracer if self.obs is not None else None
                    span = tracer.start("bus.call") if tracer is not None else None
                    return self._dispatch(method, trace)
        """
        self.assertEqual([], hits(source, "CF003"))

    def test_obs_package_itself_exempt(self):
        source = "class Tracer:\n    def bind(self):\n        return self.obs.tracer\n"
        self.assertEqual([], hits({"src/repro/obs/tracer.py": source}, "CF003"))


# ---------------------------------------------------------------------------
# CF004 — shared-nothing shard workers


class TestCF004ShardSafety(unittest.TestCase):
    def test_lambda_submission_flagged(self):
        source = """
            import multiprocessing

            def run(specs):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(lambda spec: spec, specs)
        """
        self.assertIn("CF004", hits(source, "CF004"))

    def test_bound_method_submission_flagged(self):
        source = """
            import multiprocessing

            class Executor:
                def run(self, specs):
                    with multiprocessing.Pool(2) as pool:
                        return pool.map(self.work, specs)

                def work(self, spec):
                    return spec
        """
        self.assertIn("CF004", hits(source, "CF004"))

    def test_nested_def_submission_flagged(self):
        source = """
            import multiprocessing

            def run(specs):
                def work(spec):
                    return spec
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, specs)
        """
        self.assertIn("CF004", hits(source, "CF004"))

    def test_worker_reading_mutable_global_flagged(self):
        source = """
            import multiprocessing

            CACHE = {}

            def work(spec):
                return CACHE.get(spec)

            def run(specs):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, specs)
        """
        findings = flow(source, "CF004")
        self.assertEqual(["CF004"], [f.rule_id for f in findings])
        self.assertIn("CACHE", findings[0].message)

    def test_transitive_global_write_flagged(self):
        # The helper two calls deep writes a global; the trace names the
        # submitted entry point.
        source = """
            import multiprocessing

            COUNT = 0

            def bump():
                global COUNT
                COUNT += 1

            def work(spec):
                bump()
                return spec

            def run(specs):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, specs)
        """
        findings = flow(source, "CF004")
        self.assertEqual(["CF004"], [f.rule_id for f in findings])
        self.assertTrue(
            any("work()" in step.note for step in findings[0].trace)
        )

    def test_process_target_checked(self):
        source = """
            from multiprocessing import Process

            RESULTS = {}

            def work(spec):
                RESULTS[spec] = 1

            def run(spec):
                Process(target=work, args=(spec,)).start()
        """
        self.assertIn("CF004", hits(source, "CF004"))

    def test_shared_nothing_worker_clean(self):
        source = """
            import multiprocessing

            def work(spec):
                total = 0
                for item in spec:
                    total += item
                return total

            def run(specs):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, specs)
        """
        self.assertEqual([], hits(source, "CF004"))

    def test_immutable_global_clean(self):
        source = """
            import multiprocessing

            LANES = (0, 1, 2, 3)

            def work(spec):
                return LANES[spec % len(LANES)]

            def run(specs):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, specs)
        """
        self.assertEqual([], hits(source, "CF004"))

    def test_mapping_proxy_global_clean(self):
        source = """
            import multiprocessing
            from types import MappingProxyType

            TABLE = MappingProxyType({"a": 1})

            def work(spec):
                return TABLE.get(spec, 0)

            def run(specs):
                with multiprocessing.Pool(2) as pool:
                    return pool.map(work, specs)
        """
        self.assertEqual([], hits(source, "CF004"))

    def test_builtin_map_not_a_submission(self):
        source = """
            CACHE = {}

            def work(spec):
                return CACHE.get(spec)

            def run(specs):
                return list(map(work, specs))
        """
        self.assertEqual([], hits(source, "CF004"))


# ---------------------------------------------------------------------------
# Suppressions, baseline, CLI


class TestSuppressions(unittest.TestCase):
    BAD = (
        "def handle(pkt):\n"
        "    verify_hvf_chain(pkt)  # colibri-flow: disable=CF001\n"
    )

    def test_line_suppression(self):
        self.assertEqual([], hits(self.BAD, "CF001"))

    def test_other_rule_id_still_fires(self):
        source = self.BAD.replace("CF001", "CF002")
        self.assertEqual(["CF001"], hits(source, "CF001"))

    def test_lint_tag_does_not_suppress_flow(self):
        source = self.BAD.replace("colibri-flow", "colibri-lint")
        self.assertEqual(["CF001"], hits(source, "CF001"))


class TestBaseline(unittest.TestCase):
    def findings(self):
        return flow("def handle(pkt):\n    verify_hvf_chain(pkt)\n", "CF001")

    def test_roundtrip_filters_grandfathered(self):
        import tempfile

        findings = self.findings()
        self.assertEqual(1, len(findings))
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "baseline.json"
            write_baseline(findings, path, tool="colibri-flow")
            baseline = load_baseline(path)
            new, grandfathered = filter_findings(findings, baseline)
        self.assertEqual([], new)
        self.assertEqual(1, len(grandfathered))

    def test_changed_line_resurrects_finding(self):
        import tempfile

        old = self.findings()
        edited = flow(
            "def handle(pkt):\n    verify_hvf_chain(pkt.header)\n", "CF001"
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "baseline.json"
            write_baseline(old, path, tool="colibri-flow")
            new, _ = filter_findings(edited, load_baseline(path))
        self.assertEqual(1, len(new))


class TestCliAndSchema(unittest.TestCase):
    BAD = "def handle(pkt):\n    verify_hvf_chain(pkt)\n"

    def _write(self, root: Path, rel: str, source: str) -> Path:
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def test_exit_codes_and_update_baseline(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            bad = self._write(root, "src/repro/bad.py", self.BAD)
            clean = self._write(root, "src/repro/good.py", "X = 1\n")
            baseline = root / "baseline.json"

            self.assertEqual(0, cli_run([str(clean), "--no-baseline"]))
            self.assertEqual(1, cli_run([str(bad), "--no-baseline"]))
            self.assertEqual(
                0,
                cli_run(
                    [str(bad), "--update-baseline", "--baseline", str(baseline)]
                ),
            )
            self.assertEqual(0, cli_run([str(bad), "--baseline", str(baseline)]))

    def test_select_and_unknown_rule(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            bad = self._write(Path(tmp), "src/repro/bad.py", self.BAD)
            self.assertEqual(
                0, cli_run([str(bad), "--select", "CF004", "--no-baseline"])
            )
            self.assertEqual(2, cli_run([str(bad), "--select", "CF999"]))

    def test_list_rules(self):
        self.assertEqual(0, cli_run(["--list-rules"]))

    def test_syntax_error_becomes_cf000(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            broken = self._write(Path(tmp), "src/repro/broken.py", "def f(:\n")
            findings, _ = analyze_paths([broken])
            self.assertEqual(["CF000"], [f.rule_id for f in findings])

    def test_json_schema(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            self._write(
                root,
                "src/repro/a.py",
                """
                from repro.crypto.mac import constant_time_equal

                def check(tag, expect):
                    if constant_time_equal(tag, expect):
                        return True
                    return False

                def handle(tag, expect):
                    check(tag, expect)
                """,
            )
            import contextlib
            import io

            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                code = cli_run(
                    [str(root / "src"), "--format", "json", "--no-baseline"]
                )
            self.assertEqual(1, code)
            payload = json.loads(buffer.getvalue())
        self.assertEqual("colibri-flow", payload["tool"])
        self.assertEqual(payload["count"], len(payload["findings"]))
        self.assertEqual(0, payload["grandfathered"])
        finding = payload["findings"][0]
        for key in ("path", "line", "col", "rule", "message", "line_text"):
            self.assertIn(key, finding)
        self.assertEqual("CF001", finding["rule"])
        # Interprocedural findings ship their trace in the payload.
        self.assertTrue(finding["trace"])
        for step in finding["trace"]:
            self.assertIn("path", step)
            self.assertIn("line", step)
            self.assertIn("note", step)


# ---------------------------------------------------------------------------
# Parse-once contract


class TestParseOnceCache(unittest.TestCase):
    def test_cache_parses_each_path_once(self):
        import tempfile

        cache = AstCache()
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "mod.py"
            path.write_text("X = 1\n", encoding="utf-8")
            first = cache.get(path, "mod.py")
            second = cache.get(path, "mod.py")
        self.assertIs(first, second)
        self.assertEqual(1, cache.parse_count)

    def test_flow_reuses_lint_parses(self):
        # The combined runner's contract: after colibri-lint has seen a
        # file, colibri-flow analyzes it without re-parsing.
        import tempfile

        from tools.analysis_core.cache import GLOBAL_CACHE
        from tools.colibri_lint import lint_paths

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "src" / "repro" / "mod.py"
            path.parent.mkdir(parents=True)
            path.write_text("X = 1\n", encoding="utf-8")
            lint_paths([path])
            before = GLOBAL_CACHE.parse_count
            analyze_paths([path])
            self.assertEqual(before, GLOBAL_CACHE.parse_count)


# ---------------------------------------------------------------------------
# The real tree


class TestRealTreeClean(unittest.TestCase):
    """The analyzer's reason to exist: the shipped tree stays clean."""

    def test_src_repro_clean_modulo_baseline(self):
        findings, _ = analyze_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / ".colibri-flow-baseline.json")
        new, _ = filter_findings(findings, baseline)
        self.assertEqual(
            [],
            new,
            "colibri-flow regressions:\n"
            + "\n".join(
                f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in new
            ),
        )

    def test_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / ".colibri-flow-baseline.json")
        self.assertEqual(0, sum(baseline.values()), "baseline must stay empty")


if __name__ == "__main__":
    unittest.main()
