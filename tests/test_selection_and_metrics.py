"""Tests for path-selection policies and the statistics helpers, plus
the Coremelt-style collusion attack on the admission algorithm (§5.2,
the [26]/[53] attack class §8 references)."""

import pytest

from repro.errors import InsufficientBandwidth
from repro.sim import ColibriNetwork
from repro.topology import Beaconing, IsdAs, PathLookup, build_core_mesh
from repro.topology.selection import (
    disjointness,
    max_capacity_first,
    most_disjoint,
    path_capacity,
    shortest_first,
)
from repro.util.metrics import jain_fairness, mean, percentile
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


@pytest.fixture
def mesh_paths():
    topology = build_core_mesh(5)
    lookup = PathLookup(Beaconing(topology))
    return topology, lookup.paths(asid(1, 1), asid(1, 3), limit=10)


class TestSelectionPolicies:
    def test_shortest_first(self, mesh_paths):
        _, paths = mesh_paths
        ordered = shortest_first(paths)
        assert [len(p) for p in ordered] == sorted(len(p) for p in paths)
        assert len(ordered[0]) == 2  # the direct link

    def test_path_capacity_is_bottleneck(self):
        topology = build_core_mesh(3, capacity=gbps(40))
        # Shrink one link and verify the path through it reports it.
        link = topology.link_between(asid(1, 1), asid(1, 2))
        topology.remove_link(link)
        topology.add_link(asid(1, 1), asid(1, 2), capacity=gbps(10))
        lookup = PathLookup(Beaconing(topology))
        paths = lookup.paths(asid(1, 1), asid(1, 2), limit=5)
        direct = [p for p in paths if len(p) == 2][0]
        detour = [p for p in paths if len(p) == 3][0]
        assert path_capacity(topology, direct) == pytest.approx(gbps(10))
        assert path_capacity(topology, detour) == pytest.approx(gbps(40))

    def test_max_capacity_first_prefers_wide_detour(self):
        topology = build_core_mesh(3, capacity=gbps(40))
        link = topology.link_between(asid(1, 1), asid(1, 2))
        topology.remove_link(link)
        topology.add_link(asid(1, 1), asid(1, 2), capacity=gbps(10))
        lookup = PathLookup(Beaconing(topology))
        paths = lookup.paths(asid(1, 1), asid(1, 2), limit=5)
        ordered = max_capacity_first(topology, paths)
        assert len(ordered[0]) == 3  # the wide detour outranks the thin link

    def test_disjointness_metric(self, mesh_paths):
        _, paths = mesh_paths
        direct = [p for p in paths if len(p) == 2][0]
        detours = [p for p in paths if len(p) == 3]
        assert disjointness(direct, detours[0]) == 1.0  # no transit at all
        assert disjointness(detours[0], direct) == 1.0  # direct shares nothing
        same = disjointness(detours[0], detours[0])
        assert same == 0.0

    def test_most_disjoint_selection(self, mesh_paths):
        _, paths = mesh_paths
        chosen = most_disjoint(paths, count=3)
        assert len(chosen) == 3
        # Pairwise transit-disjoint in a 5-mesh: each detour uses a
        # different middle AS.
        for i, a in enumerate(chosen):
            for b in chosen[i + 1 :]:
                middle_a = set(a.ases[1:-1])
                middle_b = set(b.ases[1:-1])
                assert not (middle_a & middle_b)

    def test_most_disjoint_handles_small_sets(self, mesh_paths):
        _, paths = mesh_paths
        assert most_disjoint(paths[:1], count=5) == paths[:1]
        assert most_disjoint([], count=2) == []
        with pytest.raises(ValueError):
            most_disjoint(paths, count=0)


class TestMetrics:
    def test_jain_equal(self):
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)

    def test_jain_single_taker(self):
        assert jain_fairness([9, 0, 0]) == pytest.approx(1 / 3)

    def test_jain_validations(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0])
        assert jain_fairness([0.0, 0.0]) == 1.0

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.0) == 1

    def test_percentile_validations(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            mean([])


class TestCoremeltCollusion:
    """The Coremelt/Crossfire attack class (§8 refs [26][53]): colluding
    ASes exchange *legitimate* reservations to melt a shared core link.
    Colibri's defence is the admission algorithm itself (§5.2): aggregate
    adjusted demand per ingress and per source is capped, so collusion
    cannot reserve the link away, and renewal rounds converge benign
    flows to a guaranteed floor."""

    def test_colluders_cannot_starve_benign_renewals(self):
        net = ColibriNetwork(build_core_mesh(4, capacity=gbps(40)))
        target_first, target_last = asid(1, 1), asid(1, 3)
        direct = net.path_lookup.paths(target_first, target_last, limit=1)[0]
        segment = direct.segments[0]

        # The benign AS holds a modest reservation over the target link.
        benign = net.cserv(target_first).setup_segment(segment, gbps(1))

        # Colluders: the same initiating AS floods reservations over the
        # link (a group behind one ingress behaves identically, rule 1).
        colluder_grants = []
        for _ in range(60):
            try:
                reservation = net.cserv(target_first).setup_segment(
                    segment, gbps(32), register=False
                )
                colluder_grants.append(reservation)
            except InsufficientBandwidth:
                pass

        # Renewal rounds let the admission re-balance (tube fairness).
        for _round in range(3):
            for reservation in colluder_grants:
                try:
                    version = net.cserv(target_first).renew_segment(
                        reservation.reservation_id, gbps(32)
                    )
                    net.cserv(target_first).activate_segment(
                        reservation.reservation_id, version
                    )
                except InsufficientBandwidth:
                    pass
            version = net.cserv(target_first).renew_segment(
                benign.reservation_id, gbps(1)
            )
            net.cserv(target_first).activate_segment(
                benign.reservation_id, version
            )

        # The benign reservation retains a usable floor...
        assert benign.bandwidth >= gbps(0.2)
        # ...and the total never exceeds the link's Colibri share.
        total = benign.bandwidth + sum(r.bandwidth for r in colluder_grants)
        assert total <= gbps(40) * 0.8 * (1 + 1e-9)

    def test_fairness_across_distinct_sources(self):
        """Distinct source ASes competing for one egress converge to a
        high Jain index after renewal rounds."""
        from repro.admission import SegmentAdmission, TrafficMatrix
        from repro.reservation.ids import ReservationId
        from repro.topology import build_line_topology
        from repro.topology.graph import NO_INTERFACE

        topology = build_line_topology(3)
        middle = asid(1, 2)
        admission = SegmentAdmission(TrafficMatrix(topology.node(middle)))
        sources = [asid(1, 100 + i) for i in range(6)]
        for source in sources:
            admission.admit(
                ReservationId(source, 1), source, NO_INTERFACE, 2, gbps(32), 0.0
            )
        final = {}
        for _round in range(3):
            for source in sources:
                grant = admission.admit(
                    ReservationId(source, 1), source, NO_INTERFACE, 2, gbps(32), 0.0
                )
                final[source] = grant.granted
        assert jain_fairness(list(final.values())) > 0.9
