"""Tests for the multi-hop latency pipeline (§9's low-latency benefit)."""

import pytest

from repro.dataplane.queueing import TrafficClass
from repro.sim import ColibriNetwork
from repro.sim.pipeline import HopPort, PathPipeline
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


@pytest.fixture
def pipeline():
    net = ColibriNetwork(build_two_isd_topology())
    net.reserve_segments(SRC, DST, gbps(1))
    handle = net.establish_eer(SRC, DST, mbps(10))
    return net, PathPipeline(net, handle, capacity=mbps(100), propagation=0.001)


class TestHopPort:
    def test_unloaded_delay_is_serialization_plus_propagation(self):
        port = HopPort(capacity=mbps(100), propagation=0.002)
        delay = port.transit_delay(1250, TrafficClass.EER_DATA, now=0.0)
        assert delay == pytest.approx(0.002 + 1250 * 8 / mbps(100))

    def test_backlog_drains_over_time(self):
        port = HopPort(capacity=mbps(100), propagation=0.0)
        port.offer_cross_traffic(125_000, TrafficClass.BEST_EFFORT, now=0.0)
        # 125 kB at 100 Mbps = 10 ms to drain; after 20 ms it's gone.
        delay = port.transit_delay(1250, TrafficClass.BEST_EFFORT, now=0.020)
        assert delay == pytest.approx(1250 * 8 / mbps(100))

    def test_priority_traffic_skips_best_effort_backlog(self):
        port = HopPort(capacity=mbps(100), propagation=0.0)
        port.offer_cross_traffic(1_000_000, TrafficClass.BEST_EFFORT, now=0.0)
        fast = port.transit_delay(1250, TrafficClass.EER_DATA, now=0.0)
        slow = port.transit_delay(1250, TrafficClass.BEST_EFFORT, now=0.0)
        assert fast < 0.001
        assert slow > 0.05

    def test_control_ahead_of_eer_data(self):
        port = HopPort(capacity=mbps(100), propagation=0.0)
        port.offer_cross_traffic(1_000_000, TrafficClass.EER_DATA, now=0.0)
        control = port.transit_delay(1250, TrafficClass.CONTROL, now=0.0)
        assert control < 0.001


class TestPathPipeline:
    def test_clean_network_latency(self, pipeline):
        net, path = pipeline
        report = path.send(b"x" * 500)
        assert report.delivered
        # 6 hops x (propagation 1 ms + tiny serialization) ~ 6 ms.
        assert report.latency == pytest.approx(0.006, rel=0.2)
        assert len(report.per_hop) == 6

    def test_reserved_latency_immune_to_congestion(self, pipeline):
        """The §9 claim: reservations keep low latency under congestion
        that ruins best-effort latency on the same ports."""
        net, path = pipeline
        baseline = path.send(b"x" * 500).latency
        path.load_cross_traffic(rate=mbps(500), duration=1.0)  # heavy flood
        reserved = path.send(b"x" * 500).latency
        best_effort = path.send(
            b"x" * 500, traffic_class=TrafficClass.BEST_EFFORT
        ).latency
        assert reserved == pytest.approx(baseline, rel=0.25)
        assert best_effort > reserved * 20

    def test_congestion_at_one_hop_only(self, pipeline):
        net, path = pipeline
        victim_hop = path.handle.hops[3].isd_as
        path.load_cross_traffic(mbps(500), 1.0, ases=[victim_hop])
        report = path.send(b"x" * 500, traffic_class=TrafficClass.BEST_EFFORT)
        delays = dict(report.per_hop)
        assert delays[victim_hop] > 10 * max(
            delay for isd_as, delay in report.per_hop if isd_as != victim_hop
        )

    def test_per_hop_latency_sums_to_total(self, pipeline):
        net, path = pipeline
        report = path.send(b"ping")
        assert sum(delay for _, delay in report.per_hop) == pytest.approx(
            report.latency
        )

    def test_dropped_packet_reports_location(self, pipeline):
        net, path = pipeline
        victim = path.handle.hops[2].isd_as
        net.router(victim).blocklist.block(SRC)
        report = path.send(b"blocked")
        assert not report.delivered
        assert report.dropped_at == victim
