"""Unit tests for repro.reservation: ids, versions, store, index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    ReservationExpired,
    ReservationNotFound,
    StoreConflict,
    VersionError,
)
from repro.packets.fields import EerInfo
from repro.reservation import (
    E2EReservation,
    E2EVersion,
    InterfacePairIndex,
    ReservationId,
    ReservationStore,
    SegmentReservation,
    SegmentVersion,
)
from repro.reservation.index import IndexedDemand
from repro.reservation.segment import VersionState
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField, Segment, SegmentType

SRC = IsdAs.parse("1-ff00:0:110")
MID = IsdAs.parse("1-ff00:0:111")
DST = IsdAs.parse("1-ff00:0:1")


def make_segment():
    return Segment.from_hops(
        SegmentType.UP,
        [
            HopField(SRC, NO_INTERFACE, 1),
            HopField(MID, 2, 3),
            HopField(DST, 4, NO_INTERFACE),
        ],
    )


def make_segr(local_id=1, bw=1e9, expiry=300.0):
    return SegmentReservation(
        reservation_id=ReservationId(SRC, local_id),
        segment=make_segment(),
        first_version=SegmentVersion(version=1, bandwidth=bw, expiry=expiry),
    )


def make_eer(local_id=100, bw=1e7, expiry=16.0, segment_ids=()):
    return E2EReservation(
        reservation_id=ReservationId(SRC, local_id),
        eer_info=EerInfo(HostAddr(1), HostAddr(2)),
        hops=make_segment().hops,
        segment_ids=segment_ids or (ReservationId(SRC, 1),),
        first_version=E2EVersion(version=1, bandwidth=bw, expiry=expiry),
    )


class TestReservationId:
    def test_roundtrip(self):
        rid = ReservationId(SRC, 42)
        assert ReservationId.unpack(rid.packed) == rid

    def test_global_uniqueness_needs_both_parts(self):
        assert ReservationId(SRC, 1) != ReservationId(DST, 1)
        assert ReservationId(SRC, 1) != ReservationId(SRC, 2)

    def test_range(self):
        with pytest.raises(ValueError):
            ReservationId(SRC, 1 << 32)

    @given(st.integers(0, (1 << 32) - 1))
    def test_roundtrip_property(self, local_id):
        rid = ReservationId(SRC, local_id)
        assert ReservationId.unpack(rid.packed) == rid


class TestSegmentReservation:
    def test_first_version_is_active(self):
        segr = make_segr()
        assert segr.active.version == 1
        assert segr.active.state is VersionState.ACTIVE
        assert segr.bandwidth == 1e9

    def test_pending_does_not_change_active(self):
        segr = make_segr()
        segr.add_pending(SegmentVersion(version=2, bandwidth=2e9, expiry=600.0))
        assert segr.bandwidth == 1e9
        assert len(segr.pending_versions()) == 1

    def test_explicit_activation_switches(self):
        segr = make_segr()
        segr.add_pending(SegmentVersion(version=2, bandwidth=2e9, expiry=600.0))
        segr.activate(2, now=100.0)
        assert segr.bandwidth == 2e9
        assert segr.active.version == 2

    def test_only_one_active_version(self):
        segr = make_segr()
        segr.add_pending(SegmentVersion(version=2, bandwidth=2e9, expiry=600.0))
        segr.activate(2, now=0.0)
        states = [v.state for v in segr.versions.values()]
        assert states.count(VersionState.ACTIVE) == 1

    def test_duplicate_version_rejected(self):
        segr = make_segr()
        with pytest.raises(VersionError):
            segr.add_pending(SegmentVersion(version=1, bandwidth=1, expiry=600.0))

    def test_version_must_increase(self):
        segr = make_segr()
        segr.add_pending(SegmentVersion(version=3, bandwidth=1, expiry=600.0))
        with pytest.raises(VersionError):
            segr.add_pending(SegmentVersion(version=2, bandwidth=1, expiry=600.0))

    def test_activate_unknown_version(self):
        with pytest.raises(VersionError):
            make_segr().activate(9, now=0.0)

    def test_activate_expired_version_rejected(self):
        segr = make_segr()
        segr.add_pending(SegmentVersion(version=2, bandwidth=1, expiry=50.0))
        with pytest.raises(ReservationExpired):
            segr.activate(2, now=60.0)

    def test_activate_non_pending_rejected(self):
        segr = make_segr()
        segr.add_pending(SegmentVersion(version=2, bandwidth=1, expiry=600.0))
        segr.activate(2, now=0.0)
        with pytest.raises(VersionError):
            segr.activate(2, now=0.0)

    def test_expiry_follows_active(self):
        segr = make_segr(expiry=300.0)
        assert not segr.is_expired(299.0)
        assert segr.is_expired(300.0)

    def test_prune_drops_retired(self):
        segr = make_segr()
        segr.add_pending(SegmentVersion(version=2, bandwidth=2e9, expiry=600.0))
        segr.activate(2, now=0.0)
        assert segr.prune(now=0.0) == 1
        assert list(segr.versions) == [2]

    def test_next_version_number(self):
        segr = make_segr()
        assert segr.next_version_number() == 2


class TestE2EReservation:
    def test_multiple_live_versions(self):
        eer = make_eer(bw=1e7, expiry=16.0)
        eer.add_version(E2EVersion(version=2, bandwidth=2e7, expiry=30.0))
        assert len(eer.live_versions(10.0)) == 2

    def test_effective_bandwidth_is_max(self):
        eer = make_eer(bw=1e7, expiry=16.0)
        eer.add_version(E2EVersion(version=2, bandwidth=2e7, expiry=30.0))
        assert eer.effective_bandwidth(10.0) == 2e7
        # after v2 expires... both expired
        assert eer.effective_bandwidth(31.0) == 0.0

    def test_latest_version_used_by_gateway(self):
        eer = make_eer()
        eer.add_version(E2EVersion(version=2, bandwidth=5e6, expiry=30.0))
        assert eer.latest_version().version == 2

    def test_latest_live_version(self):
        eer = make_eer(expiry=16.0)
        eer.add_version(E2EVersion(version=2, bandwidth=5e6, expiry=10.0))
        # v2 expires before v1: at t=12 the latest live is v1
        assert eer.latest_live_version(12.0).version == 1
        assert eer.latest_live_version(20.0) is None

    def test_versions_cannot_regress(self):
        eer = make_eer()
        eer.add_version(E2EVersion(version=3, bandwidth=1, expiry=30.0))
        with pytest.raises(VersionError):
            eer.add_version(E2EVersion(version=2, bandwidth=1, expiry=30.0))

    def test_expiry_is_latest(self):
        eer = make_eer(expiry=16.0)
        eer.add_version(E2EVersion(version=2, bandwidth=1, expiry=32.0))
        assert eer.expiry == 32.0

    def test_prune_keeps_newest(self):
        eer = make_eer(expiry=16.0)
        eer.add_version(E2EVersion(version=2, bandwidth=1, expiry=32.0))
        assert eer.prune(now=20.0) == 1
        assert list(eer.versions) == [2]


class TestReservationStore:
    def test_add_and_get_segment(self):
        store = ReservationStore()
        segr = make_segr()
        store.add_segment(segr)
        assert store.get_segment(segr.reservation_id) is segr
        assert store.segment_count() == 1

    def test_duplicate_segment_rejected(self):
        store = ReservationStore()
        store.add_segment(make_segr())
        with pytest.raises(StoreConflict):
            store.add_segment(make_segr())

    def test_unknown_lookups(self):
        store = ReservationStore()
        with pytest.raises(ReservationNotFound):
            store.get_segment(ReservationId(SRC, 9))
        with pytest.raises(ReservationNotFound):
            store.get_eer(ReservationId(SRC, 9))
        with pytest.raises(ReservationNotFound):
            store.allocated_on_segment(ReservationId(SRC, 9))

    def test_eer_allocation_accounting(self):
        store = ReservationStore()
        segr = make_segr()
        store.add_segment(segr)
        eer1, eer2 = ReservationId(SRC, 100), ReservationId(SRC, 101)
        store.allocate_on_segment(segr.reservation_id, eer1, 1e7)
        store.allocate_on_segment(segr.reservation_id, eer2, 2e7)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(3e7)
        # renewal adjusts, does not double-count
        store.allocate_on_segment(segr.reservation_id, eer1, 3e7)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(5e7)
        store.release_on_segment(segr.reservation_id, eer2)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(3e7)

    def test_transaction_rollback(self):
        store = ReservationStore()
        segr = make_segr()
        store.add_segment(segr)
        eer = make_eer()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.add_eer(eer)
                store.allocate_on_segment(
                    segr.reservation_id, eer.reservation_id, 1e7
                )
                raise RuntimeError("downstream AS denied")
        assert not store.has_eer(eer.reservation_id)
        assert store.allocated_on_segment(segr.reservation_id) == 0.0

    def test_transaction_commit(self):
        store = ReservationStore()
        segr = make_segr()
        store.add_segment(segr)
        eer = make_eer()
        with store.transaction():
            store.add_eer(eer)
            store.allocate_on_segment(segr.reservation_id, eer.reservation_id, 1e7)
        assert store.has_eer(eer.reservation_id)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(1e7)

    def test_nested_transaction_rejected(self):
        store = ReservationStore()
        with store.transaction():
            with pytest.raises(StoreConflict):
                with store.transaction():
                    pass

    def test_rollback_of_segment_add(self):
        store = ReservationStore()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.add_segment(make_segr())
                raise RuntimeError("fail")
        assert store.segment_count() == 0

    def test_sweep_expired(self):
        store = ReservationStore()
        segr = make_segr(expiry=300.0)
        store.add_segment(segr)
        eer = make_eer(expiry=16.0, segment_ids=(segr.reservation_id,))
        store.add_eer(eer)
        store.allocate_on_segment(segr.reservation_id, eer.reservation_id, 1e7)
        removed = store.sweep_expired(now=20.0)
        assert removed == {"eers": 1, "segments": 0}
        assert store.allocated_on_segment(segr.reservation_id) == 0.0
        removed = store.sweep_expired(now=301.0)
        assert removed["segments"] == 1
        assert store.segment_count() == 0


class TestInterfacePairIndex:
    def demand(self, rid, source=SRC, ingress=1, egress=2, capped=10.0, adjusted=8.0):
        return IndexedDemand(
            reservation_id=ReservationId(source, rid),
            source=source,
            ingress=ingress,
            egress=egress,
            capped_demand=capped,
            adjusted_demand=adjusted,
        )

    def test_sums_update_incrementally(self):
        index = InterfacePairIndex()
        index.add(self.demand(1))
        index.add(self.demand(2, capped=5.0, adjusted=4.0))
        assert index.ingress_demand(1) == pytest.approx(15.0)
        assert index.source_demand(SRC, 2) == pytest.approx(15.0)
        assert index.egress_adjusted(2) == pytest.approx(12.0)

    def test_remove_restores_sums(self):
        index = InterfacePairIndex()
        index.add(self.demand(1))
        index.add(self.demand(2))
        index.remove(ReservationId(SRC, 1))
        assert index.ingress_demand(1) == pytest.approx(10.0)
        assert len(index) == 1

    def test_re_add_replaces(self):
        index = InterfacePairIndex()
        index.add(self.demand(1, capped=10.0))
        index.add(self.demand(1, capped=20.0, adjusted=16.0))
        assert index.ingress_demand(1) == pytest.approx(20.0)
        assert len(index) == 1

    def test_remove_unknown_is_noop(self):
        index = InterfacePairIndex()
        index.remove(ReservationId(SRC, 77))
        assert len(index) == 0

    def test_recompute_matches_incremental(self):
        incremental = InterfacePairIndex()
        demands = [self.demand(i, capped=float(i), adjusted=float(i) / 2) for i in range(1, 20)]
        for demand in demands:
            incremental.add(demand)
        rebuilt = InterfacePairIndex()
        rebuilt.recompute_from(demands)
        assert rebuilt.ingress_demand(1) == pytest.approx(incremental.ingress_demand(1))
        assert rebuilt.egress_adjusted(2) == pytest.approx(incremental.egress_adjusted(2))

    def test_no_negative_drift(self):
        index = InterfacePairIndex()
        for i in range(1, 100):
            index.add(self.demand(i, capped=0.1, adjusted=0.1))
        for i in range(1, 100):
            index.remove(ReservationId(SRC, i))
        assert index.ingress_demand(1) == 0.0
        assert index.egress_adjusted(2) == 0.0


class TestSweepTransactionality:
    """The sweep is journaled: a sweep inside a rolled-back transaction
    must leave no trace.  Previously the sweep deleted reservations
    outside the undo journal while its allocation releases were
    journaled, so a rollback restored allocations for EERs that no
    longer existed — a permanent accounting leak."""

    def build(self):
        store = ReservationStore()
        segr = make_segr(expiry=300.0)
        store.add_segment(segr)
        eer = make_eer(expiry=16.0, segment_ids=(segr.reservation_id,))
        store.add_eer(eer)
        store.allocate_on_segment(segr.reservation_id, eer.reservation_id, 1e7)
        return store, segr, eer

    def test_sweep_rolls_back_with_transaction(self):
        store, segr, eer = self.build()
        with pytest.raises(RuntimeError):
            with store.transaction():
                removed = store.sweep_expired(now=20.0)
                assert removed == {"eers": 1, "segments": 0}
                raise RuntimeError("downstream AS denied")
        # Fully restored: the EER is back AND its allocation still
        # matches it (the bug left the allocation without the EER).
        assert store.has_eer(eer.reservation_id)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(1e7)
        assert store.eer_allocation(
            segr.reservation_id, eer.reservation_id
        ) == pytest.approx(1e7)

    def test_restored_reservations_sweep_again(self):
        # The rollback must also restore the expiry index, or the
        # revived EER would never be collected.
        store, segr, eer = self.build()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.sweep_expired(now=20.0)
                raise RuntimeError("fail")
        removed = store.sweep_expired(now=20.0)
        assert removed == {"eers": 1, "segments": 0}
        assert not store.has_eer(eer.reservation_id)
        assert store.allocated_on_segment(segr.reservation_id) == 0.0

    def test_segment_sweep_rolls_back(self):
        store, segr, eer = self.build()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.sweep_expired(now=301.0)
                assert store.segment_count() == 0
                raise RuntimeError("fail")
        assert store.has_segment(segr.reservation_id)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(1e7)
        removed = store.sweep_expired(now=301.0)
        assert removed == {"eers": 1, "segments": 1}

    def test_committed_sweep_sticks(self):
        store, segr, eer = self.build()
        with store.transaction():
            removed = store.sweep_expired(now=20.0)
        assert removed == {"eers": 1, "segments": 0}
        assert not store.has_eer(eer.reservation_id)
        assert store.sweep_expired(now=20.0) == {"eers": 0, "segments": 0}


class TestExpiryIndex:
    def test_window_queries(self):
        store = ReservationStore()
        segr = make_segr(expiry=300.0)
        store.add_segment(segr)
        near = make_eer(local_id=100, expiry=16.0, segment_ids=(segr.reservation_id,))
        far = make_eer(local_id=101, expiry=48.0, segment_ids=(segr.reservation_id,))
        store.add_eer(near)
        store.add_eer(far)
        assert store.eers_expiring_by(20.0) == [near]
        assert sorted(
            r.reservation_id.local_id for r in store.eers_expiring_by(60.0)
        ) == [100, 101]
        assert store.segments_expiring_by(299.0) == []
        assert store.segments_expiring_by(300.0) == [segr]

    def test_out_of_band_renewal_heals_lazily(self):
        # A renewal adds a version directly on the object; the next sweep
        # surfaces the stale schedule, revalidates, and re-indexes
        # instead of removing the live EER.
        store = ReservationStore()
        segr = make_segr(expiry=300.0)
        store.add_segment(segr)
        eer = make_eer(expiry=16.0, segment_ids=(segr.reservation_id,))
        store.add_eer(eer)
        eer.add_version(E2EVersion(version=2, bandwidth=1e7, expiry=32.0))
        assert store.sweep_expired(now=20.0) == {"eers": 0, "segments": 0}
        assert store.has_eer(eer.reservation_id)
        assert store.sweep_expired(now=32.0) == {"eers": 1, "segments": 0}

    def test_touch_after_expiry_shrink(self):
        # Dropping the newest version *shrinks* the expiry; touch()
        # re-indexes so collection is timely, not at the old deadline.
        store = ReservationStore()
        eer = make_eer(expiry=16.0)
        store.add_eer(eer)
        eer.add_version(E2EVersion(version=2, bandwidth=1e7, expiry=160.0))
        store.touch(eer.reservation_id)
        eer.drop_version(2)
        store.touch(eer.reservation_id)
        assert store.eers_expiring_by(16.0) == [eer]
        assert store.sweep_expired(now=16.0) == {"eers": 1, "segments": 0}

    def test_touch_unknown_is_noop(self):
        store = ReservationStore()
        store.touch(ReservationId(SRC, 404))

    def test_touch_rolls_back(self):
        store = ReservationStore()
        eer = make_eer(expiry=16.0)
        store.add_eer(eer)
        with pytest.raises(RuntimeError):
            with store.transaction():
                eer.add_version(E2EVersion(version=2, bandwidth=1e7, expiry=160.0))
                store.touch(eer.reservation_id)
                raise RuntimeError("fail")
        # The object keeps the version (it is not store state), but the
        # index schedule is restored to the pre-transaction expiry.
        assert store._eer_wheel.scheduled_expiry(eer.reservation_id) == 16.0


class TestShardedReservationStore:
    def build(self, shards=4):
        from repro.reservation import ShardedReservationStore

        store = ShardedReservationStore(shards=shards)
        segr = make_segr(expiry=300.0)
        store.add_segment(segr)
        eer = make_eer(expiry=16.0, segment_ids=(segr.reservation_id,))
        store.add_eer(eer)
        store.allocate_on_segment(segr.reservation_id, eer.reservation_id, 1e7)
        return store, segr, eer

    def test_interface_parity(self):
        store, segr, eer = self.build()
        assert store.get_segment(segr.reservation_id) is segr
        assert store.get_eer(eer.reservation_id) is eer
        assert store.has_segment(segr.reservation_id)
        assert store.has_eer(eer.reservation_id)
        assert store.segment_count() == 1
        assert store.eer_count() == 1
        assert store.segments() == [segr]
        assert store.eers() == [eer]
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(1e7)
        assert store.eer_allocation(
            segr.reservation_id, eer.reservation_id
        ) == pytest.approx(1e7)
        # the compat view used by persistence and the consistency checker
        assert dict(store._eer_alloc[segr.reservation_id]) == {
            eer.reservation_id: 1e7
        }
        with pytest.raises(ReservationNotFound):
            store.get_segment(ReservationId(SRC, 404))
        with pytest.raises(ReservationNotFound):
            store.get_eer(ReservationId(SRC, 404))
        with pytest.raises(ReservationNotFound):
            store.allocated_on_segment(ReservationId(SRC, 404))

    def test_shard_placement_by_as_pair(self):
        from repro.reservation import ShardedReservationStore

        store = ShardedReservationStore(shards=4)
        for local_id in range(1, 9):
            store.add_segment(make_segr(local_id=local_id))
        # Same AS pair -> same shard, and the routing stays consistent.
        occupied = [s for s in store._shards if s.segment_count() > 0]
        assert len(occupied) == 1
        assert occupied[0].segment_count() == 8

    def test_cross_shard_transaction_rollback(self):
        store, segr, eer = self.build()
        other = ReservationId(SRC, 500)
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.allocate_on_segment(segr.reservation_id, other, 5e6)
                store.remove_eer(eer.reservation_id)
                raise RuntimeError("fail")
        assert store.has_eer(eer.reservation_id)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(1e7)

    def test_nested_transaction_rejected(self):
        store, _, _ = self.build()
        with store.transaction():
            with pytest.raises(StoreConflict):
                with store.transaction():
                    pass

    def test_sweep_releases_cross_shard_allocations(self):
        # EERs and the SegRs they ride can hash to different shards; the
        # sweep must release through the router, not shard-locally.
        from repro.reservation import ShardedReservationStore

        store = ShardedReservationStore(shards=8)
        segr = make_segr(expiry=300.0)
        store.add_segment(segr)
        for local_id in range(100, 120):
            eer = make_eer(
                local_id=local_id, expiry=16.0, segment_ids=(segr.reservation_id,)
            )
            store.add_eer(eer)
            store.allocate_on_segment(segr.reservation_id, eer.reservation_id, 1e6)
        counts, dead_eers, dead_segments = store.sweep_expired_details(now=20.0)
        assert counts == {"eers": 20, "segments": 0}
        assert len(dead_eers) == 20 and dead_segments == []
        assert store.eer_count() == 0
        assert store.allocated_on_segment(segr.reservation_id) == 0.0

    def test_sweep_rolls_back_across_shards(self):
        store, segr, eer = self.build()
        with pytest.raises(RuntimeError):
            with store.transaction():
                store.sweep_expired(now=20.0)
                raise RuntimeError("fail")
        assert store.has_eer(eer.reservation_id)
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(1e7)
        assert store.sweep_expired(now=20.0) == {"eers": 1, "segments": 0}
