"""Budgeted load test: the flash-crowd EER churn campaign.

Runs the canonical ``flash_crowd`` campaign at the configured scale and
holds it to the explicit budgets in :mod:`tests._campaign_budgets`:
wall clock, admission latency p95, delivery ratio, and the peak
reservation-store heap.  Invariants (accounting conservation, journal
completeness, identity-verified policing, zero residual state, SLO
replay equivalence) are enforced inside the harness itself — a single
``result.ok`` covers them all.
"""
# Wall-clock budgets measure real elapsed time on purpose (the whole
# point of a load budget); the injected-Clock rule does not apply here.
# colibri-lint: disable-file=CL001

import time

import pytest

from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import endpoints, flash_crowd
from repro.topology.addresses import HostAddr
from tests._campaign_budgets import SCALE, budget, rss_mb


@pytest.fixture(scope="module")
def run():
    runner = CampaignRunner(flash_crowd(SCALE, seed=7))
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def test_campaign_green(run):
    _, result, _ = run
    assert result.ok, result.violations
    assert result.replay_equivalent


def test_wall_clock_budget(run):
    _, _, wall = run
    assert wall < budget()["wall_seconds"]


def test_admission_ratio_budget(run):
    _, result, _ = run
    arrivals = sum(r.stats["arrivals"] for r in result.phase_reports)
    admitted = sum(r.stats["admitted"] for r in result.phase_reports)
    assert arrivals > 0
    assert admitted / arrivals >= budget()["min_admission_ratio"]


def test_delivery_ratio_budget(run):
    _, result, _ = run
    sent = sum(r.stats["packets_sent"] for r in result.phase_reports)
    delivered = sum(r.stats["packets_delivered"] for r in result.phase_reports)
    assert sent > 0, "campaign produced no renewal data probes"
    assert delivered / sent >= budget()["min_delivery_ratio"]


def test_surge_leaves_no_residual_state(run):
    _, result, _ = run
    final = result.phase_reports[-1]
    assert final.memory["live_eers"] == 0.0
    # The surge really surged: the flash phase saw several times the
    # baseline arrivals.
    baseline, flash = result.phase_reports
    assert flash.stats["arrivals"] >= 4 * max(1, baseline.stats["arrivals"])


def test_peak_store_budget(run):
    _, result, _ = run
    peak_kb = max(r.memory["store_bytes"] for r in result.phase_reports) / 1024
    assert peak_kb < budget()["peak_store_kb"]
    assert rss_mb() < budget()["rss_mb"]


def test_admission_p95_budget(run):
    """Wall-clock p95 of one EER admission on the campaign fabric.

    Best-of-batches: the budget must hold for at least one of three
    20-admission batches, so a noisy co-tenant on the runner cannot
    fail the gate (see CONTRIBUTING — shape assertions prefer
    best-of/min-based measurements over single samples).
    """
    runner, _, _ = run
    network = runner.network
    source, destination = endpoints(SCALE, 2)
    batch_p95s = []
    host = 5000
    for _ in range(3):
        samples = []
        for _ in range(20):
            start = time.perf_counter()
            network.establish_eer(source, destination, 1e5, HostAddr(host))
            samples.append(time.perf_counter() - start)
            host += 1
        samples.sort()
        batch_p95s.append(samples[int(len(samples) * 0.95)])
    assert min(batch_p95s) * 1000 < budget()["admission_p95_ms"]
