"""Budgeted load test: the renewal-storm campaign.

A synchronized cohort of EERs renews in lockstep waves (lifetime 16 s,
lead 4 s) on top of background churn.  Budgets: no renewal failures, at
least one full wave of cohort renewals, and a housekeeping sweep that
stays under its time budget with the cohort live.
"""
# Wall-clock budgets measure real elapsed time on purpose (the whole
# point of a load budget); the injected-Clock rule does not apply here.
# colibri-lint: disable-file=CL001

import time

import pytest

from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import _INTENSITY, renewal_storm
from tests._campaign_budgets import SCALE, budget


@pytest.fixture(scope="module")
def run():
    runner = CampaignRunner(renewal_storm(SCALE, seed=7))
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def test_campaign_green(run):
    _, result, _ = run
    assert result.ok, result.violations
    assert result.replay_equivalent


def test_wall_clock_budget(run):
    _, _, wall = run
    assert wall < budget()["wall_seconds"]


def test_storm_cohort_set_up(run):
    _, result, _ = run
    storm = result.phase_reports[0]
    cohort = _INTENSITY[SCALE]["cohort"]
    # The cohort must overwhelmingly succeed at setup.
    assert storm.stats["storm_setup_failures"] <= cohort * 0.05


def test_at_least_one_full_renewal_wave(run):
    _, result, _ = run
    storm = result.phase_reports[0]
    cohort = _INTENSITY[SCALE]["cohort"]
    setup = cohort - storm.stats["storm_setup_failures"]
    # Scheduler-driven renewals: every surviving cohort member renews at
    # least once over ≥30 s of simulated time (wave period 12 s).
    assert storm.renewals["eers"] >= setup
    assert storm.renewals["failures"] == 0


def test_no_workload_renewal_failures(run):
    _, result, _ = run
    assert all(
        r.stats["renewal_failures"] == 0 for r in result.phase_reports
    )


def test_sweep_time_budget(run):
    """One full housekeeping pass across every AS store, wall-clocked."""
    runner, _, _ = run
    start = time.perf_counter()
    runner.network.housekeeping()
    sweep = time.perf_counter() - start
    assert sweep < budget()["sweep_seconds"]
