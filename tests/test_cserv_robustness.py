"""Adversarial and edge-case tests for the CServ request handlers:
partial renewal grants (§4.2), misrouted requests, forged MACs arriving
over the bus, unknown reservations, renewal negotiation."""

import pytest

from repro.control.auth import AuthenticatedRequest
from repro.errors import (
    ColibriError,
    InsufficientBandwidth,
    MacVerificationError,
    ReservationNotFound,
)
from repro.packets.control import EerRenewalRequest, SegRenewalRequest
from repro.reservation.ids import ReservationId
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.topology.addresses import HostAddr
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC = asid(1, 101)
DST = asid(2, 101)


@pytest.fixture
def net():
    return ColibriNetwork(build_two_isd_topology())


class TestRenewalRenegotiation:
    def test_partial_grant_when_growth_does_not_fit(self, net):
        """§4.2: an AS unable to cover the requested growth offers what
        it can; the renewal succeeds at the reduced amount rather than
        failing — 'enabling ASes to quickly adapt to changes in demand
        without interrupting service over existing reservations'."""
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(40))
        # A competitor eats most of the remaining SegR bandwidth.
        net.establish_eer(
            SRC, DST, mbps(50), src_host=HostAddr(9), dst_host=HostAddr(9)
        )
        net.advance(2.0)
        renewed = net.cserv(SRC).renew_eer(handle, new_bandwidth=mbps(90))
        # Requested 90, but only ~10 free beyond our existing 40.
        assert renewed.granted == pytest.approx(mbps(50), rel=0.01)
        assert renewed.res_info.version == 2

    def test_renewal_never_regresses_below_current(self, net):
        """Even with zero free SegR bandwidth, a same-size renewal
        succeeds: the EER's own allocation covers it."""
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(100))
        net.advance(2.0)
        renewed = net.cserv(SRC).renew_eer(handle, new_bandwidth=mbps(100))
        assert renewed.granted == pytest.approx(mbps(100))

    def test_growth_renewal_with_full_segr_gets_current(self, net):
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(60))
        net.establish_eer(
            SRC, DST, mbps(40), src_host=HostAddr(9), dst_host=HostAddr(9)
        )
        net.advance(2.0)
        renewed = net.cserv(SRC).renew_eer(handle, new_bandwidth=mbps(90))
        assert renewed.granted == pytest.approx(mbps(60))  # kept, not grown

    def test_shrinking_renewal_frees_capacity_after_expiry(self, net):
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(80))
        net.advance(2.0)
        renewed = net.cserv(SRC).renew_eer(handle, new_bandwidth=mbps(20))
        assert renewed.granted == pytest.approx(mbps(20))
        # Old 80 Mbps version still live: allocation stays at the max.
        up_segr = net.cserv(SRC).store.segments()[0]
        allocated = net.cserv(SRC).store.allocated_on_segment(
            up_segr.reservation_id
        )
        assert allocated == pytest.approx(mbps(80))


class TestHandlerRobustness:
    def test_misrouted_request_rejected(self, net):
        """A request whose hop index names a different AS is refused —
        a malicious neighbor cannot make AS X process AS Y's slot."""
        net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        segr = cserv.store.segments()[0]
        request = SegRenewalRequest(
            reservation=segr.reservation_id,
            new_bandwidth=mbps(1),
            min_bandwidth=0.0,
            new_expiry=net.clock.now() + 300,
            new_version=99,
        )
        auth = AuthenticatedRequest.create(
            net.directory, SRC, list(segr.segment.ases), request
        )
        wrong_cserv = net.cserv(asid(2, 1))  # not on this SegR's segment
        with pytest.raises(ReservationNotFound):
            wrong_cserv.store.get_segment(segr.reservation_id)

    def test_forged_control_mac_rejected_at_on_path_as(self, net):
        """An attacker AS sends a renewal claiming to be SRC but cannot
        produce SRC's DRKey MACs — the on-path AS rejects it."""
        net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        segr = cserv.store.segments()[0]
        request = SegRenewalRequest(
            reservation=segr.reservation_id,
            new_bandwidth=mbps(1),
            min_bandwidth=0.0,
            new_expiry=net.clock.now() + 300,
            new_version=99,
        )
        # The attacker (AS 1-111) builds the auth envelope for itself,
        # then rewrites the claimed source — MACs no longer verify.
        attacker = asid(1, 111)
        auth = AuthenticatedRequest.create(
            net.directory, attacker, list(segr.segment.ases), request
        )
        auth.source = SRC  # spoof
        transit = net.cserv(asid(1, 11))
        with pytest.raises(MacVerificationError):
            transit.handle_seg_renewal(request, auth, hop_index=1)

    def test_renewal_of_unknown_eer_fails_cleanly(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        ghost = ReservationId(SRC, 424242)
        request = EerRenewalRequest(
            reservation=ghost,
            new_bandwidth=mbps(1),
            new_expiry=net.clock.now() + 16,
            new_version=2,
        )
        auth = AuthenticatedRequest.create(net.directory, SRC, [SRC], request)
        response = net.cserv(SRC).handle_eer_renewal(request, auth, 0)
        assert not response.success

    def test_renewal_of_unknown_segr_fails_cleanly(self, net):
        ghost = ReservationId(SRC, 424242)
        request = SegRenewalRequest(
            reservation=ghost,
            new_bandwidth=mbps(1),
            min_bandwidth=0.0,
            new_expiry=net.clock.now() + 300,
            new_version=2,
        )
        auth = AuthenticatedRequest.create(net.directory, SRC, [SRC], request)
        response = net.cserv(SRC).handle_seg_renewal(request, auth, 0)
        assert not response.success

    def test_eer_over_expired_segr_fails_with_diagnostic(self, net):
        """Appendix C: a cached SegR may expire before use; the EER setup
        fails and the initiator's cache is invalidated for a clean retry."""
        from repro.constants import SEGR_LIFETIME

        net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        cserv.find_segment_chain(DST)  # warm the remote-descriptor cache
        assert cserv._remote_cache
        net.advance(SEGR_LIFETIME + 1)  # everything expired, caches stale
        with pytest.raises(ColibriError):
            net.establish_eer(SRC, DST, mbps(10))

    def test_token_cannot_be_spliced_across_reservations(self, net):
        """§4.5: tokens include the globally unique (SrcAS, ResId), so no
        chaining is needed — a token minted for one SegR never validates
        for another, even on the same interfaces."""
        from repro.dataplane.hvf import verify_segment_token
        from repro.errors import HvfMismatch
        from repro.packets.fields import ResInfo

        net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        segr = cserv.store.segments()[0]
        tokens = cserv.segment_tokens(segr.reservation_id)
        hop = segr.segment.hops[1]
        keys = net.stack(hop.isd_as).keys
        legit = ResInfo(
            reservation=segr.reservation_id,
            bandwidth=segr.bandwidth,
            expiry=segr.expiry,
            version=1,
        )
        verify_segment_token(
            keys.hop_key(), legit, hop.ingress, hop.egress, tokens[1]
        )
        spliced = ResInfo(
            reservation=ReservationId(SRC, segr.reservation_id.local_id + 1),
            bandwidth=segr.bandwidth,
            expiry=segr.expiry,
            version=1,
        )
        with pytest.raises(HvfMismatch):
            verify_segment_token(
                keys.hop_key(), spliced, hop.ingress, hop.egress, tokens[1]
            )

    def test_activation_propagates_downstream_first(self, net):
        """If a downstream AS refuses activation, upstream ASes keep the
        old version — no half-activated SegR."""
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(1))
        owner = net.cserv(asid(1, 1))
        version = owner.renew_segment(segr.reservation_id, gbps(2))
        # Remote AS loses the pending version (simulated state loss).
        remote = net.cserv(asid(2, 1))
        remote_segr = remote.store.get_segment(segr.reservation_id)
        remote_segr._versions.pop(version)
        with pytest.raises(ColibriError):
            owner.activate_segment(segr.reservation_id, version)
        # The initiator still runs the old version.
        assert segr.active.version == 1

    def test_bottleneck_diagnosis_names_the_as(self, net):
        """§3.3: a failed setup lets the initiator locate the bottleneck."""
        net.reserve_segments(SRC, DST, mbps(100))
        # Saturate only the middle (core) SegR with a competing EER.
        net.establish_eer(SRC, DST, mbps(95))
        with pytest.raises(InsufficientBandwidth) as excinfo:
            net.establish_eer(
                SRC, DST, mbps(50), src_host=HostAddr(3), dst_host=HostAddr(3)
            )
        assert excinfo.value.at_as is not None
        assert excinfo.value.granted == pytest.approx(mbps(5), rel=0.01)


class TestTamperedResponsePath:
    def test_corrupted_hopauth_blob_attributed(self, net):
        """A transit AS corrupting another AS's sealed HopAuth on the
        response path is detected by the AEAD tag, and the failure names
        the affected hop (not a raw crypto error)."""
        from repro.errors import AdmissionDenied

        net.reserve_segments(SRC, DST, mbps(100))
        cserv = net.cserv(SRC)
        original = cserv.handle_eer_setup

        # Intercept the response at the source and corrupt hop 3's blob,
        # modelling tampering by the AS before it on the return path.
        victim_index = 3

        def corrupting(request, auth, hop_index):
            response = original(request, auth, hop_index)
            if hop_index == 0 and response.success:
                blobs = list(response.sealed_hopauths)
                corrupted = bytearray(blobs[victim_index])
                corrupted[-1] ^= 0xFF
                blobs[victim_index] = bytes(corrupted)
                from dataclasses import replace

                response = replace(response, sealed_hopauths=tuple(blobs))
            return response

        cserv.handle_eer_setup = corrupting
        try:
            with pytest.raises(AdmissionDenied) as excinfo:
                net.establish_eer(SRC, DST, mbps(10))
        finally:
            cserv.handle_eer_setup = original
        assert excinfo.value.at_as is not None
        # Nothing usable leaked: the gateway holds no reservation.
        assert net.gateway(SRC).reservation_count() == 0

    def test_truncated_hopauth_list_rejected(self, net):
        from repro.errors import AdmissionDenied

        net.reserve_segments(SRC, DST, mbps(100))
        cserv = net.cserv(SRC)
        original = cserv.handle_eer_setup

        def truncating(request, auth, hop_index):
            response = original(request, auth, hop_index)
            if hop_index == 0 and response.success:
                from dataclasses import replace

                response = replace(
                    response, sealed_hopauths=response.sealed_hopauths[:-1]
                )
            return response

        cserv.handle_eer_setup = truncating
        try:
            with pytest.raises(AdmissionDenied):
                net.establish_eer(SRC, DST, mbps(10))
        finally:
            cserv.handle_eer_setup = original


class TestHostAuthentication:
    def test_valid_host_tag_accepted(self, net):
        """Footnote 2: host-specific keys authenticate the host -> CServ
        request channel."""
        from repro.crypto.mac import mac

        net.reserve_segments(SRC, DST, mbps(100))
        cserv = net.cserv(SRC)
        host = HostAddr(5)
        key = cserv.provision_host_key(host)
        payload = cserv._host_request_bytes(host, DST, HostAddr(6), mbps(10))
        handle = cserv.request_eer(
            host, DST, HostAddr(6), mbps(10), tag=mac(key, payload)
        )
        assert handle.granted == pytest.approx(mbps(10))

    def test_forged_host_tag_rejected(self, net):
        net.reserve_segments(SRC, DST, mbps(100))
        cserv = net.cserv(SRC)
        with pytest.raises(MacVerificationError):
            cserv.request_eer(
                HostAddr(5), DST, HostAddr(6), mbps(10), tag=b"\x00" * 16
            )

    def test_host_cannot_impersonate_another(self, net):
        """Host 5's key cannot sign a request claiming to be host 7 —
        per-host policy attribution stays sound."""
        from repro.crypto.mac import mac

        net.reserve_segments(SRC, DST, mbps(100))
        cserv = net.cserv(SRC)
        key_5 = cserv.provision_host_key(HostAddr(5))
        payload_as_7 = cserv._host_request_bytes(
            HostAddr(7), DST, HostAddr(6), mbps(10)
        )
        with pytest.raises(MacVerificationError):
            cserv.request_eer(
                HostAddr(7), DST, HostAddr(6), mbps(10),
                tag=mac(key_5, payload_as_7),
            )

    def test_tag_bound_to_request_parameters(self, net):
        """A captured tag cannot be replayed for different bandwidth."""
        from repro.crypto.mac import mac

        net.reserve_segments(SRC, DST, mbps(100))
        cserv = net.cserv(SRC)
        host = HostAddr(5)
        key = cserv.provision_host_key(host)
        payload = cserv._host_request_bytes(host, DST, HostAddr(6), mbps(10))
        tag = mac(key, payload)
        with pytest.raises(MacVerificationError):
            cserv.request_eer(host, DST, HostAddr(6), mbps(99), tag=tag)

    def test_key_provisioning_deterministic(self, net):
        cserv = net.cserv(SRC)
        assert cserv.provision_host_key(HostAddr(5)) == cserv.provision_host_key(
            HostAddr(5)
        )
        assert cserv.provision_host_key(HostAddr(5)) != cserv.provision_host_key(
            HostAddr(6)
        )
