"""Tests for SegR teardown, EER setup auto-retry (App. C), the NetworkX
bridge, and renewal-round fairness convergence properties."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import SEGR_LIFETIME
from repro.errors import ColibriError, TopologyError
from repro.sim import ColibriNetwork
from repro.topology import Beaconing, IsdAs, PathLookup, build_two_isd_topology
from repro.topology.nx_bridge import from_networkx, to_networkx
from repro.util.metrics import jain_fairness
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC = asid(1, 101)
DST = asid(2, 101)


@pytest.fixture
def net():
    return ColibriNetwork(build_two_isd_topology())


class TestSegTeardown:
    def test_teardown_removes_state_everywhere(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(2))
        owner = net.cserv(asid(1, 1))
        owner.teardown_segment(segr.reservation_id)
        for isd_as in (asid(1, 1), asid(2, 1)):
            cserv = net.cserv(isd_as)
            assert not cserv.store.has_segment(segr.reservation_id)
            assert len(cserv.seg_admission) == 0

    def test_teardown_frees_capacity_immediately(self, net):
        first = net.cserv(asid(1, 1))
        segment = net.beaconing.core_segments(asid(1, 1), asid(2, 1))[0]
        big = first.setup_segment(segment, gbps(30))
        first.teardown_segment(big.reservation_id)
        # Without the teardown the next request could only get ~2 Gbps.
        fresh = first.setup_segment(segment, gbps(30))
        assert fresh.bandwidth == pytest.approx(gbps(30))

    def test_teardown_refused_with_live_eers(self, net):
        segments = net.reserve_segments(SRC, DST, mbps(100))
        net.establish_eer(SRC, DST, mbps(10))
        owner = net.cserv(segments[0].reservation_id.src_as)
        with pytest.raises(ColibriError):
            owner.teardown_segment(segments[0].reservation_id)
        # still intact everywhere
        assert owner.store.has_segment(segments[0].reservation_id)

    def test_only_owner_can_tear_down(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(2))
        thief = net.cserv(asid(2, 1))  # on-path but not the initiator
        from repro.control.auth import AuthenticatedRequest
        from repro.errors import AdmissionDenied
        from repro.packets.control import SegTeardownNotice

        notice = SegTeardownNotice(reservation=segr.reservation_id)
        auth = AuthenticatedRequest.create(
            net.directory, asid(2, 1), [asid(2, 1)], notice
        )
        with pytest.raises(AdmissionDenied):
            thief.handle_seg_teardown(notice, auth, 0)


class TestEerSetupRetry:
    def test_stale_cache_retry_succeeds(self, net):
        """Appendix C: an EER setup over a SegR that expired since it was
        cached retries automatically against fresh descriptors."""
        net.reserve_segments(SRC, DST, mbps(100))
        cserv = net.cserv(SRC)
        cserv.find_segment_chain(DST)  # warm the caches
        # Let the chain expire, then create a fresh one; the stale
        # descriptors are still cached at SRC.
        net.advance(SEGR_LIFETIME - 1)
        net.reserve_segments(SRC, DST, mbps(100))
        net.advance(2.0)  # old chain now expired, new one alive
        handle = net.establish_eer(SRC, DST, mbps(10))
        assert handle.granted == pytest.approx(mbps(10))


class TestNetworkxBridge:
    def make_graph(self):
        graph = nx.Graph()
        graph.add_node(1, isd=1, core=True)
        graph.add_node(2, isd=1, core=True)
        graph.add_node(10, isd=1, core=False, level=1)
        graph.add_node(11, isd=1, core=False, level=2)
        graph.add_edge(1, 2, capacity=gbps(100))
        graph.add_edge(1, 10)
        graph.add_edge(10, 11)
        return graph

    def test_from_networkx_structure(self):
        topology = from_networkx(self.make_graph())
        assert len(topology) == 4
        assert len(topology.core_ases()) == 2
        link = topology.link_between(IsdAs(1, 1), IsdAs(1, 2))
        assert link.capacity == pytest.approx(gbps(100))
        # level decided parent/child: 10 is the provider of 11
        assert IsdAs(1, 11) in topology.children(IsdAs(1, 10))

    def test_colibri_runs_on_imported_graph(self):
        topology = from_networkx(self.make_graph())
        net = ColibriNetwork(topology)
        lookup = PathLookup(Beaconing(topology))
        paths = lookup.paths(IsdAs(1, 11), IsdAs(1, 2))
        assert paths
        net.reserve_segments(IsdAs(1, 11), IsdAs(1, 2), mbps(50))
        handle = net.establish_eer(IsdAs(1, 11), IsdAs(1, 2), mbps(5))
        assert net.send(IsdAs(1, 11), handle, b"from networkx").delivered

    def test_missing_attributes_rejected(self):
        graph = nx.Graph()
        graph.add_node("lonely")
        with pytest.raises(TopologyError):
            from_networkx(graph)

    def test_classifier_override(self):
        graph = nx.Graph()
        graph.add_node("a")
        graph.add_node("b")
        graph.add_edge("a", "b")
        topology = from_networkx(
            graph, classify=lambda node, attrs: (1, True)
        )
        assert len(topology.core_ases()) == 2

    def test_roundtrip_to_networkx(self):
        topology = build_two_isd_topology()
        graph = to_networkx(topology)
        assert graph.number_of_nodes() == len(topology)
        assert graph.number_of_edges() == len(list(topology.links()))
        back = from_networkx(
            graph,
            classify=lambda node, attrs: (attrs["isd"], attrs["core"]),
        )
        assert len(back) == len(topology)
        assert len(back.core_ases()) == len(topology.core_ases())


class TestFairnessConvergenceProperty:
    @given(
        st.lists(
            st.floats(min_value=1e9, max_value=4e10),
            min_size=2,
            max_size=8,
        ),
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_equal_demands_converge_fair(self, demands, seed):
        """Distinct sources with arbitrary (equal-rights) demands end up
        with a high fairness index over their *satisfiable* shares after
        renewal rounds — the tube-fairness guarantee under churny input."""
        from repro.admission import SegmentAdmission, TrafficMatrix
        from repro.reservation.ids import ReservationId
        from repro.topology import build_line_topology
        from repro.topology.graph import NO_INTERFACE

        topology = build_line_topology(3)
        middle = asid(1, 2)
        admission = SegmentAdmission(TrafficMatrix(topology.node(middle)))
        sources = [IsdAs(1, BASE + 500 + i) for i in range(len(demands))]
        for source, demand in zip(sources, demands):
            admission.admit(
                ReservationId(source, 1), source, NO_INTERFACE, 2, demand, 0.0
            )
        final = {}
        for _round in range(4):
            for source, demand in zip(sources, demands):
                grant = admission.admit(
                    ReservationId(source, 1), source, NO_INTERFACE, 2, demand, 0.0
                )
                final[source] = grant.granted
        capacity = admission.matrix.interface_capacity(2)
        total = sum(final.values())
        assert total <= capacity * (1 + 1e-9)
        # Normalize by demand: everyone gets a similar *fraction* of what
        # they asked for (proportional fairness).
        fractions = [
            final[source] / min(demand, capacity)
            for source, demand in zip(sources, demands)
        ]
        assert jain_fairness(fractions) > 0.85
