"""Shared scale selection and explicit budgets for the campaign suites.

``tests/load`` and ``tests/stress`` run the canonical campaigns at the
scale named by ``COLIBRI_CAMPAIGN_SCALE`` (``quick`` by default, so the
tier-1 run stays fast; CI's campaign-smoke job also runs quick).  Every
budget is explicit: a test that exceeds one fails, which is the whole
point — the numbers below are the contract, not a vibe.

Budget glossary
---------------
``wall_seconds``        end-to-end wall clock for one campaign run
``admission_p95_ms``    95th percentile wall time of a single EER setup
``min_admission_ratio`` admitted/arrivals floor (drops at larger scales:
                        saturating the SegR tubes is the experiment)
``min_delivery_ratio``  delivered/sent floor for honest renewal probes
``sweep_seconds``       one full housekeeping pass over every AS store
``peak_store_kb``       peak reservation-store heap across phases
``rss_mb``              process peak RSS guard (generous: the tier-1
                        suite shares one process across all tests)
"""

import os

QUICK = "quick"

SCALE = os.environ.get("COLIBRI_CAMPAIGN_SCALE", QUICK)

BUDGETS = {
    "quick": dict(
        wall_seconds=30.0,
        admission_p95_ms=20.0,
        min_admission_ratio=0.90,
        min_delivery_ratio=0.99,
        sweep_seconds=0.25,
        peak_store_kb=4096,
        rss_mb=4096,
    ),
    "default": dict(
        wall_seconds=180.0,
        admission_p95_ms=40.0,
        min_admission_ratio=0.05,
        min_delivery_ratio=0.95,
        sweep_seconds=1.0,
        peak_store_kb=16384,
        rss_mb=6144,
    ),
    "full": dict(
        wall_seconds=1800.0,
        admission_p95_ms=80.0,
        # Measured: the full-scale flash crowd admits ~1.7% (114,314
        # arrivals vs. 1,928 admissions) — saturating the tubes *is*
        # the experiment; the floor just proves admission never dies.
        min_admission_ratio=0.01,
        min_delivery_ratio=0.90,
        sweep_seconds=5.0,
        peak_store_kb=262144,
        rss_mb=8192,
    ),
}


def budget() -> dict:
    return BUDGETS[SCALE]


def rss_mb() -> float:
    """Process peak RSS in MB (ru_maxrss is KB on Linux)."""
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
