"""Unit tests for the border router and gateway fast paths (§4.6)."""

import pytest

from repro.constants import EER_LIFETIME, FRESHNESS_WINDOW, L_HVF
from repro.crypto.drkey import DrkeyDeriver
from repro.dataplane import ColibriKeys, hop_authenticator, segment_token
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.router import BorderRouter, Verdict
from repro.errors import (
    BandwidthExceeded,
    ReservationExpired,
    ReservationNotFound,
)
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock
from repro.util.units import gbps, mbps

SRC = IsdAs.parse("1-ff00:0:110")
MID = IsdAs.parse("1-ff00:0:111")

PATH = PathField(((0, 1), (2, 3), (4, 0)))
EER = EerInfo(HostAddr(1), HostAddr(2))


def make_stack(now=1000.0):
    """One source gateway plus a router at the middle AS (index 1)."""
    clock = SimClock(now)
    src_keys = ColibriKeys(DrkeyDeriver(SRC, clock, seed=b"src" * 6))
    mid_keys = ColibriKeys(DrkeyDeriver(MID, clock, seed=b"mid" * 6))
    gateway = ColibriGateway(SRC, clock)
    router = BorderRouter(MID, mid_keys, clock)
    return clock, gateway, router, src_keys, mid_keys


def install(gateway, mid_keys, clock, bandwidth=gbps(1), local_id=5, version=1):
    """Install an EER whose middle-hop HopAuth is honestly computed."""
    now = clock.now()
    res_id = ReservationId(SRC, local_id)
    res_info = ResInfo(
        reservation=res_id,
        bandwidth=bandwidth,
        expiry=now + EER_LIFETIME,
        version=version,
    )
    # For the test we only need a correct sigma at the router's hop; the
    # other two hops get dummy authenticators.
    sigma_mid = hop_authenticator(mid_keys.hop_key(now), res_info, EER, 2, 3)
    gateway.install(res_id, PATH, EER, res_info, (b"x" * 16, sigma_mid, b"y" * 16))
    return res_id, res_info


class TestGateway:
    def test_send_stamps_all_hvfs(self):
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock)
        packet = gateway.send(res_id, b"data")
        assert packet.is_eer_data
        assert all(hvf != ColibriPacket.EMPTY_HVF for hvf in packet.hvfs)
        assert len(packet.hvfs[0]) == L_HVF

    def test_unknown_reservation(self):
        clock, gateway, *_ = make_stack()
        with pytest.raises(ReservationNotFound):
            gateway.send(ReservationId(SRC, 99), b"data")

    def test_expired_reservation(self):
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock)
        clock.advance(EER_LIFETIME + 1)
        with pytest.raises(ReservationExpired):
            gateway.send(res_id, b"data")

    def test_monitor_drops_over_rate(self):
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock, bandwidth=mbps(1))
        # Burst depth is 0.1 s of 1 Mbps = 12 500 B; blow through it.
        sent = dropped = 0
        for _ in range(40):
            try:
                gateway.send(res_id, b"z" * 1000)
                sent += 1
            except BandwidthExceeded:
                dropped += 1
        assert dropped > 0
        assert sent > 0
        assert gateway.packets_dropped == dropped

    def test_timestamps_unique_within_microsecond(self):
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock)
        a = gateway.send(res_id, b"")
        b = gateway.send(res_id, b"")
        assert a.timestamp != b.timestamp  # sequence disambiguates

    def test_latest_version_used(self):
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock, version=1)
        install(gateway, router.keys, clock, local_id=5, version=2)
        packet = gateway.send(res_id, b"")
        assert packet.res_info.version == 2

    def test_monitor_keys_on_reservation_not_version(self):
        """Two versions share the same monitored budget (§4.8)."""
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock, bandwidth=mbps(1), version=1)
        install(gateway, router.keys, clock, bandwidth=mbps(1), version=2)
        drops = 0
        for _ in range(40):
            try:
                gateway.send(res_id, b"z" * 1000)
            except BandwidthExceeded:
                drops += 1
        assert drops > 0  # versions did not double the budget

    def test_uninstall(self):
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock)
        gateway.uninstall(res_id)
        assert gateway.reservation_count() == 0
        with pytest.raises(ReservationNotFound):
            gateway.send(res_id, b"")

    def test_install_checks_hopauth_count(self):
        clock, gateway, router, *_ = make_stack()
        res_info = ResInfo(
            reservation=ReservationId(SRC, 5),
            bandwidth=1e9,
            expiry=clock.now() + 16,
            version=1,
        )
        with pytest.raises(ValueError):
            gateway.install(ReservationId(SRC, 5), PATH, EER, res_info, (b"x" * 16,))


class TestRouterEerPath:
    def stamped_packet(self, clock, gateway, router, **kwargs):
        res_id, _ = install(gateway, router.keys, clock, **kwargs)
        packet = gateway.send(res_id, b"payload")
        packet.hop_index = 1  # arriving at the middle AS
        return packet

    def test_valid_packet_forwarded(self):
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        result = router.process(packet)
        assert result.verdict is Verdict.FORWARD
        assert result.egress == 3
        assert packet.hop_index == 2  # pointer advanced

    def test_last_hop_delivers_to_host(self):
        clock, gateway, router, *_ = make_stack()
        # Build a router for the *last* AS instead.
        last_keys = router.keys
        res_id = ReservationId(SRC, 6)
        res_info = ResInfo(
            reservation=res_id, bandwidth=gbps(1), expiry=clock.now() + 16, version=1
        )
        sigma_last = hop_authenticator(last_keys.hop_key(), res_info, EER, 4, 0)
        gateway.install(res_id, PATH, EER, res_info, (b"x" * 16, b"y" * 16, sigma_last))
        packet = gateway.send(res_id, b"")
        packet.hop_index = 2
        result = router.process(packet)
        assert result.verdict is Verdict.DELIVER_HOST

    def test_bad_hvf_dropped(self):
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        packet.hvfs[1] = b"\xde\xad\xbe\xef"
        assert router.process(packet).verdict is Verdict.DROP_BAD_HVF

    def test_tampered_payload_size_detected(self):
        """Changing the payload changes PktSize, which Eq. (6) covers."""
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        packet.payload = packet.payload + b"junk"
        assert router.process(packet).verdict is Verdict.DROP_BAD_HVF

    def test_spoofed_source_as_dropped(self):
        """Off-path spoofing (§5.1): forged SrcAS breaks the MAC because
        the router derives sigma from ResInfo, which includes SrcAS."""
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        forged = ResInfo(
            reservation=ReservationId(MID, packet.res_info.reservation.local_id),
            bandwidth=packet.res_info.bandwidth,
            expiry=packet.res_info.expiry,
            version=packet.res_info.version,
        )
        packet.res_info = forged
        assert router.process(packet).verdict is Verdict.DROP_BAD_HVF

    def test_expired_reservation_dropped(self):
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        clock.advance(EER_LIFETIME + 1)
        assert router.process(packet).verdict is Verdict.DROP_EXPIRED

    def test_stale_packet_dropped(self):
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        clock.advance(FRESHNESS_WINDOW + 0.5)
        assert router.process(packet).verdict is Verdict.DROP_STALE

    def test_replay_dropped(self):
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        assert router.process(packet).verdict is Verdict.FORWARD
        packet.hop_index = 1  # adversary re-injects the captured packet
        assert router.process(packet).verdict is Verdict.DROP_DUPLICATE
        assert router.duplicates.duplicates_caught == 1

    def test_blocked_source_dropped_cheaply(self):
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        router.blocklist.block(SRC)
        assert router.process(packet).verdict is Verdict.DROP_BLOCKED

    def test_policing_chain_blocks_overuser(self):
        """OFD flags -> deterministic monitor confirms -> source blocked
        and offense reported (§4.8)."""
        offenses = []
        clock, gateway, router, *_ = make_stack()
        router.on_offense = lambda src, rid: offenses.append((src, rid))
        res_id, _ = install(gateway, router.keys, clock, bandwidth=mbps(1))
        blocked = False
        for step in range(3000):
            entry_now = clock.now()
            try:
                packet = gateway.send(res_id, b"z" * 1000)
            except BandwidthExceeded:
                # model the rogue gateway: bypass local monitoring by
                # refilling the monitor's bucket artificially
                gateway.monitor.unwatch(res_id.packed)
                packet = gateway.send(res_id, b"z" * 1000)
            packet.hop_index = 1
            result = router.process(packet)
            if result.verdict is Verdict.DROP_BLOCKED:
                blocked = True
                break
            clock.advance(0.0001)  # 10x the reserved rate
        assert blocked
        assert offenses and offenses[0][0] == SRC
        assert router.blocklist.is_blocked(SRC, clock.now())

    def test_stats_accounting(self):
        clock, gateway, router, *_ = make_stack()
        packet = self.stamped_packet(clock, gateway, router)
        router.process(packet)
        assert router.stats[Verdict.FORWARD] == 1


class TestRouterSegmentPath:
    def test_valid_segment_token_delivered_to_cserv(self):
        clock, gateway, router, src_keys, mid_keys = make_stack()
        res_info = ResInfo(
            reservation=ReservationId(SRC, 9),
            bandwidth=gbps(1),
            expiry=clock.now() + 300,
            version=1,
        )
        token = segment_token(mid_keys.hop_key(), res_info, 2, 3)
        packet = ColibriPacket(
            packet_type=PacketType.SEGMENT,
            path=PATH,
            res_info=res_info,
            timestamp=Timestamp.create(clock.now(), res_info.expiry),
            hvfs=[b"\x00" * 4, token, b"\x00" * 4],
            payload=b"renewal request",
            hop_index=1,
        )
        assert router.process(packet).verdict is Verdict.DELIVER_CSERV

    def test_bad_segment_token_dropped(self):
        clock, gateway, router, *_ = make_stack()
        res_info = ResInfo(
            reservation=ReservationId(SRC, 9),
            bandwidth=gbps(1),
            expiry=clock.now() + 300,
            version=1,
        )
        packet = ColibriPacket(
            packet_type=PacketType.SEGMENT,
            path=PATH,
            res_info=res_info,
            timestamp=Timestamp.create(clock.now(), res_info.expiry),
            hvfs=[b"\x00" * 4] * 3,
            payload=b"bogus",
            hop_index=1,
        )
        assert router.process(packet).verdict is Verdict.DROP_BAD_HVF

    def test_validate_only_fast_path(self):
        clock, gateway, router, *_ = make_stack()
        res_id, _ = install(gateway, router.keys, clock)
        packet = gateway.send(res_id, b"")
        packet.hop_index = 1
        assert router.validate_only(packet)
        packet.hvfs[1] = b"\x00\x00\x00\x00"
        assert not router.validate_only(packet)
