"""Tests for store persistence (restart recovery) and metrics export."""

import json

import pytest

from repro.constants import EER_LIFETIME
from repro.errors import ColibriError
from repro.reservation.persistence import (
    dump_store,
    dumps_store,
    load_store,
    loads_store,
)
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.topology.addresses import HostAddr
from repro.util.observability import render_metrics
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


@pytest.fixture
def loaded_net():
    """A network with live SegRs (multiple versions) and EERs."""
    net = ColibriNetwork(build_two_isd_topology())
    segments = net.reserve_segments(SRC, DST, mbps(200))
    net.establish_eer(SRC, DST, mbps(50))
    handle = net.establish_eer(SRC, DST, mbps(30))
    net.advance(2.0)
    net.cserv(SRC).renew_eer(handle)
    # Give one SegR a pending + activated second version.
    owner = net.cserv(segments[0].reservation_id.src_as)
    version = owner.renew_segment(segments[0].reservation_id, mbps(300))
    owner.activate_segment(segments[0].reservation_id, version)
    # And one SegR with a *pending* (unactivated) version.
    owner2 = net.cserv(segments[1].reservation_id.src_as)
    owner2.renew_segment(segments[1].reservation_id, mbps(250))
    return net


class TestPersistence:
    def roundtrip(self, store):
        return load_store(json.loads(json.dumps(dump_store(store))))

    def test_roundtrip_preserves_counts(self, loaded_net):
        store = loaded_net.cserv(SRC).store
        restored = self.roundtrip(store)
        assert restored.segment_count() == store.segment_count()
        assert restored.eer_count() == store.eer_count()

    def test_roundtrip_preserves_versions_and_states(self, loaded_net):
        # The transfer AS holds the renewed SegR with an activated v2.
        for isd_as in loaded_net.ases():
            store = loaded_net.cserv(isd_as).store
            restored = self.roundtrip(store)
            for original in store.segments():
                copy = restored.get_segment(original.reservation_id)
                assert copy.active.version == original.active.version
                assert copy.bandwidth == original.bandwidth
                assert sorted(copy.versions) == sorted(original.versions)
                for number, version in original.versions.items():
                    assert copy.versions[number].state == version.state

    def test_roundtrip_preserves_allocations(self, loaded_net):
        store = loaded_net.cserv(SRC).store
        restored = self.roundtrip(store)
        for segr in store.segments():
            assert restored.allocated_on_segment(
                segr.reservation_id
            ) == pytest.approx(store.allocated_on_segment(segr.reservation_id))

    def test_roundtrip_preserves_eer_versions(self, loaded_net):
        store = loaded_net.cserv(SRC).store
        restored = self.roundtrip(store)
        now = loaded_net.clock.now()
        for original in store.eers():
            copy = restored.get_eer(original.reservation_id)
            assert copy.effective_bandwidth(now) == pytest.approx(
                original.effective_bandwidth(now)
            )
            assert copy.segment_ids == original.segment_ids
            assert copy.hops == original.hops

    def test_string_roundtrip(self, loaded_net):
        store = loaded_net.cserv(SRC).store
        text = dumps_store(store)
        restored = loads_store(text)
        assert restored.segment_count() == store.segment_count()
        # Deterministic output: same state, same snapshot.
        assert dumps_store(restored) == text

    def test_restored_store_is_operational(self, loaded_net):
        """A restarted CServ can run admission against the snapshot."""
        from repro.admission.eer_admission import AsRole, EerAdmission

        store = loaded_net.cserv(SRC).store
        restored = self.roundtrip(store)
        segr = restored.segments()[0]
        admission = EerAdmission(SRC, restored)
        decision = admission.decide(
            AsRole.TRANSIT,
            mbps(1),
            now=loaded_net.clock.now(),
            segment_in=segr.reservation_id,
        )
        assert decision.granted == pytest.approx(mbps(1))

    def test_unknown_format_rejected(self):
        with pytest.raises(ColibriError):
            load_store({"format": 999, "segments": [], "eers": []})


class TestMetricsExport:
    def test_render_contains_totals_and_labels(self, loaded_net):
        text = render_metrics(loaded_net.telemetry())
        assert "# HELP colibri_segments" in text
        assert "# TYPE colibri_segments gauge" in text
        # Unlabelled aggregate and a labelled per-AS sample.
        assert "\ncolibri_segments " in text
        assert 'colibri_segments{isd_as="1-ff00:0:65"}' in text

    def test_values_match_telemetry(self, loaded_net):
        telemetry = loaded_net.telemetry()
        text = render_metrics(telemetry)
        for line in text.splitlines():
            if line.startswith("colibri_eers "):
                assert int(line.split()[-1]) == telemetry["total"]["eers"]
                break
        else:
            pytest.fail("aggregate colibri_eers sample missing")

    def test_unknown_counters_flow_through(self):
        text = render_metrics({"total": {"custom_thing": 7}})
        assert "colibri_custom_thing 7" in text


class TestGatewayPersistence:
    def test_gateway_restart_keeps_traffic_flowing(self, loaded_net):
        """Snapshot a gateway, rebuild it from scratch, restore — packets
        over the restored reservations still authenticate at routers."""
        from repro.dataplane.gateway import ColibriGateway
        from repro.reservation.persistence import dump_gateway, load_gateway

        gateway = loaded_net.gateway(SRC)
        snapshot = json.loads(json.dumps(dump_gateway(gateway)))
        fresh = ColibriGateway(SRC, loaded_net.stack(SRC).clock)
        restored = load_gateway(fresh, snapshot)
        assert restored == gateway.reservation_count()
        # Swap the fresh gateway in and send over every reservation.
        loaded_net.stack(SRC).gateway = fresh
        for reservation_id in fresh.known_reservations():
            packet = fresh.send(reservation_id, b"after restart")
            report = loaded_net.forward(packet)
            assert report.delivered, report.verdicts

    def test_gateway_snapshot_format_check(self, loaded_net):
        from repro.dataplane.gateway import ColibriGateway
        from repro.reservation.persistence import load_gateway

        fresh = ColibriGateway(SRC, loaded_net.stack(SRC).clock)
        with pytest.raises(ColibriError):
            load_gateway(fresh, {"format": 99, "reservations": []})


class TestTopologySerialization:
    def test_roundtrip_preserves_everything(self):
        from repro.topology import build_internet_like
        from repro.topology.serialization import dumps_topology, loads_topology

        original = build_internet_like(isd_count=2, depth=2)
        copy = loads_topology(dumps_topology(original))
        assert len(copy) == len(original)
        assert copy.isds() == original.isds()
        for node in original.ases():
            twin = copy.node(node.isd_as)
            assert twin.is_core == node.is_core
            assert sorted(twin.interfaces) == sorted(node.interfaces)
        # Deterministic: serializing the copy gives identical text.
        assert dumps_topology(copy) == dumps_topology(original)

    def test_restored_topology_runs_colibri(self):
        from repro.topology import build_two_isd_topology
        from repro.topology.serialization import dump_topology, load_topology

        copy = load_topology(dump_topology(build_two_isd_topology()))
        net = ColibriNetwork(copy)
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(5))
        assert net.send(SRC, handle, b"from a file").delivered

    def test_format_check(self):
        from repro.topology.serialization import load_topology

        with pytest.raises(ColibriError):
            load_topology({"format": 0, "ases": [], "links": []})


class TestPacketTracer:
    def test_records_full_journey(self, loaded_net):
        from repro.sim.tracing import PacketTracer

        tracer = PacketTracer()
        loaded_net.tracer = tracer
        handle = loaded_net.establish_eer(
            SRC, DST, mbps(1), src_host=HostAddr(77), dst_host=HostAddr(78)
        )
        loaded_net.send(SRC, handle, b"traced")
        journey = tracer.for_reservation(handle.reservation_id)
        assert len(journey) == 6  # every on-path AS decided once
        assert journey[-1].verdict.value == "deliver_host"
        assert not tracer.drops()

    def test_drop_visible_in_trace(self, loaded_net):
        from repro.sim.tracing import PacketTracer

        tracer = PacketTracer()
        loaded_net.tracer = tracer
        handle = loaded_net.establish_eer(
            SRC, DST, mbps(1), src_host=HostAddr(79), dst_host=HostAddr(80)
        )
        victim = handle.hops[3].isd_as
        loaded_net.router(victim).blocklist.block(SRC)
        loaded_net.send(SRC, handle, b"will die")
        drops = tracer.drops()
        assert len(drops) == 1
        assert drops[0].isd_as == victim
        assert "drop_blocked" in tracer.render()

    def test_capacity_bound(self):
        from repro.sim.tracing import PacketTracer

        tracer = PacketTracer(capacity=2)
        with pytest.raises(ValueError):
            PacketTracer(capacity=0)
        assert len(tracer) == 0
