"""End-to-end integration on larger, internet-like topologies, plus
cross-cutting scenarios: clock skew, many concurrent reservations,
expiry churn, and telemetry consistency."""

import pytest

from repro.constants import EER_LIFETIME, MAX_CLOCK_SKEW
from repro.errors import InsufficientBandwidth
from repro.sim import ColibriNetwork
from repro.topology import Beaconing, IsdAs, build_internet_like
from repro.topology.addresses import HostAddr
from repro.util.units import gbps, mbps


@pytest.fixture(scope="module")
def big_net():
    """3 ISDs x 2 cores x 2-level trees = 42 ASes, with Colibri everywhere
    and a deterministic per-AS clock skew within the paper's +-0.1 s."""
    topology = build_internet_like(isd_count=3, cores_per_isd=2, depth=2)
    skew = lambda isd_as: ((hash(isd_as) % 21) - 10) / 10 * MAX_CLOCK_SKEW  # noqa: E731
    return ColibriNetwork(topology, skew=skew)


def leaves_of(net, isd):
    return sorted(
        node.isd_as
        for node in net.topology.ases()
        if not node.is_core and node.isd == isd
    )


class TestInternetScaleDeployment:
    def test_every_leaf_pair_across_isds_connects(self, big_net):
        """Pick leaf pairs across all ISD combinations; each gets a SegR
        chain, an EER, and delivers a packet — under clock skew."""
        pairs = [
            (leaves_of(big_net, 1)[0], leaves_of(big_net, 2)[0]),
            (leaves_of(big_net, 2)[1], leaves_of(big_net, 3)[0]),
            (leaves_of(big_net, 3)[1], leaves_of(big_net, 1)[1]),
        ]
        for src, dst in pairs:
            big_net.reserve_segments(src, dst, mbps(500))
            handle = big_net.establish_eer(src, dst, mbps(10))
            report = big_net.send(src, handle, b"cross-isd")
            assert report.delivered, (src, dst, report.verdicts)

    def test_intra_isd_shortcut_eer(self, big_net):
        leaves = leaves_of(big_net, 1)
        src, dst = leaves[0], leaves[1]
        big_net.reserve_segments(src, dst, mbps(500))
        handle = big_net.establish_eer(src, dst, mbps(5))
        assert big_net.send(src, handle, b"intra").delivered

    def test_many_eers_share_one_chain(self, big_net):
        src = leaves_of(big_net, 1)[2]
        dst = leaves_of(big_net, 2)[2]
        big_net.reserve_segments(src, dst, mbps(1000))
        handles = [
            big_net.establish_eer(
                src, dst, mbps(10),
                src_host=HostAddr(100 + i), dst_host=HostAddr(200 + i),
            )
            for i in range(20)
        ]
        assert len({h.reservation_id for h in handles}) == 20
        for handle in handles[::4]:
            assert big_net.send(src, handle, b"shared tube").delivered

    def test_admission_eventually_refuses(self, big_net):
        src = leaves_of(big_net, 1)[3]
        dst = leaves_of(big_net, 2)[3]
        big_net.reserve_segments(src, dst, mbps(100))
        granted = 0.0
        refused = False
        for i in range(15):
            try:
                handle = big_net.establish_eer(
                    src, dst, mbps(10),
                    src_host=HostAddr(i), dst_host=HostAddr(i),
                )
                granted += handle.granted
            except InsufficientBandwidth:
                refused = True
                break
        assert refused
        assert granted <= mbps(100) * (1 + 1e-9)

    def test_telemetry_totals_consistent(self, big_net):
        snapshot = big_net.telemetry()
        total = snapshot["total"]
        per_as_sum = sum(
            entry["segments"]
            for name, entry in snapshot.items()
            if name != "total"
        )
        assert total["segments"] == per_as_sum
        assert total["router_drops"] == 0  # nothing malicious happened here


class TestExpiryChurn:
    def test_reservation_lifecycle_over_many_epochs(self):
        """EERs churn through several lifetimes; capacity is reclaimed and
        re-admitted every round without leaks."""
        net = ColibriNetwork(build_internet_like(isd_count=2, depth=1))
        leaves1 = leaves_of(net, 1)
        leaves2 = leaves_of(net, 2)
        src, dst = leaves1[0], leaves2[0]
        segments = net.reserve_segments(src, dst, mbps(100))
        seg_owner = segments[0].reservation_id
        for _round in range(5):
            handle = net.establish_eer(src, dst, mbps(90))
            assert net.send(src, handle, b"round").delivered
            net.advance(EER_LIFETIME + 1)
            net.housekeeping()
            # renew the SegR chain so it survives the rounds
            for segr in segments:
                owner = net.cserv(segr.reservation_id.src_as)
                if owner.store.has_segment(segr.reservation_id):
                    version = owner.renew_segment(segr.reservation_id, mbps(100))
                    owner.activate_segment(segr.reservation_id, version)
        # After five rounds, no EERs linger and allocations are zero.
        for stack_as in net.ases():
            cserv = net.cserv(stack_as)
            assert cserv.store.eer_count() == 0
            for segr in cserv.store.segments():
                assert cserv.store.allocated_on_segment(segr.reservation_id) == 0.0

    def test_beaconing_scale(self):
        """Beaconing on a wider topology stays complete: every non-core
        AS reaches a core, every core pair has a segment."""
        topology = build_internet_like(isd_count=4, cores_per_isd=2, depth=2)
        beaconing = Beaconing(topology)
        for node in topology.ases():
            if not node.is_core:
                assert beaconing.reachable_cores(node.isd_as)
        cores = [n.isd_as for n in topology.core_ases()]
        reachable = 0
        for a in cores:
            for b in cores:
                if a != b and beaconing.core_segments(a, b):
                    reachable += 1
        # The core graph is connected: most ordered pairs have segments
        # within the hop bound.
        assert reachable >= len(cores) * (len(cores) - 1) * 0.8


class TestClockSkewBoundary:
    def test_within_assumed_skew_ok(self):
        """±0.1 s (the §2.3 assumption): everything works."""
        net = ColibriNetwork(
            build_internet_like(isd_count=2, depth=1),
            skew=lambda a: MAX_CLOCK_SKEW if a.isd == 1 else -MAX_CLOCK_SKEW,
        )
        src = leaves_of(net, 1)[0]
        dst = leaves_of(net, 2)[0]
        net.reserve_segments(src, dst, mbps(100))
        handle = net.establish_eer(src, dst, mbps(5))
        assert net.send(src, handle, b"within budget").delivered

    def test_grossly_desynchronized_as_drops_packets(self):
        """An AS violating the synchronization assumption by far more
        than the freshness window rejects fresh packets as stale — the
        designed failure mode, not silent acceptance."""
        from repro.constants import FRESHNESS_WINDOW

        topology = build_internet_like(isd_count=2, depth=1)
        net_ok = ColibriNetwork(topology)
        src = leaves_of(net_ok, 1)[0]
        dst = leaves_of(net_ok, 2)[0]
        broken_as = None
        # Rebuild with one mid-path AS skewed way beyond the window.
        net_ok.reserve_segments(src, dst, mbps(100))
        handle = net_ok.establish_eer(src, dst, mbps(5))
        broken_as = handle.hops[2].isd_as
        topology2 = build_internet_like(isd_count=2, depth=1)
        net_bad = ColibriNetwork(
            topology2,
            skew=lambda a: (FRESHNESS_WINDOW * 10) if a == broken_as else 0.0,
        )
        net_bad.reserve_segments(src, dst, mbps(100))
        handle = net_bad.establish_eer(src, dst, mbps(5))
        report = net_bad.send(src, handle, b"too skewed")
        assert not report.delivered
        assert report.dropped_at == broken_as
