"""Soak test: sustained stochastic churn over a long simulated horizon.

Drives Poisson EER arrivals, renewals, probe traffic, SegR keep-alive,
and periodic housekeeping together for many simulated minutes, then
checks the invariants that matter for a long-running deployment: no
state leaks, no capacity leaks, monotone counters, consistent telemetry.
"""

import pytest

from repro.constants import SEGR_LIFETIME
from repro.control import RenewalScheduler
from repro.sim import ColibriNetwork, EventLoop
from repro.sim.workload import EerWorkload
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)

HORIZON = 20 * 60.0  # 20 simulated minutes, 4 SegR lifetimes


@pytest.fixture(scope="module")
def soaked():
    net = ColibriNetwork(build_two_isd_topology())
    loop = EventLoop(net.clock)
    segments = net.reserve_segments(SRC, DST, mbps(500))

    keepers = []
    for segr in segments:
        owner = net.cserv(segr.reservation_id.src_as)
        keeper = RenewalScheduler(owner)
        keeper.track_segment(segr.reservation_id, bandwidth=mbps(500))
        keepers.append(keeper)

    workload = EerWorkload(
        net, loop, SRC, DST,
        arrival_rate=0.5, mean_holding=45.0,
        min_bandwidth=mbps(0.1), max_bandwidth=mbps(20),
    )
    workload.start()

    def housekeeping():
        for keeper in keepers:
            keeper.tick()
        net.housekeeping()

    loop.every(30.0, housekeeping)
    start = net.clock.now()
    loop.run_until(start + HORIZON)
    return net, workload, segments


class TestSoak:
    def test_workload_actually_ran(self, soaked):
        net, workload, _ = soaked
        stats = workload.stats
        assert stats.arrivals > 300
        assert stats.admitted > 100
        assert stats.renewals > 100

    def test_probe_traffic_delivered(self, soaked):
        net, workload, _ = soaked
        assert workload.stats.packets_sent > 100
        assert workload.stats.delivery_ratio > 0.99

    def test_segr_chain_survived_the_horizon(self, soaked):
        net, _, segments = soaked
        for segr in segments:
            assert not segr.is_expired(net.clock.now())
            # Renewed through ~4 lifetimes: version advanced well past 1.
            assert segr.active.version >= 3

    def test_no_eer_leaks(self, soaked):
        """Stored EERs at every AS are bounded by the live session count
        (plus at most the sessions whose final version has not yet hit
        housekeeping)."""
        net, workload, _ = soaked
        net.housekeeping()
        live = workload.active_sessions
        for isd_as in net.ases():
            count = net.cserv(isd_as).store.eer_count()
            assert count <= live + 5, (isd_as, count, live)

    def test_no_allocation_leaks(self, soaked):
        """Every SegR's admitted-EER sum equals the sum over its stored
        allocations (the O(1) counter never drifted), and never exceeds
        the SegR bandwidth."""
        net, _, _ = soaked
        for isd_as in net.ases():
            store = net.cserv(isd_as).store
            for segr in store.segments():
                total = store.allocated_on_segment(segr.reservation_id)
                exact = sum(
                    store._eer_alloc[segr.reservation_id].values()
                )
                assert total == pytest.approx(exact)
                assert total <= segr.bandwidth * (1 + 1e-9)

    def test_telemetry_consistent_after_soak(self, soaked):
        net, workload, _ = soaked
        snapshot = net.telemetry()
        total = snapshot["total"]
        assert total["gateway_sent"] >= workload.stats.packets_delivered
        assert total["router_drops"] == 0  # honest workload, no drops
        assert total["offenses"] == 0


class TestAudit:
    def test_audit_clean_after_soak(self, soaked):
        net, _, _ = soaked
        assert net.audit() == []

    def test_audit_detects_version_divergence(self):
        net = ColibriNetwork(build_two_isd_topology())
        (segr,) = net.reserve_segments(
            IsdAs(1, BASE + 1), IsdAs(2, BASE + 1), mbps(100)
        )
        owner = net.cserv(IsdAs(1, BASE + 1))
        version = owner.renew_segment(segr.reservation_id, mbps(200))
        # Corrupt: activate only locally (simulated state divergence).
        segr.activate(version, now=net.clock.now())
        violations = net.audit()
        assert any("active version disagrees" in v for v in violations)

    def test_audit_detects_overallocation(self):
        from repro.reservation.ids import ReservationId

        net = ColibriNetwork(build_two_isd_topology())
        (segr,) = net.reserve_segments(
            IsdAs(1, BASE + 1), IsdAs(2, BASE + 1), mbps(100)
        )
        store = net.cserv(IsdAs(1, BASE + 1)).store
        store.allocate_on_segment(
            segr.reservation_id, ReservationId(IsdAs(1, BASE + 1), 999), mbps(500)
        )
        violations = net.audit()
        assert any("over-allocated" in v for v in violations)
