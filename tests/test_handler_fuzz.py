"""Fuzz-style robustness: adversarial control messages hitting live CServ
handlers must produce typed failures (or clean failure responses), never
unhandled exceptions or state corruption."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.control.auth import AuthenticatedRequest
from repro.errors import ColibriError
from repro.packets.control import (
    EerRenewalRequest,
    SegActivationRequest,
    SegRenewalRequest,
)
from repro.packets.fields import ResInfo
from repro.reservation.ids import ReservationId
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


@pytest.fixture(scope="module")
def live_net():
    net = ColibriNetwork(build_two_isd_topology())
    net.reserve_segments(SRC, DST, gbps(1))
    net.establish_eer(SRC, DST, mbps(10))
    return net


def snapshot(net):
    return {
        str(a): (
            net.cserv(a).store.segment_count(),
            net.cserv(a).store.eer_count(),
        )
        for a in net.ases()
    }


res_id_st = st.builds(
    ReservationId,
    st.sampled_from([SRC, DST, IsdAs(1, BASE + 1), IsdAs(9, 9)]),
    st.integers(0, (1 << 32) - 1),
)


class TestHandlerFuzz:
    @given(
        res_id_st,
        st.floats(min_value=0, max_value=1e12, allow_nan=False),
        st.floats(min_value=0, max_value=1e12, allow_nan=False),
        st.integers(0, (1 << 16) - 1),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_seg_renewal_fuzz(self, live_net, res_id, bandwidth, expiry, version):
        before = snapshot(live_net)
        request = SegRenewalRequest(
            reservation=res_id,
            new_bandwidth=bandwidth,
            min_bandwidth=0.0,
            new_expiry=expiry,
            new_version=version,
        )
        target = live_net.cserv(IsdAs(1, BASE + 1))
        auth = AuthenticatedRequest.create(
            live_net.directory, res_id.src_as, [res_id.src_as], request
        )
        try:
            response = target.handle_seg_renewal(request, auth, 0)
            # A clean response is fine; success only for real state.
            if response.success:
                assert target.store.has_segment(res_id)
        except ColibriError:
            pass
        # Unsuccessful fuzzing never changes stored reservation counts.
        assert snapshot(live_net) == before

    @given(
        res_id_st,
        st.floats(min_value=0, max_value=1e12, allow_nan=False),
        st.integers(0, (1 << 16) - 1),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_eer_renewal_fuzz(self, live_net, res_id, bandwidth, version):
        before = snapshot(live_net)
        request = EerRenewalRequest(
            reservation=res_id,
            new_bandwidth=bandwidth,
            new_expiry=live_net.clock.now() + 16,
            new_version=version,
        )
        target = live_net.cserv(SRC)
        auth = AuthenticatedRequest.create(
            live_net.directory, res_id.src_as, [res_id.src_as], request
        )
        try:
            response = target.handle_eer_renewal(request, auth, 0)
            if not response.success:
                assert snapshot(live_net) == before
        except ColibriError:
            assert snapshot(live_net) == before

    @given(res_id_st, st.integers(0, (1 << 16) - 1))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_activation_fuzz(self, live_net, res_id, version):
        request = SegActivationRequest(reservation=res_id, version=version)
        target = live_net.cserv(IsdAs(1, BASE + 1))
        auth = AuthenticatedRequest.create(
            live_net.directory, res_id.src_as, [res_id.src_as], request
        )
        try:
            target.handle_seg_activation(request, auth, 0)
        except ColibriError:
            pass
        # Whatever happened, every stored SegR still has exactly one
        # active version.
        for segr in target.store.segments():
            states = [v.state.value for v in segr.versions.values()]
            assert states.count("active") == 1
