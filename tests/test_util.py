"""Unit tests for repro.util: clocks, units, sequences."""

import pytest

from repro.errors import SimulationError
from repro.util import (
    SequenceAllocator,
    SimClock,
    SkewedClock,
    WallClock,
    format_bandwidth,
    gbps,
    kbps,
    mbps,
)
from repro.util.units import bits_to_bytes, bytes_to_bits


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_rejects_negative(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-1.0)

    def test_set_jumps_to_absolute_time(self):
        clock = SimClock(1.0)
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_set_rejects_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(SimulationError):
            clock.set(4.9)

    def test_set_same_time_is_allowed(self):
        clock = SimClock(5.0)
        assert clock.set(5.0) == 5.0


class TestSkewedClock:
    def test_positive_offset(self):
        base = SimClock(100.0)
        assert SkewedClock(base, 0.1).now() == pytest.approx(100.1)

    def test_negative_offset(self):
        base = SimClock(100.0)
        assert SkewedClock(base, -0.1).now() == pytest.approx(99.9)

    def test_tracks_base(self):
        base = SimClock(0.0)
        skewed = SkewedClock(base, 0.05)
        base.advance(10.0)
        assert skewed.now() == pytest.approx(10.05)


class TestWallClock:
    def test_moves_forward(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestUnits:
    def test_gbps(self):
        assert gbps(0.4) == pytest.approx(400_000_000)

    def test_mbps(self):
        assert mbps(3) == pytest.approx(3_000_000)

    def test_kbps(self):
        assert kbps(2) == pytest.approx(2_000)

    def test_byte_bit_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(1000)) == pytest.approx(1000)

    @pytest.mark.parametrize(
        "rate,expected",
        [
            (400_000_000, "0.400 Gbps"),
            (3_000_000, "3.000 Mbps"),
            (1_500, "1.500 Kbps"),
            (12, "12.000 bps"),
        ],
    )
    def test_format_bandwidth(self, rate, expected):
        assert format_bandwidth(rate) == expected


class TestSequenceAllocator:
    def test_strictly_increasing(self):
        alloc = SequenceAllocator()
        values = [alloc.allocate() for _ in range(100)]
        assert values == sorted(values)
        assert len(set(values)) == 100

    def test_starts_at_first(self):
        assert SequenceAllocator(first=10).allocate() == 10

    def test_peek_does_not_consume(self):
        alloc = SequenceAllocator()
        assert alloc.peek == alloc.allocate()

    def test_overflow_raises(self):
        alloc = SequenceAllocator(first=0, width_bits=2)
        for _ in range(4):
            alloc.allocate()
        with pytest.raises(OverflowError):
            alloc.allocate()

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SequenceAllocator(first=-1)
