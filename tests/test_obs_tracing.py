"""The trace harness: span trees, propagation, and forensic identity.

Everything here is deterministic — spans are timed by the simulation
clock and span/trace IDs come from the collector's seeded RNG — so the
tests can assert *exact* span trees and byte-for-byte export equality,
the property that makes traces diffable artifacts rather than logs.

Covers the ISSUE checklist:

* the exact span tree of one EER setup on a known topology;
* every started span is closed, including under injected faults;
* trace IDs survive retries (failed attempts are sibling spans of the
  successful one, under the same logical-call parent);
* circuit-breaker transitions appear as zero-duration events;
* the PacketTracer identity fix: pre-authentication drops carry claimed
  (not proven) identity and never pollute the victim's record.
"""

import copy
import json

import pytest

from repro.control.retry import RetryingCaller
from repro.control.rpc import FaultInjector, LinkFaults, Unreachable
from repro.errors import CircuitOpen, RetriesExhausted
from repro.obs import ObsContext
from repro.obs.trace import (
    STATUS_ERROR,
    STATUS_OK,
    TraceCollector,
    traced,
)
from repro.packets.fields import Timestamp
from repro.sim import ColibriNetwork
from repro.sim.tracing import PacketTracer
from repro.topology import IsdAs, build_line_topology, build_two_isd_topology
from repro.util.clock import SimClock
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


# ------------------------------------------------------------- collector --


class TestTraceCollector:
    def make(self, seed=0):
        clock = SimClock(start=100.0)
        return clock, TraceCollector(clock, seed=seed)

    def test_nesting_assigns_parent_and_trace(self):
        clock, tracer = self.make()
        root = tracer.start("outer")
        clock.advance(1.0)
        child = tracer.start("inner")
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        tracer.finish(child)
        tracer.finish(root)
        assert root.duration == pytest.approx(1.0)
        assert tracer.open_spans() == []

    def test_siblings_share_trace_separate_roots_do_not(self):
        _, tracer = self.make()
        root = tracer.start("outer")
        a = tracer.start("a")
        tracer.finish(a)
        b = tracer.start("b")
        tracer.finish(b)
        tracer.finish(root)
        other = tracer.start("outer")
        tracer.finish(other)
        assert a.trace_id == b.trace_id == root.trace_id
        assert a.parent_id == b.parent_id == root.span_id
        assert other.trace_id != root.trace_id
        assert len(tracer.trace_ids()) == 2

    def test_context_manager_records_errors_and_reraises(self):
        _, tracer = self.make()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans(name="doomed")
        assert span.status == STATUS_ERROR
        assert span.attributes["error"] == "ValueError"
        assert span.closed
        assert tracer.open_spans() == []

    def test_event_is_zero_duration(self):
        clock, tracer = self.make()
        with tracer.span("work"):
            clock.advance(5.0)
            tracer.event("milestone", detail="x")
        (event,) = tracer.spans(name="milestone")
        assert event.duration == 0.0
        assert event.attributes["detail"] == "x"
        (work,) = tracer.spans(name="work")
        assert event.parent_id == work.span_id

    def test_critical_path_follows_latest_finisher(self):
        clock, tracer = self.make()
        with tracer.span("root"):
            with tracer.span("fast"):
                clock.advance(1.0)
            with tracer.span("slow"):
                clock.advance(3.0)
                with tracer.span("leaf"):
                    clock.advance(1.0)
        (root,) = tracer.spans(name="root")
        path = tracer.critical_path(root.trace_id)
        assert [s.name for s in path] == ["root", "slow", "leaf"]
        with pytest.raises(ValueError):
            tracer.critical_path("no-such-trace")

    def test_capacity_overflow_counts_drops(self):
        clock = SimClock(start=0.0)
        tracer = TraceCollector(clock, capacity=2)
        a = tracer.start("a")
        b = tracer.start("b")
        c = tracer.start("c")  # over capacity
        assert c is None
        assert tracer.dropped_spans == 1
        tracer.finish(c)  # no-op, must not raise
        tracer.finish(b)
        tracer.finish(a)
        assert len(tracer) == 2

    def test_export_jsonl_is_seed_deterministic(self):
        def run(seed):
            clock, tracer = self.make(seed=seed)
            with tracer.span("outer", key="v"):
                clock.advance(2.0)
                with tracer.span("inner"):
                    clock.advance(1.0)
            return tracer.export_jsonl()

        assert run(5) == run(5)
        assert run(5) != run(6)
        for line in run(5).splitlines():
            record = json.loads(line)
            assert set(record) >= {"trace_id", "span_id", "name", "start"}


class TestTracedDecorator:
    class Admitter:
        def __init__(self, obs):
            self.obs = obs

        @traced("admit", attrs=lambda self, value: {"value": value})
        def admit(self, value):
            if value < 0:
                raise ValueError("negative")
            return value * 2

    def test_plain_call_without_obs(self):
        target = self.Admitter(obs=None)
        assert target.admit(3) == 6

    def test_span_with_attributes_and_error_status(self):
        clock = SimClock(start=0.0)
        obs = ObsContext.create(clock)
        target = self.Admitter(obs)
        assert target.admit(3) == 6
        with pytest.raises(ValueError):
            target.admit(-1)
        ok, failed = obs.tracer.spans(name="admit")
        assert ok.status == STATUS_OK and ok.attributes["value"] == 3
        assert failed.status == STATUS_ERROR
        assert failed.attributes["error"] == "ValueError"


# ------------------------------------------------- the exact EER span tree --


def shape(tracer, span):
    """``(name, [child shapes...])`` — the tree with IDs erased."""
    return (span.name, [shape(tracer, child) for child in tracer.children(span)])


def line_net(seed=11):
    net = ColibriNetwork(build_line_topology(4))
    obs = net.enable_observability(seed=seed)
    ases = sorted(net.ases(), key=str)
    return net, obs, ases


class TestEerSetupSpanTree:
    def expected_tree(self, hops):
        """One EER setup: each hop's admission runs inside the previous
        hop's bus call — strictly nested, one retry/bus pair per hop."""
        inner = ("admission.eer_setup", [])
        for _ in range(hops - 1):
            inner = (
                "admission.eer_setup",
                [("retry.call", [("bus.call", [inner])])],
            )
        return ("eer.setup", [("dissemination.fetch", []), inner])

    def test_exact_span_tree(self):
        net, obs, ases = line_net()
        net.reserve_segments(ases[0], ases[-1], gbps(1))
        obs.tracer.clear()
        net.establish_eer(ases[0], ases[-1], mbps(10))
        (root,) = obs.tracer.roots()
        assert shape(obs.tracer, root) == self.expected_tree(hops=4)
        # Admissions run in path order, hop indices 0..3.
        admissions = obs.tracer.spans(name="admission.eer_setup")
        assert [s.attributes["hop"] for s in admissions] == [0, 1, 2, 3]
        assert [s.attributes["isd_as"] for s in admissions] == [
            str(isd_as) for isd_as in ases
        ]
        assert all(s.status == STATUS_OK for s in admissions)
        # One trace, fully closed.
        assert {s.trace_id for s in obs.tracer.spans()} == {root.trace_id}
        assert obs.tracer.open_spans() == []

    def test_exact_packet_tree(self):
        net, obs, ases = line_net()
        net.reserve_segments(ases[0], ases[-1], gbps(1))
        handle = net.establish_eer(ases[0], ases[-1], mbps(10))
        obs.tracer.clear()
        report = net.send(ases[0], handle, b"payload")
        assert report.delivered
        (root,) = obs.tracer.roots()
        assert shape(obs.tracer, root) == (
            "packet.send",
            [("gateway.stamp", [])] + [("router.hop", [])] * 4,
        )
        assert root.attributes["delivered"] is True
        hops = obs.tracer.spans(name="router.hop")
        assert [s.attributes["verdict"] for s in hops] == [
            "forward", "forward", "forward", "deliver_host",
        ]

    def test_repeated_seeded_runs_export_identical_bytes(self):
        def run():
            net, obs, ases = line_net(seed=11)
            net.reserve_segments(ases[0], ases[-1], gbps(1))
            handle = net.establish_eer(ases[0], ases[-1], mbps(10))
            net.send(ases[0], handle, b"payload")
            return obs.tracer.export_jsonl()

        first, second = run(), run()
        assert first == second
        assert first.endswith("\n")


# --------------------------------------------- propagation under injected loss --


def lossy_network(faults=None):
    net = ColibriNetwork(build_two_isd_topology(), faults=faults)
    for isd_as in net.ases():
        net.cserv(isd_as).request_limiter.rate = 1e9
        net.cserv(isd_as).request_limiter.burst = 1e9
    return net


class TestTracePropagationUnderFaults:
    LOSS = LinkFaults(request_loss=0.12, response_loss=0.08)

    def run_lossy(self, seed=2024, setups=25):
        injector = FaultInjector(seed=seed)
        injector.set_default(self.LOSS)
        net = lossy_network()
        obs = net.enable_observability(seed=seed)
        net.reserve_segments(SRC, DST, gbps(1))
        net.bus.install_faults(injector)
        for _ in range(setups):
            try:
                net.establish_eer(SRC, DST, mbps(1))
            except Unreachable:
                pass  # an aborted setup must still close its spans
        assert injector.injected["request_loss"] > 0
        return net, obs

    def test_every_started_span_is_closed(self):
        _, obs = self.run_lossy()
        assert obs.tracer.open_spans() == []
        assert all(span.closed for span in obs.tracer.spans())

    def test_trace_ids_survive_retries(self):
        _, obs = self.run_lossy()
        retried = [
            s for s in obs.tracer.spans(name="retry.call")
            if s.attributes.get("attempts", 0) > 1
        ]
        assert retried, "the loss plan produced no retries"
        saw_failed_attempt = False
        for logical_call in retried:
            attempts = obs.tracer.children(logical_call)
            assert len(attempts) == logical_call.attributes["attempts"]
            # Every attempt — failed or successful — is a sibling span
            # inside the same trace as the logical call.
            assert {a.trace_id for a in attempts} == {logical_call.trace_id}
            assert {a.parent_id for a in attempts} == {logical_call.span_id}
            saw_failed_attempt |= any(
                a.status == STATUS_ERROR for a in attempts
            )
        assert saw_failed_attempt
        # Spans never leak across traces: each root's subtree is closed
        # under its own trace id.
        for root in obs.tracer.roots():
            subtree = obs.tracer.spans(trace_id=root.trace_id)
            assert all(s.trace_id == root.trace_id for s in subtree)

    def test_retry_histogram_matches_spans(self):
        _, obs = self.run_lossy()
        histogram = obs.metrics.get("retry_attempts")
        spans = obs.tracer.spans(name="retry.call")
        assert histogram.count == len(spans)
        assert histogram.sum == sum(s.attributes["attempts"] for s in spans)


class TestBreakerTransitionEvents:
    class _FlakyBus:
        def __init__(self, script):
            self.script = list(script)

        def call(self, isd_as, method, *args, caller=None, timeout=None, **kwargs):
            outcome = self.script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

    def test_transitions_traced_through_breaker_cycle(self):
        clock = SimClock(start=0.0)
        obs = ObsContext.create(clock)
        # All four attempts of the first logical call fail; the fourth
        # failure trips the breaker exactly as the retry budget runs out,
        # so the caller reports RetriesExhausted and leaves the circuit
        # open for the next call.
        bus = self._FlakyBus([Unreachable("x")] * 4 + ["ok", "ok"])
        caller = RetryingCaller(
            bus, clock, SRC, sleeper=clock.advance,
            failure_threshold=4, reset_timeout=30.0,
        )
        caller.obs = obs
        with pytest.raises(RetriesExhausted):
            caller.call(DST, "handle_seg_setup")
        with pytest.raises(CircuitOpen):
            caller.call(DST, "handle_seg_setup")
        clock.advance(31.0)  # past reset_timeout: next call probes
        assert caller.call(DST, "handle_seg_setup") == "ok"
        transitions = [
            (e.attributes["old"], e.attributes["new"])
            for e in obs.tracer.spans(name="breaker.transition")
        ]
        assert transitions == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        # Events were recorded inside their logical-call spans.
        for event in obs.tracer.spans(name="breaker.transition"):
            assert event.parent_id is not None
        assert obs.tracer.open_spans() == []


# ------------------------------------- PacketTracer identity (regression) --


class TestPacketTracerIdentity:
    def make_traced_net(self):
        net = ColibriNetwork(build_two_isd_topology())
        net.tracer = PacketTracer()
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        return net, handle

    def forge_naming_victim(self, net, report):
        """A forged copy of a delivered packet: fresh timestamp, stale
        HVFs — an attacker replaying header bytes that name the victim's
        reservation but cannot be authenticated."""
        net.clock.advance(0.001)  # a fresh instant -> a fresh, unseen Ts
        forged = copy.deepcopy(report.packet)
        forged.hop_index = 0
        forged.timestamp = Timestamp.create(
            net.clock.now(), forged.res_info.expiry
        )
        return forged

    def test_forged_drop_not_attributed_to_victim(self):
        net, handle = self.make_traced_net()
        report = net.send(SRC, handle, b"legit")
        assert report.delivered
        legit = net.tracer.for_reservation(handle.reservation_id)
        forged_report = net.forward(self.forge_naming_victim(net, report))
        assert not forged_report.delivered
        assert forged_report.verdicts[-1][1].value == "drop_bad_hvf"
        # The victim's authenticated record is unchanged: the forgery's
        # claimed identity does not appear in it...
        assert net.tracer.for_reservation(handle.reservation_id) == legit
        # ...but remains reachable as an explicit claimed-identity view.
        claimed = net.tracer.for_reservation(
            handle.reservation_id, include_claimed=True
        )
        assert len(claimed) == len(legit) + 1
        (drop,) = net.tracer.claimed_drops()
        assert drop.verdict.value == "drop_bad_hvf"
        assert not drop.identity_verified
        assert "res~=" in drop.render()

    def test_authenticated_drops_still_attributed(self):
        net, handle = self.make_traced_net()
        victim_hop = handle.hops[3].isd_as
        net.router(victim_hop).blocklist.block(SRC)
        # Blocklist drops are pre-authentication too: the claimed view
        # shows them, the authenticated view does not.
        net.send(SRC, handle, b"will die")
        assert net.tracer.claimed_drops()
        journey = net.tracer.for_reservation(handle.reservation_id)
        assert all(e.identity_verified for e in journey)
        # Post-authentication drops (duplicate) keep proven identity.
        report = net.send(SRC, handle, b"fresh")
        net.router(victim_hop).blocklist.unblock(SRC)
        replay = copy.deepcopy(report.packet)
        replay.hop_index = 0
        net.forward(replay)
        dup_drops = [
            e
            for e in net.tracer.for_reservation(handle.reservation_id)
            if e.verdict.is_drop
        ]
        assert [e.verdict.value for e in dup_drops] == ["drop_duplicate"]
