"""Smoke tests keeping the runnable examples green.

Each example script asserts its own outcomes internally; these tests
run them in-process (fast ones every time, the long streaming demo is
skipped unless RUN_SLOW_EXAMPLES=1).
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name):
    path = os.path.join(EXAMPLES, name)
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "delivered: True" in out

    def test_critical_service(self, capsys):
        run_example("critical_service.py")
        out = capsys.readouterr().out
        assert "first packet delivered: True" in out

    def test_multipath_failover(self, capsys):
        run_example("multipath_failover.py")
        out = capsys.readouterr().out
        assert "all 60 chunks delivered" in out

    def test_operator_day(self, capsys):
        run_example("operator_day.py")
        out = capsys.readouterr().out
        assert "zero operator actions" in out

    def test_ddos_defense(self, capsys):
        run_example("ddos_defense.py")
        out = capsys.readouterr().out
        assert "all four attacks defeated" in out

    @pytest.mark.skipif(
        not os.environ.get("RUN_SLOW_EXAMPLES"),
        reason="90-second stream; set RUN_SLOW_EXAMPLES=1 to include",
    )
    def test_video_stream(self, capsys):
        run_example("video_stream.py")
        assert "delivery 100.00%" in capsys.readouterr().out

    def test_video_call(self, capsys):
        run_example("video_call.py")
        assert "never noticed the attack" in capsys.readouterr().out
