"""Unit and property tests for repro.admission: matrices, demands, tube
fairness, EER admission, policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import (
    AllowAllPolicy,
    DenyListPolicy,
    EerAdmission,
    PerHostCapPolicy,
    SegmentAdmission,
    TrafficMatrix,
    TransferDistributor,
    adjust_demand,
)
from repro.admission.eer_admission import AsRole
from repro.errors import (
    InsufficientBandwidth,
    PolicyDenied,
    ReservationExpired,
    TopologyError,
)
from repro.packets.fields import EerInfo
from repro.reservation import (
    E2EReservation,
    E2EVersion,
    InterfacePairIndex,
    ReservationId,
    ReservationStore,
    SegmentReservation,
    SegmentVersion,
)
from repro.topology import build_line_topology
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField, Segment, SegmentType
from repro.util.units import gbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 1)
OTHER = IsdAs(1, BASE + 9)


def make_matrix(length=3, capacity=gbps(40)):
    """Traffic matrix of the middle AS of a line topology."""
    topology = build_line_topology(length, capacity=capacity)
    middle = IsdAs(1, BASE + 2)
    return TrafficMatrix(topology.node(middle))


def segr_record(local_id, bw, expiry=300.0, src=SRC):
    far_end = IsdAs(1, BASE + 50)
    segment = Segment.from_hops(
        SegmentType.CORE,
        [HopField(src, NO_INTERFACE, 1), HopField(far_end, 1, NO_INTERFACE)],
    )
    return SegmentReservation(
        reservation_id=ReservationId(src, local_id),
        segment=segment,
        first_version=SegmentVersion(version=1, bandwidth=bw, expiry=expiry),
    )


class TestTrafficMatrix:
    def test_interface_capacity_applies_share(self):
        matrix = make_matrix(capacity=gbps(40))
        # default colibri share = 80 % (control 5 + EER 75)
        assert matrix.interface_capacity(1) == pytest.approx(gbps(32))

    def test_internal_interface_defaults_to_sum(self):
        # An AS may originate up to its total egress capacity: the middle
        # AS of a 3-line has two 40 G links, 80 % Colibri share each.
        matrix = make_matrix()
        assert matrix.interface_capacity(NO_INTERFACE) == pytest.approx(gbps(64))

    def test_pair_capacity_default_is_min(self):
        matrix = make_matrix()
        assert matrix.pair_capacity(1, 2) == pytest.approx(gbps(32))

    def test_pair_override(self):
        matrix = make_matrix()
        matrix.set_pair_capacity(1, 2, gbps(5))
        assert matrix.pair_capacity(1, 2) == pytest.approx(gbps(5))
        assert matrix.pair_capacity(2, 1) == pytest.approx(gbps(32))

    def test_unknown_interface(self):
        matrix = make_matrix()
        with pytest.raises(TopologyError):
            matrix.interface_capacity(99)

    def test_invalid_share(self):
        topology = build_line_topology(3)
        with pytest.raises(ValueError):
            TrafficMatrix(topology.node(IsdAs(1, BASE + 2)), colibri_share=0)


class TestAdjustDemand:
    def test_uncontended_demand_unchanged(self):
        matrix = make_matrix()
        index = InterfacePairIndex()
        demand = adjust_demand(matrix, index, SRC, 1, 2, gbps(1))
        assert demand.capped == pytest.approx(gbps(1))
        assert demand.adjusted == pytest.approx(gbps(1))

    def test_rule2_caps_at_egress(self):
        matrix = make_matrix()
        index = InterfacePairIndex()
        demand = adjust_demand(matrix, index, SRC, 1, 2, gbps(100))
        assert demand.capped == pytest.approx(gbps(32))

    def test_rule1_scales_by_ingress_crowding(self):
        matrix = make_matrix()
        admission = SegmentAdmission(matrix)
        # Fill the ingress with existing demand equal to its capacity.
        grant = admission.admit(ReservationId(OTHER, 1), OTHER, 1, 2, gbps(32), 0.0)
        demand = adjust_demand(admission.matrix, admission.index, SRC, 1, 2, gbps(32))
        # total demand via ingress = 64 G, capacity 32 G -> rule-1 factor 0.5;
        # SRC has no prior demand at the egress, so rule-3 factor is 1.
        assert demand.adjusted == pytest.approx(gbps(16))

    def test_rule1_factor_only(self):
        matrix = make_matrix()
        admission = SegmentAdmission(matrix)
        admission.admit(ReservationId(OTHER, 1), OTHER, 1, 2, gbps(16), 0.0)
        demand = adjust_demand(admission.matrix, admission.index, SRC, 1, 2, gbps(16))
        # ingress total 32 = capacity -> factor 1; source total 16 -> factor 1
        assert demand.adjusted == pytest.approx(gbps(16))

    def test_rule3_bounds_single_source(self):
        matrix = make_matrix()
        admission = SegmentAdmission(matrix)
        # Source SRC already holds capacity-worth of demand at egress 2
        # via a different ingress (no rule-1 interaction).
        admission.admit(ReservationId(SRC, 1), SRC, NO_INTERFACE, 2, gbps(32), 0.0)
        demand = adjust_demand(admission.matrix, admission.index, SRC, 1, 2, gbps(32))
        # source total = 64 G at 32 G egress -> factor 0.5
        assert demand.adjusted == pytest.approx(gbps(16))

    def test_negative_request_rejected(self):
        matrix = make_matrix()
        with pytest.raises(ValueError):
            adjust_demand(matrix, InterfacePairIndex(), SRC, 1, 2, -1.0)


class TestSegmentAdmission:
    def test_single_request_gets_full_demand(self):
        admission = SegmentAdmission(make_matrix())
        grant = admission.admit(ReservationId(SRC, 1), SRC, 1, 2, gbps(4), gbps(1))
        assert grant.granted == pytest.approx(gbps(4))

    def test_minimum_enforced(self):
        admission = SegmentAdmission(make_matrix())
        with pytest.raises(InsufficientBandwidth) as excinfo:
            admission.admit(ReservationId(SRC, 1), SRC, 1, 2, gbps(100), gbps(50))
        assert excinfo.value.granted < gbps(50)

    def test_failed_admission_does_not_commit(self):
        admission = SegmentAdmission(make_matrix())
        with pytest.raises(InsufficientBandwidth):
            admission.admit(ReservationId(SRC, 1), SRC, 1, 2, gbps(100), gbps(50))
        assert len(admission) == 0

    def test_contention_never_exceeds_capacity(self):
        admission = SegmentAdmission(make_matrix())
        sources = [IsdAs(1, BASE + 100 + i) for i in range(4)]
        grants = [
            admission.admit(ReservationId(s, 1), s, NO_INTERFACE, 2, gbps(32), 0.0)
            for s in sources
        ]
        amounts = [g.granted for g in grants]
        # Later arrivals see a more crowded egress and receive less.
        assert amounts == sorted(amounts, reverse=True)
        assert sum(amounts) <= gbps(32) * (1 + 1e-9)

    def test_renewal_rounds_converge_to_fair_shares(self):
        """Early arrivals start over-granted; a couple of renewal rounds
        (SegRs renew every ~5 min, §3.3) converge everyone to the
        proportional tube-fair share."""
        admission = SegmentAdmission(make_matrix())
        sources = [IsdAs(1, BASE + 100 + i) for i in range(4)]
        for s in sources:
            admission.admit(ReservationId(s, 1), s, NO_INTERFACE, 2, gbps(32), 0.0)
        final = {}
        for _round in range(3):
            for s in sources:
                grant = admission.admit(
                    ReservationId(s, 1), s, NO_INTERFACE, 2, gbps(32), 0.0
                )
                final[s] = grant.granted
        shares = list(final.values())
        assert sum(shares) <= gbps(32) * (1 + 1e-9)
        # all four within 25 % of the fair share of 8 Gbps
        for share in shares:
            assert share == pytest.approx(gbps(8), rel=0.25)

    def test_botnet_size_independence(self):
        """A source multiplying its reservations cannot grow its share
        unboundedly: rule 3 caps its aggregate demand at the egress."""
        admission = SegmentAdmission(make_matrix())
        attacker = IsdAs(1, BASE + 66)
        for i in range(50):
            try:
                admission.admit(
                    ReservationId(attacker, i), attacker, 1, 2, gbps(32), 0.0
                )
            except InsufficientBandwidth:
                pass
        # A benign newcomer may get little immediately (capacity is
        # committed), but after one renewal round — where rule 3 squeezes
        # the attacker's aggregate to its fair share — the benign AS
        # receives a usable share regardless of the attacker's 50
        # reservations.
        admission.admit(ReservationId(SRC, 1), SRC, NO_INTERFACE, 2, gbps(1), 0.0)
        for i in range(50):
            if ReservationId(attacker, i) in admission.index:
                admission.admit(
                    ReservationId(attacker, i), attacker, 1, 2, gbps(32), 0.0
                )
        benign = admission.admit(
            ReservationId(SRC, 1), SRC, NO_INTERFACE, 2, gbps(1), 0.0
        )
        assert benign.granted >= gbps(1) * 0.2

    def test_renewal_excludes_own_old_demand(self):
        admission = SegmentAdmission(make_matrix())
        rid = ReservationId(SRC, 1)
        admission.admit(rid, SRC, 1, 2, gbps(8), 0.0)
        # Renewal with the same demand should grant the same amount, not
        # see itself as a competitor.
        renewed = admission.admit(rid, SRC, 1, 2, gbps(8), 0.0)
        assert renewed.granted == pytest.approx(gbps(8))
        assert len(admission) == 1

    def test_release_frees_capacity(self):
        admission = SegmentAdmission(make_matrix())
        rid = ReservationId(SRC, 1)
        admission.admit(rid, SRC, 1, 2, gbps(32), 0.0)
        admission.release(rid)
        grant = admission.admit(ReservationId(OTHER, 1), OTHER, 1, 2, gbps(32), 0.0)
        assert grant.granted == pytest.approx(gbps(32))

    def test_memoized_and_naive_agree(self):
        fast = SegmentAdmission(make_matrix(), memoize=True)
        slow = SegmentAdmission(make_matrix(), memoize=False)
        for i in range(20):
            source = IsdAs(1, BASE + 100 + (i % 5))
            f = fast.admit(ReservationId(source, i), source, 1, 2, gbps(2), 0.0)
            s = slow.admit(ReservationId(source, i), source, 1, 2, gbps(2), 0.0)
            assert f.granted == pytest.approx(s.granted)

    @given(st.lists(st.floats(min_value=1e6, max_value=4e10), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_never_overallocates_egress(self, requests):
        """Property: the sum of all grants at an egress never exceeds its
        Colibri capacity — the §5.1 guarantee that 'the admission procedure
        ensures that the sum of all reservations does not exceed the
        capacity'."""
        admission = SegmentAdmission(make_matrix())
        capacity = admission.matrix.interface_capacity(2)
        total = 0.0
        for i, request in enumerate(requests):
            source = IsdAs(1, BASE + 100 + (i % 7))
            grant = admission.admit(
                ReservationId(source, i), source, 1 if i % 2 else NO_INTERFACE, 2,
                request, 0.0,
            )
            total += grant.granted
        assert total <= capacity * (1 + 1e-9)


class TestTransferDistributor:
    def test_uncontended_full_quota(self):
        distributor = TransferDistributor()
        core = ReservationId(SRC, 1)
        up = ReservationId(OTHER, 2)
        distributor.register_demand(core, up, gbps(1), up_capacity=gbps(4))
        assert distributor.quota(core, up, core_bandwidth=gbps(10)) == gbps(10)

    def test_contended_proportional(self):
        distributor = TransferDistributor()
        core = ReservationId(SRC, 1)
        up1, up2 = ReservationId(OTHER, 2), ReservationId(OTHER, 3)
        distributor.register_demand(core, up1, gbps(6), up_capacity=gbps(10))
        distributor.register_demand(core, up2, gbps(2), up_capacity=gbps(10))
        quota1 = distributor.quota(core, up1, core_bandwidth=gbps(4))
        quota2 = distributor.quota(core, up2, core_bandwidth=gbps(4))
        assert quota1 == pytest.approx(gbps(3))
        assert quota2 == pytest.approx(gbps(1))

    def test_demand_capped_at_up_segr(self):
        distributor = TransferDistributor()
        core = ReservationId(SRC, 1)
        up = ReservationId(OTHER, 2)
        distributor.register_demand(core, up, gbps(100), up_capacity=gbps(5))
        assert distributor.total_demand(core) == pytest.approx(gbps(5))

    def test_release(self):
        distributor = TransferDistributor()
        core = ReservationId(SRC, 1)
        up = ReservationId(OTHER, 2)
        distributor.register_demand(core, up, gbps(4), up_capacity=gbps(10))
        distributor.release_demand(core, up, gbps(4))
        assert distributor.total_demand(core) == 0.0


class TestEerAdmission:
    def setup_method(self):
        self.store = ReservationStore()
        self.segr = segr_record(1, bw=gbps(1))
        self.store.add_segment(self.segr)
        self.admission = EerAdmission(SRC, self.store)

    def test_transit_grants_within_segr(self):
        decision = self.admission.decide(
            AsRole.TRANSIT, gbps(0.2), now=0.0, segment_in=self.segr.reservation_id
        )
        assert decision.granted == pytest.approx(gbps(0.2))

    def test_transit_rejects_overflow(self):
        rid = self.segr.reservation_id
        eer = ReservationId(SRC, 100)
        self.store.allocate_on_segment(rid, eer, gbps(0.9))
        with pytest.raises(InsufficientBandwidth) as excinfo:
            self.admission.decide(AsRole.TRANSIT, gbps(0.2), now=0.0, segment_in=rid)
        assert excinfo.value.granted == pytest.approx(gbps(0.1))

    def test_expired_segr_rejected(self):
        with pytest.raises(ReservationExpired):
            self.admission.decide(
                AsRole.TRANSIT, gbps(0.1), now=400.0, segment_in=self.segr.reservation_id
            )

    def test_source_applies_policy(self):
        policy = PerHostCapPolicy(default_cap=gbps(0.1))
        admission = EerAdmission(SRC, self.store, source_policy=policy)
        host = HostAddr(5)
        with pytest.raises(PolicyDenied):
            admission.decide(
                AsRole.SOURCE,
                gbps(0.5),
                now=0.0,
                segment_out=self.segr.reservation_id,
                host=host,
            )
        # under the cap it passes
        decision = admission.decide(
            AsRole.SOURCE,
            gbps(0.05),
            now=0.0,
            segment_out=self.segr.reservation_id,
            host=host,
        )
        assert decision.granted == pytest.approx(gbps(0.05))

    def test_policy_released_when_segr_check_fails(self):
        policy = PerHostCapPolicy(default_cap=gbps(10))
        admission = EerAdmission(SRC, self.store, source_policy=policy)
        host = HostAddr(5)
        with pytest.raises(InsufficientBandwidth):
            admission.decide(
                AsRole.SOURCE,
                gbps(5),
                now=0.0,
                segment_out=self.segr.reservation_id,
                host=host,
            )
        assert policy.in_use(host) == 0.0

    def test_transfer_checks_both_segments(self):
        second = segr_record(2, bw=gbps(0.1), src=OTHER)
        self.store.add_segment(second)
        with pytest.raises(InsufficientBandwidth):
            self.admission.decide(
                AsRole.TRANSFER,
                gbps(0.5),
                now=0.0,
                segment_in=self.segr.reservation_id,
                segment_out=second.reservation_id,
            )

    def test_commit_allocates_on_all_checked(self):
        second = segr_record(2, bw=gbps(1), src=OTHER)
        self.store.add_segment(second)
        decision = self.admission.decide(
            AsRole.TRANSFER,
            gbps(0.3),
            now=0.0,
            segment_in=self.segr.reservation_id,
            segment_out=second.reservation_id,
        )
        eer = ReservationId(SRC, 200)
        self.admission.commit(eer, decision, gbps(0.3))
        assert self.store.allocated_on_segment(
            self.segr.reservation_id
        ) == pytest.approx(gbps(0.3))
        assert self.store.allocated_on_segment(
            second.reservation_id
        ) == pytest.approx(gbps(0.3))

    def test_destination_role(self):
        decision = self.admission.decide(
            AsRole.DESTINATION,
            gbps(0.1),
            now=0.0,
            segment_in=self.segr.reservation_id,
            host=HostAddr(9),
        )
        assert decision.role is AsRole.DESTINATION

    @given(st.lists(st.floats(min_value=1e6, max_value=2e9), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_eer_total_never_exceeds_segr(self, requests):
        """Property: admitted EER bandwidth on a SegR never exceeds the
        SegR's bandwidth (§5.2: 'all on-path ASes check that the total
        bandwidth of EERs on a particular SegR does not exceed that
        SegR's capacity')."""
        store = ReservationStore()
        segr = segr_record(1, bw=gbps(1))
        store.add_segment(segr)
        admission = EerAdmission(SRC, store)
        for i, request in enumerate(requests):
            try:
                decision = admission.decide(
                    AsRole.TRANSIT, request, now=0.0, segment_in=segr.reservation_id
                )
            except InsufficientBandwidth:
                continue
            admission.commit(ReservationId(SRC, 100 + i), decision, request)
        assert store.allocated_on_segment(segr.reservation_id) <= gbps(1) * (1 + 1e-9)


class TestPolicies:
    def test_allow_all(self):
        policy = AllowAllPolicy()
        policy.authorize(HostAddr(1), 1e9)  # no exception
        policy.release(HostAddr(1), 1e9)

    def test_per_host_cap(self):
        policy = PerHostCapPolicy(default_cap=100.0)
        policy.authorize(HostAddr(1), 60.0)
        with pytest.raises(PolicyDenied) as excinfo:
            policy.authorize(HostAddr(1), 60.0)
        assert excinfo.value.granted == pytest.approx(40.0)
        policy.release(HostAddr(1), 60.0)
        policy.authorize(HostAddr(1), 100.0)

    def test_per_host_cap_isolated_per_host(self):
        policy = PerHostCapPolicy(default_cap=100.0)
        policy.authorize(HostAddr(1), 100.0)
        policy.authorize(HostAddr(2), 100.0)  # other host unaffected

    def test_premium_override(self):
        policy = PerHostCapPolicy(default_cap=10.0)
        policy.set_cap(HostAddr(7), 1000.0)
        policy.authorize(HostAddr(7), 500.0)

    def test_deny_list(self):
        policy = DenyListPolicy(AllowAllPolicy())
        policy.deny(HostAddr(3))
        with pytest.raises(PolicyDenied):
            policy.authorize(HostAddr(3), 1.0)
        policy.allow(HostAddr(3))
        policy.authorize(HostAddr(3), 1.0)

    def test_release_never_goes_negative(self):
        policy = PerHostCapPolicy(default_cap=10.0)
        policy.release(HostAddr(1), 99.0)
        assert policy.in_use(HostAddr(1)) == 0.0


def up_segr_record(local_id, bw, expiry=300.0, src=OTHER):
    far_end = IsdAs(1, BASE + 60)
    segment = Segment.from_hops(
        SegmentType.UP,
        [HopField(src, NO_INTERFACE, 1), HopField(far_end, 1, NO_INTERFACE)],
    )
    return SegmentReservation(
        reservation_id=ReservationId(src, local_id),
        segment=segment,
        first_version=SegmentVersion(version=1, bandwidth=bw, expiry=expiry),
    )


class TestDistributorLedger:
    """Cap-then-release symmetry: releasing must return the *applied*
    (capped) increment, not the uncapped amount that was offered."""

    def setup_method(self):
        self.distributor = TransferDistributor()
        self.core = ReservationId(SRC, 1)
        self.up = ReservationId(OTHER, 2)

    def test_capped_registration_releases_exactly_applied(self):
        flow1, flow2 = ReservationId(SRC, 100), ReservationId(SRC, 101)
        self.distributor.register_demand(
            self.core, self.up, gbps(8), up_capacity=gbps(10), key=flow1
        )
        # Second registration hits the cap: only 2 of the offered 8 land.
        applied = self.distributor.register_demand(
            self.core, self.up, gbps(8), up_capacity=gbps(10), key=flow2
        )
        assert applied == pytest.approx(gbps(2))
        self.distributor.release_demand(self.core, self.up, key=flow2)
        # Amount-based release of the uncapped 8 would leave 2 — the
        # under-count that inflated every later quota.
        assert self.distributor.total_demand(self.core) == pytest.approx(gbps(8))

    def test_release_key_returns_all_registrations(self):
        flow = ReservationId(SRC, 100)
        self.distributor.register_demand(
            self.core, self.up, gbps(3), up_capacity=gbps(10), key=flow
        )
        self.distributor.register_demand(
            self.core, self.up, gbps(9), up_capacity=gbps(10), key=flow
        )
        released = self.distributor.release_key(flow)
        assert released == pytest.approx(gbps(10))
        assert self.distributor.total_demand(self.core) == 0.0

    def test_release_unknown_key_is_noop(self):
        self.distributor.register_demand(
            self.core, self.up, gbps(3), up_capacity=gbps(10)
        )
        assert self.distributor.release_key(ReservationId(SRC, 404)) == 0.0
        self.distributor.release_demand(
            self.core, self.up, key=ReservationId(SRC, 404)
        )
        assert self.distributor.total_demand(self.core) == pytest.approx(gbps(3))

    def test_amount_release_still_supported(self):
        self.distributor.register_demand(
            self.core, self.up, gbps(4), up_capacity=gbps(10)
        )
        self.distributor.release_demand(self.core, self.up, gbps(4))
        assert self.distributor.total_demand(self.core) == 0.0


class TestTransferContention:
    """TRANSFER with core_contention: demand registration must not leak
    on the failure paths, and the quota compares against the up-SegR's
    own share, not the whole core-SegR."""

    def setup_method(self):
        self.store = ReservationStore()
        self.up = up_segr_record(2, bw=gbps(10))
        self.core = segr_record(1, bw=gbps(1))
        self.store.add_segment(self.up)
        self.store.add_segment(self.core)
        self.admission = EerAdmission(SRC, self.store)

    def decide(self, requested, flow_id=900):
        return self.admission.decide(
            AsRole.TRANSFER,
            requested,
            now=0.0,
            segment_in=self.up.reservation_id,
            segment_out=self.core.reservation_id,
            core_contention=True,
            flow=ReservationId(SRC, flow_id),
        )

    def test_core_denial_leaves_no_demand(self):
        # Saturate the core-SegR so the outgoing capacity check denies.
        self.store.allocate_on_segment(
            self.core.reservation_id, ReservationId(SRC, 800), gbps(1)
        )
        with pytest.raises(InsufficientBandwidth):
            self.decide(gbps(0.5))
        # Previously register_demand ran before the outgoing check, so
        # the denied request's demand shrank other quotas forever.
        assert self.admission.distributor.total_demand(
            self.core.reservation_id
        ) == 0.0

    def test_successful_decide_registers_keyed_demand(self):
        self.decide(gbps(0.4), flow_id=901)
        distributor = self.admission.distributor
        assert distributor.demand(
            self.core.reservation_id, self.up.reservation_id
        ) == pytest.approx(gbps(0.4))
        distributor.release_key(ReservationId(SRC, 901))
        assert distributor.total_demand(self.core.reservation_id) == 0.0

    def test_quota_uses_per_up_share(self):
        # A second up-SegR's accumulated demand must not count against
        # this up-SegR's quota headroom while the core is uncontended.
        other_up = up_segr_record(3, bw=gbps(10), src=IsdAs(1, BASE + 70))
        self.store.add_segment(other_up)
        self.admission.distributor.register_demand(
            self.core.reservation_id,
            other_up.reservation_id,
            gbps(0.5),
            up_capacity=gbps(10),
        )
        decision = self.decide(gbps(0.4), flow_id=902)
        assert decision.granted == pytest.approx(gbps(0.4))
        # Contended: this up-SegR is at its proportional share, so new
        # demand from it is denied while the other up keeps its quota.
        self.admission.distributor.register_demand(
            self.core.reservation_id,
            self.up.reservation_id,
            gbps(0.8),
            up_capacity=gbps(10),
        )
        with pytest.raises(InsufficientBandwidth):
            self.decide(gbps(0.4), flow_id=903)


class TestRenewDelta:
    """Incremental renewal: adjust the allocation in place from two O(1)
    reads per SegR, with partial grants and no demand/policy charge."""

    def setup_method(self):
        self.store = ReservationStore()
        self.first = segr_record(1, bw=gbps(1))
        self.second = segr_record(2, bw=gbps(1), src=OTHER)
        self.store.add_segment(self.first)
        self.store.add_segment(self.second)
        self.admission = EerAdmission(SRC, self.store)
        self.eer = ReservationId(SRC, 300)
        self.segment_ids = (self.first.reservation_id, self.second.reservation_id)
        for sid in self.segment_ids:
            self.store.allocate_on_segment(sid, self.eer, gbps(0.2))

    def test_growth_within_headroom(self):
        decision = self.admission.renew_delta(
            self.eer, self.segment_ids, gbps(0.5), now=0.0
        )
        assert decision.granted == pytest.approx(gbps(0.5))
        self.admission.commit_renewal(self.eer, decision, decision.granted)
        for sid in self.segment_ids:
            assert self.store.eer_allocation(sid, self.eer) == pytest.approx(
                gbps(0.5)
            )

    def test_partial_grant_at_bottleneck(self):
        # Another EER fills most of the second SegR: the offer is its
        # current allocation plus the remaining headroom, not a failure.
        self.store.allocate_on_segment(
            self.second.reservation_id, ReservationId(OTHER, 999), gbps(0.7)
        )
        decision = self.admission.renew_delta(
            self.eer, self.segment_ids, gbps(0.5), now=0.0
        )
        assert decision.granted == pytest.approx(gbps(0.3))

    def test_shrink_never_regresses_allocation(self):
        # Older versions stay live (§4.2): a smaller renewal must not
        # lower what the segments already carry.
        decision = self.admission.renew_delta(
            self.eer, self.segment_ids, gbps(0.1), now=0.0
        )
        assert decision.granted == pytest.approx(gbps(0.1))
        self.admission.commit_renewal(self.eer, decision, decision.granted)
        for sid in self.segment_ids:
            assert self.store.eer_allocation(sid, self.eer) == pytest.approx(
                gbps(0.2)
            )

    def test_expired_segr_raises(self):
        with pytest.raises(ReservationExpired):
            self.admission.renew_delta(
                self.eer, self.segment_ids, gbps(0.5), now=400.0
            )
