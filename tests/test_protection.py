"""Integration test of the data-plane protection experiment (§7.1/§7.2,
Table 2), at reduced scale.

The benchmark in ``benchmarks/test_table2_protection.py`` regenerates
the full table; this test asserts the three protection invariants on a
faster, scaled-down run (rates in Mbps instead of Gbps — the logic is
rate-free, only ratios matter):

* phase 1 — best-effort congestion cannot touch reservation output;
* phase 2 — unauthentic Colibri traffic is filtered and costs nothing;
* phase 3 — an overusing reservation is policed back to its guarantee
  without harming the conforming reservation.
"""

import pytest

from repro.dataplane.router import Verdict
from repro.sim import ColibriNetwork, PortSim
from repro.sim.netsim import AtHop
from repro.sim.traffic import (
    BestEffortSource,
    BogusColibriSource,
    OverusingSource,
    ReservationSource,
)
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC1 = asid(1, 101)  # sends reservation 1
SRC2 = asid(1, 111)  # sends reservation 2
DST = asid(2, 101)
MEASURE = asid(2, 1)  # the router whose output port we watch

#: Scale: the paper's Gbps become Mbps here; shapes are rate-free.
CAPACITY = mbps(40)
RES1 = mbps(0.4)
RES2 = mbps(0.8)
PACKET = 500  # bytes


def build_port(overuse_res1: bool = False):
    net = ColibriNetwork(build_two_isd_topology())
    net.reserve_segments(SRC1, DST, mbps(10))
    net.reserve_segments(SRC2, DST, mbps(10))
    handle1 = net.establish_eer(SRC1, DST, RES1)
    handle2 = net.establish_eer(SRC2, DST, RES2)
    hop1 = [h.isd_as for h in handle1.hops].index(MEASURE)
    hop2 = [h.isd_as for h in handle2.hops].index(MEASURE)
    if overuse_res1:
        source1 = OverusingSource(net.gateway(SRC1), handle1, mbps(40), PACKET)
        # Rogue source AS: no gateway monitoring, no self-policing.
        net.gateway(SRC1).monitor.unwatch(handle1.reservation_id.packed)
    else:
        source1 = ReservationSource(net.gateway(SRC1), handle1, RES1, PACKET)
    source2 = ReservationSource(net.gateway(SRC2), handle2, RES2, PACKET)
    sim = PortSim(net.router(MEASURE), net.clock, CAPACITY)
    return net, sim, AtHop(source1, hop1), AtHop(source2, hop2)


class TestPhase1BestEffortCongestion:
    def test_reservations_protected_from_best_effort_flood(self):
        net, sim, src1, src2 = build_port()
        rates = sim.run(
            duration=0.5,
            colibri_inputs=[(1, src1, "res1"), (2, src2, "res2")],
            best_effort_inputs=[
                (2, BestEffortSource(mbps(39.2), PACKET)),
                (3, BestEffortSource(mbps(40), PACKET)),
            ],
        )
        # Gbps in the paper, (scaled) Gbps here: rates dict is in 1e9 bps
        # units; convert back to the scaled Mbps view.
        res1 = rates.get("res1", 0.0) * 1e9
        res2 = rates.get("res2", 0.0) * 1e9
        best_effort = rates.get(PortSim.BEST_EFFORT, 0.0) * 1e9
        assert res1 == pytest.approx(RES1, rel=0.1)
        assert res2 == pytest.approx(RES2, rel=0.1)
        # Best effort fills the rest of the link, minus the reservations.
        assert best_effort > CAPACITY * 0.9
        assert best_effort < CAPACITY

    def test_without_isolation_reservations_collapse(self):
        """Ablation: put reservation traffic in the same queue as the
        flood (no traffic classes) and it loses packets — Appendix B's
        point about why class isolation is mandatory."""
        net, _, src1, _ = build_port()
        from repro.dataplane.queueing import PriorityScheduler, TrafficClass

        # A shared, realistically small queue (a few ms at 40 Mbps).
        scheduler = PriorityScheduler(CAPACITY, queue_bytes=25_000)
        router = net.router(MEASURE)
        flood = BestEffortSource(mbps(160), PACKET)
        res_offered = res_enqueued = 0
        for _ in range(500):
            now = net.clock.now()
            for size in flood.sizes(now, 0.001):
                scheduler.enqueue(size, TrafficClass.BEST_EFFORT)
            for packet in src1.packets(now, 0.001):
                if router.process(packet).verdict.is_drop:
                    continue
                res_offered += 1
                if scheduler.enqueue(packet.total_size, TrafficClass.BEST_EFFORT):
                    res_enqueued += 1
            scheduler.drain(0.001)
            net.clock.advance(0.001)
        assert res_offered > 0
        # The flood keeps the shared queue full, so reservation packets
        # tail-drop — no guarantee survives without isolation.
        assert res_enqueued < res_offered


class TestPhase2UnauthenticTraffic:
    def test_bogus_colibri_filtered(self):
        net, sim, src1, src2 = build_port()
        bogus = BogusColibriSource(
            asid(1, 121),
            tuple((h.ingress, h.egress) for h in [] ) or ((0, 1), (2, 0)),
            rate=mbps(20),
            packet_bytes=PACKET,
            expiry=net.clock.now() + 100,
        )
        rates = sim.run(
            duration=0.5,
            colibri_inputs=[
                (1, src1, "res1"),
                (2, src2, "res2"),
                (3, AtHop(bogus, 0), PortSim.UNAUTH),
            ],
            best_effort_inputs=[
                (2, BestEffortSource(mbps(39.2), PACKET)),
                (3, BestEffortSource(mbps(20), PACKET)),
            ],
        )
        assert rates.get(PortSim.UNAUTH, 0.0) == 0.0
        assert sim.router_drops[Verdict.DROP_BAD_HVF] > 0
        assert rates.get("res1", 0.0) * 1e9 == pytest.approx(RES1, rel=0.1)
        assert rates.get("res2", 0.0) * 1e9 == pytest.approx(RES2, rel=0.1)


class TestPhase3Overuse:
    def test_overuser_policed_without_collateral(self):
        net, sim, src1, src2 = build_port(overuse_res1=True)
        rates = sim.run(
            duration=0.5,
            colibri_inputs=[(1, src1, "res1"), (2, src2, "res2")],
            best_effort_inputs=[
                (2, BestEffortSource(mbps(39.2), PACKET)),
                (3, BestEffortSource(mbps(20), PACKET)),
            ],
        )
        res1 = rates.get("res1", 0.0) * 1e9
        res2 = rates.get("res2", 0.0) * 1e9
        # The overuser is limited to (about) its guarantee: allow the
        # token-bucket burst plus pre-detection leakage at short scale.
        assert res1 < RES1 * 6
        assert res1 < mbps(40) * 0.25  # far below the offered 40
        # The conforming reservation is untouched.
        assert res2 == pytest.approx(RES2, rel=0.1)
        assert (
            sim.router_drops.get(Verdict.DROP_OVERUSE, 0)
            + sim.router_drops.get(Verdict.DROP_BLOCKED, 0)
            > 0
        )
