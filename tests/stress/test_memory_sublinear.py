"""Stress: reservation state must stay sublinear in processed flows.

The flash-crowd campaign multiplies arrivals ~8× between its phases;
the reservation-store heap may not follow.  Expired EERs are swept, so
state tracks *live* reservations, not cumulative arrivals — the same
property the ``memory_footprint.txt`` CI artifact row records.
"""
# Wall-clock budgets measure real elapsed time on purpose (the whole
# point of a load budget); the injected-Clock rule does not apply here.
# colibri-lint: disable-file=CL001

import time

import pytest

from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import flash_crowd
from tests._campaign_budgets import SCALE, budget, rss_mb


@pytest.fixture(scope="module")
def run():
    runner = CampaignRunner(flash_crowd(SCALE, seed=11))
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def test_campaign_green(run):
    _, result, _ = run
    assert result.ok, result.violations


def test_state_sublinear_in_arrivals(run):
    _, result, _ = run
    baseline, flash = result.phase_reports
    arrival_growth = flash.stats["arrivals"] / max(1, baseline.stats["arrivals"])
    store_growth = flash.memory["store_bytes"] / max(
        1.0, baseline.memory["store_bytes"]
    )
    assert arrival_growth >= 4.0, "surge did not materialize"
    # Several-fold more arrivals, bounded store: sweeping works.
    assert store_growth < 2.0, (
        f"store grew {store_growth:.2f}x for {arrival_growth:.1f}x arrivals"
    )


def test_journal_retains_everything(run):
    runner, result, _ = run
    journal = runner.network.obs.journal
    assert journal.stats()["dropped"] == 0
    assert journal.total_events == len(result.journal_jsonl.splitlines())


def test_rss_ceiling(run):
    _, _, _ = run
    assert rss_mb() < budget()["rss_mb"]
