"""Stress: coordinated multi-AS overuse against one victim (§4.8).

Three ASes in different cones send several times their reserved rate
over *valid* EERs.  The policing pipeline must confirm each offender
deterministically, blocklist exactly the three attacker ASes — nobody
else — and every punitive verdict must trace back to an
identity-verified HVF (enforced by the harness checker).
"""
# Wall-clock budgets measure real elapsed time on purpose (the whole
# point of a load budget); the injected-Clock rule does not apply here.
# colibri-lint: disable-file=CL001

import time

import pytest

from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import endpoints, multi_as_overuse
from tests._campaign_budgets import SCALE, budget


@pytest.fixture(scope="module")
def run():
    runner = CampaignRunner(multi_as_overuse(SCALE, seed=7))
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def test_campaign_green(run):
    _, result, _ = run
    assert result.ok, result.violations
    assert result.replay_equivalent


def test_wall_clock_budget(run):
    _, _, wall = run
    assert wall < budget()["wall_seconds"]


def test_every_attacker_confirmed_and_blocked(run):
    runner, result, _ = run
    src, dst, victim, att_a, att_b, att_c = endpoints(SCALE, 6)
    attackers = {att_a, att_b, att_c}
    blocked = set()
    for stack in runner.network._stacks.values():
        blocked.update(stack.router.blocklist.blocked_ases())
    assert blocked == attackers, (
        f"blocklist {sorted(map(str, blocked))} != attackers"
    )
    assault = result.phase_reports[-1]
    # One monitor confirmation per attacker, then hard drops.
    assert assault.attack_verdicts.get("drop_overuse", 0) >= len(attackers)
    assert assault.attack_verdicts.get("drop_blocked", 0) > 0


def test_honest_traffic_untouched(run):
    runner, result, _ = run
    src, dst, victim, *_ = endpoints(SCALE, 6)
    for stack in runner.network._stacks.values():
        assert src not in stack.cserv.denied_sources
        assert victim not in stack.cserv.denied_sources
    calm = result.phase_reports[0]
    assert calm.stats["arrivals"] == calm.stats["admitted"]
