"""Stress: the DDoS threat mix beyond Table 2.

Simultaneously: forged-HVF floods hammer two victim-AS routers under a
spoofed honest source address, a rogue AS overuses a valid EER, and
honest churn keeps arriving.  The paper's §4.8 asymmetry must hold:

* the rogue (cryptographically identified by its valid HVFs) is
  confirmed and blocklisted;
* the spoofed "source" of the forged floods is NOT punished — a forged
  packet never identity-verifies, so it can never trigger punitive
  action against the AS written into its header;
* honest admissions keep succeeding throughout, and the drop-burn SLO
  alert fires during the flood and resolves after the drain.
"""
# Wall-clock budgets measure real elapsed time on purpose (the whole
# point of a load budget); the injected-Clock rule does not apply here.
# colibri-lint: disable-file=CL001

import time

import pytest

from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import endpoints, ddos_mix
from tests._campaign_budgets import SCALE, budget


@pytest.fixture(scope="module")
def run():
    runner = CampaignRunner(ddos_mix(SCALE, seed=7))
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def test_campaign_green(run):
    _, result, _ = run
    assert result.ok, result.violations
    assert result.replay_equivalent


def test_wall_clock_budget(run):
    _, _, wall = run
    assert wall < budget()["wall_seconds"]


def test_forged_floods_dropped_without_punishment(run):
    runner, result, _ = run
    src, dst, victim_a, victim_b, rogue, rogue_dst = endpoints(SCALE, 6)
    mix = result.phase_reports[0]
    assert mix.attack_verdicts.get("drop_bad_hvf", 0) > 0
    blocked = set()
    for stack in runner.network._stacks.values():
        blocked.update(stack.router.blocklist.blocked_ases())
        assert src not in stack.cserv.denied_sources
    # Spoofing cannot get the honest AS punished...
    assert src not in blocked
    # ...while the rogue overuser, whose packets identity-verify, is.
    assert blocked == {rogue}


def test_honest_service_survives_the_mix(run):
    _, result, _ = run
    mix = result.phase_reports[0]
    assert mix.stats["arrivals"] > 0
    assert mix.stats["admitted"] == mix.stats["arrivals"]


def test_drop_burn_alert_fires_and_resolves(run):
    _, result, _ = run
    names = [(name, old, new) for _, name, old, new in result.transitions]
    assert ("campaign_drop_burn", "pending", "firing") in names
    assert ("campaign_drop_burn", "resolved", "ok") in names
