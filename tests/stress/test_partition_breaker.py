"""Stress: control-plane partition and circuit-breaker interaction.

Mid-campaign, the destination AS stops answering control-plane calls.
Admissions and renewals toward it must fail fast (breakers opening, not
hanging retries), the fabric must stay conservative (accounting stays
clean — harness checker), and after the partition heals the recovery
phase must admit traffic again and drain to zero residual state.
"""
# Wall-clock budgets measure real elapsed time on purpose (the whole
# point of a load budget); the injected-Clock rule does not apply here.
# colibri-lint: disable-file=CL001

import json
import time

import pytest

from repro.obs.events import BREAKER_TRANSITION
from repro.sim.campaign import CampaignRunner
from repro.sim.campaigns import partition_recovery
from tests._campaign_budgets import budget, SCALE


@pytest.fixture(scope="module")
def run():
    runner = CampaignRunner(partition_recovery(SCALE, seed=7))
    start = time.perf_counter()
    result = runner.run()
    return runner, result, time.perf_counter() - start


def test_campaign_green(run):
    _, result, _ = run
    assert result.ok, result.violations
    assert result.replay_equivalent


def test_wall_clock_budget(run):
    _, _, wall = run
    assert wall < budget()["wall_seconds"]


def test_partition_rejects_and_recovery_admits(run):
    _, result, _ = run
    steady, partition, recovery = result.phase_reports
    assert steady.stats["admitted"] > 0
    # During the partition everything toward the dead AS fails.
    assert partition.stats["admitted"] == 0
    assert (
        partition.stats["rejected"] + partition.stats["renewal_failures"] > 0
    )
    # Healing restores service.
    assert recovery.stats["admitted"] > 0
    assert recovery.stats["rejected"] == 0


def test_breakers_observed_in_journal(run):
    _, result, _ = run
    transitions = [
        json.loads(line)
        for line in result.journal_jsonl.splitlines()
        if json.loads(line)["type"] == BREAKER_TRANSITION
    ]
    assert transitions, "partition produced no breaker transitions"


def test_drains_to_zero(run):
    _, result, _ = run
    assert result.phase_reports[-1].memory["live_eers"] == 0.0
