"""Property-style tests for the metrics layer (seeded random inputs).

Three invariant families, per the ISSUE checklist:

* **bucket monotonicity** — a histogram's cumulative bucket counts are
  non-decreasing, end at the total observation count, and agree with a
  brute-force recount of the raw observations;
* **merge associativity** — folding per-process registries is
  independent of grouping (and, for counters/histograms, of order), the
  property the shard executor's telemetry aggregation relies on;
* **exposition round-trip** — the rendered text parses under a strict
  line grammar back into exactly the instrument states that produced
  it, including the combined ``render_metrics(telemetry, registry=…)``
  output.
"""

import math
import random
import re

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_RETRY_BUCKETS,
    Histogram,
    MetricsRegistry,
    merge_registries,
)
from repro.obs.profile import Profiler, active_profiler, profiled, profiling
from repro.util.clock import SimClock
from repro.util.metrics import merge_counters

# ------------------------------------------------------------ line grammar --

#: Exactly the three line forms the exposition format allows.  Anything
#: else — trailing blanks, malformed floats, bad metric names — fails
#: the parse, so the tests cannot pass on sloppy output.
_HELP_RE = re.compile(r"^# HELP (?P<name>[a-zA-Z_][a-zA-Z0-9_]*) (?P<text>.+)$")
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_][a-zA-Z0-9_]*) (?P<kind>counter|gauge|histogram)$"
)
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*)\})?"
    r" (?P<value>[+-]?(?:[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?|\+?Inf|inf))$"
)


def parse_exposition(text: str):
    """Strict parser: returns ``(types, samples)`` where ``samples`` maps
    ``(sample_name, labels_text)`` to float.  Raises on any line that
    does not match the grammar, and on duplicate samples."""
    if not text.endswith("\n"):
        raise ValueError("exposition text must end with a newline")
    types = {}
    samples = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            if not _HELP_RE.match(line):
                raise ValueError(f"malformed HELP line: {line!r}")
            continue
        if line.startswith("# TYPE "):
            match = _TYPE_RE.match(line)
            if not match:
                raise ValueError(f"malformed TYPE line: {line!r}")
            types[match.group("name")] = match.group("kind")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"malformed sample line: {line!r}")
        key = (match.group("name"), match.group("labels") or "")
        if key in samples:
            raise ValueError(f"duplicate sample {key}")
        samples[key] = float(match.group("value"))
    return types, samples


def random_histogram(rng, name="latency_seconds", buckets=DEFAULT_LATENCY_BUCKETS):
    """A histogram filled with seeded observations spanning every bucket
    (log-uniform below, around, and beyond the finite bounds)."""
    histogram = Histogram(name, buckets)
    observations = []
    for _ in range(rng.randrange(50, 200)):
        value = 10 ** rng.uniform(-5, 1)  # 10us .. 10s, +Inf tail included
        histogram.observe(value)
        observations.append(value)
    return histogram, observations


# ------------------------------------------------------- bucket invariants --


class TestHistogramInvariants:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_cumulative_counts_monotone_and_complete(self, seed):
        rng = random.Random(seed)
        histogram, observations = random_histogram(rng)
        cumulative = histogram.cumulative_counts()
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))
        assert cumulative[-1] == histogram.count == len(observations)
        assert histogram.sum == pytest.approx(sum(observations))
        # Brute-force recount: bucket b holds observations <= bound(b)
        # (le semantics), exclusively above the previous bound.
        bounds = histogram.buckets + (math.inf,)
        for index, bound in enumerate(bounds):
            expected = sum(1 for v in observations if v <= bound)
            assert cumulative[index] == expected, f"le={bound}"

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", ())
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", (1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("h", (1.0, math.inf))
        with pytest.raises(ValueError):
            Histogram("bad name", (1.0,))

    def test_percentile_is_bucket_upper_bound(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.7, 3.0):
            histogram.observe(value)
        assert histogram.percentile(25) == 1.0
        assert histogram.percentile(75) == 2.0
        assert histogram.percentile(100) == 4.0
        histogram.observe(100.0)  # lands in +Inf
        assert histogram.percentile(100) == math.inf
        with pytest.raises(ValueError):
            histogram.percentile(101)
        with pytest.raises(ValueError):
            Histogram("empty", (1.0,)).percentile(50)

    def test_merge_requires_equal_bounds(self):
        a = Histogram("h", (1.0, 2.0))
        b = Histogram("h", (1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge_from(b)


# ---------------------------------------------------------- merge algebra --


def random_registry(rng, gauge_value=None):
    registry = MetricsRegistry()
    histogram = registry.histogram("admission_latency_seconds")
    for _ in range(rng.randrange(10, 50)):
        histogram.observe(10 ** rng.uniform(-5, 0))
    retries = registry.histogram("retry_attempts", buckets=DEFAULT_RETRY_BUCKETS)
    for _ in range(rng.randrange(5, 20)):
        retries.observe(rng.randrange(1, 5))
    registry.counter("setups_total").inc(rng.randrange(1, 100))
    if gauge_value is not None:
        registry.gauge("occupancy").set(gauge_value)
    return registry


def additive_state(registry):
    """The registry's state minus gauges (whose merge is last-writer-wins
    by design, hence order-sensitive and excluded from the associativity
    and commutativity claims)."""
    return {
        name: payload
        for name, payload in registry.state().items()
        if payload["kind"] != "gauge"
    }


def assert_states_equal(a, b):
    """State equality with float-sum tolerance: histogram ``sum`` (and
    counter values) are float folds, and float addition regroups with
    rounding in the last ulp — the *integer* bucket counts are the part
    that must match bit-for-bit."""
    assert a.keys() == b.keys()
    for name in a:
        mine, theirs = dict(a[name]), dict(b[name])
        if mine["kind"] == "histogram":
            assert mine.pop("sum") == pytest.approx(theirs.pop("sum"))
        else:
            assert mine.pop("value") == pytest.approx(theirs.pop("value"))
        assert mine == theirs, name


class TestMergeAlgebra:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_merge_is_associative(self, seed):
        rng = random.Random(seed)
        parts = [random_registry(rng, gauge_value=i) for i in range(3)]

        left = merge_registries([parts[0], parts[1]]).merge(parts[2])
        right = MetricsRegistry.from_state(parts[0].state()).merge(
            merge_registries([parts[1], parts[2]])
        )
        flat = merge_registries(parts)
        assert_states_equal(left.state(), right.state())
        assert_states_equal(left.state(), flat.state())

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_additive_instruments_commute(self, seed):
        rng = random.Random(seed)
        parts = [random_registry(rng) for _ in range(3)]
        forward = merge_registries(parts)
        backward = merge_registries(list(reversed(parts)))
        assert_states_equal(
            additive_state(forward), additive_state(backward)
        )

    def test_merge_leaves_sources_intact_and_adopts_unknown(self):
        a = MetricsRegistry()
        a.counter("only_in_a").inc(5)
        b = MetricsRegistry()
        b.counter("only_in_b").inc(7)
        merged = merge_registries([a, b])
        assert merged.get("only_in_a").value == 5
        assert merged.get("only_in_b").value == 7
        assert a.get("only_in_b") is None  # sources untouched
        assert b.get("only_in_a") is None

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))
        # Omitting buckets accepts the existing registration.
        assert registry.histogram("h").buckets == (1.0, 2.0)

    def test_merge_counters_is_plain_keywise_addition(self):
        snapshots = [{"a": 1, "b": 2}, {"b": 3, "c": 4}, {}]
        merged = merge_counters(snapshots)
        assert merged == {"a": 1, "b": 5, "c": 4}
        backward = merge_counters(list(reversed(snapshots)))
        assert merged == backward

    def test_state_round_trip_freezes_callback_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("live").set_function(lambda: 0.75)
        copy = MetricsRegistry.from_state(registry.state())
        assert copy.get("live").value == 0.75
        # The copy is a frozen reading, not a live callback.
        assert copy.state()["live"]["value"] == 0.75


# ------------------------------------------------------ exposition parsing --


class TestExpositionRoundTrip:
    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_registry_render_round_trips(self, seed):
        rng = random.Random(seed)
        registry = random_registry(rng, gauge_value=rng.random())
        types, samples = parse_exposition(registry.render())

        for inst in registry.instruments():
            full = f"colibri_{inst.name}"
            assert types[full] == inst.kind
        histogram = registry.get("admission_latency_seconds")
        base = "colibri_admission_latency_seconds"
        cumulative = histogram.cumulative_counts()
        for bound, expected in zip(
            list(histogram.buckets) + [math.inf], cumulative
        ):
            label = (
                f'le="{int(bound)}"'
                if bound != math.inf and bound == int(bound)
                else ('le="+Inf"' if bound == math.inf else f'le="{bound!r}"')
            )
            assert samples[(f"{base}_bucket", label)] == expected
        assert samples[(f"{base}_count", "")] == histogram.count
        assert samples[(f"{base}_sum", "")] == pytest.approx(histogram.sum)
        assert samples[("colibri_setups_total", "")] == registry.get(
            "setups_total"
        ).value
        assert samples[("colibri_occupancy", "")] == pytest.approx(
            registry.get("occupancy").value
        )

    def test_combined_telemetry_and_registry_exposition(self):
        from repro.util.observability import render_metrics

        registry = MetricsRegistry()
        registry.histogram("retry_attempts", buckets=DEFAULT_RETRY_BUCKETS).observe(2)
        registry.gauge("occupancy").set(0.5)
        telemetry = {
            "1-ff00:0:1": {"segments": 2, "eers": 1},
            "total": {"segments": 2, "eers": 1},
        }
        text = render_metrics(telemetry, registry=registry)
        types, samples = parse_exposition(text)
        assert samples[("colibri_segments", 'isd_as="1-ff00:0:1"')] == 2
        assert samples[("colibri_segments", "")] == 2
        assert samples[("colibri_retry_attempts_bucket", 'le="2"')] == 1
        assert samples[("colibri_retry_attempts_bucket", 'le="+Inf"')] == 1
        assert samples[("colibri_occupancy", "")] == 0.5
        assert types["colibri_retry_attempts"] == "histogram"
        # Without a registry the output is unchanged legacy exposition.
        legacy = render_metrics(telemetry)
        assert text.startswith(legacy)
        parse_exposition(legacy)  # still grammar-clean

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_exposition("colibri_x 1")  # missing trailing newline
        with pytest.raises(ValueError):
            parse_exposition("# TYPE colibri_x summary\n")
        with pytest.raises(ValueError):
            parse_exposition("colibri x 1\n")
        with pytest.raises(ValueError):
            parse_exposition("colibri_x 1\ncolibri_x 2\n")


# ------------------------------------------------------------- profiling --


class TestProfiler:
    def test_disabled_decorator_is_a_plain_call(self):
        calls = []

        @profiled("site")
        def work(x):
            calls.append(x)
            return x + 1

        assert active_profiler() is None
        assert work(1) == 2
        assert calls == [1]
        assert work.__profiled_name__ == "site"

    def test_enabled_decorator_accumulates_deterministic_timings(self):
        clock = SimClock(start=0.0)

        @profiled("site")
        def work(seconds):
            clock.advance(seconds)
            return seconds

        with profiling(Profiler(clock=clock)) as profiler:
            work(0.25)
            work(0.75)
        entry = profiler.entry("site")
        assert entry.calls == 2
        assert entry.total == pytest.approx(1.0)
        assert entry.min == pytest.approx(0.25)
        assert entry.max == pytest.approx(0.75)
        snapshot = profiler.snapshot()
        assert snapshot["site"]["mean_seconds"] == pytest.approx(0.5)
        # The context manager uninstalled the profiler on exit.
        assert active_profiler() is None
        assert work(0.5) == 0.5  # disabled again, still callable

    def test_double_install_rejected(self):
        from repro.obs.profile import install_profiler, uninstall_profiler

        profiler = install_profiler()
        try:
            with pytest.raises(RuntimeError):
                install_profiler()
        finally:
            assert uninstall_profiler() is profiler
        assert uninstall_profiler() is None

    def test_errors_are_still_timed(self):
        clock = SimClock(start=0.0)

        @profiled("site")
        def explode():
            clock.advance(1.0)
            raise RuntimeError("boom")

        with profiling(Profiler(clock=clock)) as profiler:
            with pytest.raises(RuntimeError):
                explode()
        assert profiler.entry("site").calls == 1
        assert profiler.entry("site").total == pytest.approx(1.0)
