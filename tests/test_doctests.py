"""Run the doctest examples embedded in module docstrings.

Keeps the inline examples in the documentation honest: if a docstring
example drifts from the implementation, the suite fails.
"""

import doctest

import pytest

import repro.topology.addresses
import repro.util.metrics
import repro.util.units

MODULES_WITH_EXAMPLES = [
    repro.util.units,
    repro.util.metrics,
    repro.topology.addresses,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"{module.__name__} lost its doctest examples"
