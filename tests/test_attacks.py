"""Security tests: the §5 DDoS-resilience claims, attack by attack."""

import pytest

from repro.attacks import DocAttack, ReplayAttack, SpoofingAttack, VolumetricAttack
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC = asid(1, 101)
DST = asid(2, 101)
ATTACKER = asid(1, 111)


@pytest.fixture
def net():
    return ColibriNetwork(build_two_isd_topology())


class TestReplayAttack:
    def test_replays_suppressed_and_victim_not_framed(self, net):
        """§5.1: 'all copies of the same packet are thus discarded' —
        and the honest source is not blocked (no framing)."""
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        vantage = asid(2, 1)  # on-path core AS turns malicious
        attack = ReplayAttack(net, vantage)
        for index in range(5):
            report = net.send(SRC, handle, f"packet {index}".encode())
            assert report.delivered
            attack.observe_delivery(report)
        outcome = attack.replay(copies=20)
        assert outcome.captured == 5
        assert outcome.replayed == 100
        assert outcome.replays_suppressed == 100
        assert outcome.replays_delivered == 0
        assert not outcome.victim_blocked

    def test_original_traffic_unaffected_after_attack(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        attack = ReplayAttack(net, asid(1, 1))
        report = net.send(SRC, handle, b"first")
        attack.observe_delivery(report)
        attack.replay(copies=50)
        assert net.send(SRC, handle, b"after the attack").delivered


class TestSpoofingAttack:
    def test_forged_packets_all_rejected(self, net):
        """§5.1: source authentication defeats spoofing; §7.1 threat 2:
        random tags cannot overwhelm the router."""
        attack = SpoofingAttack(net, victim=SRC, target=asid(1, 1))
        report = attack.forge_fresh(count=200)
        assert report.all_rejected
        assert report.rejected_bad_hvf == 200

    def test_mutated_authentic_packets_rejected(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        packet = net.gateway(SRC).send(handle.reservation_id, b"genuine")
        packet.hop_index = 1
        attack = SpoofingAttack(net, victim=SRC, target=asid(1, 11))
        report = attack.mutate_authentic(packet, count=40)
        assert report.accepted == 0
        assert report.rejected_bad_hvf == 40

    def test_victim_not_blocked_by_spoofing(self, net):
        """Framing via spoofed packets fails: bad-HVF drops never reach
        the policing pipeline."""
        attack = SpoofingAttack(net, victim=SRC, target=asid(1, 1))
        attack.forge_fresh(count=500)
        router = net.router(asid(1, 1))
        assert not router.blocklist.is_blocked(SRC, net.clock.now())


class TestVolumetricAttack:
    def test_overuser_blocked_and_benign_protected(self, net):
        """§5.1 / Table 2 phase 3: the rogue AS 'can very briefly cause
        congestion, but would afterwards be prevented'."""
        net.reserve_segments(SRC, DST, gbps(1))
        net.reserve_segments(ATTACKER, DST, gbps(1))
        benign_handle = net.establish_eer(SRC, DST, mbps(8))
        attack_handle = net.establish_eer(ATTACKER, DST, mbps(8))
        attack = VolumetricAttack(net, ATTACKER, SRC, DST)
        outcome = attack.run(
            attack_handle, benign_handle, rounds=600, overuse_factor=10.0
        )
        assert outcome.attacker_blocked
        # The attacker's flood mostly died in the network.
        assert outcome.attack_delivery_rate < 0.5
        # The benign reservation kept flowing throughout.
        assert outcome.benign_delivery_rate > 0.95

    def test_conforming_heavy_user_not_blocked(self, net):
        """A flow at exactly its reserved rate is never punished."""
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(8))
        tick = 0.001
        payload = b"x" * (int(mbps(8) * tick / 8) - 120)
        for _ in range(500):
            assert net.send(SRC, handle, payload).delivered
            net.advance(tick)
        for isd_as in [hop.isd_as for hop in handle.hops[1:]]:
            assert not net.router(isd_as).blocklist.is_blocked(SRC, net.clock.now())


class TestDocAttack:
    def test_request_flood_rate_limited(self, net):
        attack = DocAttack(net, attacker=asid(1, 1), target=asid(2, 1))
        # Tighten the victim CServ's limiter so the test flood trips it.
        net.cserv(asid(2, 1)).request_limiter.rate = 5.0
        net.cserv(asid(2, 1)).request_limiter.burst = 5.0
        report = attack.flood_requests(count=50)
        assert report.flood_rejected > 0
        assert report.rejection_rate > 0.5

    def test_victim_renewal_survives_flood(self, net):
        """§5.3: renewals over existing reservations are protected
        control traffic — a setup flood cannot block them."""
        net.reserve_segments(SRC, DST, gbps(1))
        victim_handle = net.establish_eer(SRC, DST, mbps(10))
        net.cserv(asid(2, 1)).request_limiter.rate = 5.0
        net.cserv(asid(2, 1)).request_limiter.burst = 5.0
        attack = DocAttack(net, attacker=asid(1, 1), target=asid(2, 1))
        attack.flood_requests(count=50)
        net.advance(2.0)
        assert attack.victim_renewal_under_flood(victim_handle, SRC)


class TestPathTampering:
    def test_rerouting_attempt_breaks_hvf(self, net):
        """An on-path AS rewriting the Path field (to divert traffic
        through a colluding AS) breaks every downstream HVF: Eq. (4)
        covers each hop's (In, Eg) pair."""
        from repro.packets.fields import PathField

        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        packet = net.gateway(SRC).send(handle.reservation_id, b"payload")
        packet.hop_index = 1
        pairs = list(packet.path.interface_pairs)
        pairs[1] = (pairs[1][0], pairs[1][1] + 1)  # divert the egress
        packet.path = PathField(tuple(pairs))
        from repro.dataplane.router import Verdict

        result = net.router(asid(1, 11)).process(packet)
        assert result.verdict is Verdict.DROP_BAD_HVF


class TestUnauthenticControlFlood:
    def test_cserv_rejects_forged_control_cheaply(self, net):
        """§5.3: 'the CServ can very efficiently filter unauthentic
        packets' — a forged renewal flood is rejected at MAC
        verification, before any admission computation runs."""
        from repro.control.auth import AuthenticatedRequest
        from repro.errors import MacVerificationError
        from repro.packets.control import SegRenewalRequest

        net.reserve_segments(SRC, DST, gbps(1))
        transit = net.cserv(asid(1, 11))
        segr = transit.store.segments()[0]
        decisions_before = transit.seg_admission.decisions
        rejected = 0
        for index in range(50):
            request = SegRenewalRequest(
                reservation=segr.reservation_id,
                new_bandwidth=1e9,
                min_bandwidth=0.0,
                new_expiry=net.clock.now() + 300,
                new_version=100 + index,
            )
            # Forged envelope: attacker AS signs, then claims SRC.
            auth = AuthenticatedRequest.create(
                net.directory, ATTACKER, [ATTACKER, asid(1, 11)], request
            )
            auth.source = segr.reservation_id.src_as
            try:
                transit.handle_seg_renewal(request, auth, hop_index=1)
            except MacVerificationError:
                rejected += 1
        assert rejected == 50
        # No admission work was spent on the forgeries.
        assert transit.seg_admission.decisions == decisions_before
