"""Unit and property tests for repro.packets: fields, packet, control msgs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import L_HVF
from repro.errors import PacketDecodeError, PacketFieldError
from repro.packets import ColibriPacket, EerInfo, PacketType, PathField, ResInfo, Timestamp
from repro.packets.control import (
    AsGrant,
    EerRenewalRequest,
    EerSetupRequest,
    EerSetupResponse,
    SegActivationRequest,
    SegRenewalRequest,
    SegSetupRequest,
    SegSetupResponse,
    SegTeardownNotice,
    decode_message,
)
from repro.packets.wire import Reader, Writer
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.segments import HopField

SRC = IsdAs.parse("1-ff00:0:110")
DST = IsdAs.parse("2-ff00:0:220")


def res_info(local_id=7, bw=1e9, expiry=100.0, version=1):
    return ResInfo(
        reservation=ReservationId(SRC, local_id),
        bandwidth=bw,
        expiry=expiry,
        version=version,
    )


def sample_packet(payload=b"hello", packet_type=PacketType.EER_DATA):
    path = PathField(((0, 1), (2, 3), (4, 0)))
    eer = EerInfo(HostAddr(1), HostAddr(2)) if packet_type == PacketType.EER_DATA else None
    return ColibriPacket(
        packet_type=packet_type,
        path=path,
        res_info=res_info(),
        timestamp=Timestamp(123456, 7),
        hvfs=[b"\x01\x02\x03\x04"] * 3,
        eer_info=eer,
        payload=payload,
    )


class TestWire:
    def test_roundtrip_all_types(self):
        data = (
            Writer()
            .u8(7)
            .u16(300)
            .u32(70000)
            .u64(1 << 40)
            .f64(3.25)
            .raw(b"abc")
            .blob(b"variable")
            .finish()
        )
        reader = Reader(data)
        assert reader.u8() == 7
        assert reader.u16() == 300
        assert reader.u32() == 70000
        assert reader.u64() == 1 << 40
        assert reader.f64() == 3.25
        assert reader.raw(3) == b"abc"
        assert reader.blob() == b"variable"
        reader.expect_end()

    def test_truncation_detected(self):
        reader = Reader(b"\x00")
        with pytest.raises(PacketDecodeError):
            reader.u32()

    def test_trailing_bytes_detected(self):
        reader = Reader(b"\x00\x01")
        reader.u8()
        with pytest.raises(PacketDecodeError):
            reader.expect_end()


class TestPathField:
    def test_pack_unpack(self):
        path = PathField(((0, 1), (5, 9), (3, 0)))
        assert PathField.unpack(path.packed, 3) == path

    def test_packed_pair_is_slice(self):
        path = PathField(((0, 1), (5, 9)))
        assert path.packed_pair(1) == path.packed[4:8]

    def test_empty_rejected(self):
        with pytest.raises(PacketFieldError):
            PathField(())

    def test_out_of_range_ifid(self):
        with pytest.raises(PacketFieldError):
            PathField(((0, 1 << 16),))

    def test_from_hops(self):
        hops = [HopField(SRC, 0, 4), HopField(DST, 2, 0)]
        assert PathField.from_hops(hops).interface_pairs == ((0, 4), (2, 0))


class TestResInfo:
    def test_pack_unpack(self):
        info = res_info(bw=0.4e9, expiry=123.5, version=3)
        assert ResInfo.unpack(info.packed) == info

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(PacketFieldError):
            res_info(bw=-1)

    def test_version_range(self):
        with pytest.raises(PacketFieldError):
            res_info(version=1 << 16)

    def test_truncated(self):
        with pytest.raises(PacketDecodeError):
            ResInfo.unpack(b"\x00" * 10)


class TestTimestamp:
    def test_create_and_recover(self):
        ts = Timestamp.create(now=84.0, expiry=100.0)
        assert ts.absolute(100.0) == pytest.approx(84.0, abs=1e-5)

    def test_after_expiry_rejected(self):
        with pytest.raises(PacketFieldError):
            Timestamp.create(now=101.0, expiry=100.0)

    def test_pack_unpack(self):
        ts = Timestamp(987654321, sequence=99)
        assert Timestamp.unpack(ts.packed) == ts

    def test_uniqueness_via_sequence(self):
        a = Timestamp(1000, sequence=0)
        b = Timestamp(1000, sequence=1)
        assert a != b and a.packed != b.packed

    @given(st.integers(0, (1 << 48) - 1), st.integers(0, (1 << 16) - 1))
    def test_roundtrip_property(self, micros, seq):
        ts = Timestamp(micros, seq)
        assert Timestamp.unpack(ts.packed) == ts


class TestColibriPacket:
    def test_roundtrip_eer_data(self):
        packet = sample_packet()
        parsed = ColibriPacket.from_bytes(packet.to_bytes())
        assert parsed.res_info == packet.res_info
        assert parsed.path == packet.path
        assert parsed.eer_info == packet.eer_info
        assert parsed.hvfs == packet.hvfs
        assert parsed.payload == b"hello"
        assert parsed.timestamp == packet.timestamp

    def test_roundtrip_segment_packet(self):
        packet = sample_packet(packet_type=PacketType.SEGMENT)
        parsed = ColibriPacket.from_bytes(packet.to_bytes())
        assert parsed.eer_info is None
        assert not parsed.is_eer_data

    def test_total_size_matches_serialization(self):
        packet = sample_packet(payload=b"x" * 137)
        assert packet.total_size == len(packet.to_bytes())

    def test_eer_requires_eer_info(self):
        with pytest.raises(PacketFieldError):
            ColibriPacket(
                packet_type=PacketType.EER_DATA,
                path=PathField(((0, 1),)),
                res_info=res_info(),
                timestamp=Timestamp(0),
                hvfs=[b"\x00" * L_HVF],
            )

    def test_hvf_count_must_match_hops(self):
        with pytest.raises(PacketFieldError):
            ColibriPacket(
                packet_type=PacketType.SEGMENT,
                path=PathField(((0, 1), (1, 0))),
                res_info=res_info(),
                timestamp=Timestamp(0),
                hvfs=[b"\x00" * L_HVF],
            )

    def test_advance_hop(self):
        packet = sample_packet()
        assert packet.current_pair() == (0, 1)
        packet.advance_hop()
        assert packet.current_pair() == (2, 3)
        packet.advance_hop()
        with pytest.raises(PacketFieldError):
            packet.advance_hop()

    def test_blank_has_empty_hvfs(self):
        packet = ColibriPacket.blank(
            PacketType.SEGMENT,
            PathField(((0, 1), (1, 0))),
            res_info(),
            Timestamp(0),
        )
        assert all(hvf == ColibriPacket.EMPTY_HVF for hvf in packet.hvfs)

    def test_bad_magic(self):
        data = bytearray(sample_packet().to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(PacketDecodeError):
            ColibriPacket.from_bytes(bytes(data))

    def test_truncated_payload(self):
        data = sample_packet(payload=b"x" * 100).to_bytes()
        with pytest.raises(PacketDecodeError):
            ColibriPacket.from_bytes(data[:-10])

    @given(st.binary(max_size=512))
    def test_payload_roundtrip_property(self, payload):
        packet = sample_packet(payload=payload)
        assert ColibriPacket.from_bytes(packet.to_bytes()).payload == payload


class TestControlMessages:
    HOPS = (
        HopField(SRC, 0, 1),
        HopField(IsdAs.parse("1-ff00:0:111"), 2, 3),
        HopField(DST, 4, 0),
    )

    def roundtrip(self, message):
        decoded = decode_message(message.to_bytes())
        assert decoded == message
        return decoded

    def test_seg_setup_request(self):
        self.roundtrip(
            SegSetupRequest(
                res_info=res_info(),
                hops=self.HOPS,
                min_bandwidth=1e8,
                grants=(AsGrant(SRC, 2e9),),
            )
        )

    def test_seg_setup_response(self):
        self.roundtrip(
            SegSetupResponse(
                res_info=res_info(),
                success=True,
                granted=5e8,
                tokens=(b"\x01\x02\x03\x04", b"\x05\x06\x07\x08"),
            )
        )

    def test_failed_response_carries_grants(self):
        message = self.roundtrip(
            SegSetupResponse(
                res_info=res_info(),
                success=False,
                granted=0.0,
                grants=(AsGrant(SRC, 1e9), AsGrant(DST, 1e7)),
            )
        )
        # Bottleneck diagnosis: the smallest grant locates the bottleneck.
        bottleneck = min(message.grants, key=lambda g: g.granted)
        assert bottleneck.isd_as == DST

    def test_seg_renewal(self):
        self.roundtrip(
            SegRenewalRequest(
                reservation=ReservationId(SRC, 7),
                new_bandwidth=2e9,
                min_bandwidth=1e8,
                new_expiry=400.0,
                new_version=2,
            )
        )

    def test_seg_activation(self):
        self.roundtrip(SegActivationRequest(reservation=ReservationId(SRC, 7), version=2))

    def test_seg_teardown(self):
        self.roundtrip(SegTeardownNotice(reservation=ReservationId(SRC, 7)))

    def test_eer_setup_request(self):
        self.roundtrip(
            EerSetupRequest(
                res_info=res_info(),
                eer_info=EerInfo(HostAddr(10), HostAddr(20)),
                hops=self.HOPS,
                segment_ids=(ReservationId(SRC, 1), ReservationId(DST, 2)),
            )
        )

    def test_eer_setup_response(self):
        self.roundtrip(
            EerSetupResponse(
                res_info=res_info(),
                success=True,
                granted=1e8,
                sealed_hopauths=(b"sealed-1", b"sealed-22"),
            )
        )

    def test_eer_renewal(self):
        self.roundtrip(
            EerRenewalRequest(
                reservation=ReservationId(SRC, 9),
                new_bandwidth=5e7,
                new_expiry=116.0,
                new_version=4,
            )
        )

    def test_with_grant_accumulates(self):
        request = SegSetupRequest(
            res_info=res_info(), hops=self.HOPS, min_bandwidth=0.0
        )
        request = request.with_grant(AsGrant(SRC, 1e9)).with_grant(AsGrant(DST, 2e9))
        assert [g.isd_as for g in request.grants] == [SRC, DST]

    def test_unknown_type_tag(self):
        with pytest.raises(PacketDecodeError):
            decode_message(b"\xff")

    def test_trailing_garbage_rejected(self):
        data = SegTeardownNotice(reservation=ReservationId(SRC, 7)).to_bytes()
        with pytest.raises(PacketDecodeError):
            decode_message(data + b"\x00")

    def test_authenticated_bytes_stable(self):
        message = SegActivationRequest(reservation=ReservationId(SRC, 7), version=2)
        assert message.authenticated_bytes == message.to_bytes()
