"""Equivalence and invalidation tests for the batched fast paths.

The performance work (docs/performance.md) is only admissible because it
is *behavior-preserving*: the σ-cache is soft state whose entries are
verified hints, the batch APIs are loop reorderings, and the prehashed
MAC states are byte-identical to per-call keying.  These tests pin that
contract:

* σ-cache invalidation — renewals mint fresh σs, DRKey epoch rollover
  falls back to the previous epoch's entry, and a poisoned or evicted
  entry can delay but never decide a verdict;
* the equivalence property — the same workload through ``send``/
  ``process``, ``send_batch``/``process_batch``, and a cache-disabled
  router produces byte-identical packets, identical verdict sequences,
  and identical counters;
* the shard executor — a deterministic partition rule and honestly
  labeled measured/modeled results.
"""

import random

import pytest

from repro.constants import DRKEY_VALIDITY, EER_LIFETIME, L_HVF
from repro.crypto.drkey import DrkeyDeriver
from repro.dataplane import ColibriKeys, hop_authenticator
from repro.dataplane.gateway import ColibriGateway, split_batch
from repro.dataplane.router import BorderRouter, Verdict
from repro.dataplane.shards import ShardExecutor, ShardSpec, run_shard, shard_of
from repro.dataplane.sigma_cache import SigmaCache, SigmaEntry
from repro.errors import BandwidthExceeded, ReservationNotFound
from repro.packets.colibri import ColibriPacket
from repro.packets.fields import EerInfo, PathField, ResInfo
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock
from repro.util.units import gbps, mbps

SRC = IsdAs.parse("1-ff00:0:110")
MID = IsdAs.parse("1-ff00:0:111")

PATH = PathField(((0, 1), (2, 3), (4, 0)))
EER = EerInfo(HostAddr(1), HostAddr(2))


def make_stack(now=1000.0, cache=True, capacity=None):
    """A source gateway plus the middle AS's router (hop index 1)."""
    clock = SimClock(now)
    mid_keys = ColibriKeys(DrkeyDeriver(MID, clock, seed=b"mid" * 6))
    gateway = ColibriGateway(SRC, clock)
    if capacity is not None:
        router = BorderRouter(MID, mid_keys, clock, sigma_cache=SigmaCache(capacity=capacity))
    else:
        router = BorderRouter(MID, mid_keys, clock, enable_sigma_cache=cache)
    return clock, gateway, router, mid_keys


def install(gateway, mid_keys, clock, bandwidth=gbps(1), local_id=5, version=1):
    """Install an EER whose middle-hop HopAuth is honestly computed."""
    now = clock.now()
    res_id = ReservationId(SRC, local_id)
    res_info = ResInfo(
        reservation=res_id,
        bandwidth=bandwidth,
        expiry=now + EER_LIFETIME,
        version=version,
    )
    sigma_mid = hop_authenticator(mid_keys.hop_key(now), res_info, EER, 2, 3)
    gateway.install(res_id, PATH, EER, res_info, (b"x" * 16, sigma_mid, b"y" * 16))
    return res_id, res_info


def arriving(gateway, res_id, payload=b"data"):
    """A stamped packet as it arrives at the middle AS."""
    packet = gateway.send(res_id, payload)
    packet.hop_index = 1
    return packet


class TestSigmaCacheInvalidation:
    def test_renewal_misses_and_stores_fresh_sigma(self):
        clock, gateway, router, mid_keys = make_stack()
        cache = router.sigma_cache
        res_id, _ = install(gateway, mid_keys, clock, version=1)
        assert router.validate_only(arriving(gateway, res_id))
        assert router.validate_only(arriving(gateway, res_id))
        assert cache.counters.get("hits") == 1
        assert cache.counters.get("misses") == 1

        # Renewal: version 2 has a different ResInfo, hence different σs.
        install(gateway, mid_keys, clock, local_id=5, version=2)
        packet = arriving(gateway, res_id)
        assert packet.res_info.version == 2
        assert router.validate_only(packet)
        # The new version missed (fresh recompute), it did not reuse v1.
        assert cache.counters.get("misses") == 2
        assert len(cache) == 2
        epoch = int(clock.now() // DRKEY_VALIDITY)
        v1 = cache.get((res_id.packed, 1, epoch))
        v2 = cache.get((res_id.packed, 2, epoch))
        assert v1 is not None and v2 is not None
        assert v1.sigma != v2.sigma

    def test_epoch_rollover_hits_previous_epoch_entry(self):
        # Install and validate just before a DRKey epoch boundary...
        start = DRKEY_VALIDITY - 5.0
        clock, gateway, router, mid_keys = make_stack(now=start)
        cache = router.sigma_cache
        res_id, _ = install(gateway, mid_keys, clock)
        assert router.validate_only(arriving(gateway, res_id))
        assert len(cache) == 1

        # ...then cross it.  The reservation (and its σs, minted from the
        # old epoch's hop key) is still live; the lookup probes the new
        # epoch, falls back to the previous one, and hits.
        clock.advance(7.0)
        assert int(clock.now() // DRKEY_VALIDITY) == 1
        assert router.validate_only(arriving(gateway, res_id))
        assert cache.counters.get("hits") == 1
        assert len(cache) == 1  # no duplicate entry under the new epoch

    def test_epoch_rollover_cold_cache_recomputes_with_old_key(self):
        # Same straddle, but the router has no cached entry: the
        # stateless recompute must itself fall back to the previous
        # epoch's hop key (§4.5 key rotation) and then cache under it.
        start = DRKEY_VALIDITY - 5.0
        clock, gateway, router, mid_keys = make_stack(now=start)
        res_id, _ = install(gateway, mid_keys, clock)
        packet = gateway.send(res_id, b"late")
        packet.hop_index = 1
        clock.advance(7.0)
        assert router.validate_only(arriving(gateway, res_id))
        cache = router.sigma_cache
        assert cache.counters.get("misses") == 1
        # Stored under the minting epoch, addressable via the fallback.
        assert cache.get((res_id.packed, 1, 0)) is not None

    def test_poisoned_entry_never_changes_a_verdict(self):
        clock, gateway, router, mid_keys = make_stack()
        cache = router.sigma_cache
        res_id, res_info = install(gateway, mid_keys, clock)
        assert router.validate_only(arriving(gateway, res_id))
        epoch = int(clock.now() // DRKEY_VALIDITY)
        key = (res_id.packed, 1, epoch)
        assert cache.get(key) is not None

        # Corrupt the entry behind the router's back.
        cache._entries[key] = SigmaEntry(b"poisoned-sigma!!")
        # A forged packet is still rejected...
        forged = arriving(gateway, res_id)
        forged.hvfs[1] = bytes(L_HVF)
        assert not router.validate_only(forged)
        # ...and an honest packet is still accepted (stateless fallback),
        # with the rejected hint counted and the entry healed.
        assert router.validate_only(arriving(gateway, res_id))
        assert cache.counters.get("rejected_hints") >= 2
        honest = hop_authenticator(
            mid_keys.hop_key(clock.now()), res_info, EER, 2, 3
        )
        assert cache.get(key).sigma == honest

    def test_eviction_never_changes_a_verdict(self):
        clock, gateway, router, mid_keys = make_stack(capacity=1)
        cache = router.sigma_cache
        a, _ = install(gateway, mid_keys, clock, local_id=5)
        b, _ = install(gateway, mid_keys, clock, local_id=6)
        # Alternating reservations through a one-entry cache: every
        # lookup after the first evicts the other entry, and every
        # packet still validates.
        for _ in range(4):
            assert router.validate_only(arriving(gateway, a))
            assert router.validate_only(arriving(gateway, b))
        assert cache.counters.get("evictions") >= 6
        assert len(cache) == 1

    def test_explicit_invalidate_drops_all_versions(self):
        clock, gateway, router, mid_keys = make_stack()
        cache = router.sigma_cache
        res_id, _ = install(gateway, mid_keys, clock, version=1)
        install(gateway, mid_keys, clock, local_id=5, version=2)
        assert router.validate_only(arriving(gateway, res_id))
        before = len(cache)
        assert before >= 1
        assert cache.invalidate(res_id.packed) == before
        assert len(cache) == 0
        # Correctness is unaffected: the next packet recomputes and re-caches.
        assert router.validate_only(arriving(gateway, res_id))
        assert len(cache) == 1


WORKLOAD_IDS = (5, 6, 7)


def run_workload(mode, cache=True):
    """One fixed randomized workload through a fresh stack.

    ``mode`` is ``"serial"`` (send + process per packet) or ``"batch"``
    (send_batch + process_batch per 16-request burst).  Returns
    everything observable: packet bytes, drop types, verdict names, and
    the stack's counters.
    """
    clock, gateway, router, mid_keys = make_stack(cache=cache)
    for local_id in WORKLOAD_IDS:
        install(gateway, mid_keys, clock, bandwidth=mbps(1), local_id=local_id)
    rng = random.Random(2026)
    requests = []
    for index in range(64):
        if index % 17 == 13:
            requests.append((ReservationId(SRC, 99), b""))  # never installed
        else:
            local_id = WORKLOAD_IDS[rng.randrange(len(WORKLOAD_IDS))]
            requests.append(
                (ReservationId(SRC, local_id), b"z" * rng.randrange(400, 1400))
            )

    outcomes = []
    if mode == "serial":
        for res_id, payload in requests:
            try:
                outcomes.append(gateway.send(res_id, payload))
            except (ReservationNotFound, BandwidthExceeded) as error:
                outcomes.append(error)
    else:
        for start in range(0, len(requests), 16):
            outcomes.extend(gateway.send_batch(requests[start : start + 16]))

    packets, drops = split_batch(outcomes)
    for packet in packets:
        packet.hop_index = 1
    if mode == "serial":
        verdicts = [router.process(packet).verdict for packet in packets]
    else:
        verdicts = []
        for start in range(0, len(packets), 16):
            verdicts.extend(
                result.verdict
                for result in router.process_batch(packets[start : start + 16])
            )
    return {
        "bytes": [packet.to_bytes() for packet in packets],
        "drops": [(index, type(error).__name__) for index, error in drops],
        "verdicts": [verdict.name for verdict in verdicts],
        "router_stats": {v.name: n for v, n in router.stats.items()},
        "sent": gateway.packets_sent,
        "dropped": gateway.packets_dropped,
    }


class TestBatchEquivalence:
    """send/process ≡ send_batch/process_batch ≡ cache-disabled."""

    def test_equivalence_property(self):
        serial = run_workload("serial")
        batch = run_workload("batch")
        batch_nocache = run_workload("batch", cache=False)

        # Byte-identical packets: same Ts sequence, same HVFs, same
        # serialization — the batch path is a pure loop reordering.
        assert serial["bytes"] == batch["bytes"]
        assert serial["bytes"] == batch_nocache["bytes"]
        # Same drops (as exception type), aligned with request order.
        assert serial["drops"] == batch["drops"]
        assert len(serial["drops"]) > 0  # the workload exercises drops
        # Same verdict sequence and router accounting, with and without
        # the σ-cache: cache contents never decide a verdict.
        assert serial["verdicts"] == batch["verdicts"]
        assert serial["verdicts"] == batch_nocache["verdicts"]
        assert serial["router_stats"] == batch["router_stats"]
        assert serial["router_stats"] == batch_nocache["router_stats"]
        assert serial["sent"] == batch["sent"] == batch_nocache["sent"]
        assert serial["dropped"] == batch["dropped"]
        # Sanity: both verdict kinds actually occurred.
        assert "FORWARD" in serial["verdicts"]

    def test_duplicate_suppression_equivalent(self):
        results = {}
        for mode in ("serial", "batch"):
            clock, gateway, router, mid_keys = make_stack()
            res_id, _ = install(gateway, mid_keys, clock)
            wire = gateway.send(res_id, b"dup").to_bytes()
            first = ColibriPacket.from_bytes(wire)
            replay = ColibriPacket.from_bytes(wire)
            first.hop_index = replay.hop_index = 1
            if mode == "serial":
                verdicts = [router.process(p).verdict for p in (first, replay)]
            else:
                verdicts = [r.verdict for r in router.process_batch([first, replay])]
            results[mode] = verdicts
        assert results["serial"] == results["batch"]
        assert results["serial"] == [Verdict.FORWARD, Verdict.DROP_DUPLICATE]

    def test_warm_cache_second_pass_identical(self):
        """Cache hits on a warm second pass change nothing observable."""
        passes = {}
        for cache in (True, False):
            clock, gateway, router, mid_keys = make_stack(cache=cache)
            res_id, _ = install(gateway, mid_keys, clock)
            rounds = []
            for _ in range(3):
                packets, _ = split_batch(
                    gateway.send_batch([(res_id, b"x" * 100)] * 8)
                )
                for packet in packets:
                    packet.hop_index = 1
                rounds.append(
                    [r.verdict.name for r in router.process_batch(packets)]
                )
            passes[cache] = rounds
            if cache:
                assert router.sigma_cache.counters.get("hits") >= 23
        assert passes[True] == passes[False]


class TestPipelineBatch:
    """PathPipeline.send_batch delivers exactly what serial sends do."""

    @staticmethod
    def _pipeline():
        from repro.sim import ColibriNetwork
        from repro.sim.pipeline import PathPipeline
        from repro.topology import build_two_isd_topology

        base = 0xFF00_0000_0000
        src, dst = IsdAs(1, base + 101), IsdAs(2, base + 101)
        net = ColibriNetwork(build_two_isd_topology())
        net.reserve_segments(src, dst, gbps(1))
        handle = net.establish_eer(src, dst, mbps(10))
        return src, PathPipeline(net, handle, capacity=mbps(100))

    def test_batch_delivery_matches_serial(self):
        payloads = [b"p" * (100 + 37 * index) for index in range(8)]
        _, serial_pipe = self._pipeline()
        serial = [serial_pipe.send(payload) for payload in payloads]
        _, batch_pipe = self._pipeline()
        batch = batch_pipe.send_batch(payloads)
        assert [r.delivered for r in serial] == [r.delivered for r in batch]
        assert all(r.delivered for r in batch)
        assert [r.dropped_at for r in serial] == [r.dropped_at for r in batch]
        # Burst semantics: later packets queue behind batch-mates, so
        # latency is non-decreasing within the burst.
        latencies = [r.latency for r in batch]
        assert latencies == sorted(latencies)

    def test_batch_gateway_drops_are_aligned(self):
        src, pipe = self._pipeline()
        # 10 Mbps reservation, 0.1 s burst depth = 125 kB: fourteen 10 kB
        # payloads overrun it, so the tail of the burst drops at the
        # source gateway, aligned with its request index.
        reports = pipe.send_batch([b"q" * 10_000] * 14)
        delivered = [r.delivered for r in reports]
        assert True in delivered and False in delivered
        assert delivered == sorted(delivered, reverse=True)  # prefix delivers
        for report in reports:
            if not report.delivered:
                assert report.dropped_at == src
                assert report.latency == 0.0


class TestShardExecutor:
    def test_shard_of_deterministic_and_total(self):
        ids = [ReservationId(SRC, index + 1) for index in range(512)]
        assignment = [shard_of(res_id, 4) for res_id in ids]
        assert assignment == [shard_of(res_id, 4) for res_id in ids]
        assert all(0 <= shard < 4 for shard in assignment)
        # Every shard gets a share (blake2s spreads the counter well).
        counts = [assignment.count(shard) for shard in range(4)]
        assert min(counts) > 0
        assert max(counts) < 2.5 * min(counts)

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_of(ReservationId(SRC, 1), 0)

    def test_shards_partition_disjointly(self):
        ids = [ReservationId(SRC, index + 1) for index in range(128)]
        owned = [
            {res_id for res_id in ids if shard_of(res_id, 3) == shard}
            for shard in range(3)
        ]
        assert sum(len(part) for part in owned) == len(ids)
        assert owned[0] | owned[1] | owned[2] == set(ids)

    def test_single_shard_is_measured(self):
        executor = ShardExecutor("router", reservations=64, packets=512, batch=32)
        result = executor.run(1)
        assert result.mode == "measured"
        assert result.measured
        assert len(result.shards) == 1
        assert result.shards[0].packets == 512
        assert result.aggregate_pps > 0

    def test_modeled_fallback_on_small_host(self, monkeypatch):
        executor = ShardExecutor("router", reservations=64, packets=512, batch=32)
        monkeypatch.setattr(ShardExecutor, "available_cpus", staticmethod(lambda: 1))
        result = executor.run(4)
        assert result.mode == "modeled"
        assert not result.measured
        assert len(result.shards) == 1  # only the busiest shard ran
        populated = sum(1 for load in executor.shard_loads(4) if load)
        assert result.aggregate_pps == pytest.approx(
            result.shards[0].pps * populated
        )

    def test_forced_processes_really_dispatch(self):
        executor = ShardExecutor("gateway", reservations=64, packets=512, batch=32)
        result = executor.run(2, force_processes=True)
        assert result.measured
        assert len(result.shards) == 2
        assert sum(outcome.packets for outcome in result.shards) >= 512
        assert all(outcome.pps > 0 for outcome in result.shards if outcome.packets)

    def test_empty_shard_idles(self):
        # One reservation, many shards: all but one shard own nothing.
        spec = ShardSpec(
            component="router", shard_index=0, num_shards=64,
            reservations=1, packets=64, batch=8,
        )
        owner = shard_of(ReservationId(IsdAs(1, 0xFF00_0000_0000 + 1), 1), 64)
        outcomes = [
            run_shard(ShardSpec(
                component="router", shard_index=index, num_shards=64,
                reservations=1, packets=64, batch=8,
            ))
            for index in (owner, (owner + 1) % 64)
        ]
        assert outcomes[0].packets > 0
        assert outcomes[1].packets == 0

    def test_sharded_telemetry_equals_serial(self):
        """The per-process counters must come back across the process
        boundary and merge exactly: dispatching the same specs through
        OS processes yields the same telemetry as running them serially
        in-process (the workloads are fully seeded).  Before outcomes
        carried counters, sharded runs silently reported nothing."""
        from repro.util.metrics import merge_counters

        executor = ShardExecutor("gateway", reservations=64, packets=512, batch=32)
        serial = [run_shard(spec) for spec in executor._specs(2)]
        sharded = executor.run(2, force_processes=True)
        assert [outcome.counters for outcome in sharded.shards] == [
            outcome.counters for outcome in serial
        ]
        telemetry = sharded.telemetry()
        assert telemetry["total"] == merge_counters(
            [outcome.counters for outcome in serial]
        )
        # The shape feeds render_metrics directly: per-shard entries
        # plus the merged total, every packet accounted for.
        assert set(telemetry) == {"shard-0", "shard-1", "total"}
        assert telemetry["total"]["gateway_sent"] == 2 * 2 * 512  # warm-up + timed
        assert telemetry["total"]["gateway_dropped"] == 0

    def test_router_shard_counters_surface_sigma_cache(self):
        executor = ShardExecutor("router", reservations=64, packets=512, batch=32)
        result = executor.run(1)
        total = result.telemetry()["total"]
        # Warm-up misses once per owned reservation, then the timed pass
        # hits: the counters prove the cache actually worked per shard.
        assert total["sigma_cache_misses"] == 64
        assert total["sigma_cache_hits"] > 0
        assert total["sigma_cache_entries"] == 64


def run_wire_workload(mode):
    """The randomized workload of :func:`run_workload`, through either
    ``send_batch`` (``"object"``) or ``send_batch_wire`` (``"wire"``).

    Halfway through, one reservation is renewed in place (version 2,
    fresh σ, fresh bucket) — both paths must pick up the new schedule
    at exactly the same packet.  Wire successes are returned as their
    raw bytes (copied out before the next burst reclaims the arena), so
    the equivalence assertion is exactly
    ``view.materialize() == packet.to_bytes()`` across the workload.
    """
    from repro.packets.wire import PacketArena

    clock, gateway, router, mid_keys = make_stack()
    for local_id in WORKLOAD_IDS:
        install(gateway, mid_keys, clock, bandwidth=mbps(1), local_id=local_id)
    rng = random.Random(2026)
    requests = []
    for index in range(64):
        if index % 17 == 13:
            requests.append((ReservationId(SRC, 99), b""))  # never installed
        else:
            local_id = WORKLOAD_IDS[rng.randrange(len(WORKLOAD_IDS))]
            requests.append(
                (ReservationId(SRC, local_id), b"z" * rng.randrange(400, 1400))
            )
    RENEW_AT = 32  # burst boundary where WORKLOAD_IDS[0] renews to v2

    wire_bytes = []
    drops = []
    position = 0
    if mode == "wire":
        arena = PacketArena(slots=16, slot_size=4096)
        for start in range(0, len(requests), 16):
            if start == RENEW_AT:
                install(
                    gateway, mid_keys, clock, bandwidth=mbps(1),
                    local_id=WORKLOAD_IDS[0], version=2,
                )
            outcomes = gateway.send_batch_wire(requests[start : start + 16], arena)
            for outcome in outcomes:
                if isinstance(outcome, Exception):
                    drops.append((position, type(outcome).__name__))
                else:
                    wire_bytes.append(outcome.materialize())
                position += 1
    else:
        for start in range(0, len(requests), 16):
            if start == RENEW_AT:
                install(
                    gateway, mid_keys, clock, bandwidth=mbps(1),
                    local_id=WORKLOAD_IDS[0], version=2,
                )
            for outcome in gateway.send_batch(requests[start : start + 16]):
                if isinstance(outcome, Exception):
                    drops.append((position, type(outcome).__name__))
                else:
                    wire_bytes.append(outcome.to_bytes())
                position += 1
    return {
        "bytes": wire_bytes,
        "drops": drops,
        "sent": gateway.packets_sent,
        "dropped": gateway.packets_dropped,
        "passed": gateway.monitor.packets_passed,
    }


class TestWireEquivalence:
    """send_batch_wire ≡ send_batch: bytes, drops, counters, lifetimes."""

    def test_wire_property_matches_object_path(self):
        wire = run_wire_workload("wire")
        obj = run_wire_workload("object")
        assert wire["bytes"] == obj["bytes"]
        assert wire["drops"] == obj["drops"]
        assert len(wire["drops"]) > 0  # the workload exercises drops
        assert wire["sent"] == obj["sent"]
        assert wire["dropped"] == obj["dropped"]
        assert wire["passed"] == obj["passed"]
        # The mid-workload renewal really happened: the renewed id's
        # packets carry both versions across the run.
        renewed = ReservationId(SRC, WORKLOAD_IDS[0])
        versions = {
            packet.res_info.version
            for packet in map(ColibriPacket.from_bytes, wire["bytes"])
            if packet.res_info.reservation == renewed
        }
        assert versions == {1, 2}

    def test_wire_packets_parse_and_verify_at_router(self):
        from repro.packets.wire import PacketArena

        clock, gateway, router, mid_keys = make_stack()
        res_id, _ = install(gateway, mid_keys, clock)
        arena = PacketArena(slots=8, slot_size=2048)
        views = gateway.send_batch_wire([(res_id, b"pay")] * 4, arena)
        for view in views:
            packet = ColibriPacket.from_bytes(view.materialize())
            packet.hop_index = 1
            assert router.process(packet).verdict is Verdict.FORWARD

    def test_views_occupy_disjoint_slots(self):
        from repro.packets.wire import PacketArena

        clock, gateway, router, mid_keys = make_stack()
        res_id, _ = install(gateway, mid_keys, clock)
        arena = PacketArena(slots=8, slot_size=2048)
        views = gateway.send_batch_wire([(res_id, b"pay")] * 8, arena)
        spans = sorted((view.offset, view.offset + view.length) for view in views)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start
        # All views window the one arena buffer — no copies were made.
        assert all(view.buffer is arena.buffer for view in views)

    def test_views_die_at_the_next_burst(self):
        """The mbuf lifetime contract: send_batch_wire resets the arena,
        so views from the previous burst alias the new burst's slots."""
        from repro.packets.wire import PacketArena

        clock, gateway, router, mid_keys = make_stack()
        res_id, _ = install(gateway, mid_keys, clock)
        arena = PacketArena(slots=8, slot_size=2048)
        first = gateway.send_batch_wire([(res_id, b"A" * 64)], arena)[0]
        kept = first.materialize()
        second = gateway.send_batch_wire([(res_id, b"B" * 64)], arena)[0]
        # Same storage, new packet: the stale view now shows new bytes.
        assert first.offset == second.offset
        assert first.materialize() == second.materialize()
        assert first.materialize() != kept

    def test_reused_slot_never_leaks_into_verdict(self):
        """Buffer aliasing must not launder authenticity: after a slot
        held a valid packet, a forged packet written into the *same*
        slot must still verify False — the router may only read the
        current bytes, never a verdict (or σ-cache hint) earned by the
        slot's previous occupant."""
        from repro.packets.wire import PacketArena

        clock, gateway, router, mid_keys = make_stack()
        res_id, _ = install(gateway, mid_keys, clock)
        arena = PacketArena(slots=1, slot_size=2048)

        first = gateway.send_batch_wire([(res_id, b"honest")], arena)[0]
        first.advance_hop()  # arriving at the middle AS
        assert router.validate_wire_batch([first]) == [True]

        # The next burst reclaims the only slot, then the attacker (or
        # a stale write) flips the current hop's HVF bytes in place.
        second = gateway.send_batch_wire([(res_id, b"honest")], arena)[0]
        assert second.offset == first.offset  # really the same storage
        second.advance_hop()
        offsets = ColibriPacket.wire_offsets(second.hop_count, True)
        hvf_at = second.offset + offsets.hvf + second.hop_index * L_HVF
        arena.buffer[hvf_at : hvf_at + L_HVF] = bytes(
            byte ^ 0xFF for byte in arena.buffer[hvf_at : hvf_at + L_HVF]
        )
        assert router.validate_wire_batch([second]) == [False]

        # And an honest packet through the same slot verifies again —
        # the False above came from the bytes, not a poisoned slot.
        third = gateway.send_batch_wire([(res_id, b"honest")], arena)[0]
        third.advance_hop()
        assert router.validate_wire_batch([third]) == [True]

    def test_wire_equals_object_for_every_backend(self, monkeypatch):
        """Identity holds on the pure-Python fallback too."""
        from repro.crypto import native
        from repro.packets.wire import PacketArena

        monkeypatch.setenv("COLIBRI_NATIVE", "0")
        native.reset_for_tests()
        try:
            wire = run_wire_workload("wire")
            obj = run_wire_workload("object")
            assert wire["bytes"] == obj["bytes"]
            assert wire["drops"] == obj["drops"]
        finally:
            native.reset_for_tests()


def _native_backend():
    from repro.crypto import native

    return native.backend()


@pytest.mark.skipif(_native_backend() is None, reason="native backend unavailable")
class TestNativeBatchIdentity:
    """Native batch entry points ≡ hashlib, byte for byte."""

    def _sigmas(self, count, seed=0):
        rng = random.Random(seed)
        return tuple(bytes(rng.randrange(256) for _ in range(16)) for _ in range(count))

    def test_schedule_block_matches_hashlib_all_hop_counts(self):
        """Covers every lane-residue of the 8-way kernel (1..20 hops)
        and both the single-block and multi-block message paths."""
        from repro.dataplane.hvf import sigma_schedule, sigma_states, stamp_hvfs

        for count in range(1, 21):
            sigmas = self._sigmas(count, seed=count)
            schedule = sigma_schedule(sigmas)
            states = sigma_states(sigmas)
            for message in (b"\x01" * 12, b"long message " * 11):
                assert schedule.stamp_flat(message) == b"".join(
                    stamp_hvfs(states, message)
                ), f"mismatch at {count} hops, {len(message)} B message"

    def test_stamp_hvfs_batch_native_equals_python(self):
        from repro.dataplane.hvf import sigma_schedule, sigma_states, stamp_hvfs_batch

        sigmas = self._sigmas(16, seed=3)
        messages = [bytes([seq]) * 12 for seq in range(32)]
        native_rows = stamp_hvfs_batch(sigma_schedule(sigmas), messages)
        python_rows = stamp_hvfs_batch(sigma_states(sigmas), messages)
        assert native_rows == python_rows

    def test_verify_hvfs_batch_mixed_states(self):
        from repro.crypto.prf import prf_context
        from repro.dataplane.hvf import sigma_schedule, stamp_hvfs_batch, verify_hvfs_batch

        sigmas = self._sigmas(6, seed=4)
        messages = [bytes([seq]) * 12 for seq in range(6)]
        tags = [
            stamp_hvfs_batch(sigma_schedule((sigma,)), [message])[0]
            for sigma, message in zip(sigmas, messages)
        ]
        tags[2] = b"\x00" * L_HVF  # forged
        states = [
            sigma_schedule((sigma,)) if index % 2 == 0 else prf_context(sigma)
            for index, sigma in enumerate(sigmas)
        ]
        verdicts = verify_hvfs_batch(states, messages, tags)
        assert verdicts == [True, True, False, True, True, True]

    def test_burst_stamper_scatter_equals_per_packet(self):
        """The scatter plan (mixed hop counts, interleaved output rows)
        produces exactly what per-packet stamp_flat calls produce."""
        from repro.dataplane.hvf import burst_stamper, sigma_schedule

        rng = random.Random(9)
        schedules = [
            sigma_schedule(self._sigmas(rng.choice((1, 3, 8, 13, 16)), seed=n))
            for n in range(24)
        ]
        messages = [bytes(rng.randrange(256) for _ in range(12)) for _ in schedules]
        stamper = burst_stamper(slots=len(schedules))
        assert stamper is not None
        position = 0
        rows = []
        for index, (schedule, message) in enumerate(zip(schedules, messages)):
            stamper.scheds[index] = schedule._scatter
            stamper.counts[index] = schedule.count
            stamper.offsets[index] = position
            rows.append((position, schedule.count * stamper.tag_len))
            position += schedule.count * stamper.tag_len
        stamper.messages[:] = b"".join(messages)
        flat = stamper.stamp_flat(len(schedules), 12, position)
        for (start, width), schedule, message in zip(rows, schedules, messages):
            assert flat[start : start + width] == schedule.stamp_flat(message)


class TestShardWorkerPool:
    """Persistent workers: steady-state reuse with serial-identical results."""

    def test_pool_reuses_the_same_workers(self):
        from repro.dataplane.shards import ShardWorkerPool

        executor = ShardExecutor("gateway", reservations=64, packets=256, batch=32)
        with ShardWorkerPool(2) as pool:
            pids = {worker.pid for worker in pool._workers}
            assert len(pids) == 2
            for _ in range(3):
                outcomes = pool.map(executor._specs(2))
                assert all(outcome.packets > 0 for outcome in outcomes)
                # Same processes every round — no respawn between runs.
                assert {worker.pid for worker in pool._workers} == pids

    def test_pool_results_equal_serial(self):
        from repro.dataplane.shards import ShardWorkerPool

        executor = ShardExecutor("gateway", reservations=64, packets=256, batch=32)
        specs = executor._specs(2)
        serial = [run_shard(spec) for spec in specs]
        with ShardWorkerPool(2) as pool:
            pooled = pool.map(specs)
        assert [outcome.counters for outcome in pooled] == [
            outcome.counters for outcome in serial
        ]
        assert [outcome.packets for outcome in pooled] == [
            outcome.packets for outcome in serial
        ]

    def test_available_cpus_reads_affinity(self, monkeypatch):
        import os as os_module

        if not hasattr(os_module, "sched_getaffinity"):
            pytest.skip("platform exposes no affinity mask")
        monkeypatch.setattr(
            os_module, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=True
        )
        assert ShardExecutor.available_cpus() == 3
