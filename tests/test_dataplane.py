"""Unit tests for repro.dataplane: HVF crypto, token bucket, duplicate
suppression, OFD, blocklist, monitor, queueing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import L_HVF
from repro.dataplane import (
    Blocklist,
    ColibriKeys,
    DeterministicMonitor,
    DuplicateSuppressor,
    OveruseFlowDetector,
    PriorityScheduler,
    TokenBucket,
    TrafficClass,
    eer_hvf,
    hop_authenticator,
    segment_token,
    verify_eer_hvf,
    verify_segment_token,
)
from repro.crypto.drkey import DrkeyDeriver
from repro.errors import HvfMismatch
from repro.packets.fields import EerInfo, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock
from repro.util.units import gbps, mbps

SRC = IsdAs.parse("1-ff00:0:110")


def res_info(bw=1e9, expiry=1000.0, version=1, local_id=7):
    return ResInfo(
        reservation=ReservationId(SRC, local_id),
        bandwidth=bw,
        expiry=expiry,
        version=version,
    )


def make_keys(name=b"AS-A", seed=b"k" * 16):
    return ColibriKeys(DrkeyDeriver(name, SimClock(100.0), seed=seed))


class TestHvfCrypto:
    def test_segment_token_roundtrip(self):
        keys = make_keys()
        token = segment_token(keys.hop_key(), res_info(), 2, 5)
        assert len(token) == L_HVF
        verify_segment_token(keys.hop_key(), res_info(), 2, 5, token)

    def test_segment_token_binds_interfaces(self):
        keys = make_keys()
        token = segment_token(keys.hop_key(), res_info(), 2, 5)
        with pytest.raises(HvfMismatch):
            verify_segment_token(keys.hop_key(), res_info(), 2, 6, token)

    def test_segment_token_binds_res_info(self):
        keys = make_keys()
        token = segment_token(keys.hop_key(), res_info(bw=1e9), 2, 5)
        with pytest.raises(HvfMismatch):
            verify_segment_token(keys.hop_key(), res_info(bw=2e9), 2, 5, token)

    def test_hop_authenticator_full_width(self):
        keys = make_keys()
        eer = EerInfo(HostAddr(1), HostAddr(2))
        sigma = hop_authenticator(keys.hop_key(), res_info(), eer, 2, 5)
        assert len(sigma) == 16  # untruncated: sigma doubles as a key

    def test_hop_authenticator_binds_hosts(self):
        keys = make_keys()
        sigma1 = hop_authenticator(
            keys.hop_key(), res_info(), EerInfo(HostAddr(1), HostAddr(2)), 2, 5
        )
        sigma2 = hop_authenticator(
            keys.hop_key(), res_info(), EerInfo(HostAddr(1), HostAddr(3)), 2, 5
        )
        assert sigma1 != sigma2

    def test_eer_hvf_two_step(self):
        keys = make_keys()
        eer = EerInfo(HostAddr(1), HostAddr(2))
        sigma = hop_authenticator(keys.hop_key(), res_info(), eer, 2, 5)
        ts = Timestamp(12345, 0)
        hvf = eer_hvf(sigma, ts, 1000)
        verify_eer_hvf(sigma, ts, 1000, hvf)

    def test_eer_hvf_binds_packet_size(self):
        # Authenticated size prevents padding/framing games (§4.8).
        keys = make_keys()
        sigma = hop_authenticator(
            keys.hop_key(), res_info(), EerInfo(HostAddr(1), HostAddr(2)), 2, 5
        )
        ts = Timestamp(12345, 0)
        hvf = eer_hvf(sigma, ts, 1000)
        with pytest.raises(HvfMismatch):
            verify_eer_hvf(sigma, ts, 1001, hvf)

    def test_eer_hvf_binds_timestamp(self):
        keys = make_keys()
        sigma = hop_authenticator(
            keys.hop_key(), res_info(), EerInfo(HostAddr(1), HostAddr(2)), 2, 5
        )
        hvf = eer_hvf(sigma, Timestamp(12345, 0), 1000)
        with pytest.raises(HvfMismatch):
            verify_eer_hvf(sigma, Timestamp(12345, 1), 1000, hvf)

    def test_components_of_same_as_agree(self):
        a = make_keys(seed=b"s" * 16)
        b = make_keys(seed=b"s" * 16)
        assert a.hop_key() == b.hop_key()

    def test_different_ases_differ(self):
        assert make_keys(seed=b"a" * 16).hop_key() != make_keys(seed=b"b" * 16).hop_key()

    def test_hop_key_cached_per_epoch(self):
        keys = make_keys()
        assert keys.hop_key(100.0) is keys.hop_key(200.0)


class TestTokenBucket:
    def test_initial_burst_allowed(self):
        bucket = TokenBucket(rate=8000.0, burst_seconds=1.0, now=0.0)
        assert bucket.conforms(1000, now=0.0)  # exactly the burst depth

    def test_over_rate_dropped(self):
        bucket = TokenBucket(rate=8000.0, burst_seconds=0.1, now=0.0)
        assert bucket.conforms(100, now=0.0)
        assert not bucket.conforms(1000, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=8000.0, burst_seconds=0.1, now=0.0)
        bucket.conforms(100, now=0.0)
        assert not bucket.conforms(100, now=0.0)
        assert bucket.conforms(100, now=0.2)

    def test_sustained_rate_conformance(self):
        """A flow at exactly the reserved rate never drops."""
        rate = mbps(8)  # 1 MB/s
        bucket = TokenBucket(rate=rate, burst_seconds=0.1, now=0.0)
        for step in range(100):
            now = step * 0.001
            assert bucket.conforms(1000, now=now)  # 1000 B per ms = 1 MB/s

    def test_double_rate_drops_half(self):
        rate = mbps(8)
        bucket = TokenBucket(rate=rate, burst_seconds=0.05, now=0.0)
        passed = sum(
            bucket.conforms(1000, now=step * 0.0005) for step in range(2000)
        )
        # 2x offered -> about half passes (plus the initial burst)
        assert 900 <= passed <= 1150

    def test_nonconforming_consumes_nothing(self):
        bucket = TokenBucket(rate=8000.0, burst_seconds=1.0, now=0.0)
        before = bucket.available_bits
        assert not bucket.conforms(10_000, now=0.0)
        assert bucket.available_bits == before

    def test_set_rate_preserves_fill_fraction(self):
        bucket = TokenBucket(rate=8000.0, burst_seconds=1.0, now=0.0)
        bucket.conforms(500, now=0.0)  # half the depth gone
        bucket.set_rate(16_000.0, now=0.0, burst_seconds=1.0)
        assert bucket.available_bits == pytest.approx(8_000.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst_seconds=0)


class TestDuplicateSuppressor:
    def test_first_sighting_accepted(self):
        suppressor = DuplicateSuppressor(SimClock(0.0))
        assert suppressor.check_and_insert(b"packet-1")

    def test_replay_caught(self):
        suppressor = DuplicateSuppressor(SimClock(0.0))
        suppressor.check_and_insert(b"packet-1")
        assert not suppressor.check_and_insert(b"packet-1")
        assert suppressor.duplicates_caught == 1

    def test_distinct_packets_pass(self):
        suppressor = DuplicateSuppressor(SimClock(0.0))
        for index in range(1000):
            assert suppressor.check_and_insert(f"packet-{index}".encode())

    def test_replay_caught_across_rotation(self):
        clock = SimClock(0.0)
        suppressor = DuplicateSuppressor(clock, window=1.0)
        suppressor.check_and_insert(b"packet-1")
        clock.advance(1.5)  # one rotation: identifier now in previous filter
        assert not suppressor.check_and_insert(b"packet-1")

    def test_memory_constant(self):
        suppressor = DuplicateSuppressor(SimClock(0.0), bits=1 << 10)
        before = suppressor.memory_bytes
        for index in range(500):
            suppressor.check_and_insert(f"p{index}".encode())
        assert suppressor.memory_bytes == before

    def test_no_false_negatives_property(self):
        """Within two windows a duplicate is always caught."""
        clock = SimClock(0.0)
        suppressor = DuplicateSuppressor(clock, window=1.0)
        identifiers = [f"id-{i}".encode() for i in range(200)]
        for identifier in identifiers:
            suppressor.check_and_insert(identifier)
            clock.advance(0.001)
        for identifier in identifiers[100:]:  # still within window coverage
            assert not suppressor.check_and_insert(identifier)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DuplicateSuppressor(SimClock(), window=0)


class TestOveruseFlowDetector:
    def test_conforming_flow_not_flagged(self):
        ofd = OveruseFlowDetector(window=1.0)
        # 1 Mbps reservation, sending exactly 1 Mbps: 125 B packets x 1000.
        for step in range(1000):
            flagged = ofd.observe(b"flow-1", 125, mbps(1), now=step * 0.001)
            assert not flagged

    def test_overusing_flow_flagged(self):
        ofd = OveruseFlowDetector(window=1.0)
        flagged = False
        # 3x the reserved rate.
        for step in range(1000):
            flagged = flagged or ofd.observe(b"flow-1", 375, mbps(1), now=step * 0.001)
        assert flagged
        assert ofd.is_suspect(b"flow-1")

    def test_no_false_negatives(self):
        """Count-min never undercounts: every true overuser is reported."""
        ofd = OveruseFlowDetector(window=1.0, width=64, depth=2)  # tiny sketch
        overusers = [f"bad-{i}".encode() for i in range(10)]
        for step in range(1000):
            now = step * 0.001
            for flow in overusers:
                ofd.observe(flow, 500, mbps(1), now=now)  # 4x reserved
        for flow in overusers:
            assert ofd.is_suspect(flow)

    def test_false_positives_possible_with_tiny_sketch(self):
        """Collisions in a tiny sketch can flag innocents — why §4.8
        confirms deterministically before punishing."""
        ofd = OveruseFlowDetector(window=1.0, width=4, depth=1)
        for step in range(1000):
            now = step * 0.001
            for index in range(40):
                ofd.observe(f"flow-{index}".encode(), 100, mbps(1), now=now)
        # With 40 flows in 4 cells, aggregates cross the threshold.
        assert len(ofd.suspects()) > 0

    def test_window_reset_clears_suspects(self):
        ofd = OveruseFlowDetector(window=1.0)
        for step in range(1000):
            ofd.observe(b"flow-1", 500, mbps(1), now=step * 0.001)
        assert ofd.is_suspect(b"flow-1")
        ofd.observe(b"flow-2", 100, mbps(1), now=2.5)  # new window
        assert not ofd.is_suspect(b"flow-1")

    def test_zero_bandwidth_is_overuse(self):
        ofd = OveruseFlowDetector()
        assert ofd.observe(b"flow-1", 100, 0.0, now=0.0)

    def test_memory_independent_of_flow_count(self):
        ofd = OveruseFlowDetector(width=128, depth=2)
        cells = ofd.memory_cells
        for index in range(10_000):
            ofd.observe(f"flow-{index}".encode(), 100, gbps(1), now=0.0)
        assert ofd.memory_cells == cells

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            OveruseFlowDetector(width=0)
        with pytest.raises(ValueError):
            OveruseFlowDetector(window=0)


class TestBlocklist:
    def test_block_and_check(self):
        blocklist = Blocklist()
        blocklist.block(SRC)
        assert blocklist.is_blocked(SRC, now=0.0)

    def test_unblocked_by_default(self):
        assert not Blocklist().is_blocked(SRC, now=0.0)

    def test_timed_block_expires(self):
        blocklist = Blocklist()
        blocklist.block(SRC, until=10.0)
        assert blocklist.is_blocked(SRC, now=5.0)
        assert not blocklist.is_blocked(SRC, now=10.0)
        assert len(blocklist) == 0  # lazy cleanup happened

    def test_unblock(self):
        blocklist = Blocklist()
        blocklist.block(SRC)
        blocklist.unblock(SRC)
        assert not blocklist.is_blocked(SRC, now=0.0)

    def test_permanent_block_never_expires(self):
        blocklist = Blocklist()
        blocklist.block(SRC, until=None)
        assert blocklist.is_blocked(SRC, now=1e12)


class TestDeterministicMonitor:
    def test_unwatched_flows_pass(self):
        monitor = DeterministicMonitor()
        assert monitor.check(b"flow", 10_000_000, now=0.0)

    def test_watched_flow_limited(self):
        monitor = DeterministicMonitor(burst_seconds=0.01)
        monitor.watch(b"flow", mbps(8), now=0.0)
        assert monitor.check(b"flow", 1000, now=0.0)
        assert not monitor.check(b"flow", 100_000, now=0.0)

    def test_confirmation_after_repeated_drops(self):
        confirmed = []
        monitor = DeterministicMonitor(
            burst_seconds=0.01, confirmation_drops=3, on_confirmed=confirmed.append
        )
        monitor.watch(b"flow", 8000.0, now=0.0)
        for _ in range(5):
            monitor.check(b"flow", 100_000, now=0.0)
        assert confirmed == [b"flow"]
        assert monitor.is_confirmed_overuser(b"flow")

    def test_spaced_drops_never_confirm(self):
        """§4.8: confirmation means *sustained* overuse — one stray
        non-conforming packet per lifetime, collected over hours, must
        not add up to a blocklisting."""
        confirmed = []
        monitor = DeterministicMonitor(
            burst_seconds=0.01,
            confirmation_drops=3,
            confirmation_window=10.0,
            on_confirmed=confirmed.append,
        )
        monitor.watch(b"flow", 8000.0, now=0.0)
        for tick in range(6):
            assert not monitor.check(b"flow", 100_000, now=tick * 11.0)
        assert confirmed == []
        assert not monitor.is_confirmed_overuser(b"flow")

    def test_stale_streak_restarts_from_scratch(self):
        confirmed = []
        monitor = DeterministicMonitor(
            burst_seconds=0.01,
            confirmation_drops=3,
            confirmation_window=10.0,
            on_confirmed=confirmed.append,
        )
        monitor.watch(b"flow", 8000.0, now=0.0)
        monitor.check(b"flow", 100_000, now=0.0)  # stray drop, long ago
        monitor.check(b"flow", 100_000, now=20.0)  # streak restarts here
        monitor.check(b"flow", 100_000, now=24.0)
        assert confirmed == []  # 2 fresh drops, the stale one didn't count
        monitor.check(b"flow", 100_000, now=28.0)
        assert confirmed == [b"flow"]

    def test_single_burst_not_confirmed(self):
        monitor = DeterministicMonitor(confirmation_drops=3)
        monitor.watch(b"flow", 8000.0, now=0.0)
        monitor.check(b"flow", 100_000, now=0.0)
        assert not monitor.is_confirmed_overuser(b"flow")

    def test_unwatch_forgets(self):
        monitor = DeterministicMonitor()
        monitor.watch(b"flow", 8000.0, now=0.0)
        monitor.unwatch(b"flow")
        assert not monitor.is_watched(b"flow")
        assert monitor.check(b"flow", 10_000_000, now=0.0)

    def test_watch_updates_rate_on_renewal(self):
        monitor = DeterministicMonitor(burst_seconds=1.0)
        monitor.watch(b"flow", 8000.0, now=0.0)
        monitor.watch(b"flow", 16_000.0, now=0.0)
        assert monitor._buckets[b"flow"].rate == 16_000.0


class TestPriorityScheduler:
    def test_colibri_served_before_best_effort(self):
        scheduler = PriorityScheduler(capacity=8000.0)  # 1000 B per second
        scheduler.enqueue(600, TrafficClass.BEST_EFFORT)
        scheduler.enqueue(600, TrafficClass.EER_DATA)
        sent = scheduler.drain(1.0)
        assert sent[TrafficClass.EER_DATA] == 600
        assert sent[TrafficClass.BEST_EFFORT] == 0  # didn't fit this slice

    def test_control_has_top_priority(self):
        scheduler = PriorityScheduler(capacity=8000.0)
        scheduler.enqueue(600, TrafficClass.EER_DATA)
        scheduler.enqueue(600, TrafficClass.CONTROL)
        sent = scheduler.drain(1.0)
        assert sent[TrafficClass.CONTROL] == 600

    def test_best_effort_scavenges_unused(self):
        scheduler = PriorityScheduler(capacity=8000.0)
        scheduler.enqueue(300, TrafficClass.EER_DATA)
        scheduler.enqueue(500, TrafficClass.BEST_EFFORT)
        sent = scheduler.drain(1.0)
        assert sent[TrafficClass.BEST_EFFORT] == 500

    def test_tail_drop_when_queue_full(self):
        scheduler = PriorityScheduler(capacity=8000.0, queue_bytes=1000)
        assert scheduler.enqueue(800, TrafficClass.BEST_EFFORT)
        assert not scheduler.enqueue(800, TrafficClass.BEST_EFFORT)
        assert scheduler.tail_dropped[TrafficClass.BEST_EFFORT] == 1

    def test_queues_isolated_per_class(self):
        scheduler = PriorityScheduler(capacity=8000.0, queue_bytes=1000)
        scheduler.enqueue(900, TrafficClass.BEST_EFFORT)
        assert scheduler.enqueue(900, TrafficClass.EER_DATA)  # own queue

    def test_output_rate(self):
        scheduler = PriorityScheduler(capacity=80_000.0)
        for _ in range(10):
            scheduler.enqueue(1000, TrafficClass.EER_DATA)
        scheduler.drain(1.0)
        assert scheduler.output_rate(TrafficClass.EER_DATA, 1.0) == pytest.approx(80_000.0)

    def test_backlog_accounting(self):
        scheduler = PriorityScheduler(capacity=8.0)
        scheduler.enqueue(100, TrafficClass.BEST_EFFORT)
        assert scheduler.backlog_bytes(TrafficClass.BEST_EFFORT) == 100
        assert scheduler.total_backlog() == 100

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PriorityScheduler(capacity=0)
        scheduler = PriorityScheduler(capacity=1.0)
        with pytest.raises(ValueError):
            scheduler.enqueue(0, TrafficClass.EER_DATA)
        with pytest.raises(ValueError):
            scheduler.drain(0)


class TestBloomSizing:
    def test_empty_filter_has_zero_rate(self):
        suppressor = DuplicateSuppressor(SimClock(0.0))
        assert suppressor.false_positive_rate() == 0.0

    def test_rate_grows_with_load(self):
        suppressor = DuplicateSuppressor(SimClock(0.0), bits=1 << 12)
        for index in range(200):
            suppressor.check_and_insert(f"p{index}".encode())
        light = suppressor.false_positive_rate()
        for index in range(200, 2000):
            suppressor.check_and_insert(f"p{index}".encode())
        heavy = suppressor.false_positive_rate()
        assert 0.0 < light < heavy < 1.0

    def test_estimate_matches_observation(self):
        """The analytic estimate predicts the empirical FP rate within
        a small factor on an overloaded filter."""
        suppressor = DuplicateSuppressor(SimClock(0.0), bits=1 << 12, hashes=4)
        for index in range(2000):
            suppressor.check_and_insert(f"seen-{index}".encode())
        predicted = suppressor.false_positive_rate()
        trials = 4000
        # Probe membership without inserting, so the measurement does not
        # fill the filter it is measuring.
        false_hits = sum(
            1
            for index in range(trials)
            if f"fresh-{index}".encode() in suppressor._current
        )
        observed = false_hits / trials
        assert observed == pytest.approx(predicted, abs=0.05)

    def test_size_for_meets_target(self):
        bits = DuplicateSuppressor.size_for(
            packets_per_window=10_000, target_fp_rate=1e-3
        )
        suppressor = DuplicateSuppressor(SimClock(0.0), bits=bits)
        for index in range(10_000):
            suppressor.check_and_insert(f"p{index}".encode())
        assert suppressor.false_positive_rate() <= 1e-3 * 1.1

    def test_size_for_validates_arguments(self):
        with pytest.raises(ValueError):
            DuplicateSuppressor.size_for(1000, 0.0)
        with pytest.raises(ValueError):
            DuplicateSuppressor.size_for(0, 0.01)
