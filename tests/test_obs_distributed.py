"""Cross-process observability tests (ISSUE 10).

Covers the two halves of :mod:`repro.obs.distributed` plus the code
that threads them through both planes:

* frame assembly under *adversarial interleavings* — property-tested
  with seeded permutations: shuffled arrival order, byte-identical
  replays, conflicting replays, truncated and gapped streams must
  produce a deterministic merged result or a typed
  :class:`TelemetryGapError`;
* trace-context propagation over the RPC framing (``bus.call`` /
  ``RetryingCaller``) and into forced-process shard workers, asserting
  the exact stitched span tree and byte-identical merged artifacts
  across same-seed runs;
* the wire-path sampling profiler: tick cadence, bucket placement, and
  verdict/byte equivalence of the sampled gateway/router fast paths.
"""

import json
import random

import pytest

from repro.control.retry import RetryingCaller
from repro.control.rpc import MessageBus
from repro.crypto.drkey import DrkeyDeriver
from repro.dataplane import ColibriKeys, hop_authenticator
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.router import BorderRouter
from repro.dataplane.shards import ShardExecutor
from repro.errors import TransportError
from repro.obs import ObsContext
from repro.obs.distributed import (
    TelemetryFrame,
    TelemetryGapError,
    TraceContext,
    assemble_frames,
    frames_from,
    merge_frames,
    merge_traces,
    render_span_forest,
    sampling_decision,
    spans_jsonl,
)
from repro.obs.events import SHARD_COMPLETED, EventJournal, merge_events
from repro.obs.metrics import MetricsRegistry, merge_registries
from repro.obs.sampling import DEFAULT_SAMPLE_EVERY, SamplingProfiler
from repro.obs.trace import TraceCollector
from repro.packets.colibri import ColibriPacket
from repro.packets.fields import EerInfo, PathField, ResInfo
from repro.packets.wire import PacketArena
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs
from repro.util.clock import SimClock
from repro.util.units import gbps
from repro.constants import EER_LIFETIME, L_HVF

SRC = IsdAs.parse("1-ff00:0:110")
MID = IsdAs.parse("1-ff00:0:111")
DST = IsdAs.parse("1-ff00:0:112")

PATH = PathField(((0, 1), (2, 3), (4, 0)))
EER = EerInfo(HostAddr(1), HostAddr(2))


# -- trace context -------------------------------------------------------------


class TestTraceContext:
    def test_wire_roundtrip(self):
        ctx = TraceContext("a1b2c3", "d4e5", sampled=False)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert ctx.to_wire() == "a1b2c3-d4e5-0"

    @pytest.mark.parametrize(
        "text", ["", "onlyone", "a-b", "a-b-c-d", "a-b-2", "a-b-yes"]
    )
    def test_malformed_wire_rejected(self, text):
        with pytest.raises(ValueError):
            TraceContext.from_wire(text)

    def test_from_span_names_the_span_as_parent(self):
        tracer = TraceCollector(SimClock(0.0), seed=5)
        span = tracer.start("root")
        ctx = TraceContext.from_span(span)
        assert ctx.trace_id == span.trace_id
        assert ctx.span_id == span.span_id
        assert ctx.sampled is True

    def test_sampling_decision_is_deterministic_and_seeded(self):
        verdicts = [
            sampling_decision(f"trace-{i}", seed=3, one_in=4)
            for i in range(256)
        ]
        assert verdicts == [
            sampling_decision(f"trace-{i}", seed=3, one_in=4)
            for i in range(256)
        ]
        # A 1-in-4 head sample keeps *some* traces and drops others.
        assert any(verdicts) and not all(verdicts)
        # A different seed flips some verdicts (no accidental constants).
        assert verdicts != [
            sampling_decision(f"trace-{i}", seed=4, one_in=4)
            for i in range(256)
        ]

    def test_one_in_one_samples_everything(self):
        assert all(
            sampling_decision(f"t{i}", seed=9, one_in=1) for i in range(32)
        )


# -- frame assembly under adversarial interleavings ----------------------------


def worker_stream(worker_id: int, items: int = 5, limit: int = 2):
    """A real worker capture chunked into a multi-frame stream."""
    clock = SimClock(1000.0)
    tracer = TraceCollector(clock, seed=100 + worker_id)
    registry = MetricsRegistry()
    journal = EventJournal(clock)
    for index in range(items):
        with tracer.span(f"op-{index}"):
            clock.advance(0.001)
        journal.record(
            SHARD_COMPLETED,
            component="router",
            shard_index=worker_id,
            packets=index,
        )
        registry.counter("shard_packets_total").inc(index)
    return frames_from(
        worker_id, tracer=tracer, registry=registry, journal=journal,
        limit=limit,
    )


def merged_fingerprint(merged) -> tuple:
    """Byte-stable identity of a MergedTelemetry for equality checks."""
    return (
        {w: spans_jsonl(spans) for w, spans in merged.spans.items()},
        merged.events_jsonl(),
        json.dumps(merged.registry.state(), sort_keys=True),
        merged.frame_counts,
    )


class TestFrameAssembly:
    def test_streams_chunk_and_carry_metrics_on_final_frame(self):
        frames = worker_stream(0, items=5, limit=2)
        assert [frame.seq for frame in frames] == list(range(len(frames)))
        assert len(frames) > 2  # 10 items at 2/frame
        assert frames[-1].last and not any(f.last for f in frames[:-1])
        assert frames[-1].metrics is not None
        assert all(f.metrics is None for f in frames[:-1])

    def test_empty_capture_still_emits_liveness_frame(self):
        frames = frames_from(3)
        assert len(frames) == 1
        assert frames[0].last and frames[0].seq == 0
        assert assemble_frames(frames, expected_workers=[3])[3] == frames

    def test_shuffled_arrival_is_deterministic(self):
        """Property: any arrival permutation of any workers' frames
        merges to the identical result (20 seeded shuffles)."""
        frames = [f for w in range(3) for f in worker_stream(w)]
        baseline = merged_fingerprint(
            merge_frames(frames, expected_workers=range(3))
        )
        for seed in range(20):
            shuffled = list(frames)
            random.Random(seed).shuffle(shuffled)
            merged = merge_frames(shuffled, expected_workers=range(3))
            assert merged_fingerprint(merged) == baseline, f"seed {seed}"

    def test_identical_replay_is_deduped(self):
        """A result queue may redeliver: byte-identical duplicates must
        not change the merge (every duplication position, shuffled)."""
        frames = [f for w in range(2) for f in worker_stream(w)]
        baseline = merged_fingerprint(
            merge_frames(frames, expected_workers=range(2))
        )
        for seed, frame in enumerate(frames):
            replayed = frames + [frame]
            random.Random(seed).shuffle(replayed)
            merged = merge_frames(replayed, expected_workers=range(2))
            assert merged_fingerprint(merged) == baseline

    def test_conflicting_replay_raises(self):
        frames = worker_stream(0)
        forged = TelemetryFrame(
            worker_id=0, seq=0, spans=(), events=(), last=False
        )
        assert forged != frames[0]
        with pytest.raises(TelemetryGapError, match="conflicting frames"):
            assemble_frames(frames + [forged])

    def test_truncated_stream_raises(self):
        frames = worker_stream(0)
        with pytest.raises(TelemetryGapError, match="truncated"):
            assemble_frames(frames[:-1])

    def test_gapped_stream_raises(self):
        frames = worker_stream(0, items=6, limit=2)
        assert len(frames) >= 3
        for seed in range(10):
            gapped = frames[:1] + frames[2:]
            random.Random(seed).shuffle(gapped)
            with pytest.raises(TelemetryGapError, match="gapped at seq 1"):
                assemble_frames(gapped)

    def test_missing_expected_worker_raises(self):
        frames = worker_stream(0)
        with pytest.raises(TelemetryGapError, match="workers \\[1\\]"):
            assemble_frames(frames, expected_workers=[0, 1])

    def test_frames_beyond_final_marker_raise(self):
        frames = worker_stream(0, items=4, limit=2)
        early_last = TelemetryFrame(
            worker_id=0,
            seq=0,
            spans=frames[0].spans,
            events=frames[0].events,
            last=True,
        )
        with pytest.raises(TelemetryGapError, match="beyond the final"):
            assemble_frames([early_last] + frames[1:])


class TestMergeDeterminism:
    def test_merge_events_is_stream_order_invariant(self):
        streams = []
        for worker_id in range(4):
            clock = SimClock(1000.0 + worker_id)
            journal = EventJournal(clock)
            for index in range(5):
                journal.record(
                    SHARD_COMPLETED,
                    component="router",
                    shard_index=worker_id,
                    packets=index,
                )
                clock.advance(0.5)
            streams.append(journal.events())
        baseline = merge_events(*streams)
        for seed in range(20):
            order = list(range(len(streams)))
            random.Random(seed).shuffle(order)
            permuted = merge_events(*(streams[i] for i in order))
            assert [e.identity() for e in permuted] == [
                e.identity() for e in baseline
            ]

    def test_merge_registries_is_order_invariant(self):
        registries = []
        for worker_id in range(4):
            registry = MetricsRegistry()
            registry.counter("shard_packets_total").inc(worker_id * 10)
            registry.histogram(
                "shard_loop_packets", buckets=(10.0, 100.0)
            ).observe(worker_id * 7.0)
            registries.append(registry)
        baseline = json.dumps(
            merge_registries(registries).state(), sort_keys=True
        )
        for seed in range(20):
            order = list(registries)
            random.Random(seed).shuffle(order)
            assert (
                json.dumps(merge_registries(order).state(), sort_keys=True)
                == baseline
            )


# -- RPC framing propagation ---------------------------------------------------


class Echo:
    """A service that records the propagation header it was called under."""

    def __init__(self, bus):
        self.bus = bus
        self.seen = []

    def ping(self):
        self.seen.append(self.bus.current_trace())
        return "pong"


class Flaky(Echo):
    """Fails with a retriable transport error on the first attempt."""

    def ping(self):
        super().ping()
        if len(self.seen) == 1:
            raise TransportError("first attempt drops")
        return "pong"


class TestRpcPropagation:
    def test_bus_call_frames_a_context_from_its_span(self):
        bus = MessageBus()
        bus.tracer = TraceCollector(SimClock(0.0), seed=1)
        service = Echo(bus)
        bus.register(SRC, service)
        assert bus.call(SRC, "ping") == "pong"
        (ctx,) = service.seen
        (span,) = bus.tracer.spans(name="bus.call")
        assert ctx == TraceContext.from_span(span)
        # Outside the call the framing stack is empty again.
        assert bus.current_trace() is None

    def test_explicit_context_wins_and_flows_without_a_tracer(self):
        bus = MessageBus()
        service = Echo(bus)
        bus.register(SRC, service)
        ctx = TraceContext("feed", "beef", sampled=True)
        bus.call(SRC, "ping", trace=ctx)
        assert service.seen == [ctx]
        assert bus.current_trace() is None

    def test_untraced_call_frames_nothing(self):
        bus = MessageBus()
        service = Echo(bus)
        bus.register(SRC, service)
        bus.call(SRC, "ping")
        assert service.seen == [None]

    def test_retry_attempts_share_one_logical_context(self):
        clock = SimClock(0.0)
        bus = MessageBus()
        service = Flaky(bus)
        bus.register(SRC, service)
        caller = RetryingCaller(bus, clock, DST)
        caller.obs = ObsContext.create(clock, seed=2)
        bus.tracer = caller.obs.tracer
        assert caller.call(SRC, "ping") == "pong"
        assert len(service.seen) == 2
        first, second = service.seen
        assert first is not None and first == second
        (retry_span,) = caller.obs.tracer.spans(name="retry.call")
        assert first == TraceContext.from_span(retry_span)
        # Both bus.call attempt spans are children of the retry span.
        attempts = caller.obs.tracer.spans(name="bus.call")
        assert len(attempts) == 2
        assert {span.parent_id for span in attempts} == {retry_span.span_id}


# -- the stitched shard tree ---------------------------------------------------


def sharded_run(seed: int, sampled: bool = True):
    """A fig6-style forced-process sharded run under a parent trace."""
    tracer = TraceCollector(SimClock(0.0), seed=seed)
    root = tracer.start("fig6.sharded_run")
    ctx = TraceContext(root.trace_id, root.span_id, sampled=sampled)
    executor = ShardExecutor(
        "router", reservations=64, packets=256, batch=64,
        obs_seed=seed, trace=ctx,
    )
    result = executor.run(2, force_processes=True)
    tracer.finish(root)
    return tracer, result


class TestStitchedShardTree:
    def test_exact_cross_process_tree(self):
        tracer, result = sharded_run(seed=2026)
        merged = result.merged_telemetry(expected_workers=[0, 1])
        assert merged is not None
        (root,) = tracer.spans(name="fig6.sharded_run")
        assert sorted(merged.spans) == [0, 1]
        for worker_id in (0, 1):
            spans = {span.name: span for span in merged.spans[worker_id]}
            run, loop = spans["shard.run"], spans["shard.loop"]
            # One trace spanning the parent and both worker processes,
            # with exact parentage.
            assert run.trace_id == root.trace_id
            assert run.parent_id == root.span_id
            assert run.attributes == {"component": "router", "shard": worker_id}
            assert loop.trace_id == root.trace_id
            assert loop.parent_id == run.span_id
            assert loop.attributes == {"packets": 256}
        forest = render_span_forest(
            merge_traces(tracer.spans(), merged.spans)
        )
        assert forest == "\n".join(
            [
                "    0.000ms . fig6.sharded_run",
                "    0.000ms .   shard.run [component=router shard=0]",
                "    0.000ms .     shard.loop [packets=256]",
                "    0.000ms .   shard.run [component=router shard=1]",
                "    0.000ms .     shard.loop [packets=256]",
            ]
        )

    def test_same_seed_runs_are_byte_identical(self):
        tracer_a, result_a = sharded_run(seed=7)
        tracer_b, result_b = sharded_run(seed=7)
        merged_a = result_a.merged_telemetry(expected_workers=[0, 1])
        merged_b = result_b.merged_telemetry(expected_workers=[0, 1])
        assert spans_jsonl(
            merge_traces(tracer_a.spans(), merged_a.spans)
        ) == spans_jsonl(merge_traces(tracer_b.spans(), merged_b.spans))
        assert merged_a.events_jsonl() == merged_b.events_jsonl()
        assert json.dumps(
            merged_a.registry.state(), sort_keys=True
        ) == json.dumps(merged_b.registry.state(), sort_keys=True)

    def test_unsampled_context_skips_spans_not_accounting(self):
        _, result = sharded_run(seed=9, sampled=False)
        merged = result.merged_telemetry(expected_workers=[0, 1])
        # Span collection honors the head-sampling decision...
        assert all(not spans for spans in merged.spans.values())
        # ...but the accounting record (journal + metrics) always ships.
        completed = [e for e in merged.events if e.type == SHARD_COMPLETED]
        assert {e.attrs["shard_index"] for e in completed} == {0, 1}
        state = json.dumps(merged.registry.state())
        assert "shard_packets_total" in state

    def test_obs_free_run_ships_no_frames(self):
        executor = ShardExecutor(
            "router", reservations=64, packets=256, batch=64
        )
        result = executor.run(2, force_processes=True)
        assert all(not outcome.frames for outcome in result.shards)
        assert result.merged_telemetry() is None


# -- the sampling profiler -----------------------------------------------------


class TestSamplingProfiler:
    def test_tick_fires_every_nth(self):
        profiler = SamplingProfiler(every=4)
        assert [profiler.tick() for _ in range(12)] == [
            False, False, False, True,
            False, False, False, True,
            False, False, False, True,
        ]
        assert profiler.total_bursts == 12
        assert profiler.sampled_bursts == 3

    def test_every_one_always_samples(self):
        profiler = SamplingProfiler(every=1)
        assert all(profiler.tick() for _ in range(5))

    def test_default_rate(self):
        profiler = SamplingProfiler()
        assert profiler.every == DEFAULT_SAMPLE_EVERY

    def test_observations_land_in_fixed_buckets(self):
        profiler = SamplingProfiler(every=1)
        profiler.tick()
        profiler.observe_burst(
            64,
            (
                ("gateway.wire.plan", 5e-07),   # below first bound
                ("gateway.wire.stamp", 2e-06),  # second bucket
                ("gateway.wire.burst", 1.0),    # overflow bucket
            ),
        )
        profiler.count("sigma_cache_hits", 3)
        snapshot = profiler.snapshot()
        assert snapshot["counts"]["sampled_packets"] == 64
        assert snapshot["counts"]["sigma_cache_hits"] == 3
        stages = snapshot["stages"]
        plan = stages["gateway.wire.plan"]
        assert plan["counts"][0] == 1 and plan["count"] == 1
        stamp = stages["gateway.wire.stamp"]
        assert stamp["counts"][1] == 1
        burst = stages["gateway.wire.burst"]
        assert burst["counts"][-1] == 1
        json.dumps(snapshot)  # artifact-ready

    def test_snapshot_is_json_ready_when_idle(self):
        assert json.loads(json.dumps(SamplingProfiler().snapshot())) == (
            SamplingProfiler().snapshot()
        )


# -- sampled wire-path equivalence ---------------------------------------------


def wire_stack(sampler=None):
    """A source gateway + middle router pair, optionally instrumented."""
    clock = SimClock(1000.0)
    mid_keys = ColibriKeys(DrkeyDeriver(MID, clock, seed=b"mid" * 6))
    gateway = ColibriGateway(SRC, clock)
    router = BorderRouter(MID, mid_keys, clock)
    if sampler is not None:
        obs = ObsContext.create(clock, seed=0)
        obs.sampler = sampler
        gateway.obs = obs
        router.obs = obs
    now = clock.now()
    res_id = ReservationId(SRC, 5)
    res_info = ResInfo(
        reservation=res_id, bandwidth=gbps(1), expiry=now + EER_LIFETIME,
        version=1,
    )
    sigma_mid = hop_authenticator(mid_keys.hop_key(now), res_info, EER, 2, 3)
    gateway.install(
        res_id, PATH, EER, res_info, (b"x" * 16, sigma_mid, b"y" * 16)
    )
    return clock, gateway, router, res_id


def wire_run(sampler=None, bursts=8, batch=8):
    """Bytes + verdicts of a wire workload, sampled or not."""
    clock, gateway, router, res_id = wire_stack(sampler)
    arena = PacketArena(slots=batch, slot_size=2048)
    rng = random.Random(11)
    all_bytes = []
    all_verdicts = []
    for burst in range(bursts):
        requests = [
            (res_id, b"z" * rng.randrange(16, 64)) for _ in range(batch)
        ]
        views = gateway.send_batch_wire(requests, arena)
        for view in views:
            all_bytes.append(view.materialize())
            view.advance_hop()
        if burst == bursts - 1:
            # Corrupt one HVF so the verdict set includes a False.
            view = views[0]
            offsets = ColibriPacket.wire_offsets(view.hop_count, True)
            at = view.offset + offsets.hvf + view.hop_index * L_HVF
            arena.buffer[at] ^= 0xFF
        all_verdicts.extend(router.validate_wire_batch(views))
        clock.advance(1e-6)
    return all_bytes, all_verdicts


class TestSampledWireEquivalence:
    def test_sampled_paths_produce_identical_bytes_and_verdicts(self):
        plain_bytes, plain_verdicts = wire_run(sampler=None)
        sampled_bytes, sampled_verdicts = wire_run(
            sampler=SamplingProfiler(every=1)
        )
        assert sampled_bytes == plain_bytes
        assert sampled_verdicts == plain_verdicts
        assert False in plain_verdicts and True in plain_verdicts

    def test_default_rate_matches_too(self):
        plain = wire_run(sampler=None)
        # every=2: alternating sampled/unsampled bursts on both planes.
        assert wire_run(sampler=SamplingProfiler(every=2)) == plain

    def test_sampler_records_stages_and_cache_counts(self):
        sampler = SamplingProfiler(every=1)
        wire_run(sampler=sampler)
        snapshot = sampler.snapshot()
        stages = set(snapshot["stages"])
        assert {
            "gateway.wire.plan",
            "gateway.wire.stamp",
            "gateway.wire.burst",
            "router.wire.validate",
            "router.wire.burst",
        } <= stages
        assert snapshot["counts"]["sampled_packets"] > 0
        # The σ-cache warms on the first burst, then hits.
        assert snapshot["counts"]["sigma_cache_misses"] >= 1
        assert snapshot["counts"]["sigma_cache_hits"] > 0
