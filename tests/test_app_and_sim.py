"""Tests for the end-host layer (repro.app) and simulation substrate
(events, traffic sources, the Table 2 port simulation)."""

import pytest

from repro.app import ColibriSocket, EndHost, quick_network, reserve_and_send
from repro.constants import EER_LIFETIME
from repro.errors import InsufficientBandwidth, NoPathError, SimulationError
from repro.sim import ColibriNetwork, EventLoop, PortSim
from repro.sim.traffic import (
    BestEffortSource,
    BogusColibriSource,
    OverusingSource,
    ReservationSource,
)
from repro.topology import IsdAs, build_two_isd_topology
from repro.topology.addresses import HostAddr
from repro.util.clock import SimClock
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC = asid(1, 101)
DST = asid(2, 101)


@pytest.fixture
def net():
    return ColibriNetwork(build_two_isd_topology())


class TestEventLoop:
    def test_events_fire_in_order(self):
        clock = SimClock(0.0)
        loop = EventLoop(clock)
        order = []
        loop.at(2.0, lambda: order.append("b"))
        loop.at(1.0, lambda: order.append("a"))
        loop.at(3.0, lambda: order.append("c"))
        fired = loop.run_until(2.5)
        assert order == ["a", "b"]
        assert fired == 2
        assert clock.now() == 2.5

    def test_ties_fire_fifo(self):
        loop = EventLoop(SimClock(0.0))
        order = []
        loop.at(1.0, lambda: order.append(1))
        loop.at(1.0, lambda: order.append(2))
        loop.run_until(1.0)
        assert order == [1, 2]

    def test_cancellation(self):
        loop = EventLoop(SimClock(0.0))
        fired = []
        event = loop.at(1.0, lambda: fired.append(1))
        event.cancel()
        loop.run_until(2.0)
        assert fired == []
        assert loop.pending() == 0

    def test_periodic(self):
        loop = EventLoop(SimClock(0.0))
        ticks = []
        loop.every(1.0, lambda: ticks.append(loop.clock.now()))
        loop.run_until(5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_past_scheduling_rejected(self):
        loop = EventLoop(SimClock(10.0))
        with pytest.raises(SimulationError):
            loop.at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            loop.after(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        loop = EventLoop(SimClock(0.0))
        seen = []
        loop.at(1.0, lambda: loop.at(1.5, lambda: seen.append("nested")))
        loop.run_until(2.0)
        assert seen == ["nested"]


class TestEndHostApi:
    def test_quick_network_and_helper(self):
        net = quick_network()
        stats = reserve_and_send(net, SRC, DST)
        assert stats.delivered == 1

    def test_socket_send_and_stats(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        host = EndHost(net, SRC, HostAddr(1))
        socket = host.connect(DST, HostAddr(2), mbps(10))
        for _ in range(5):
            socket.send(b"datagram")
        assert socket.stats.delivered == 5
        assert socket.stats.delivery_rate == 1.0

    def test_connect_without_segments_raises(self, net):
        host = EndHost(net, SRC, HostAddr(1))
        with pytest.raises(NoPathError):
            host.connect(DST, HostAddr(2), mbps(10))

    def test_auto_renew_survives_expiry(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        # Keep the SegRs alive too, so only the EER needs auto-renewal.
        from repro.control import RenewalScheduler

        keepers = []
        for isd_as in (asid(1, 101), asid(1, 1), asid(2, 1)):
            cserv = net.cserv(isd_as)
            keeper = RenewalScheduler(cserv)
            for segr in cserv.store.segments():
                if segr.reservation_id.src_as == isd_as:
                    keeper.track_segment(segr.reservation_id, bandwidth=gbps(1))
            keepers.append(keeper)
        host = EndHost(net, SRC, HostAddr(1))
        socket = host.connect(DST, HostAddr(2), mbps(10), auto_renew=True)
        for _ in range(4):
            net.advance(EER_LIFETIME / 2)
            for keeper in keepers:
                keeper.tick()
            assert socket.send(b"ping").delivered

    def test_send_paced_delivers_all(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        host = EndHost(net, SRC, HostAddr(1))
        socket = host.connect(DST, HostAddr(2), mbps(8), auto_renew=True)
        stats = socket.send_paced(total_bytes=20_000, packet_bytes=1000)
        assert stats.delivered == 20
        assert stats.network_drops == 0

    def test_bandwidth_estimate(self, net):
        host = EndHost(net, SRC, HostAddr(1))
        assert host.estimate_bandwidth_for(mbps(4)) == pytest.approx(mbps(4.4))
        with pytest.raises(ValueError):
            host.estimate_bandwidth_for(0)

    def test_explicit_renew(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        host = EndHost(net, SRC, HostAddr(1))
        socket = host.connect(DST, HostAddr(2), mbps(10), auto_renew=False)
        net.advance(2.0)
        renewed = socket.renew(new_bandwidth=mbps(20))
        assert renewed.res_info.version == 2
        assert socket.reserved_bandwidth == pytest.approx(mbps(20))


class TestTrafficSources:
    def test_reservation_source_rate(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(8))
        source = ReservationSource(
            net.gateway(SRC), handle, rate=mbps(8), packet_bytes=1000
        )
        total = 0
        for step in range(100):
            packets = list(source.packets(net.clock.now(), 0.001))
            total += len(packets)
            net.advance(0.001)
        assert total == 100  # 1 packet per ms at 8 Mbps / 1000 B

    def test_overusing_source_bypasses_monitor(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(8))
        source = OverusingSource(
            net.gateway(SRC), handle, rate=mbps(80), packet_bytes=1000
        )
        packets = list(source.packets(net.clock.now(), 0.01))
        assert len(packets) == 100  # 10x the reservation, no gateway drops
        assert source.gateway_drops == 0
        # The packets are validly stamped: routers accept them (until
        # policing reacts).
        packets[0].hop_index = 1
        result = net.router(asid(1, 11)).process(packets[0])
        assert not result.verdict.is_drop

    def test_bogus_source_generates_invalid_packets(self, net):
        source = BogusColibriSource(
            SRC, ((0, 1), (2, 0)), rate=mbps(8), packet_bytes=1000,
            expiry=net.clock.now() + 100,
        )
        packets = list(source.packets(net.clock.now(), 0.01))
        assert len(packets) == 10
        packets[0].hop_index = 0
        from repro.dataplane.router import Verdict

        assert net.router(asid(1, 1)).process(packets[0]).verdict is Verdict.DROP_BAD_HVF

    def test_best_effort_source_volume(self):
        source = BestEffortSource(rate=8_000_000.0, packet_bytes=1000)
        sizes = list(source.sizes(0.0, 0.01))
        assert sum(sizes) == 10_000  # 1 MB/s * 10 ms

    def test_fractional_rates_carry_over(self):
        source = BestEffortSource(rate=4000.0, packet_bytes=1000)  # 0.5 pkt/s
        counts = [len(list(source.sizes(t, 1.0))) for t in range(4)]
        assert sum(counts) == 2  # carry accumulates, no packets lost


class TestBidirectional:
    def test_two_way_sockets(self, net):
        from repro.app import establish_bidirectional

        net.reserve_segments(SRC, DST, gbps(1))
        net.reserve_segments(DST, SRC, gbps(1))
        alice = EndHost(net, SRC, HostAddr(1))
        bob = EndHost(net, DST, HostAddr(2))
        ab, ba = establish_bidirectional(net, alice, bob, mbps(10), mbps(2))
        assert ab.send(b"question").delivered
        assert ba.send(b"answer").delivered
        assert ab.reserved_bandwidth == pytest.approx(mbps(10))
        assert ba.reserved_bandwidth == pytest.approx(mbps(2))

    def test_reverse_failure_rolls_back_forward(self, net):
        from repro.app import establish_bidirectional

        net.reserve_segments(SRC, DST, gbps(1))
        # no reverse segments: the second connect fails
        alice = EndHost(net, SRC, HostAddr(1))
        bob = EndHost(net, DST, HostAddr(2))
        with pytest.raises(NoPathError):
            establish_bidirectional(net, alice, bob, mbps(10))
        # forward direction was uninstalled at the gateway
        assert net.gateway(SRC).reservation_count() == 0


class TestPowerLawTopology:
    def test_scale_and_connectivity(self):
        from repro.topology import Beaconing, PathLookup, build_power_law

        topology = build_power_law(as_count=300, isd_count=5)
        assert len(topology) == 300
        beaconing = Beaconing(topology)
        for node in topology.ases():
            if not node.is_core:
                assert beaconing.reachable_cores(node.isd_as)
        # End-to-end across the power-law graph works.
        net = ColibriNetwork(topology)
        leaves = [n.isd_as for n in topology.ases() if not n.is_core]
        src = [a for a in leaves if a.isd == 1][0]
        dst = [a for a in leaves if a.isd == 4][0]
        net.reserve_segments(src, dst, mbps(100))
        handle = net.establish_eer(src, dst, mbps(5))
        assert net.send(src, handle, b"power law").delivered

    def test_degree_skew(self):
        from repro.topology import build_power_law

        topology = build_power_law(as_count=300, isd_count=3)
        degrees = sorted(
            (len(node.interfaces) for node in topology.ases()), reverse=True
        )
        # Heavy tail: the biggest provider dwarfs the median AS.
        assert degrees[0] >= 8
        assert degrees[len(degrees) // 2] <= 2

    def test_validates_parameters(self):
        from repro.topology import build_power_law

        with pytest.raises(ValueError):
            build_power_law(as_count=5, isd_count=5, cores_per_isd=3)
