"""Tests for packet-level protected control traffic (§4.5/§5.3) and
DRKey epoch-boundary behaviour at routers."""

import pytest

from repro.constants import DRKEY_VALIDITY, SEGR_LIFETIME
from repro.control.protected import build_control_packet, walk_control_packet
from repro.dataplane.router import Verdict
from repro.errors import ReservationExpired
from repro.packets.control import SegRenewalRequest
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC = asid(1, 101)
DST = asid(2, 101)


@pytest.fixture
def net():
    return ColibriNetwork(build_two_isd_topology())


def make_renewal_message(cserv, segment_id):
    reservation = cserv.store.get_segment(segment_id)
    return SegRenewalRequest(
        reservation=segment_id,
        new_bandwidth=reservation.bandwidth,
        min_bandwidth=0.0,
        new_expiry=cserv.clock.now() + SEGR_LIFETIME,
        new_version=reservation.next_version_number(),
    )


class TestProtectedControlPackets:
    def test_control_packet_accepted_at_every_hop(self, net):
        (up, core, down) = net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        message = make_renewal_message(cserv, up.reservation_id)
        packet = build_control_packet(cserv, up.reservation_id, message)
        outcome = walk_control_packet(net, packet)
        assert outcome.delivered
        assert all(v is Verdict.DELIVER_CSERV for _, v in outcome.verdicts)
        assert len(outcome.verdicts) == len(up.segment)

    def test_tampered_res_info_dropped(self, net):
        from dataclasses import replace

        (up, *_rest) = net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        message = make_renewal_message(cserv, up.reservation_id)
        packet = build_control_packet(cserv, up.reservation_id, message)
        # Inflate the claimed bandwidth: the Eq. (3) token covers ResInfo.
        packet.res_info = replace(packet.res_info, bandwidth=1e15)
        outcome = walk_control_packet(net, packet)
        assert not outcome.delivered
        assert outcome.verdicts[0][1] is Verdict.DROP_BAD_HVF

    def test_forged_tokens_dropped(self, net):
        (up, *_rest) = net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        message = make_renewal_message(cserv, up.reservation_id)
        packet = build_control_packet(cserv, up.reservation_id, message)
        packet.hvfs = [b"\xde\xad\xbe\xef"] * len(packet.hvfs)
        outcome = walk_control_packet(net, packet)
        assert not outcome.delivered

    def test_expired_segr_cannot_carry_control(self, net):
        (up, *_rest) = net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        message = make_renewal_message(cserv, up.reservation_id)
        net.advance(SEGR_LIFETIME + 1)
        with pytest.raises(ReservationExpired):
            build_control_packet(cserv, up.reservation_id, message)

    def test_only_initiator_holds_tokens(self, net):
        """A transit AS never receives the token set, so it cannot mint
        control packets for someone else's SegR (§5.3)."""
        (up, *_rest) = net.reserve_segments(SRC, DST, gbps(1))
        transit = net.cserv(asid(1, 11))
        with pytest.raises(KeyError):
            transit.segment_tokens(up.reservation_id)


class TestEpochBoundary:
    def test_eer_survives_drkey_epoch_rollover(self):
        """A reservation set up just before the daily DRKey rotation
        keeps forwarding right after it (previous-epoch grace, standard
        key-rotation practice)."""
        # Start 5 seconds before an epoch boundary.
        from repro.util.clock import SimClock

        boundary = 3 * DRKEY_VALIDITY
        net = ColibriNetwork(
            build_two_isd_topology(), clock=SimClock(boundary - 5.0)
        )
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        assert net.send(SRC, handle, b"before rollover").delivered
        net.advance(6.0)  # cross the boundary; EER (16 s) still live
        report = net.send(SRC, handle, b"after rollover")
        assert report.delivered, report.verdicts

    def test_segr_token_survives_epoch_rollover(self):
        from repro.util.clock import SimClock

        boundary = 3 * DRKEY_VALIDITY
        net = ColibriNetwork(
            build_two_isd_topology(), clock=SimClock(boundary - 5.0)
        )
        (up, *_rest) = net.reserve_segments(SRC, DST, gbps(1))
        cserv = net.cserv(SRC)
        net.advance(6.0)
        message = make_renewal_message(cserv, up.reservation_id)
        packet = build_control_packet(cserv, up.reservation_id, message)
        assert walk_control_packet(net, packet).delivered

    def test_two_epochs_old_is_rejected(self):
        """The grace window is exactly one epoch: anything older fails
        (it would also be long expired, but the crypto must not accept
        it either)."""
        from repro.dataplane.hvf import ColibriKeys, eer_hvf, hop_authenticator
        from repro.crypto.drkey import DrkeyDeriver
        from repro.dataplane.router import BorderRouter
        from repro.packets.colibri import ColibriPacket, PacketType
        from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
        from repro.reservation.ids import ReservationId
        from repro.topology.addresses import HostAddr
        from repro.util.clock import SimClock

        clock = SimClock(5 * DRKEY_VALIDITY + 10)
        keys = ColibriKeys(DrkeyDeriver(SRC, clock, seed=b"epoch-test-seed!"))
        router = BorderRouter(SRC, keys, clock)
        now = clock.now()
        res_info = ResInfo(
            reservation=ReservationId(SRC, 1),
            bandwidth=1e9,
            expiry=now + 10,
            version=1,
        )
        eer_info = EerInfo(HostAddr(1), HostAddr(2))
        ancient_key = keys.hop_key(now - 2 * DRKEY_VALIDITY)
        sigma = hop_authenticator(ancient_key, res_info, eer_info, 2, 3)
        ts = Timestamp.create(now, res_info.expiry)
        packet = ColibriPacket(
            packet_type=PacketType.EER_DATA,
            path=PathField(((0, 1), (2, 3), (4, 0))),
            res_info=res_info,
            timestamp=ts,
            hvfs=[b"\x00" * 4] * 3,
            eer_info=eer_info,
            hop_index=1,
        )
        packet.hvfs[1] = eer_hvf(sigma, ts, packet.total_size)
        assert router.process(packet).verdict is Verdict.DROP_BAD_HVF
