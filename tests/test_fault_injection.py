"""Fault-injection suite: the §3.3 cleanup invariant under injected loss.

Everything here is deterministic: loss patterns come from a seeded
:class:`FaultInjector`, backoff jitter from per-AS seeded RNGs, and time
from the simulation clock — re-running any test replays the exact same
failure trace.

The headline property (§3.3): under per-link call loss, every setup
either *converges* through retries or *aborts* leaving exact-zero
residual EER allocations in every on-path reservation store.
"""

import random

import pytest

from repro.control.distributed import DistributedCServ
from repro.control.renewal import RenewalScheduler
from repro.control.retry import (
    CLEANUP_POLICY,
    CircuitBreaker,
    IdempotencyCache,
    PolicyTable,
    RetryingCaller,
    RetryPolicy,
)
from repro.control.rpc import FaultInjector, LinkFaults, MessageBus, Unreachable
from repro.errors import (
    AdmissionDenied,
    CallTimeout,
    CircuitOpen,
    RetriesExhausted,
)
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.clock import SimClock
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


SRC = asid(1, 101)
DST = asid(2, 101)
#: The SRC -> DST path in the two-ISD topology (up + core + down).
PATH = [SRC, asid(1, 11), asid(1, 1), asid(2, 1), asid(2, 11), DST]


def lossy_network(faults=None):
    net = ColibriNetwork(build_two_isd_topology(), faults=faults)
    # Generous front door: these tests measure transport convergence,
    # not the §5.3 rate limiter.
    for isd_as in net.ases():
        net.cserv(isd_as).request_limiter.rate = 1e9
        net.cserv(isd_as).request_limiter.burst = 1e9
    return net


def allocation_snapshot(net):
    """allocated_on_segment for every (AS, SegR) pair in the network."""
    snapshot = {}
    for isd_as in net.ases():
        store = net.cserv(isd_as).store
        for segr in store.segments():
            snapshot[(isd_as, segr.reservation_id)] = store.allocated_on_segment(
                segr.reservation_id
            )
    return snapshot


# ---------------------------------------------------------------- injector --


class TestLinkFaults:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            LinkFaults(request_loss=1.5)
        with pytest.raises(ValueError):
            LinkFaults(response_loss=-0.1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LinkFaults(latency=-1.0)


class TestFaultInjector:
    def test_lookup_most_specific_first(self):
        injector = FaultInjector(seed=7)
        exact = LinkFaults(request_loss=0.1)
        to_dest = LinkFaults(request_loss=0.2)
        from_caller = LinkFaults(request_loss=0.3)
        fallback = LinkFaults(request_loss=0.4)
        injector.set_link(SRC, DST, exact)
        injector.set_link(None, DST, to_dest)
        injector.set_link(SRC, None, from_caller)
        injector.set_default(fallback)
        assert injector.faults_for(SRC, DST) is exact
        assert injector.faults_for(asid(1, 1), DST) is to_dest
        assert injector.faults_for(SRC, asid(1, 1)) is from_caller
        assert injector.faults_for(asid(1, 1), asid(2, 1)) is fallback

    def test_flap_window(self):
        injector = FaultInjector()
        injector.flap(DST, start_call=5, duration_calls=3)
        assert not injector.is_flapping(DST, 4)
        assert injector.is_flapping(DST, 5)
        assert injector.is_flapping(DST, 7)
        assert not injector.is_flapping(DST, 8)
        assert not injector.is_flapping(SRC, 6)

    def test_draw_deterministic_per_seed(self):
        a = FaultInjector(seed=42)
        b = FaultInjector(seed=42)
        draws_a = [a.draw(0.5) for _ in range(64)]
        draws_b = [b.draw(0.5) for _ in range(64)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_zero_probability_consumes_no_randomness(self):
        injector = FaultInjector(seed=3)
        for _ in range(10):
            assert not injector.draw(0.0)
        # The RNG stream is untouched: the next underlying sample is
        # still the seed's very first one.
        assert injector._rng.random() == random.Random(3).random()


class _Echo:
    """Minimal bus service for transport-level tests."""

    def __init__(self):
        self.handled = 0

    def ping(self):
        self.handled += 1
        return "pong"


class TestBusInjection:
    def setup_method(self):
        self.injector = FaultInjector(seed=0)
        self.bus = MessageBus(faults=self.injector)
        self.service = _Echo()
        self.bus.register(DST, self.service)

    def test_request_loss_skips_handler(self):
        self.injector.set_link(SRC, DST, LinkFaults(request_loss=1.0))
        with pytest.raises(Unreachable):
            self.bus.call(DST, "ping", caller=SRC)
        assert self.service.handled == 0
        assert self.injector.injected["request_loss"] == 1

    def test_response_loss_runs_handler(self):
        self.injector.set_link(SRC, DST, LinkFaults(response_loss=1.0))
        with pytest.raises(Unreachable):
            self.bus.call(DST, "ping", caller=SRC)
        assert self.service.handled == 1  # the destination committed
        assert self.injector.injected["response_loss"] == 1

    def test_latency_budget_raises_after_handler(self):
        self.injector.set_link(SRC, DST, LinkFaults(latency=3.0))
        with pytest.raises(CallTimeout):
            self.bus.call(DST, "ping", caller=SRC, timeout=4.0)
        assert self.service.handled == 1
        assert self.bus.virtual_elapsed == pytest.approx(6.0)  # both legs

    def test_latency_within_budget_passes(self):
        self.injector.set_link(SRC, DST, LinkFaults(latency=1.0))
        assert self.bus.call(DST, "ping", caller=SRC, timeout=4.0) == "pong"

    def test_flap_then_recovery(self):
        self.injector.flap(DST, start_call=1, duration_calls=2)
        for _ in range(2):
            with pytest.raises(Unreachable):
                self.bus.call(DST, "ping", caller=SRC)
        assert self.bus.call(DST, "ping", caller=SRC) == "pong"
        assert self.injector.injected["flap"] == 2


# ------------------------------------------------------------------- retry --


class TestRetryPolicy:
    def test_backoff_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.05, max_delay=1.0, multiplier=2.0)
        delays = [policy.delay(a, random.Random(9)) for a in range(12)]
        again = [policy.delay(a, random.Random(9)) for a in range(12)]
        assert delays == again
        for attempt, delay in enumerate(delays):
            ceiling = min(1.0, 0.05 * 2.0**attempt)
            assert ceiling / 2 <= delay <= ceiling

    def test_cleanup_policy_bypasses_breaker(self):
        assert CLEANUP_POLICY.use_breaker is False
        assert CLEANUP_POLICY.max_attempts > RetryPolicy().max_attempts


class TestCircuitBreaker:
    def test_full_lifecycle(self):
        clock = SimClock(start=0.0)
        breaker = CircuitBreaker(clock, failure_threshold=2, reset_timeout=5.0)
        breaker.allow()
        breaker.record_failure()
        breaker.allow()  # one failure: still closed
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpen):
            breaker.allow()
        clock.advance(5.0)
        breaker.allow()  # half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_failure()  # probe failed: re-open immediately
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_circuit_open_is_unreachable(self):
        # Initiators catching Unreachable must also see fast-fails.
        assert issubclass(CircuitOpen, Unreachable)
        assert issubclass(RetriesExhausted, Unreachable)


class _FlakyBus:
    """Scripted bus: raises the queued errors, then returns payloads."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def call(self, isd_as, method, *args, caller=None, timeout=None, **kwargs):
        self.calls += 1
        outcome = self.script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def caller_over(script, **kwargs):
    clock = SimClock(start=0.0)
    bus = _FlakyBus(script)
    return bus, RetryingCaller(bus, clock, SRC, sleeper=clock.advance, **kwargs)


class TestRetryingCaller:
    def test_retries_transient_then_succeeds(self):
        bus, caller = caller_over([Unreachable("x"), Unreachable("x"), "ok"])
        assert caller.call(DST, "handle_seg_setup") == "ok"
        assert bus.calls == 3
        assert caller.stats.retries == 2

    def test_authoritative_errors_propagate_immediately(self):
        bus, caller = caller_over([AdmissionDenied("no")])
        with pytest.raises(AdmissionDenied):
            caller.call(DST, "handle_seg_setup")
        assert bus.calls == 1
        assert caller.stats.retries == 0

    def test_exhaustion_raises_retries_exhausted(self):
        bus, caller = caller_over([Unreachable("x")] * 4)
        with pytest.raises(RetriesExhausted):
            caller.call(DST, "handle_seg_setup")
        assert bus.calls == 4
        assert caller.stats.gave_up == 1

    def test_downstream_exhaustion_is_terminal(self):
        """A RetriesExhausted from a hop further down the path must not
        be retried here — that would multiply the attempt count by the
        budget at every upstream hop — nor charged to this breaker."""
        bus, caller = caller_over([RetriesExhausted("downstream")])
        with pytest.raises(RetriesExhausted):
            caller.call(DST, "handle_seg_setup")
        assert bus.calls == 1
        assert caller.breaker(DST).state == CircuitBreaker.CLOSED

    def test_breaker_opens_and_fast_fails(self):
        script = [Unreachable("x")] * 4 + ["never reached"]
        bus, caller = caller_over(script, failure_threshold=4)
        with pytest.raises(RetriesExhausted):
            caller.call(DST, "handle_seg_setup")
        with pytest.raises(CircuitOpen):
            caller.call(DST, "handle_seg_setup")
        assert bus.calls == 4  # the second call never touched the bus
        assert caller.stats.fast_failed == 1

    def test_cleanup_runs_through_open_breaker(self):
        script = [Unreachable("x")] * 4 + ["cleaned"]
        bus, caller = caller_over(script, failure_threshold=4)
        with pytest.raises(RetriesExhausted):
            caller.call(DST, "handle_seg_setup")
        # handle_seg_abort maps to CLEANUP_POLICY (use_breaker=False):
        # the abort must go out even though the breaker is open.
        assert caller.call(DST, "handle_seg_abort") == "cleaned"

    def test_backoff_deterministic_across_callers(self):
        _, first = caller_over([Unreachable("x")] * 4)
        _, second = caller_over([Unreachable("x")] * 4)
        for caller in (first, second):
            with pytest.raises(RetriesExhausted):
                caller.call(DST, "handle_seg_setup")
        assert first.stats.backoff_total == second.stats.backoff_total
        assert first.stats.backoff_total > 0


class TestIdempotencyCache:
    def test_ttl_expiry(self):
        clock = SimClock(start=0.0)
        cache = IdempotencyCache(clock, ttl=10.0)
        cache.put(("k",), "v")
        assert cache.get(("k",)) == "v"
        clock.advance(11.0)
        assert cache.get(("k",)) is None

    def test_size_bound_evicts_oldest(self):
        cache = IdempotencyCache(SimClock(start=0.0), max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) == 2
        assert cache.get(("c",)) == 3

    def test_invalidate_by_predicate(self):
        cache = IdempotencyCache(SimClock(start=0.0))
        cache.put(("setup", "r1", 1), "x")
        cache.put(("setup", "r2", 1), "y")
        assert cache.invalidate(lambda key: key[1] == "r1") == 1
        assert cache.get(("setup", "r1", 1)) is None
        assert cache.get(("setup", "r2", 1)) == "y"


# ------------------------------------------------- end-to-end under faults --


class TestResponseLossIdempotency:
    def test_lost_response_does_not_double_admit(self):
        """The adversarial case: the destination commits, the response
        is lost, the retry must replay the cached answer — one
        allocation, not two (§3.3)."""
        # Random(1).random() = 0.134..., 0.847...: with response_loss=0.6
        # the first response is lost and the second delivered.
        injector = FaultInjector(seed=1)
        net = lossy_network()
        segrs = net.reserve_segments(SRC, DST, mbps(100))
        injector.set_link(asid(2, 11), DST, LinkFaults(response_loss=0.6))
        net.bus.install_faults(injector)

        handle = net.establish_eer(SRC, DST, mbps(10))

        assert handle.granted == pytest.approx(mbps(10))
        assert injector.injected["response_loss"] == 1
        dest = net.cserv(DST)
        assert dest.idempotency.hits == 1  # the retry was served a replay
        down_segr = [s for s in segrs if DST in s.segment.ases]
        assert len(down_segr) == 1
        allocated = dest.store.allocated_on_segment(down_segr[0].reservation_id)
        assert allocated == pytest.approx(mbps(10))  # exactly once


class TestAbortAfterExhaustion:
    def test_committed_suffix_is_released(self):
        """With every response on the last link lost, the destination
        commits on attempt one; after the retry budget the initiator
        must abort the whole path back to exact zero."""
        injector = FaultInjector(seed=5)
        net = lossy_network()
        net.reserve_segments(SRC, DST, mbps(100))
        injector.set_link(asid(2, 11), DST, LinkFaults(response_loss=1.0))
        net.bus.install_faults(injector)
        before = allocation_snapshot(net)

        with pytest.raises(Unreachable):
            net.establish_eer(SRC, DST, mbps(10))

        assert net.cserv(SRC).aborts["eers"] == 1
        assert net.cserv(SRC).aborts["undeliverable"] == 0
        for isd_as in net.ases():
            assert net.cserv(isd_as).store.eer_count() == 0
        assert allocation_snapshot(net) == before
        # The destination committed exactly once; replays served the rest.
        assert net.cserv(DST).idempotency.hits >= 1

    def test_service_recovers_after_faults_cleared(self):
        injector = FaultInjector(seed=5)
        net = lossy_network()
        net.reserve_segments(SRC, DST, mbps(100))
        injector.set_link(asid(2, 11), DST, LinkFaults(response_loss=1.0))
        net.bus.install_faults(injector)
        with pytest.raises(Unreachable):
            net.establish_eer(SRC, DST, mbps(10))
        net.bus.install_faults(None)
        handle = net.establish_eer(SRC, DST, mbps(10))
        assert handle.granted == pytest.approx(mbps(10))
        assert net.send(SRC, handle, b"recovered").delivered


class TestRollbackOnPartition:
    def test_allocations_return_to_pre_request_values(self):
        """Satellite of §3.3: a partition mid-setup rolls every on-path
        store back to its *pre-request* allocation — which is non-zero
        here, so this catches over-release as well as leaks."""
        net = lossy_network()
        net.reserve_segments(SRC, DST, mbps(100))
        baseline_handle = net.establish_eer(SRC, DST, mbps(7))
        assert baseline_handle.granted == pytest.approx(mbps(7))
        before = allocation_snapshot(net)
        assert any(value > 0 for value in before.values())

        net.bus.partition(asid(2, 11))
        with pytest.raises(Unreachable):
            net.establish_eer(SRC, DST, mbps(10))
        net.bus.heal(asid(2, 11))

        assert allocation_snapshot(net) == before
        for isd_as in net.ases():
            assert net.cserv(isd_as).store.eer_count() == (
                1 if isd_as in PATH else 0
            )


class TestLossyConvergence:
    LOSS = LinkFaults(request_loss=0.12, response_loss=0.08)  # ~20 % per call

    def run_batch(self, seed, setups):
        injector = FaultInjector(seed=seed)
        injector.set_default(self.LOSS)
        net = lossy_network()
        net.reserve_segments(SRC, DST, gbps(1))
        net.bus.install_faults(injector)
        outcomes = []
        for _ in range(setups):
            before = allocation_snapshot(net)
            try:
                handle = net.establish_eer(SRC, DST, mbps(1))
            except Unreachable:
                # A failed setup must leave *exact-zero* residue at
                # every hop — not approximately, not "until expiry".
                assert allocation_snapshot(net) == before
                outcomes.append(False)
            else:
                assert handle.granted == pytest.approx(mbps(1))
                outcomes.append(True)
        return net, injector, outcomes

    def test_99_percent_converge_at_20_percent_loss(self):
        net, injector, outcomes = self.run_batch(seed=2024, setups=150)
        successes = sum(outcomes)
        assert successes / len(outcomes) >= 0.99
        # The loss plan really fired (this is not a trivially clean run).
        assert injector.injected["request_loss"] > 0
        assert injector.injected["response_loss"] > 0
        retries = sum(
            net.cserv(isd_as).caller.stats.retries for isd_as in net.ases()
        )
        assert retries > 0

    def test_reproducible_from_fixed_seed(self):
        _, injector_a, outcomes_a = self.run_batch(seed=99, setups=40)
        _, injector_b, outcomes_b = self.run_batch(seed=99, setups=40)
        assert outcomes_a == outcomes_b
        assert dict(injector_a.injected) == dict(injector_b.injected)

    def test_different_seed_different_trace(self):
        _, injector_a, _ = self.run_batch(seed=1, setups=20)
        _, injector_b, _ = self.run_batch(seed=2, setups=20)
        assert dict(injector_a.injected) != dict(injector_b.injected)


class TestFlapConvergence:
    def test_setup_rides_out_a_brief_flap(self):
        injector = FaultInjector(seed=11)
        net = lossy_network()
        net.reserve_segments(SRC, DST, mbps(100))
        # Warm the remote descriptor cache so the next setup's first bus
        # call is the forward to the first hop — the flap window below is
        # keyed to bus call numbers and must land on that chain.
        net.establish_eer(SRC, DST, mbps(10))
        net.bus.install_faults(injector)
        # Two consecutive calls to the first-hop AS fail; the retry
        # budget (4) covers the outage.
        injector.flap(asid(1, 11), net.bus.calls + 1, 2)
        handle = net.establish_eer(SRC, DST, mbps(10))
        assert handle.granted == pytest.approx(mbps(10))
        assert injector.injected["flap"] >= 1


# ----------------------------------------------------- renewal under churn --


class TestRenewalSchedulerRobustness:
    def test_vanished_eer_is_untracked(self):
        net = lossy_network()
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(10))
        scheduler = RenewalScheduler(net.cserv(SRC))
        scheduler.track_eer(handle)
        # The reservation disappears underneath the scheduler (abort).
        net.cserv(SRC)._abort_eer(handle.reservation_id, 1, handle.hops)
        net.clock.advance(14.0)  # well inside the renewal lead window
        ticks = scheduler.tick()
        assert ticks == {"segments": 0, "eers": 0, "failures": 0, "transient": 0}
        with pytest.raises(KeyError):
            scheduler.eer_handle(handle.reservation_id)

    def test_transient_failure_keeps_tracking(self):
        net = lossy_network()
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(10))
        scheduler = RenewalScheduler(net.cserv(SRC), eer_lead=6.0)
        scheduler.track_eer(handle)
        net.clock.advance(10.5)  # inside the lead window, before expiry
        net.bus.partition(DST)
        ticks = scheduler.tick()
        assert ticks["transient"] == 1
        assert ticks["failures"] == 0
        assert scheduler.eer_handle(handle.reservation_id) is handle
        net.bus.heal(DST)
        net.clock.advance(1.5)  # respect the per-EER renewal rate limit
        ticks = scheduler.tick()
        assert ticks["eers"] == 1
        renewed = scheduler.eer_handle(handle.reservation_id)
        assert renewed.res_info.version > handle.res_info.version


# ------------------------------------------------------- distributed CServ --


class TestDistributedPassthroughs:
    def test_teardown_traverses_distributed_as(self):
        net = lossy_network()
        segrs = net.reserve_segments(SRC, DST, mbps(100))
        DistributedCServ(net.cserv(asid(2, 11)), eer_workers=2)
        down = [s for s in segrs if asid(2, 11) in s.segment.ases and DST in s.segment.ases]
        assert len(down) == 1
        res_id = down[0].reservation_id
        net.cserv(asid(2, 1)).teardown_segment(res_id)
        for isd_as in (asid(2, 1), asid(2, 11), DST):
            assert not net.cserv(isd_as).store.has_segment(res_id)

    def test_abort_routes_through_distributed_as(self):
        injector = FaultInjector(seed=5)
        net = lossy_network()
        net.reserve_segments(SRC, DST, mbps(100))
        distributed = DistributedCServ(net.cserv(asid(2, 11)), eer_workers=2)
        injector.set_link(asid(2, 11), DST, LinkFaults(response_loss=1.0))
        net.bus.install_faults(injector)
        with pytest.raises(Unreachable):
            net.establish_eer(SRC, DST, mbps(10))
        for isd_as in net.ases():
            assert net.cserv(isd_as).store.eer_count() == 0
        # The abort really went through a sharded worker, not the parent.
        assert sum(worker.handled for worker in distributed.eer_workers) > 0
