"""Property-based tests (hypothesis) on core data structures and
system invariants, complementing the per-module suites."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import FRESHNESS_WINDOW, MAX_CLOCK_SKEW
from repro.crypto import aead_open, aead_seal
from repro.dataplane import TokenBucket
from repro.dataplane.duplicate import DuplicateSuppressor
from repro.dataplane.queueing import PriorityScheduler, TrafficClass
from repro.errors import ColibriError, PacketDecodeError
from repro.packets import ColibriPacket, EerInfo, PacketType, PathField, ResInfo, Timestamp
from repro.packets.control import decode_message
from repro.reservation import ReservationId, ReservationStore
from repro.reservation.e2e import E2EReservation, E2EVersion
from repro.reservation.segment import SegmentReservation, SegmentVersion
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField, Segment, SegmentType
from repro.util.clock import SimClock

SRC = IsdAs.parse("1-ff00:0:110")

# -- strategies -----------------------------------------------------------------

isd_as_st = st.builds(
    IsdAs, st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 48) - 1)
)
res_id_st = st.builds(ReservationId, isd_as_st, st.integers(0, (1 << 32) - 1))
ifid_st = st.integers(0, (1 << 16) - 1)
pairs_st = st.lists(st.tuples(ifid_st, ifid_st), min_size=1, max_size=8).map(tuple)
res_info_st = st.builds(
    ResInfo,
    reservation=res_id_st,
    bandwidth=st.floats(min_value=0, max_value=1e15, allow_nan=False),
    expiry=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    version=st.integers(0, (1 << 16) - 1),
)
timestamp_st = st.builds(
    Timestamp, st.integers(0, (1 << 48) - 1), st.integers(0, (1 << 16) - 1)
)


@st.composite
def packet_st(draw):
    pairs = draw(pairs_st)
    packet_type = draw(st.sampled_from([PacketType.SEGMENT, PacketType.EER_DATA]))
    eer_info = None
    if packet_type == PacketType.EER_DATA:
        eer_info = EerInfo(
            HostAddr(draw(st.integers(0, (1 << 32) - 1))),
            HostAddr(draw(st.integers(0, (1 << 32) - 1))),
        )
    return ColibriPacket(
        packet_type=packet_type,
        path=PathField(pairs),
        res_info=draw(res_info_st),
        timestamp=draw(timestamp_st),
        hvfs=[draw(st.binary(min_size=4, max_size=4)) for _ in pairs],
        eer_info=eer_info,
        payload=draw(st.binary(max_size=256)),
        hop_index=draw(st.integers(0, len(pairs) - 1)),
    )


class TestPacketProperties:
    @given(packet_st())
    @settings(max_examples=200)
    def test_serialization_roundtrip(self, packet):
        parsed = ColibriPacket.from_bytes(packet.to_bytes())
        assert parsed.packet_type == packet.packet_type
        assert parsed.path == packet.path
        assert parsed.res_info == packet.res_info
        assert parsed.timestamp == packet.timestamp
        assert parsed.hvfs == packet.hvfs
        assert parsed.eer_info == packet.eer_info
        assert parsed.payload == packet.payload
        assert parsed.hop_index == packet.hop_index

    @given(packet_st())
    @settings(max_examples=100)
    def test_total_size_is_serialized_length(self, packet):
        assert packet.total_size == len(packet.to_bytes())

    @given(packet_st(), st.integers(0, 200), st.binary(min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_mutated_bytes_never_crash(self, packet, position, junk):
        """Parsing corrupted input either succeeds or raises the typed
        decode error — never an unhandled exception."""
        data = bytearray(packet.to_bytes())
        position %= len(data)
        data[position : position + len(junk)] = junk
        try:
            ColibriPacket.from_bytes(bytes(data))
        except PacketDecodeError:
            pass
        except ColibriError:
            pass

    @given(st.binary(max_size=64))
    @settings(max_examples=100)
    def test_random_control_payloads_never_crash(self, data):
        try:
            decode_message(data)
        except PacketDecodeError:
            pass


class TestCryptoProperties:
    @given(
        st.binary(min_size=1, max_size=32),
        st.binary(max_size=128),
        st.binary(max_size=32),
    )
    @settings(max_examples=100)
    def test_aead_roundtrip_always(self, key, plaintext, associated):
        sealed = aead_seal(key, plaintext, associated)
        assert aead_open(key, sealed, associated) == plaintext


class TestTokenBucketProperties:
    @given(
        st.floats(min_value=1e3, max_value=1e9),
        st.lists(st.tuples(st.floats(0, 0.01), st.integers(1, 2000)), min_size=1, max_size=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_long_run_rate_never_exceeds_reservation(self, rate, arrivals):
        """Whatever the arrival pattern, accepted volume over the run is
        bounded by rate x elapsed + the burst depth."""
        bucket = TokenBucket(rate=rate, burst_seconds=0.1, now=0.0)
        now = 0.0
        accepted_bits = 0
        for gap, size in arrivals:
            now += gap
            if bucket.conforms(size, now):
                accepted_bits += size * 8
        bound = rate * now + rate * 0.1 + 1e-6
        assert accepted_bits <= bound


class TestVersionProperties:
    @given(st.lists(st.integers(2, 500), min_size=1, max_size=30, unique=True))
    @settings(max_examples=50)
    def test_segr_at_most_one_active_version(self, versions):
        segment = Segment.from_hops(
            SegmentType.CORE,
            [HopField(SRC, NO_INTERFACE, 1),
             HopField(IsdAs.parse("1-ff00:0:111"), 1, NO_INTERFACE)],
        )
        segr = SegmentReservation(
            reservation_id=ReservationId(SRC, 1),
            segment=segment,
            first_version=SegmentVersion(version=1, bandwidth=1.0, expiry=1e9),
        )
        activated = 1
        for version in sorted(versions):
            segr.add_pending(SegmentVersion(version=version, bandwidth=1.0, expiry=1e9))
            if version % 2 == 0:  # activate every other pending version
                segr.activate(version, now=0.0)
                activated = version
        states = [v.state.value for v in segr.versions.values()]
        assert states.count("active") == 1
        assert segr.active.version == activated

    @given(
        st.lists(
            st.tuples(st.floats(1, 1e9), st.floats(1.0, 100.0)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_eer_effective_bandwidth_is_max_of_live(self, specs):
        eer = E2EReservation(
            reservation_id=ReservationId(SRC, 1),
            eer_info=EerInfo(HostAddr(1), HostAddr(2)),
            hops=(HopField(SRC, NO_INTERFACE, 1),),
            segment_ids=(ReservationId(SRC, 99),),
            first_version=E2EVersion(version=1, bandwidth=specs[0][0], expiry=specs[0][1]),
        )
        for index, (bandwidth, expiry) in enumerate(specs[1:], start=2):
            eer.add_version(E2EVersion(version=index, bandwidth=bandwidth, expiry=expiry))
        now = 0.5
        live = [bw for bw, exp in specs if exp > now]
        assert eer.effective_bandwidth(now) == (max(live) if live else 0.0)


class TestStoreProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.floats(0, 1e9)), max_size=60))
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow])
    def test_allocation_sum_matches_recomputation(self, operations):
        """The incrementally maintained per-SegR sum always equals the
        sum of individual allocations — the O(1) read is trustworthy."""
        store = ReservationStore()
        segment = Segment.from_hops(
            SegmentType.CORE,
            [HopField(SRC, NO_INTERFACE, 1),
             HopField(IsdAs.parse("1-ff00:0:111"), 1, NO_INTERFACE)],
        )
        segr = SegmentReservation(
            reservation_id=ReservationId(SRC, 1),
            segment=segment,
            first_version=SegmentVersion(version=1, bandwidth=1e12, expiry=1e9),
        )
        store.add_segment(segr)
        for host, bandwidth in operations:
            eer_id = ReservationId(SRC, 100 + host)
            if bandwidth < 1:  # treat tiny values as releases
                store.release_on_segment(segr.reservation_id, eer_id)
            else:
                store.allocate_on_segment(segr.reservation_id, eer_id, bandwidth)
        exact = sum(store._eer_alloc[segr.reservation_id].values())
        assert store.allocated_on_segment(segr.reservation_id) == pytest.approx(exact)


class TestDuplicateProperties:
    @given(st.lists(st.binary(min_size=8, max_size=16), min_size=1, max_size=200))
    @settings(max_examples=50)
    def test_never_accepts_twice_within_window(self, identifiers):
        suppressor = DuplicateSuppressor(SimClock(0.0), window=10.0)
        accepted = set()
        for identifier in identifiers:
            if suppressor.check_and_insert(identifier):
                assert identifier not in accepted
                accepted.add(identifier)


class TestSchedulerProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(list(TrafficClass)), st.integers(1, 5000)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_conservation_and_budget(self, arrivals):
        """Bytes out <= bytes in, and out <= capacity x time; nothing is
        created or silently lost (sent + backlog + dropped = offered)."""
        scheduler = PriorityScheduler(capacity=80_000.0, queue_bytes=50_000)
        offered = 0
        enqueued = 0
        for traffic_class, size in arrivals:
            offered += size
            if scheduler.enqueue(size, traffic_class):
                enqueued += size
        sent = scheduler.drain(1.0)
        total_sent = sum(sent.values())
        assert total_sent <= enqueued
        assert total_sent * 8 <= 80_000.0 + 5000 * 8  # budget + one packet slack
        assert total_sent + scheduler.total_backlog() == enqueued


class TestClockSkewProperties:
    @given(
        st.floats(-MAX_CLOCK_SKEW, MAX_CLOCK_SKEW),
        st.floats(-MAX_CLOCK_SKEW, MAX_CLOCK_SKEW),
    )
    @settings(max_examples=50, deadline=None)
    def test_eer_survives_any_legal_skew(self, src_skew, router_skew):
        """Within the paper's ±0.1 s synchronization assumption, a fresh
        packet always passes the router's expiry and freshness checks."""
        from repro.sim import ColibriNetwork
        from repro.topology import build_two_isd_topology
        from repro.util.units import gbps, mbps

        BASE = 0xFF00_0000_0000
        skews = {
            IsdAs(1, BASE + 101): src_skew,
            IsdAs(2, BASE + 1): router_skew,
        }
        net = ColibriNetwork(
            build_two_isd_topology(), skew=lambda a: skews.get(a, 0.0)
        )
        src, dst = IsdAs(1, BASE + 101), IsdAs(2, BASE + 101)
        net.reserve_segments(src, dst, gbps(1))
        handle = net.establish_eer(src, dst, mbps(10))
        report = net.send(src, handle, b"skewed but fine")
        assert report.delivered


class TestBeaconingProperties:
    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_beaconed_segments_always_valid(self, isds, cores, depth, seed):
        """Every segment beaconing produces is structurally valid against
        its topology, on arbitrary generated hierarchies."""
        from repro.topology import Beaconing, build_internet_like

        topology = build_internet_like(
            isd_count=isds, cores_per_isd=cores, depth=depth, seed=seed
        )
        beaconing = Beaconing(topology)
        for (core, leaf), segments in beaconing._down.items():
            for segment in segments:
                segment.validate_against(topology)
                assert segment.first_as == core
                assert segment.last_as == leaf
        for (first, last), segments in beaconing._core.items():
            for segment in segments:
                segment.validate_against(topology)
                assert segment.first_as == first
                assert segment.last_as == last

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_combined_paths_never_loop(self, seed):
        """Any path the lookup yields visits each AS exactly once and is
        wired by real links end to end."""
        from repro.errors import NoPathError
        from repro.topology import Beaconing, PathLookup, build_internet_like

        topology = build_internet_like(isd_count=2, depth=2, seed=seed)
        lookup = PathLookup(Beaconing(topology))
        leaves = [n.isd_as for n in topology.ases() if not n.is_core]
        src = leaves[seed % len(leaves)]
        dst = leaves[(seed + 7) % len(leaves)]
        if src == dst:
            return
        try:
            paths = lookup.paths(src, dst, limit=5)
        except NoPathError:
            return
        for path in paths:
            ases = [hop.isd_as for hop in path.hops]
            assert len(set(ases)) == len(ases)
            for prev, nxt in zip(path.hops, path.hops[1:]):
                link = topology.node(prev.isd_as).link_on(prev.egress)
                far = link.other_end(prev.isd_as)
                assert far.owner == nxt.isd_as
                assert far.ifid == nxt.ingress
