"""Unit and property tests for repro.crypto: PRF, MAC, AEAD, DRKey."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import DRKEY_VALIDITY, L_HVF, MAC_LENGTH
from repro.crypto import (
    DrkeyDeriver,
    KeyServer,
    KeyServerDirectory,
    aead_open,
    aead_seal,
    constant_time_equal,
    derive_as_key,
    mac,
    prf,
    random_key,
    truncated_mac,
    verify_mac,
)
from repro.errors import AeadError, KeyFetchError, MacVerificationError
from repro.util.clock import SimClock


class TestPrf:
    def test_deterministic(self):
        key = b"k" * 16
        assert prf(key, b"data") == prf(key, b"data")

    def test_output_length(self):
        assert len(prf(b"k" * 16, b"data")) == MAC_LENGTH

    def test_key_separation(self):
        assert prf(b"a" * 16, b"data") != prf(b"b" * 16, b"data")

    def test_data_separation(self):
        key = b"k" * 16
        assert prf(key, b"data1") != prf(key, b"data2")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            prf(b"", b"data")

    def test_long_keys_accepted(self):
        assert len(prf(b"x" * 64, b"data")) == MAC_LENGTH

    def test_random_key_length(self):
        assert len(random_key()) == 16
        assert len(random_key(32)) == 32

    def test_random_keys_differ(self):
        assert random_key() != random_key()

    def test_random_key_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            random_key(0)


class TestMac:
    def test_verify_accepts_valid(self):
        key = random_key()
        tag = mac(key, b"message")
        verify_mac(key, b"message", tag)  # must not raise

    def test_verify_rejects_tampered_message(self):
        key = random_key()
        tag = mac(key, b"message")
        with pytest.raises(MacVerificationError):
            verify_mac(key, b"messagX", tag)

    def test_verify_rejects_wrong_key(self):
        tag = mac(random_key(), b"message")
        with pytest.raises(MacVerificationError):
            verify_mac(random_key(), b"message", tag)

    def test_truncated_default_is_l_hvf(self):
        assert len(truncated_mac(random_key(), b"m")) == L_HVF

    def test_truncated_is_prefix_of_full(self):
        key = random_key()
        assert mac(key, b"m")[:L_HVF] == truncated_mac(key, b"m")

    def test_verify_truncated_tag(self):
        key = random_key()
        verify_mac(key, b"m", truncated_mac(key, b"m"))

    @pytest.mark.parametrize("length", [0, 17, -1])
    def test_bad_truncation_length(self, length):
        with pytest.raises(ValueError):
            truncated_mac(random_key(), b"m", length)

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")

    @given(st.binary(min_size=1, max_size=32), st.binary(max_size=128))
    def test_mac_deterministic_property(self, key, data):
        assert mac(key, data) == mac(key, data)


class TestAead:
    def test_roundtrip(self):
        key = random_key()
        sealed = aead_seal(key, b"hop authenticator", b"assoc")
        assert aead_open(key, sealed, b"assoc") == b"hop authenticator"

    def test_wrong_key_fails(self):
        sealed = aead_seal(random_key(), b"secret")
        with pytest.raises(AeadError):
            aead_open(random_key(), sealed)

    def test_wrong_associated_data_fails(self):
        key = random_key()
        sealed = aead_seal(key, b"secret", b"ctx1")
        with pytest.raises(AeadError):
            aead_open(key, sealed, b"ctx2")

    def test_tampered_ciphertext_fails(self):
        key = random_key()
        sealed = bytearray(aead_seal(key, b"secret payload"))
        sealed[14] ^= 0xFF
        with pytest.raises(AeadError):
            aead_open(key, bytes(sealed))

    def test_truncated_message_fails(self):
        key = random_key()
        sealed = aead_seal(key, b"secret")
        with pytest.raises(AeadError):
            aead_open(key, sealed[:10])

    def test_ciphertext_hides_plaintext(self):
        key = random_key()
        sealed = aead_seal(key, b"A" * 40)
        assert b"A" * 8 not in sealed

    def test_nonce_randomizes(self):
        key = random_key()
        assert aead_seal(key, b"same") != aead_seal(key, b"same")

    @given(st.binary(max_size=256), st.binary(max_size=64))
    def test_roundtrip_property(self, plaintext, associated):
        key = b"0" * 16
        assert aead_open(key, aead_seal(key, plaintext, associated), associated) == plaintext

    def test_empty_plaintext(self):
        key = random_key()
        assert aead_open(key, aead_seal(key, b"")) == b""


class TestDrkey:
    def make_deriver(self, name=b"AS-A", start=0.0, seed=b"s" * 16):
        return DrkeyDeriver(name, SimClock(start), seed=seed)

    def test_as_key_deterministic_across_components(self):
        # Two components of the same AS built from the same seed derive
        # identical keys (router and CServ must agree).
        a1 = self.make_deriver()
        a2 = self.make_deriver()
        assert a1.as_key(b"AS-B") == a2.as_key(b"AS-B")

    def test_as_key_differs_per_remote(self):
        deriver = self.make_deriver()
        assert deriver.as_key(b"AS-B") != deriver.as_key(b"AS-C")

    def test_asymmetry(self):
        # K_{A->B} != K_{B->A}
        a = self.make_deriver(b"AS-A", seed=b"a" * 16)
        b = self.make_deriver(b"AS-B", seed=b"b" * 16)
        assert a.as_key(b"AS-B") != b.as_key(b"AS-A")

    def test_epoch_rotation_changes_keys(self):
        deriver = self.make_deriver()
        now_key = deriver.as_key(b"AS-B", when=0.0)
        next_epoch_key = deriver.as_key(b"AS-B", when=DRKEY_VALIDITY + 1)
        assert now_key != next_epoch_key

    def test_same_epoch_same_key(self):
        deriver = self.make_deriver()
        assert deriver.as_key(b"AS-B", when=100.0) == deriver.as_key(
            b"AS-B", when=DRKEY_VALIDITY - 1
        )

    def test_secret_covers(self):
        deriver = self.make_deriver()
        secret = deriver.secret_for(100.0)
        assert secret.covers(100.0)
        assert not secret.covers(DRKEY_VALIDITY + 5)

    def test_host_key_depends_on_host(self):
        deriver = self.make_deriver()
        assert deriver.host_key(b"AS-B", b"host1") != deriver.host_key(b"AS-B", b"host2")

    def test_derive_as_key_function(self):
        assert derive_as_key(b"s" * 16, b"B") == derive_as_key(b"s" * 16, b"B")
        assert derive_as_key(b"s" * 16, b"B") != derive_as_key(b"s" * 16, b"C")


class TestKeyServer:
    def test_fetch_matches_local_derivation(self):
        clock = SimClock(10.0)
        deriver = DrkeyDeriver(b"AS-A", clock)
        directory = KeyServerDirectory(clock)
        directory.register(KeyServer(deriver))
        fetched = directory.fetch_key(b"AS-A", b"AS-B")
        assert fetched == deriver.as_key(b"AS-B")

    def test_unknown_owner_raises(self):
        directory = KeyServerDirectory(SimClock())
        with pytest.raises(KeyFetchError):
            directory.fetch_key(b"AS-X", b"AS-B")

    def test_cache_prevents_repeat_fetches(self):
        clock = SimClock()
        deriver = DrkeyDeriver(b"AS-A", clock)
        server = KeyServer(deriver)
        directory = KeyServerDirectory(clock)
        directory.register(server)
        directory.fetch_key(b"AS-A", b"AS-B")
        directory.fetch_key(b"AS-A", b"AS-B")
        assert server.fetch_count == 1

    def test_cache_expires_with_epoch(self):
        clock = SimClock()
        deriver = DrkeyDeriver(b"AS-A", clock)
        server = KeyServer(deriver)
        directory = KeyServerDirectory(clock)
        directory.register(server)
        directory.fetch_key(b"AS-A", b"AS-B")
        clock.advance(DRKEY_VALIDITY + 1)
        directory.fetch_key(b"AS-A", b"AS-B")
        assert server.fetch_count == 2

    def test_per_requester_isolation(self):
        clock = SimClock()
        directory = KeyServerDirectory(clock)
        directory.register(KeyServer(DrkeyDeriver(b"AS-A", clock)))
        key_b = directory.fetch_key(b"AS-A", b"AS-B")
        key_c = directory.fetch_key(b"AS-A", b"AS-C")
        assert key_b != key_c
