"""Unit tests for repro.topology: addresses, graph, segments, beaconing, paths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    NoPathError,
    PathError,
    SegmentCombinationError,
    TopologyError,
    UnknownASError,
    UnknownInterfaceError,
)
from repro.topology import (
    Beaconing,
    HostAddr,
    IsdAs,
    PathLookup,
    Segment,
    SegmentType,
    Topology,
    build_core_mesh,
    build_internet_like,
    build_line_topology,
    build_two_isd_topology,
    combine_segments,
)
from repro.topology.graph import NO_INTERFACE, LinkType
from repro.topology.segments import HopField

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


class TestIsdAs:
    def test_parse_canonical(self):
        addr = IsdAs.parse("1-ff00:0:110")
        assert addr.isd == 1
        assert addr.asn == (0xFF00 << 32) | 0x110

    def test_parse_decimal(self):
        addr = IsdAs.parse("3-42")
        assert (addr.isd, addr.asn) == (3, 42)

    def test_str_roundtrip(self):
        for text in ["1-ff00:0:110", "12-5", "65000-ffff:ffff:ffff"]:
            assert str(IsdAs.parse(text)) == text

    def test_pack_unpack_roundtrip(self):
        addr = IsdAs.parse("7-ff00:0:321")
        assert IsdAs.unpack(addr.packed) == addr

    def test_packed_length(self):
        assert len(IsdAs(1, 1).packed) == 8

    def test_ordering(self):
        assert IsdAs(1, 5) < IsdAs(1, 6) < IsdAs(2, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IsdAs(1 << 16, 0)
        with pytest.raises(ValueError):
            IsdAs(0, 1 << 48)

    def test_malformed_text(self):
        with pytest.raises(ValueError):
            IsdAs.parse("no-dash-here-x")
        with pytest.raises(ValueError):
            IsdAs.parse("42")

    @given(st.integers(0, (1 << 16) - 1), st.integers(0, (1 << 48) - 1))
    def test_roundtrip_property(self, isd, asn):
        addr = IsdAs(isd, asn)
        assert IsdAs.parse(str(addr)) == addr
        assert IsdAs.unpack(addr.packed) == addr


class TestHostAddr:
    def test_pack_unpack(self):
        host = HostAddr(1234)
        assert HostAddr.unpack(host.packed) == host

    def test_range_check(self):
        with pytest.raises(ValueError):
            HostAddr(1 << 32)


class TestTopologyGraph:
    def test_add_as_and_lookup(self):
        topology = Topology()
        node = topology.add_as(asid(1, 1), is_core=True)
        assert topology.node(asid(1, 1)) is node
        assert asid(1, 1) in topology

    def test_duplicate_as_rejected(self):
        topology = Topology()
        topology.add_as(asid(1, 1))
        with pytest.raises(TopologyError):
            topology.add_as(asid(1, 1))

    def test_unknown_as(self):
        with pytest.raises(UnknownASError):
            Topology().node(asid(1, 1))

    def test_link_assigns_interfaces(self):
        topology = Topology()
        topology.add_as(asid(1, 1), is_core=True)
        topology.add_as(asid(1, 2), is_core=True)
        link = topology.add_link(asid(1, 1), asid(1, 2))
        assert link.link_type is LinkType.CORE
        assert topology.node(asid(1, 1)).neighbor_on(link.a.ifid) == asid(1, 2)

    def test_core_link_requires_core_ases(self):
        topology = Topology()
        topology.add_as(asid(1, 1), is_core=True)
        topology.add_as(asid(1, 2), is_core=False)
        with pytest.raises(TopologyError):
            topology.add_link(asid(1, 1), asid(1, 2), LinkType.CORE)

    def test_parent_child_same_isd_only(self):
        topology = Topology()
        topology.add_as(asid(1, 1), is_core=True)
        topology.add_as(asid(2, 2), is_core=False)
        with pytest.raises(TopologyError):
            topology.add_link(asid(1, 1), asid(2, 2), LinkType.PARENT_CHILD)

    def test_child_cannot_be_core(self):
        topology = Topology()
        topology.add_as(asid(1, 1), is_core=True)
        topology.add_as(asid(1, 2), is_core=True)
        with pytest.raises(TopologyError):
            topology.add_link(asid(1, 1), asid(1, 2), LinkType.PARENT_CHILD)

    def test_capacity_must_be_positive(self):
        topology = Topology()
        topology.add_as(asid(1, 1), is_core=True)
        topology.add_as(asid(1, 2), is_core=True)
        with pytest.raises(TopologyError):
            topology.add_link(asid(1, 1), asid(1, 2), capacity=0)

    def test_unknown_interface(self):
        topology = Topology()
        topology.add_as(asid(1, 1))
        with pytest.raises(UnknownInterfaceError):
            topology.node(asid(1, 1)).link_on(99)

    def test_children_and_parents(self):
        topology = build_two_isd_topology()
        core1 = asid(1, 1)
        kids = topology.children(core1)
        assert asid(1, 11) in kids and asid(1, 12) in kids
        assert topology.parents(asid(1, 11)) == [core1]

    def test_core_neighbors(self):
        topology = build_two_isd_topology()
        assert topology.core_neighbors(asid(1, 1)) == [asid(2, 1)]

    def test_link_between(self):
        topology = build_two_isd_topology()
        link = topology.link_between(asid(1, 1), asid(2, 1))
        assert link.link_type is LinkType.CORE
        with pytest.raises(TopologyError):
            topology.link_between(asid(1, 1), asid(2, 101))


class TestSegments:
    def make_segment(self):
        return Segment.from_hops(
            SegmentType.UP,
            [
                HopField(asid(1, 101), NO_INTERFACE, 1),
                HopField(asid(1, 11), 2, 1),
                HopField(asid(1, 1), 2, NO_INTERFACE),
            ],
        )

    def test_endpoints(self):
        segment = self.make_segment()
        assert segment.first_as == asid(1, 101)
        assert segment.last_as == asid(1, 1)
        assert len(segment) == 3

    def test_first_hop_must_have_no_ingress(self):
        with pytest.raises(PathError):
            Segment.from_hops(
                SegmentType.UP,
                [HopField(asid(1, 1), 5, 1), HopField(asid(1, 2), 1, NO_INTERFACE)],
            )

    def test_last_hop_must_have_no_egress(self):
        with pytest.raises(PathError):
            Segment.from_hops(
                SegmentType.UP,
                [HopField(asid(1, 1), NO_INTERFACE, 1), HopField(asid(1, 2), 1, 3)],
            )

    def test_no_duplicate_as(self):
        with pytest.raises(PathError):
            Segment.from_hops(
                SegmentType.UP,
                [
                    HopField(asid(1, 1), NO_INTERFACE, 1),
                    HopField(asid(1, 1), 2, NO_INTERFACE),
                ],
            )

    def test_reversal_swaps_type_and_interfaces(self):
        segment = self.make_segment()
        rev = segment.reversed()
        assert rev.segment_type is SegmentType.DOWN
        assert rev.first_as == asid(1, 1)
        assert rev.hops[0].egress == 2
        # double reversal is identity on hops
        assert segment.reversed().reversed().hops == segment.hops

    def test_hop_of(self):
        segment = self.make_segment()
        assert segment.hop_of(asid(1, 11)).interface_pair == (2, 1)
        with pytest.raises(PathError):
            segment.hop_of(asid(9, 9))

    def test_validate_against_topology(self):
        topology = build_two_isd_topology()
        beaconing = Beaconing(topology)
        for segment in beaconing.up_segments(asid(1, 101)):
            segment.validate_against(topology)

    def test_validate_rejects_fake_segment(self):
        topology = build_two_isd_topology()
        fake = Segment.from_hops(
            SegmentType.UP,
            [
                HopField(asid(1, 101), NO_INTERFACE, 1),
                HopField(asid(2, 101), 1, NO_INTERFACE),
            ],
        )
        with pytest.raises(PathError):
            fake.validate_against(topology)


class TestBeaconing:
    def test_two_isd_counts(self):
        beaconing = Beaconing(build_two_isd_topology())
        counts = beaconing.segment_count()
        # ISD1: leaves 11, 12, 101, 111 reachable from core1 (4 pairs);
        # ISD2: 11, 12, 101 from core2 (3 pairs).
        assert counts["down_pairs"] == 7
        assert counts["core_pairs"] == 2  # one core link, both directions

    def test_up_segments_reach_core(self):
        beaconing = Beaconing(build_two_isd_topology())
        ups = beaconing.up_segments(asid(1, 101))
        assert ups
        for segment in ups:
            assert segment.segment_type is SegmentType.UP
            assert segment.first_as == asid(1, 101)
            assert segment.last_as == asid(1, 1)

    def test_down_segments_directed(self):
        beaconing = Beaconing(build_two_isd_topology())
        downs = beaconing.down_segments(asid(2, 1), asid(2, 101))
        assert downs
        assert downs[0].first_as == asid(2, 1)
        assert downs[0].last_as == asid(2, 101)

    def test_core_segments_both_directions(self):
        beaconing = Beaconing(build_two_isd_topology())
        assert beaconing.core_segments(asid(1, 1), asid(2, 1))
        assert beaconing.core_segments(asid(2, 1), asid(1, 1))

    def test_reachable_cores(self):
        beaconing = Beaconing(build_two_isd_topology())
        assert beaconing.reachable_cores(asid(1, 101)) == [asid(1, 1)]
        assert beaconing.reachable_cores(asid(1, 1)) == [asid(1, 1)]

    def test_mesh_offers_multiple_core_segments(self):
        beaconing = Beaconing(build_core_mesh(4))
        segments = beaconing.core_segments(asid(1, 1), asid(1, 3))
        assert len(segments) > 1  # direct link plus detours

    def test_line_topology_single_segment(self):
        beaconing = Beaconing(build_line_topology(5))
        segments = beaconing.core_segments(asid(1, 1), asid(1, 5))
        assert len(segments) == 1
        assert len(segments[0]) == 5

    def test_segments_valid_against_topology(self):
        topology = build_internet_like()
        beaconing = Beaconing(topology)
        for (core, leaf), segments in list(beaconing._down.items())[:10]:
            for segment in segments:
                segment.validate_against(topology)


class TestCombineSegments:
    def test_up_core_down(self):
        topology = build_two_isd_topology()
        beaconing = Beaconing(topology)
        up = beaconing.up_segments(asid(1, 101))[0]
        core = beaconing.core_segments(asid(1, 1), asid(2, 1))[0]
        down = beaconing.down_segments(asid(2, 1), asid(2, 101))[0]
        path = combine_segments([up, core, down])
        assert path.source_as == asid(1, 101)
        assert path.destination_as == asid(2, 101)
        assert path.transfer_ases == (asid(1, 1), asid(2, 1))
        # transfer hop merges ingress from one segment, egress from next
        joint = path.hops[path.hop_index(asid(1, 1))]
        assert joint.ingress != NO_INTERFACE and joint.egress != NO_INTERFACE

    def test_wrong_order_rejected(self):
        topology = build_two_isd_topology()
        beaconing = Beaconing(topology)
        up = beaconing.up_segments(asid(1, 101))[0]
        down = beaconing.down_segments(asid(1, 1), asid(1, 111))[0]
        with pytest.raises(SegmentCombinationError):
            combine_segments([down, up])

    def test_mismatched_joint_rejected(self):
        topology = build_two_isd_topology()
        beaconing = Beaconing(topology)
        up = beaconing.up_segments(asid(1, 101))[0]  # ends at core1
        down = beaconing.down_segments(asid(2, 1), asid(2, 101))[0]  # starts core2
        with pytest.raises(SegmentCombinationError):
            combine_segments([up, down], allow_shortcut=False)

    def test_shortcut_cuts_below_core(self):
        topology = build_two_isd_topology()
        beaconing = Beaconing(topology)
        # 101 and 11 share AS 11: path from 101's grandchild view
        up = beaconing.up_segments(asid(1, 101))[0]  # 101 -> 11 -> core1
        down = beaconing.down_segments(asid(1, 1), asid(1, 101))[0]
        # Combining up(101) with down(core1 -> 11 -> 101) would revisit;
        # use a different destination under the same child to see the cut.
        # Build synthetic: up hits 11, down from core1 through 11 to 101.
        path = combine_segments(
            [beaconing.up_segments(asid(1, 101))[0],
             beaconing.down_segments(asid(1, 1), asid(1, 11))[0]]
        )
        # Shortcut: 101 -> 11 directly, without reaching core1.
        assert asid(1, 1) not in path.ases
        assert path.ases == (asid(1, 101), asid(1, 11))

    def test_single_segment_path(self):
        topology = build_two_isd_topology()
        beaconing = Beaconing(topology)
        up = beaconing.up_segments(asid(1, 101))[0]
        path = combine_segments([up])
        assert path.ases == up.ases
        assert path.transfer_ases == ()

    def test_too_many_segments(self):
        topology = build_two_isd_topology()
        beaconing = Beaconing(topology)
        up = beaconing.up_segments(asid(1, 101))[0]
        with pytest.raises(SegmentCombinationError):
            combine_segments([up, up, up, up])


class TestPathLookup:
    def test_inter_isd_path(self):
        lookup = PathLookup(Beaconing(build_two_isd_topology()))
        paths = lookup.paths(asid(1, 101), asid(2, 101))
        assert paths
        best = paths[0]
        assert best.source_as == asid(1, 101)
        assert best.destination_as == asid(2, 101)
        assert len(best) == 6

    def test_intra_isd_shortcut(self):
        lookup = PathLookup(Beaconing(build_two_isd_topology()))
        paths = lookup.paths(asid(1, 101), asid(1, 11))
        assert len(paths[0]) == 2  # shortcut, not via core

    def test_core_to_core(self):
        lookup = PathLookup(Beaconing(build_two_isd_topology()))
        paths = lookup.paths(asid(1, 1), asid(2, 1))
        assert len(paths[0]) == 2

    def test_leaf_to_core(self):
        lookup = PathLookup(Beaconing(build_two_isd_topology()))
        paths = lookup.paths(asid(1, 101), asid(2, 1))
        assert paths[0].destination_as == asid(2, 1)

    def test_same_as_rejected(self):
        lookup = PathLookup(Beaconing(build_two_isd_topology()))
        with pytest.raises(NoPathError):
            lookup.paths(asid(1, 101), asid(1, 101))

    def test_paths_sorted_by_length(self):
        lookup = PathLookup(Beaconing(build_core_mesh(4)))
        paths = lookup.paths(asid(1, 1), asid(1, 3), limit=10)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_internet_like_connectivity(self):
        topology = build_internet_like(isd_count=3)
        lookup = PathLookup(Beaconing(topology))
        leaves = [n.isd_as for n in topology.ases() if not n.is_core]
        src = [a for a in leaves if a.isd == 1][0]
        dst = [a for a in leaves if a.isd == 3][0]
        paths = lookup.paths(src, dst)
        assert paths[0].source_as == src
        assert paths[0].destination_as == dst


class TestGenerators:
    def test_line_length(self):
        topology = build_line_topology(8)
        assert len(topology) == 8
        assert len(list(topology.links())) == 7

    def test_line_needs_positive_length(self):
        with pytest.raises(ValueError):
            build_line_topology(0)

    def test_mesh_link_count(self):
        topology = build_core_mesh(5)
        assert len(list(topology.links())) == 10

    def test_internet_like_all_leaves_connected(self):
        topology = build_internet_like(isd_count=2, depth=2)
        beaconing = Beaconing(topology)
        for node in topology.ases():
            if not node.is_core:
                assert beaconing.reachable_cores(node.isd_as)
