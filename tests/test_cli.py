"""Tests for the demo CLI (`python -m repro`)."""

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_demo_runs_and_delivers(self, capsys):
        assert main(["demo", "--packets", "2"]) == 0
        out = capsys.readouterr().out
        assert "deployed Colibri on 9 ASes" in out
        assert out.count("delivered") == 2

    def test_demo_bandwidth_option(self, capsys):
        assert main(["demo", "--packets", "1", "--bandwidth", "5"]) == 0
        assert "5.000 Mbps" in capsys.readouterr().out

    def test_attack_replay_defended(self, capsys):
        assert main(["attack", "replay", "--intensity", "10"]) == 0
        out = capsys.readouterr().out
        assert "suppressed 50" in out  # 5 captured x 10 copies
        assert "victim framed: False" in out

    def test_attack_spoofing_defended(self, capsys):
        assert main(["attack", "spoofing", "--intensity", "25"]) == 0
        assert "rejected 25" in capsys.readouterr().out

    def test_topology_two_isd(self, capsys):
        assert main(["topology"]) == 0
        out = capsys.readouterr().out
        assert "9 ASes" in out
        assert "core" in out

    def test_topology_internet(self, capsys):
        assert main(["topology", "--shape", "internet", "--isds", "2"]) == 0
        assert "2 ISDs" in capsys.readouterr().out

    def test_telemetry_emits_json(self, capsys):
        assert main(["telemetry", "--packets", "3"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["total"]["gateway_sent"] == 3
        assert snapshot["total"]["router_drops"] == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["no-such-command"])

    def test_telemetry_prometheus_format(self, capsys):
        assert main(["telemetry", "--packets", "2", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE colibri_gateway_sent gauge" in out
        assert "colibri_gateway_sent 2" in out

    def test_trace_tree_shows_workflows_and_hops(self, capsys):
        assert main(["trace", "--packets", "1"]) == 0
        out = capsys.readouterr().out
        assert "eer.setup" in out
        assert "packet.send" in out
        assert "verdict=deliver_host" in out

    def test_trace_jsonl_is_seed_deterministic(self, capsys):
        assert main(["trace", "--packets", "2", "--format", "jsonl"]) == 0
        first = capsys.readouterr().out
        assert main(["trace", "--packets", "2", "--format", "jsonl"]) == 0
        assert capsys.readouterr().out == first
        assert main(["trace", "--packets", "2", "--format", "jsonl", "--seed", "9"]) == 0
        assert capsys.readouterr().out != first
        for line in first.splitlines():
            span = json.loads(line)
            assert span["end"] is not None  # every span closed

    def test_trace_metrics_appends_exposition(self, capsys):
        assert main(["trace", "--packets", "1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE colibri_admission_latency_seconds histogram" in out
        assert 'colibri_retry_attempts_bucket{le="+Inf"}' in out
        assert "# TYPE colibri_token_bucket_occupancy gauge" in out
