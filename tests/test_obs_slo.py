"""SLO burn-rate alerting and overuse forensics.

The alert state machine is exercised against hand-computed windows via
:meth:`AlertEngine.ingest` (synthetic snapshots, explicit clock), live ≡
offline equivalence via journal replay, and the evidence builder through
a full round trip — including the forged-HVF rejection case: a sample
packet citing an unauthenticated drop must be inadmissible.
"""

import copy
import dataclasses

import pytest

from repro.obs.events import VERDICT_DROPPED
from repro.obs.forensics import EvidenceBuilder, OveruseEvidence, verify_evidence
from repro.obs.report import run_health_scenario
from repro.obs.slo import (
    FIRING,
    OK,
    PENDING,
    RESOLVED,
    AlertEngine,
    SLOSpec,
    default_slos,
    registry_from_events,
    replay_journal,
)
from repro.packets.fields import Timestamp
from repro.sim import ColibriNetwork
from repro.topology import IsdAs, build_two_isd_topology
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


def ratio_slo(objective=0.9):
    return SLOSpec.ratio("drops", numerator="bad", denominator="all", objective=objective)


def snapshot(bad, all_):
    return {
        "bad": {"kind": "counter", "help": "", "value": float(bad)},
        "all": {"kind": "counter", "help": "", "value": float(all_)},
    }


class TestBurnRateMath:
    def test_ratio_burn_is_bad_fraction_over_budget(self):
        slo = ratio_slo(objective=0.9)  # budget 0.1
        older, newer = snapshot(0, 0), snapshot(5, 100)
        # bad fraction 0.05 over budget 0.1 -> burn 0.5
        assert slo.burn_rate(older, newer) == pytest.approx(0.5)

    def test_window_delta_not_cumulative(self):
        slo = ratio_slo(objective=0.9)
        older, newer = snapshot(50, 100), snapshot(55, 200)
        # only the window's 5/100 counts, not the historical 50/100
        assert slo.burn_rate(older, newer) == pytest.approx(0.5)

    def test_empty_window_burns_nothing(self):
        slo = ratio_slo()
        assert slo.burn_rate(snapshot(5, 10), snapshot(5, 10)) == 0.0

    def test_gauge_bound_violation(self):
        slo = SLOSpec.gauge_bound("level", gauge="g", bound=2.0)
        over = {"g": {"kind": "gauge", "help": "", "value": 3.0}}
        under = {"g": {"kind": "gauge", "help": "", "value": 1.0}}
        assert slo.burn_rate({}, over) == 1.0
        assert slo.burn_rate({}, under) == 0.0

    def test_latency_counts_above_threshold(self):
        slo = SLOSpec.latency("p", histogram="h", threshold=0.01, objective=0.5)
        hist = lambda counts, total: {  # noqa: E731
            "h": {
                "kind": "histogram",
                "help": "",
                "buckets": (0.001, 0.01, 0.1),
                "counts": counts,
                "sum": 0.0,
                "count": total,
            }
        }
        older = hist([0, 0, 0], 0)
        newer = hist([4, 4, 2], 10)
        # 2 of 10 above the 0.01 bound; budget 0.5 -> burn 0.4
        assert slo.burn_rate(older, newer) == pytest.approx(0.4)


class TestAlertStateMachine:
    def make_engine(self):
        return AlertEngine(
            (ratio_slo(objective=0.9),),
            fast_window=2.0,
            slow_window=10.0,
            pending_for=1.0,
            burn_threshold=1.0,
        )

    def drive(self, engine, points):
        """Feed ``(time, bad, all)`` points; return visited states."""
        states = []
        for time, bad, all_ in points:
            engine.ingest(time, snapshot(bad, all_))
            (alert,) = engine.alerts()
            states.append(alert.state)
        return states

    def test_clean_stream_stays_ok(self):
        engine = self.make_engine()
        states = self.drive(
            engine, [(t, 0, 100 * (t + 1)) for t in range(5)]
        )
        assert states == [OK] * 5

    def test_breach_walks_pending_then_firing(self):
        engine = self.make_engine()
        # 50% bad over a 0.1 budget: burn 5.0 in both windows.
        states = self.drive(
            engine,
            [(0.0, 0, 0), (0.5, 50, 100), (1.0, 100, 200), (2.0, 200, 400)],
        )
        # breach first seen at t=0.5 (pending); pending_for=1.0 elapses
        # by t=2.0 (1.5s after pending began) -> firing.
        assert states == [OK, PENDING, PENDING, FIRING]

    def test_blip_shorter_than_pending_never_fires(self):
        engine = self.make_engine()
        states = self.drive(
            engine,
            [(0.0, 0, 0), (0.5, 50, 100), (1.0, 50, 200), (1.5, 50, 600)],
        )
        # burn collapses below threshold (50/600 over a 0.1 budget is
        # 0.83) exactly when pending_for would have elapsed
        assert FIRING not in states
        assert states[-1] == OK

    def test_firing_resolves_then_returns_to_ok(self):
        engine = self.make_engine()
        states = self.drive(
            engine,
            [
                (0.0, 0, 0),
                (1.0, 100, 200),
                (2.5, 250, 500),
                # recovery: no new bad events, plenty of good ones
                (13.0, 250, 5000),
                (14.0, 250, 6000),
            ],
        )
        assert states == [OK, PENDING, FIRING, RESOLVED, OK]
        transitions = [(old, new) for _, _, old, new in engine.transitions]
        assert transitions == [
            (OK, PENDING),
            (PENDING, FIRING),
            (FIRING, RESOLVED),
            (RESOLVED, OK),
        ]

    def test_slow_window_vetoes_fast_blip(self):
        """Both windows must burn: a spike inside the fast window alone
        does not breach once the slow window has history to dilute it."""
        engine = self.make_engine()
        points = [(float(t), 0, 1000 * (t + 1)) for t in range(9)]
        states = self.drive(engine, points)
        assert states == [OK] * 9
        # One bad burst at t=9: the fast window (baseline t=7) sees
        # 200/2000 bad = burn 1.0 (breach), but the slow window
        # (baseline t=0) sees 200/9000 ≈ burn 0.22 — vetoed.
        engine.ingest(9.0, snapshot(200, 10000))
        (alert,) = engine.alerts()
        assert alert.fast_burn == pytest.approx(1.0)
        assert alert.slow_burn < 1.0
        assert alert.state == OK

    def test_time_must_advance(self):
        engine = self.make_engine()
        engine.ingest(1.0, snapshot(0, 0))
        with pytest.raises(ValueError):
            engine.ingest(0.5, snapshot(0, 0))


class TestLiveOfflineEquivalence:
    def test_replayed_journal_reproduces_transitions(self):
        """The journal-derived event counters evaluate identically
        whether read live (callback gauges) or rebuilt offline."""
        _, obs = run_health_scenario(seed=5, attack=True, rounds=600)
        events = obs.journal.events()
        slo = SLOSpec.ratio(
            "journal_drops",
            numerator="events_verdict_dropped_total",
            denominator="events_total",
            objective=0.5,
        )
        times = sorted({event.time for event in events})[::10]
        live = AlertEngine((slo,), pending_for=0.0)
        for time in times:
            live.ingest(time, registry_from_events(events, upto=time).state())
        replayed = AlertEngine((slo,), pending_for=0.0)
        replay_journal(events, replayed, times)
        assert replayed.transitions == live.transitions
        assert [a.state for a in replayed.alerts()] == [
            a.state for a in live.alerts()
        ]

    def test_default_slos_cover_documented_set(self):
        names = [slo.name for slo in default_slos()]
        assert names == [
            "admission_latency_p95",
            "hop_drop_ratio",
            "token_bucket_saturation",
            "circuit_breakers",
        ]


# ------------------------------------------------- overuse forensics --


@pytest.fixture(scope="module")
def overuse_case():
    """A journal holding a confirmed overuse *and* a forged-HVF drop.

    The forgery reuses the PR 4 fixture: a byte-copy of a delivered
    packet with a fresh timestamp — it names the victim's reservation
    but cannot authenticate, so it dies as ``drop_bad_hvf`` with
    ``identity_verified=False``.
    """
    net = ColibriNetwork(build_two_isd_topology())
    obs = net.enable_observability(seed=0, journal=True)
    net.reserve_segments(SRC, DST, gbps(1))
    handle = net.establish_eer(SRC, DST, mbps(8))
    report = net.send(SRC, handle, b"legit")
    assert report.delivered

    # Forged copy of the delivered packet (stale HVFs, fresh Ts).
    net.clock.advance(0.001)
    forged = copy.deepcopy(report.packet)
    forged.hop_index = 0
    forged.timestamp = Timestamp.create(net.clock.now(), forged.res_info.expiry)
    forged_report = net.forward(forged)
    assert forged_report.verdicts[-1][1].value == "drop_bad_hvf"

    # The source AS turns rogue (§7.1 threat 3) and floods.
    net.gateway(SRC).monitor.unwatch(handle.reservation_id.packed)
    net.router(SRC).ofd.overuse_factor = float("inf")
    tick = 0.001
    size = max(200, int(mbps(8) * tick / 8))
    builder = EvidenceBuilder(obs.journal)
    for _ in range(2000):
        for _ in range(10):
            net.send(SRC, handle, b"a" * size)
        net.advance(tick)
        if builder.confirmed_flows():
            break
    assert builder.confirmed_flows()
    return net, obs, handle


class TestEvidence:
    def test_round_trip_and_acceptance(self, overuse_case):
        _, obs, _ = overuse_case
        builder = EvidenceBuilder(obs.journal)
        (flow,) = builder.confirmed_flows()
        evidence = builder.build(flow)
        assert evidence.drop_count > 0
        assert evidence.sample_packets
        assert evidence.admitted_bps == pytest.approx(mbps(8))
        restored = OveruseEvidence.from_json(evidence.to_json())
        assert restored == evidence
        assert restored.to_json() == evidence.to_json()
        assert verify_evidence(restored, obs.journal) == []

    def test_deterministic_build(self, overuse_case):
        _, obs, _ = overuse_case
        builder = EvidenceBuilder(obs.journal)
        (flow,) = builder.confirmed_flows()
        assert builder.build(flow).to_json() == builder.build(flow).to_json()

    def test_tampered_counts_rejected(self, overuse_case):
        _, obs, _ = overuse_case
        builder = EvidenceBuilder(obs.journal)
        evidence = builder.build(builder.confirmed_flows()[0])
        inflated = dataclasses.replace(
            evidence,
            drop_count=evidence.drop_count + 7,
            dropped_bytes=evidence.dropped_bytes + 9000,
        )
        failures = verify_evidence(inflated, obs.journal)
        assert any("drop count mismatch" in f for f in failures)
        assert any("dropped bytes mismatch" in f for f in failures)

    def test_forged_sample_inadmissible(self, overuse_case):
        """A sample citing the forged packet's drop must be rejected:
        the drop was never authenticated (drop_bad_hvf)."""
        _, obs, _ = overuse_case
        builder = EvidenceBuilder(obs.journal)
        evidence = builder.build(builder.confirmed_flows()[0])
        forged_drop = next(
            event
            for event in obs.journal.by_type(VERDICT_DROPPED)
            if event.attrs["verdict"] == "drop_bad_hvf"
        )
        assert not forged_drop.attrs["identity_verified"]
        tampered_sample = {
            "seq": forged_drop.seq,
            "time": forged_drop.time,
            "size": forged_drop.attrs["size"],
        }
        tampered = dataclasses.replace(
            evidence,
            sample_packets=evidence.sample_packets[:-1] + (tampered_sample,),
        )
        failures = verify_evidence(tampered, obs.journal)
        assert any("never authenticated" in f for f in failures)

    def test_invented_sample_rejected(self, overuse_case):
        _, obs, _ = overuse_case
        builder = EvidenceBuilder(obs.journal)
        evidence = builder.build(builder.confirmed_flows()[0])
        fake = {"seq": 10_000_000, "time": 0.0, "size": 1}
        tampered = dataclasses.replace(
            evidence, sample_packets=(fake,) + evidence.sample_packets[1:]
        )
        failures = verify_evidence(tampered, obs.journal)
        assert any("not a journal drop" in f for f in failures)

    def test_unconfirmed_flow_has_no_evidence(self, overuse_case):
        _, obs, _ = overuse_case
        with pytest.raises(ValueError):
            EvidenceBuilder(obs.journal).build("deadbeef")
