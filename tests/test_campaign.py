"""Campaign-harness unit and determinism tests.

The load-bearing invariant (ISSUE 9 satellite): a campaign is a pure
function of its spec — same seed ⇒ byte-identical journal export and an
identical SLO transition sequence across runs.  Plus unit coverage of
the spec plumbing, artifact writer, and invariant checkers.
"""

import json
from types import SimpleNamespace

import pytest

from repro.obs.events import parse_jsonl
from repro.sim.campaign import (
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    Phase,
    WorkloadSpec,
    ShardSoakSpec,
    campaign_slos,
    check_no_residual_eers,
    check_worker_streams,
    run_campaign,
)
from repro.sim.campaigns import CANONICAL, QUICK, endpoints, flash_crowd
from repro.sim.scenario import ColibriNetwork
from repro.topology.generator import build_two_isd_topology


@pytest.fixture(scope="module")
def twin_runs():
    """The same quick campaign run twice from one seed."""
    return (
        run_campaign(flash_crowd(QUICK, seed=3)),
        run_campaign(flash_crowd(QUICK, seed=3)),
    )


def test_same_seed_byte_identical_journal(twin_runs):
    first, second = twin_runs
    assert first.journal_jsonl == second.journal_jsonl
    assert len(first.journal_jsonl) > 0


def _normalized(summary):
    # Heap measurement (sys.getsizeof) legitimately varies with dict
    # allocation history; everything else must be reproducible.
    for phase in summary["phases"]:
        phase["memory"].pop("store_bytes", None)
    return summary


def test_same_seed_identical_slo_state(twin_runs):
    first, second = twin_runs
    assert first.slo_times == second.slo_times
    assert first.transitions == second.transitions
    assert _normalized(first.summary()) == _normalized(second.summary())


def test_campaign_green_and_replay_equivalent(twin_runs):
    result = twin_runs[0]
    assert result.ok, result.violations
    assert result.replay_equivalent
    # Drain left nothing behind.
    assert result.phase_reports[-1].memory["live_eers"] == 0.0


def test_different_seed_diverges(twin_runs):
    other = run_campaign(flash_crowd(QUICK, seed=4))
    assert other.journal_jsonl != twin_runs[0].journal_jsonl


def test_write_artifacts(twin_runs, tmp_path):
    result = twin_runs[0]
    target = result.write_artifacts(tmp_path)
    assert target == tmp_path / result.name
    events = parse_jsonl((target / "journal.jsonl").read_text())
    assert len(events) > 0
    replay = json.loads((target / "slo_replay.json").read_text())
    assert replay["equivalent"] is True
    summary = json.loads((target / "summary.json").read_text())
    assert summary["ok"] is True
    # The footprint file accumulates one row per campaign written.
    result.write_artifacts(tmp_path)
    rows = (tmp_path / "memory_footprint.txt").read_text().splitlines()
    assert len(rows) == 2
    assert result.name in rows[0]


def test_campaign_slos_are_replay_safe():
    """Replay equivalence is only checkable over journal-derived
    instruments: every campaign SLO must be a ratio over event counters."""
    for spec in campaign_slos():
        assert spec.kind == "ratio"
        for counter in (spec.numerator, spec.denominator):
            assert counter == "events_total" or (
                counter.startswith("events_") and counter.endswith("_total")
            ), f"{spec.name} reads non-journal instrument {counter}"


def test_pairs_deduplicated_in_spec_order():
    src, dst, other, _, _, _ = endpoints(QUICK, 6)
    spec = CampaignSpec(
        name="pairs",
        topology=build_two_isd_topology,
        phases=(
            Phase("a", 1.0, workloads=(
                WorkloadSpec(src, dst),
                WorkloadSpec(other, dst),
            )),
            Phase("b", 1.0, workloads=(WorkloadSpec(src, dst),)),
        ),
    )
    assert CampaignRunner(spec)._pairs() == [(src, dst), (other, dst)]


def test_phase_defaults_are_draining():
    phase = Phase("p", 5.0)
    assert phase.drain is True
    assert phase.workloads == ()
    assert phase.faults == ()


def test_result_ok_reflects_violations():
    result = CampaignResult(
        name="x", seed=0, phase_reports=[], journal_jsonl="",
        slo_times=[], transitions=[], replay_transitions=[],
        violations=["phase p: accounting: leak"],
    )
    assert not result.ok
    assert result.replay_equivalent


def test_residual_eer_checker_flags_leftovers():
    network = ColibriNetwork(build_two_isd_topology())
    source = next(
        node.isd_as for node in network.topology.ases() if not node.is_core
    )
    destination = next(
        node.isd_as
        for node in network.topology.ases()
        if not node.is_core and node.isd != source.isd
    )
    network.reserve_segments(source, destination, 1e6)
    network.establish_eer(source, destination, 1e5)
    runner = SimpleNamespace(network=network)
    violations = check_no_residual_eers(runner)
    assert violations and "EER" in violations[0]


def test_endpoints_deterministic_and_distinct():
    first = endpoints(QUICK, 6)
    assert first == endpoints(QUICK, 6)
    assert len(set(first)) == 6


def test_canonical_catalog_complete():
    assert list(CANONICAL) == [
        "flash_crowd",
        "multi_as_overuse",
        "renewal_storm",
        "partition_recovery",
        "ddos_mix",
    ]
    for name, builder in CANONICAL.items():
        spec = builder(QUICK, seed=1)
        assert spec.name == f"{name}_{QUICK}"
        assert spec.phases


# -- shard soak: cross-process telemetry (ISSUE 10) ----------------------------


def soak_spec(seed=3):
    """A short one-phase campaign with the forced-process shard soak."""
    topology = build_two_isd_topology()
    leaves = [node.isd_as for node in topology.ases() if not node.is_core]
    src = leaves[0]
    dst = next(isd_as for isd_as in leaves if isd_as.isd != src.isd)
    return CampaignSpec(
        name="soak",
        topology=build_two_isd_topology,
        seed=seed,
        phases=(Phase("calm", 2.0, workloads=(WorkloadSpec(src, dst),)),),
        shard_soak=ShardSoakSpec(
            component="router", shards=2, reservations=64, packets=256,
            batch=64,
        ),
    )


@pytest.fixture(scope="module")
def soak_runs():
    return run_campaign(soak_spec()), run_campaign(soak_spec())


def test_shard_soak_green_with_complete_worker_streams(soak_runs):
    result = soak_runs[0]
    assert result.ok, result.violations
    assert sorted(result.worker_streams) == [0, 1]
    for counts in result.worker_streams.values():
        assert counts["frames"] >= 1
        assert counts["events"] >= 1
    assert result.sampling["total_bursts"] > 0
    assert result.sampling["sampled_bursts"] > 0


def test_shard_soak_worker_journal_deterministic(soak_runs):
    first, second = soak_runs
    assert first.worker_journal_jsonl == second.worker_journal_jsonl
    assert len(first.worker_journal_jsonl) > 0
    # Workers never pollute the parent export SLO replay reads.
    assert first.replay_equivalent
    assert "ShardCompleted" not in first.journal_jsonl
    assert "ShardCompleted" in first.worker_journal_jsonl


def test_shard_soak_artifact_journal_is_complete(soak_runs, tmp_path):
    result = soak_runs[0]
    target = result.write_artifacts(tmp_path)
    merged = parse_jsonl((target / "journal.jsonl").read_text())
    parent = parse_jsonl(result.journal_jsonl)
    workers = parse_jsonl(result.worker_journal_jsonl)
    assert len(merged) == len(parent) + len(workers)
    assert sum(1 for e in merged if e.type == "ShardCompleted") == 2
    sampling = json.loads((target / "sampling.json").read_text())
    assert sampling["every"] == result.sampling["every"]
    summary = json.loads((target / "summary.json").read_text())
    assert summary["worker_streams"]["0"]["frames"] >= 1
    assert summary["sampling"]["total_bursts"] == sampling["total_bursts"]


def test_worker_stream_checker_flags_defects():
    soak = ShardSoakSpec(shards=2)
    base = dict(
        spec=SimpleNamespace(shard_soak=soak),
        _soak_error=None,
        _soak_telemetry=None,
        _worker_streams={},
    )
    # A stream defect recorded by the assembler.
    runner = SimpleNamespace(**{**base, "_soak_error": "stream gapped at seq 1"})
    assert check_worker_streams(runner) == [
        "worker telemetry stream defect: stream gapped at seq 1"
    ]
    # No frames at all.
    runner = SimpleNamespace(**base)
    assert check_worker_streams(runner) == [
        "shard soak produced no telemetry frames"
    ]
    # Telemetry present but worker 1 silent.
    telemetry = SimpleNamespace(events=[])
    runner = SimpleNamespace(**{
        **base,
        "_soak_telemetry": telemetry,
        "_worker_streams": {0: {"frames": 1, "spans": 0, "events": 0}},
    })
    violations = check_worker_streams(runner)
    assert any("worker 1: no telemetry frames" in v for v in violations)
    # A worker that streamed frames but never journaled completion.
    assert "worker 0: journal stream carries no ShardCompleted event" in (
        violations
    )
    # No soak configured: vacuously clean.
    runner = SimpleNamespace(spec=SimpleNamespace(shard_soak=None))
    assert check_worker_streams(runner) == []
