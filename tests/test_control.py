"""Tests for the control plane: CServ workflows, dissemination, auth,
rate limiting, distributed CServ, renewal scheduling."""

import pytest

from repro.admission.policy import PerHostCapPolicy
from repro.constants import EER_LIFETIME, SEGR_LIFETIME
from repro.control import DistributedCServ, MessageBus, RateLimiter, RenewalScheduler
from repro.control.auth import AuthenticatedRequest
from repro.control.dissemination import SegmentDescriptor, SegmentRegistry
from repro.control.rpc import Unreachable
from repro.crypto.drkey import DrkeyDeriver
from repro.crypto.keyserver import KeyServer, KeyServerDirectory
from repro.dataplane.hvf import ColibriKeys
from repro.errors import (
    ColibriError,
    InsufficientBandwidth,
    MacVerificationError,
    NoPathError,
    RateLimited,
)
from repro.packets.control import AsGrant, SegActivationRequest
from repro.reservation.ids import ReservationId
from repro.sim import ColibriNetwork
from repro.topology import build_line_topology, build_two_isd_topology, IsdAs
from repro.topology.addresses import HostAddr
from repro.util.clock import SimClock
from repro.util.units import gbps, mbps

BASE = 0xFF00_0000_0000


def asid(isd, index):
    return IsdAs(isd, BASE + index)


@pytest.fixture
def net():
    return ColibriNetwork(build_two_isd_topology())


@pytest.fixture
def line_net():
    return ColibriNetwork(build_line_topology(4))


SRC = asid(1, 101)
DST = asid(2, 101)


class TestSegmentSetup:
    def test_setup_stores_at_every_on_path_as(self, net):
        segments = net.reserve_segments(SRC, DST, gbps(2))
        for reservation in segments:
            for hop in reservation.segment.hops:
                store = net.cserv(hop.isd_as).store
                assert store.has_segment(reservation.reservation_id)

    def test_granted_bandwidth_recorded(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(4))
        assert segr.bandwidth == pytest.approx(gbps(4))
        assert segr.expiry == pytest.approx(net.clock.now() + SEGR_LIFETIME)

    def test_tokens_returned_per_hop(self, line_net):
        first, last = asid(1, 1), asid(1, 4)
        (segr,) = line_net.reserve_segments(first, last, gbps(1))
        tokens = line_net.cserv(first).segment_tokens(segr.reservation_id)
        assert len(tokens) == 4
        assert all(len(token) == 4 for token in tokens)
        assert len(set(tokens)) == 4  # per-AS keys differ

    def test_res_ids_unique_per_source(self, net):
        a = net.cserv(asid(1, 1))
        seg = net.beaconing.core_segments(asid(1, 1), asid(2, 1))[0]
        r1 = a.setup_segment(seg, gbps(1))
        r2 = a.setup_segment(seg, gbps(1))
        assert r1.reservation_id != r2.reservation_id
        assert r1.reservation_id.src_as == r2.reservation_id.src_as

    def test_minimum_not_met_fails_with_bottleneck(self, line_net):
        first = asid(1, 1)
        seg = line_net.beaconing.core_segments(first, asid(1, 4))[0]
        with pytest.raises(InsufficientBandwidth) as excinfo:
            line_net.cserv(first).setup_segment(seg, gbps(100), minimum=gbps(50))
        assert excinfo.value.at_as is not None

    def test_failed_setup_leaves_no_state(self, line_net):
        first = asid(1, 1)
        seg = line_net.beaconing.core_segments(first, asid(1, 4))[0]
        with pytest.raises(InsufficientBandwidth):
            line_net.cserv(first).setup_segment(seg, gbps(100), minimum=gbps(50))
        for isd_as in [asid(1, i) for i in range(1, 5)]:
            assert line_net.cserv(isd_as).store.segment_count() == 0
            assert len(line_net.cserv(isd_as).seg_admission) == 0

    def test_cannot_initiate_foreign_segment(self, net):
        seg = net.beaconing.core_segments(asid(1, 1), asid(2, 1))[0]
        with pytest.raises(ColibriError):
            net.cserv(asid(2, 1)).setup_segment(seg, gbps(1))

    def test_admission_contention_across_sources(self, line_net):
        """Several ASes reserving over the same link share its capacity."""
        seg_fwd = line_net.beaconing.core_segments(asid(1, 1), asid(1, 4))[0]
        handles = []
        granted_total = 0.0
        for _ in range(4):
            try:
                segr = line_net.cserv(asid(1, 1)).setup_segment(seg_fwd, gbps(20))
                granted_total += segr.bandwidth
            except InsufficientBandwidth:
                pass
        assert granted_total <= gbps(40) * 0.8 * (1 + 1e-9)


class TestSegmentRenewal:
    def test_renewal_creates_pending_everywhere(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(2))
        owner = net.cserv(asid(1, 1))
        version = owner.renew_segment(segr.reservation_id, gbps(3))
        assert version == 2
        for isd_as in (asid(1, 1), asid(2, 1)):
            stored = net.cserv(isd_as).store.get_segment(segr.reservation_id)
            assert stored.active.version == 1  # not yet switched
            assert len(stored.pending_versions()) == 1

    def test_activation_switches_everywhere(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(2))
        owner = net.cserv(asid(1, 1))
        version = owner.renew_segment(segr.reservation_id, gbps(3))
        owner.activate_segment(segr.reservation_id, version)
        for isd_as in (asid(1, 1), asid(2, 1)):
            stored = net.cserv(isd_as).store.get_segment(segr.reservation_id)
            assert stored.active.version == version
            assert stored.bandwidth == pytest.approx(gbps(3))

    def test_renewal_extends_expiry(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(2))
        owner = net.cserv(asid(1, 1))
        net.advance(SEGR_LIFETIME / 2)
        version = owner.renew_segment(segr.reservation_id, gbps(2))
        owner.activate_segment(segr.reservation_id, version)
        assert segr.expiry == pytest.approx(net.clock.now() + SEGR_LIFETIME)

    def test_renewal_can_shrink(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(4))
        owner = net.cserv(asid(1, 1))
        version = owner.renew_segment(segr.reservation_id, gbps(1))
        owner.activate_segment(segr.reservation_id, version)
        assert segr.bandwidth == pytest.approx(gbps(1))


class TestEerSetup:
    def test_full_inter_isd_eer(self, net):
        net.reserve_segments(SRC, DST, gbps(2))
        handle = net.establish_eer(SRC, DST, mbps(50))
        assert handle.granted == pytest.approx(mbps(50))
        assert len(handle.hops) == 6
        assert len(handle.segment_ids) == 3

    def test_eer_without_segments_fails(self, net):
        with pytest.raises(NoPathError):
            net.establish_eer(SRC, DST, mbps(50))

    def test_eer_rejected_when_segr_full(self, net):
        net.reserve_segments(SRC, DST, mbps(100))
        net.establish_eer(SRC, DST, mbps(80))
        with pytest.raises(InsufficientBandwidth) as excinfo:
            net.establish_eer(SRC, DST, mbps(50))
        assert excinfo.value.granted <= mbps(20) * (1 + 1e-9)

    def test_failed_eer_leaves_no_allocations(self, net):
        segments = net.reserve_segments(SRC, DST, mbps(100))
        with pytest.raises(InsufficientBandwidth):
            net.establish_eer(SRC, DST, mbps(500))
        for reservation in segments:
            for hop in reservation.segment.hops:
                store = net.cserv(hop.isd_as).store
                assert store.allocated_on_segment(reservation.reservation_id) == 0.0

    def test_eer_installed_in_gateway(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        gateway = net.gateway(SRC)
        assert handle.reservation_id in gateway.known_reservations()

    def test_hopauths_differ_per_as(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        gateway = net.gateway(SRC)
        entry = gateway._reservations[handle.reservation_id]
        auths = entry.versions[1].hop_auths
        assert len(set(auths)) == len(auths)

    def test_destination_can_refuse(self):
        refused = ColibriNetwork(
            build_two_isd_topology(),
            host_acceptor=lambda eer_info, bw: False,
        )
        refused.reserve_segments(SRC, DST, gbps(1))
        with pytest.raises(InsufficientBandwidth):
            refused.establish_eer(SRC, DST, mbps(10))

    def test_source_policy_enforced(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        policy = PerHostCapPolicy(default_cap=mbps(20))
        net.cserv(SRC).eer_admission.source_policy = policy
        with pytest.raises(ColibriError):
            net.establish_eer(SRC, DST, mbps(50), src_host=HostAddr(7))
        handle = net.establish_eer(SRC, DST, mbps(10), src_host=HostAddr(7))
        assert handle.granted == pytest.approx(mbps(10))

    def test_intra_isd_eer_over_shortcutless_chain(self, net):
        a, b = asid(1, 101), asid(1, 111)
        net.reserve_segments(a, asid(1, 1), gbps(1))  # covers up only
        # down segment from core to b:
        path = net.path_lookup.paths(asid(1, 1), b, limit=1)[0]
        net.cserv(asid(1, 1)).setup_segment(path.segments[0], gbps(1))
        handle = net.establish_eer(a, b, mbps(10))
        assert handle.granted == pytest.approx(mbps(10))

    def test_transit_as_sees_correct_role(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        net.establish_eer(SRC, DST, mbps(10))
        # Transit AS 1-11 participated in one EER decision.
        assert net.cserv(asid(1, 11)).eer_admission.decisions >= 1


class TestEerRenewal:
    def test_renewal_adds_version(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        net.advance(2.0)
        renewed = net.cserv(SRC).renew_eer(handle)
        assert renewed.res_info.version == 2
        stored = net.cserv(SRC).store.get_eer(handle.reservation_id)
        assert len(stored.live_versions(net.clock.now())) == 2

    def test_renewal_rate_limited(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        net.cserv(SRC).renew_eer(handle)
        with pytest.raises(RateLimited):
            net.cserv(SRC).renew_eer(handle)

    def test_renewal_does_not_double_book_segr(self, net):
        (up, core, down) = net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(60))
        net.advance(2.0)
        net.cserv(SRC).renew_eer(handle)  # same bandwidth
        allocated = net.cserv(asid(1, 11)).store.allocated_on_segment(
            up.reservation_id
        )
        assert allocated == pytest.approx(mbps(60))  # not 120

    def test_renewal_keeps_traffic_flowing_across_expiry(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        net.advance(EER_LIFETIME - 2)
        renewed = net.cserv(SRC).renew_eer(handle)
        net.advance(4.0)  # original version now expired
        report = net.send(SRC, renewed, b"still alive")
        assert report.delivered

    def test_renewal_can_grow_if_capacity(self, net):
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(10))
        net.advance(2.0)
        renewed = net.cserv(SRC).renew_eer(handle, new_bandwidth=mbps(40))
        assert renewed.granted == pytest.approx(mbps(40))


class TestDissemination:
    def test_registry_query_respects_whitelist(self):
        registry = SegmentRegistry()
        net = ColibriNetwork(build_two_isd_topology())
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(1))
        descriptor = SegmentDescriptor.of(segr)
        registry.register(descriptor, whitelist={asid(1, 101)})
        assert registry.query(asid(1, 1), asid(2, 1), asid(1, 101), now=0.0)
        assert not registry.query(asid(1, 1), asid(2, 1), asid(1, 111), now=0.0)

    def test_expired_descriptors_hidden(self):
        registry = SegmentRegistry()
        net = ColibriNetwork(build_two_isd_topology())
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(1))
        registry.register(SegmentDescriptor.of(segr))
        assert registry.query(asid(1, 1), asid(2, 1), SRC, now=segr.expiry + 1) == []

    def test_remote_descriptors_cached(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        src_cserv = net.cserv(SRC)
        before = net.bus.calls_by_method.get("query_registry", 0)
        src_cserv.find_segment_chain(DST)
        after_first = net.bus.calls_by_method.get("query_registry", 0)
        src_cserv.find_segment_chain(DST)
        after_second = net.bus.calls_by_method.get("query_registry", 0)
        assert after_first > before
        assert after_second == after_first  # served from cache

    def test_sweep_expired(self):
        registry = SegmentRegistry()
        net = ColibriNetwork(build_two_isd_topology())
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(1))
        registry.register(SegmentDescriptor.of(segr))
        assert registry.sweep_expired(segr.expiry + 1) == 1
        assert len(registry) == 0


class TestControlPlaneSecurity:
    def test_tampered_request_rejected(self, net):
        """An on-path AS cannot alter the initiator's payload."""
        clock = SimClock(0.0)
        directory = KeyServerDirectory(clock)
        a = DrkeyDeriver(asid(1, 1), clock, seed=b"a" * 16)
        b = DrkeyDeriver(asid(2, 1), clock, seed=b"b" * 16)
        directory.register(KeyServer(a))
        directory.register(KeyServer(b))
        message = SegActivationRequest(
            reservation=ReservationId(asid(1, 1), 5), version=2
        )
        auth = AuthenticatedRequest.create(
            directory, asid(1, 1), [asid(1, 1), asid(2, 1)], message
        )
        auth.base_payload = auth.base_payload + b"tampered"
        with pytest.raises(MacVerificationError):
            auth.verify_at(ColibriKeys(b))

    def test_grant_tampering_detected(self, net):
        clock = SimClock(0.0)
        directory = KeyServerDirectory(clock)
        a = DrkeyDeriver(asid(1, 1), clock, seed=b"a" * 16)
        b = DrkeyDeriver(asid(2, 1), clock, seed=b"b" * 16)
        directory.register(KeyServer(a))
        directory.register(KeyServer(b))
        message = SegActivationRequest(
            reservation=ReservationId(asid(1, 1), 5), version=2
        )
        auth = AuthenticatedRequest.create(
            directory, asid(1, 1), [asid(1, 1), asid(2, 1)], message
        )
        honest = AsGrant(asid(2, 1), 100.0)
        auth.add_grant_mac(ColibriKeys(b), honest)
        inflated = AsGrant(asid(2, 1), 999.0)
        with pytest.raises(MacVerificationError):
            auth.verify_grants(directory, (inflated,))
        auth.verify_grants(directory, (honest,))  # the honest one passes

    def test_denied_source_cannot_reserve(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        # Transit AS 1-11 denies reservations from SRC after an offense.
        net.cserv(asid(1, 11)).report_offense(SRC, ReservationId(SRC, 1))
        with pytest.raises(ColibriError):
            net.establish_eer(SRC, DST, mbps(10))

    def test_pardon_restores_service(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        net.cserv(asid(1, 11)).report_offense(SRC, ReservationId(SRC, 1))
        net.cserv(asid(1, 11)).pardon(SRC)
        handle = net.establish_eer(SRC, DST, mbps(10))
        assert handle.granted > 0

    def test_request_rate_limiting(self):
        limiter = RateLimiter(rate_per_second=2.0, burst=2.0)
        assert limiter.allow("as-1", now=0.0)
        assert limiter.allow("as-1", now=0.0)
        assert not limiter.allow("as-1", now=0.0)
        assert limiter.allow("as-1", now=1.0)  # refilled
        assert limiter.rejected == 1

    def test_rate_limiter_per_key(self):
        limiter = RateLimiter(rate_per_second=1.0, burst=1.0)
        assert limiter.allow("as-1", now=0.0)
        assert limiter.allow("as-2", now=0.0)

    def test_partitioned_as_breaks_setup(self, net):
        net.bus.partition(asid(2, 1))
        with pytest.raises(Unreachable):
            net.reserve_segments(SRC, DST, gbps(1))


class TestHousekeeping:
    def test_expired_segments_released(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        net.advance(SEGR_LIFETIME + 1)
        removed = net.housekeeping()
        # 3 SegRs stored at every on-path AS: up (3 ASes) + core (2) + down (3)
        assert removed["segments"] == 8
        for isd_as in net.ases():
            assert net.cserv(isd_as).store.segment_count() == 0

    def test_expired_eers_released(self, net):
        segments = net.reserve_segments(SRC, DST, mbps(100))
        net.establish_eer(SRC, DST, mbps(60))
        net.advance(EER_LIFETIME + 1)
        net.housekeeping()
        for reservation in segments:
            for hop in reservation.segment.hops:
                store = net.cserv(hop.isd_as).store
                if store.has_segment(reservation.reservation_id):
                    assert (
                        store.allocated_on_segment(reservation.reservation_id) == 0.0
                    )

    def test_capacity_reusable_after_expiry(self, net):
        net.reserve_segments(SRC, DST, mbps(100))
        net.establish_eer(SRC, DST, mbps(80))
        net.advance(EER_LIFETIME + 1)
        net.housekeeping()
        net.reserve_segments(SRC, DST, mbps(100))
        handle = net.establish_eer(SRC, DST, mbps(80))
        assert handle.granted == pytest.approx(mbps(80))


class TestRenewalScheduler:
    def test_keeps_segment_alive(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(1))
        owner = net.cserv(asid(1, 1))
        scheduler = RenewalScheduler(owner, segr_lead=60.0)
        scheduler.track_segment(segr.reservation_id, bandwidth=gbps(1))
        net.advance(SEGR_LIFETIME - 30)
        actions = scheduler.tick()
        assert actions["segments"] == 1
        assert segr.expiry > net.clock.now() + 60

    def test_keeps_eer_alive(self, net):
        net.reserve_segments(SRC, DST, gbps(1))
        handle = net.establish_eer(SRC, DST, mbps(10))
        scheduler = RenewalScheduler(net.cserv(SRC), eer_lead=4.0)
        scheduler.track_eer(handle)
        net.advance(EER_LIFETIME - 2)
        actions = scheduler.tick()
        assert actions["eers"] == 1
        fresh = scheduler.eer_handle(handle.reservation_id)
        assert fresh.res_info.expiry > handle.res_info.expiry

    def test_no_action_when_fresh(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(1))
        scheduler = RenewalScheduler(net.cserv(asid(1, 1)))
        scheduler.track_segment(segr.reservation_id, bandwidth=gbps(1))
        assert scheduler.tick() == {
            "segments": 0, "eers": 0, "failures": 0, "transient": 0
        }

    def test_forecast_hook_used(self, net):
        (segr,) = net.reserve_segments(asid(1, 1), asid(2, 1), gbps(1))
        owner = net.cserv(asid(1, 1))
        scheduler = RenewalScheduler(owner, segr_lead=60.0)
        scheduler.track_segment(segr.reservation_id, bandwidth_fn=lambda: gbps(2))
        net.advance(SEGR_LIFETIME - 30)
        scheduler.tick()
        assert segr.bandwidth == pytest.approx(gbps(2))


class TestDistributedCServ:
    def test_same_segr_same_worker(self, net):
        parent = net.cserv(asid(1, 11))  # transit AS on the EER path
        distributed = DistributedCServ(parent, eer_workers=4)
        net.reserve_segments(SRC, DST, gbps(1))
        for _ in range(5):
            net.establish_eer(SRC, DST, mbps(1))
        report = distributed.load_report()
        workers_used = [
            name for name, count in report.items()
            if name.startswith("eer-") and count > 0
        ]
        assert len(workers_used) == 1  # all EEReqs share one SegR
        assert sum(
            count for name, count in report.items() if name.startswith("eer-")
        ) == 5

    def test_coordinator_handles_segreqs(self, net):
        parent = net.cserv(asid(2, 1))
        distributed = DistributedCServ(parent, eer_workers=2)
        net.reserve_segments(SRC, DST, gbps(1))
        assert distributed.load_report()["coordinator"] >= 1

    def test_distinct_segrs_spread(self, net):
        parent = net.cserv(asid(1, 1))  # core AS: many SegRs traverse it
        distributed = DistributedCServ(parent, eer_workers=8)
        pairs = [(asid(1, 101), asid(2, 101)), (asid(1, 111), asid(2, 101))]
        for src, dst in pairs:
            net.reserve_segments(src, dst, gbps(1))
            net.establish_eer(src, dst, mbps(1))
        assignments = {
            distributed.assignment_of(sid)
            for sid in distributed._assignment_log
        }
        assert len(assignments) >= 1  # hashing may collide, but log is kept

    def test_rejects_zero_workers(self, net):
        with pytest.raises(ValueError):
            DistributedCServ(net.cserv(asid(1, 1)), eer_workers=0)


class TestDistributedEgress:
    def test_transfer_as_uses_egress_sub_service(self, net):
        """Appendix D: at a transfer AS the decision splits into an
        ingress and an egress part; both sub-services see the request."""
        transfer = net.cserv(asid(1, 1))  # core AS joins up- and core-SegR
        distributed = DistributedCServ(transfer, eer_workers=2, egress_workers=2)
        net.reserve_segments(SRC, DST, gbps(1))
        net.establish_eer(SRC, DST, mbps(1))
        report = distributed.load_report()
        egress_hits = sum(
            count for name, count in report.items() if name.startswith("egress-")
        )
        assert egress_hits == 1
        # The outgoing core-SegR has a stable egress assignment.
        core_segr = [
            segr.reservation_id
            for segr in transfer.store.segments()
            if segr.segment.segment_type.value == "core"
        ][0]
        assert distributed.egress_assignment_of(core_segr) is not None

    def test_non_transfer_as_never_uses_egress(self, net):
        transit = net.cserv(asid(1, 11))
        distributed = DistributedCServ(transit, eer_workers=2, egress_workers=2)
        net.reserve_segments(SRC, DST, gbps(1))
        net.establish_eer(SRC, DST, mbps(1))
        report = distributed.load_report()
        assert all(
            count == 0 for name, count in report.items() if name.startswith("egress-")
        )


class TestTransferContention:
    def test_core_segr_divided_among_up_segrs(self, net):
        """§4.7 transfer rule: when EER demand from several up-SegRs
        exceeds the core-SegR, the transfer AS divides the core-SegR
        proportionally among them."""
        # Two distinct up-SegRs (from 1-101 and 1-111) feeding ONE shared
        # core-SegR whose capacity is the bottleneck.
        src_a, src_b = SRC, asid(1, 111)
        # Build the shared core + down segments once (initiated by cores).
        core_seg = net.beaconing.core_segments(asid(1, 1), asid(2, 1))[0]
        core_segr = net.cserv(asid(1, 1)).setup_segment(core_seg, mbps(50))
        down_path = net.path_lookup.paths(asid(2, 1), DST, limit=1)[0]
        net.cserv(asid(2, 1)).setup_segment(down_path.segments[0], mbps(500))
        for src in (src_a, src_b):
            up_path = net.path_lookup.paths(src, asid(1, 1), limit=1)[0]
            net.cserv(src).setup_segment(up_path.segments[0], mbps(500))

        # Drive EER demand through both up-SegRs onto the shared core.
        handles = []
        refused = 0
        for index in range(6):
            src = src_a if index % 2 == 0 else src_b
            try:
                handles.append(
                    net.cserv(src).setup_eer(
                        DST, HostAddr(index), HostAddr(index), mbps(15)
                    )
                )
            except InsufficientBandwidth:
                refused += 1
        # The shared 50 Mbps core-SegR bounds total admitted EERs.
        total = sum(h.granted for h in handles)
        assert total <= mbps(50) * (1 + 1e-9)
        assert refused > 0
        # The transfer AS (core 1) registered per-up-SegR demand.
        transfer = net.cserv(asid(1, 1))
        assert transfer.eer_admission.distributor.total_demand(
            core_segr.reservation_id
        ) > 0
