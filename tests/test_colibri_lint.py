"""Tests for tools.colibri_lint: every rule's trigger and non-trigger,
suppressions, the baseline workflow, the CLI, and a guard that the real
tree stays clean."""

from __future__ import annotations

import json
import textwrap
import unittest
from collections import Counter
from pathlib import Path

from tools.colibri_lint import check_source, lint_paths
from tools.colibri_lint.baseline import filter_findings, load_baseline, write_baseline
from tools.colibri_lint.cli import run as cli_run
from tools.colibri_lint.engine import SYNTAX_ERROR_ID
from tools.colibri_lint.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
PROD_PATH = "src/repro/example.py"


def rules_hit(source: str, rel_path: str = PROD_PATH) -> list:
    return [f.rule_id for f in check_source(textwrap.dedent(source), rel_path)]


class TestCL001Clocks(unittest.TestCase):
    def test_direct_time_call_flagged(self):
        self.assertIn("CL001", rules_hit("import time\nnow = time.time()\n"))

    def test_monotonic_flagged(self):
        self.assertIn("CL001", rules_hit("import time\nt = time.monotonic()\n"))

    def test_from_import_flagged(self):
        self.assertIn("CL001", rules_hit("from time import perf_counter\n"))

    def test_clock_module_exempt(self):
        source = "import time\nnow = time.time()\n"
        self.assertEqual([], rules_hit(source, "src/repro/util/clock.py"))

    def test_injected_clock_clean(self):
        self.assertEqual([], rules_hit("def f(clock):\n    return clock.now()\n"))

    def test_time_sleep_not_a_clock_read(self):
        self.assertEqual([], rules_hit("import time\ntime.sleep(1)\n"))


class TestCL002Randomness(unittest.TestCase):
    def test_module_level_call_flagged(self):
        self.assertIn("CL002", rules_hit("import random\nx = random.choice([1, 2])\n"))

    def test_global_seed_flagged(self):
        self.assertIn("CL002", rules_hit("import random\nrandom.seed(4)\n"))

    def test_unseeded_instance_flagged(self):
        self.assertIn("CL002", rules_hit("import random\nrng = random.Random()\n"))

    def test_from_import_flagged(self):
        self.assertIn("CL002", rules_hit("from random import randint\n"))

    def test_seeded_instance_clean(self):
        source = "import random\nrng = random.Random(13)\nx = rng.choice([1, 2])\n"
        self.assertEqual([], rules_hit(source))

    def test_system_random_clean(self):
        self.assertEqual(
            [], rules_hit("import random\nrng = random.SystemRandom()\n")
        )


class TestCL003Asserts(unittest.TestCase):
    def test_production_assert_flagged(self):
        self.assertIn("CL003", rules_hit("def f(tag):\n    assert len(tag) == 16\n"))

    def test_test_code_exempt(self):
        source = "def test_f():\n    assert 1 == 1\n"
        self.assertEqual([], rules_hit(source, "tests/test_example.py"))

    def test_raise_clean(self):
        source = (
            "def f(tag):\n"
            "    if len(tag) != 16:\n"
            "        raise ValueError('bad tag')\n"
        )
        self.assertEqual([], rules_hit(source))


class TestCL004BroadExcept(unittest.TestCase):
    def test_silent_broad_except_flagged(self):
        source = "try:\n    f()\nexcept Exception:\n    pass\n"
        self.assertIn("CL004", rules_hit(source))

    def test_bare_except_flagged(self):
        self.assertIn("CL004", rules_hit("try:\n    f()\nexcept:\n    pass\n"))

    def test_tuple_with_exception_flagged(self):
        source = "try:\n    f()\nexcept (ValueError, Exception):\n    pass\n"
        self.assertIn("CL004", rules_hit(source))

    def test_reraise_clean(self):
        source = "try:\n    f()\nexcept Exception:\n    cleanup()\n    raise\n"
        self.assertEqual([], rules_hit(source))

    def test_logging_clean(self):
        source = "try:\n    f()\nexcept Exception as e:\n    logger.warning(e)\n"
        self.assertEqual([], rules_hit(source))

    def test_specific_type_clean(self):
        source = "try:\n    f()\nexcept ValueError:\n    pass\n"
        self.assertEqual([], rules_hit(source))


class TestCL005Units(unittest.TestCase):
    def test_small_bandwidth_keyword_flagged(self):
        self.assertIn("CL005", rules_hit("reserve(bandwidth=0.4)\n"))

    def test_small_capacity_default_flagged(self):
        self.assertIn("CL005", rules_hit("def mk(capacity=40.0):\n    return capacity\n"))

    def test_unit_helper_clean(self):
        self.assertEqual([], rules_hit("reserve(bandwidth=gbps(0.4))\n"))

    def test_zero_clean(self):
        self.assertEqual([], rules_hit("reserve(bandwidth=0.0)\n"))

    def test_raw_bps_literal_clean(self):
        # >= 1 Kbps is a plausible raw bits/s value.
        self.assertEqual([], rules_hit("reserve(bandwidth=400_000_000.0)\n"))

    def test_tests_exempt(self):
        source = "bucket = TokenBucket(rate=8.0)\n"
        self.assertEqual([], rules_hit(source, "tests/test_example.py"))


class TestCL006MutableDefaults(unittest.TestCase):
    def test_list_default_flagged(self):
        self.assertIn("CL006", rules_hit("def f(hops=[]):\n    return hops\n"))

    def test_dict_constructor_default_flagged(self):
        self.assertIn("CL006", rules_hit("def f(stats=dict()):\n    return stats\n"))

    def test_kwonly_default_flagged(self):
        self.assertIn("CL006", rules_hit("def f(*, hops=[]):\n    return hops\n"))

    def test_none_default_clean(self):
        source = "def f(hops=None):\n    return hops or []\n"
        self.assertEqual([], rules_hit(source))

    def test_tuple_default_clean(self):
        self.assertEqual([], rules_hit("def f(hops=()):\n    return hops\n"))


class TestCL007Verification(unittest.TestCase):
    def test_discarded_predicate_flagged(self):
        self.assertIn("CL007", rules_hit("constant_time_equal(a, b)\n"))

    def test_discarded_compare_digest_flagged(self):
        self.assertIn("CL007", rules_hit("hmac.compare_digest(a, b)\n"))

    def test_unknown_verify_statement_flagged(self):
        self.assertIn("CL007", rules_hit("verify_token(token)\n"))

    def test_raising_verifier_statement_clean(self):
        self.assertEqual([], rules_hit("verify_mac(key, data, tag)\n"))

    def test_used_predicate_clean(self):
        source = "if not constant_time_equal(a, b):\n    raise ValueError('bad')\n"
        self.assertEqual([], rules_hit(source))

    def test_bound_result_clean(self):
        self.assertEqual([], rules_hit("ok = verify_token(token)\n"))


class TestCL008Citations(unittest.TestCase):
    PATH = "src/repro/constants.py"

    def test_uncited_constant_flagged(self):
        self.assertIn("CL008", rules_hit("MAX_THING = 4\n", self.PATH))

    def test_trailing_citation_clean(self):
        self.assertEqual(
            [], rules_hit("MAX_THING = 4  # paper §4.5\n", self.PATH)
        )

    def test_block_comment_covers_group(self):
        source = """\
            # Traffic split (§3.4): fixed shares per class.
            BEST_EFFORT_SHARE = 0.20
            CONTROL_SHARE = 0.05
        """
        self.assertEqual([], rules_hit(source, self.PATH))

    def test_blank_line_breaks_coverage(self):
        source = """\
            # Traffic split (§3.4).
            BEST_EFFORT_SHARE = 0.20

            ORPHAN = 1
        """
        self.assertEqual(["CL008"], rules_hit(source, self.PATH))

    def test_only_applies_to_constants_module(self):
        self.assertEqual([], rules_hit("MAX_THING = 4\n", PROD_PATH))


class TestCL009LibraryPrint(unittest.TestCase):
    def test_print_flagged(self):
        self.assertIn("CL009", rules_hit("print('admitted')\n"))

    def test_logging_import_flagged(self):
        self.assertIn("CL009", rules_hit("import logging\n"))

    def test_logging_from_import_flagged(self):
        self.assertIn("CL009", rules_hit("from logging import getLogger\n"))

    def test_cli_module_exempt(self):
        self.assertEqual([], rules_hit("print('usage')\n", "src/repro/cli.py"))

    def test_tests_exempt(self):
        self.assertEqual([], rules_hit("print('debug')\n", "tests/test_x.py"))

    def test_method_named_print_clean(self):
        self.assertEqual([], rules_hit("reporter.print('x')\n"))


class TestCL010ModuleState(unittest.TestCase):
    DP = "src/repro/dataplane/tables.py"

    def test_module_dict_flagged(self):
        self.assertIn("CL010", rules_hit("CACHE = {}\n", self.DP))

    def test_module_list_flagged(self):
        self.assertIn("CL010", rules_hit("PENDING = []\n", self.DP))

    def test_crypto_package_covered(self):
        self.assertIn(
            "CL010", rules_hit("KEYS = dict()\n", "src/repro/crypto/keys.py")
        )

    def test_annotated_assignment_flagged(self):
        self.assertIn(
            "CL010", rules_hit("TABLE: dict = {'a': 1}\n", self.DP)
        )

    def test_mapping_proxy_clean(self):
        source = (
            "from types import MappingProxyType\n"
            "TABLE = MappingProxyType({'a': 1})\n"
        )
        self.assertEqual([], rules_hit(source, self.DP))

    def test_immutable_bindings_clean(self):
        source = "LANES = (0, 1, 2)\nNAMES = frozenset({'a'})\nLIMIT = 7\n"
        self.assertEqual([], rules_hit(source, self.DP))

    def test_dunder_all_exempt(self):
        self.assertEqual([], rules_hit("__all__ = ['a', 'b']\n", self.DP))

    def test_other_packages_exempt(self):
        self.assertEqual(
            [], rules_hit("CACHE = {}\n", "src/repro/sim/registry.py")
        )

    def test_function_local_clean(self):
        source = "def f():\n    cache = {}\n    return cache\n"
        self.assertEqual([], rules_hit(source, self.DP))


class TestCL011ArenaCopies(unittest.TestCase):
    DP = "src/repro/dataplane/fastpath.py"

    def test_tobytes_on_view_local_flagged(self):
        source = """
        @profiled("x.hot")
        def hot(view):
            window = view.view()
            return window.tobytes()
        """
        self.assertIn("CL011", rules_hit(source, self.DP))

    def test_bytes_of_memoryview_flagged(self):
        source = """
        @profiled("x.hot")
        def hot(buf):
            return bytes(memoryview(buf))
        """
        self.assertIn("CL011", rules_hit(source, self.DP))

    def test_bytes_of_buffer_attribute_flagged(self):
        source = """
        @profiled("x.hot")
        def hot(arena):
            return bytes(arena.buffer)
        """
        self.assertIn("CL011", rules_hit(source, self.DP))

    def test_sliced_view_still_flagged(self):
        source = """
        @profiled("x.hot")
        def hot(view):
            window = view.view()
            return bytes(window[4:8])
        """
        self.assertIn("CL011", rules_hit(source, self.DP))

    def test_undecorated_cold_path_clean(self):
        source = """
        def materialize(view):
            return view.view().tobytes()
        """
        self.assertEqual([], rules_hit(source, self.DP))

    def test_hot_path_without_copies_clean(self):
        source = """
        @profiled("x.hot")
        def hot(view):
            window = view.view()
            return window[0]
        """
        self.assertEqual([], rules_hit(source, self.DP))

    def test_bytes_of_plain_value_clean(self):
        source = """
        @profiled("x.hot")
        def hot(n):
            return bytes(n)
        """
        self.assertEqual([], rules_hit(source, self.DP))

    def test_other_packages_exempt(self):
        source = """
        @profiled("x.hot")
        def hot(view):
            return bytes(view.view())
        """
        self.assertEqual([], rules_hit(source, "src/repro/packets/codec.py"))


class TestSuppressions(unittest.TestCase):
    def test_line_suppression(self):
        source = "def f(tag):\n    assert tag  # colibri-lint: disable=CL003\n"
        self.assertEqual([], rules_hit(source))

    def test_line_suppression_other_rule_still_fires(self):
        source = "def f(tag):\n    assert tag  # colibri-lint: disable=CL001\n"
        self.assertEqual(["CL003"], rules_hit(source))

    def test_file_suppression(self):
        source = (
            "# colibri-lint: disable-file=CL003\n"
            "def f(tag):\n    assert tag\ndef g(tag):\n    assert tag\n"
        )
        self.assertEqual([], rules_hit(source))

    def test_suppress_all(self):
        source = "def f(hops=[]):  # colibri-lint: disable=all\n    return hops\n"
        self.assertEqual([], rules_hit(source))


class TestBaseline(unittest.TestCase):
    def test_roundtrip_filters_grandfathered(self):
        findings = check_source("def f(tag):\n    assert tag\n", PROD_PATH)
        self.assertEqual(1, len(findings))
        baseline = Counter(
            {(f.path, f.rule_id, f.line_text.strip()): 1 for f in findings}
        )
        new, grandfathered = filter_findings(findings, baseline)
        self.assertEqual([], new)
        self.assertEqual(findings, grandfathered)

    def test_changed_line_resurrects_finding(self):
        old = check_source("def f(tag):\n    assert tag\n", PROD_PATH)
        baseline = Counter({(f.path, f.rule_id, f.line_text.strip()): 1 for f in old})
        edited = check_source("def f(tag):\n    assert tag is not None\n", PROD_PATH)
        new, grandfathered = filter_findings(edited, baseline)
        self.assertEqual(1, len(new))
        self.assertEqual([], grandfathered)

    def test_write_and_load(self):
        import tempfile

        findings = check_source("def f(tag):\n    assert tag\n", PROD_PATH)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "baseline.json"
            write_baseline(findings, path)
            loaded = load_baseline(path)
        self.assertEqual(1, sum(loaded.values()))


class TestReportersAndErrors(unittest.TestCase):
    def test_syntax_error_becomes_finding(self):
        findings = check_source("def f(:\n", PROD_PATH)
        self.assertEqual([SYNTAX_ERROR_ID], [f.rule_id for f in findings])

    def test_text_reporter_mentions_rule(self):
        findings = check_source("def f(tag):\n    assert tag\n", PROD_PATH)
        text = render_text(findings)
        self.assertIn("CL003", text)
        self.assertIn(PROD_PATH, text)

    def test_text_reporter_clean(self):
        self.assertIn("clean", render_text([]))

    def test_json_reporter_parses(self):
        findings = check_source("def f(tag):\n    assert tag\n", PROD_PATH)
        payload = json.loads(render_json(findings))
        self.assertEqual(1, payload["count"])
        self.assertEqual("CL003", payload["findings"][0]["rule"])


class TestCli(unittest.TestCase):
    def _write(self, root: Path, rel: str, source: str) -> Path:
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return path

    def test_exit_codes_and_update_baseline(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp)
            bad = self._write(
                root, "src/repro/bad.py", "def f(tag):\n    assert tag\n"
            )
            clean = self._write(root, "src/repro/good.py", "X = 1\n")
            baseline = root / "baseline.json"

            self.assertEqual(0, cli_run([str(clean), "--no-baseline"]))
            self.assertEqual(1, cli_run([str(bad), "--no-baseline"]))
            self.assertEqual(
                0, cli_run([str(bad), "--update-baseline", "--baseline", str(baseline)])
            )
            # Grandfathered via the baseline: clean again.
            self.assertEqual(0, cli_run([str(bad), "--baseline", str(baseline)]))

    def test_select_and_unknown_rule(self):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            bad = self._write(
                Path(tmp), "src/repro/bad.py", "def f(tag):\n    assert tag\n"
            )
            self.assertEqual(
                0, cli_run([str(bad), "--select", "CL001", "--no-baseline"])
            )
            self.assertEqual(2, cli_run([str(bad), "--select", "CL999"]))

    def test_list_rules(self):
        self.assertEqual(0, cli_run(["--list-rules"]))


class TestRealTreeClean(unittest.TestCase):
    """The linter's reason to exist: the shipped tree stays clean."""

    def test_src_tests_tools_clean_modulo_baseline(self):
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "tools"],
            root=REPO_ROOT,
        )
        baseline = load_baseline(REPO_ROOT / ".colibri-lint-baseline.json")
        new, _ = filter_findings(findings, baseline)
        self.assertEqual(
            [],
            new,
            "colibri-lint regressions:\n"
            + "\n".join(f"{f.path}:{f.line}: {f.rule_id} {f.message}" for f in new),
        )

    def test_baseline_is_empty(self):
        baseline = load_baseline(REPO_ROOT / ".colibri-lint-baseline.json")
        self.assertEqual(0, sum(baseline.values()), "baseline must stay empty")


if __name__ == "__main__":
    unittest.main()
