"""Stateful property testing of the ReservationStore.

A hypothesis rule-based state machine drives random sequences of store
operations — adds, allocations, releases, sweeps, and *transactions that
fail midway* — against a plain-dict model.  Any divergence between the
store's incremental accounting and the model is a bug the paper's
transactional-DB assumption would have hidden.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.packets.fields import EerInfo
from repro.reservation import (
    E2EReservation,
    E2EVersion,
    ReservationId,
    ReservationStore,
    SegmentReservation,
    SegmentVersion,
)
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.graph import NO_INTERFACE
from repro.topology.segments import HopField, Segment, SegmentType

SRC = IsdAs.parse("1-ff00:0:110")
FAR = IsdAs.parse("1-ff00:0:111")


def make_segment():
    return Segment.from_hops(
        SegmentType.CORE,
        [HopField(SRC, NO_INTERFACE, 1), HopField(FAR, 1, NO_INTERFACE)],
    )


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = ReservationStore()
        # The model: segment id -> {eer id -> bandwidth}
        self.model: dict = {}
        self.next_seg = 1
        self.next_eer = 1000
        self.now = 0.0

    # -- rules ---------------------------------------------------------------

    @rule(bandwidth=st.floats(min_value=1.0, max_value=1e9))
    def add_segment(self, bandwidth):
        seg_id = ReservationId(SRC, self.next_seg)
        self.next_seg += 1
        self.store.add_segment(
            SegmentReservation(
                reservation_id=seg_id,
                segment=make_segment(),
                first_version=SegmentVersion(
                    version=1, bandwidth=bandwidth, expiry=self.now + 300.0
                ),
            )
        )
        self.model[seg_id] = {}

    @precondition(lambda self: self.model)
    @rule(
        data=st.data(),
        bandwidth=st.floats(min_value=0.0, max_value=1e8),
    )
    def allocate(self, data, bandwidth):
        seg_id = data.draw(st.sampled_from(sorted(self.model)))
        eer_id = ReservationId(SRC, self.next_eer)
        self.next_eer += 1
        self.store.allocate_on_segment(seg_id, eer_id, bandwidth)
        self.model[seg_id][eer_id] = bandwidth

    @precondition(lambda self: any(self.model.values()))
    @rule(data=st.data(), bandwidth=st.floats(min_value=0.0, max_value=1e8))
    def reallocate(self, data, bandwidth):
        seg_id = data.draw(
            st.sampled_from(sorted(s for s, eers in self.model.items() if eers))
        )
        eer_id = data.draw(st.sampled_from(sorted(self.model[seg_id])))
        self.store.allocate_on_segment(seg_id, eer_id, bandwidth)
        self.model[seg_id][eer_id] = bandwidth

    @precondition(lambda self: any(self.model.values()))
    @rule(data=st.data())
    def release(self, data):
        seg_id = data.draw(
            st.sampled_from(sorted(s for s, eers in self.model.items() if eers))
        )
        eer_id = data.draw(st.sampled_from(sorted(self.model[seg_id])))
        self.store.release_on_segment(seg_id, eer_id)
        del self.model[seg_id][eer_id]

    @precondition(lambda self: self.model)
    @rule(
        data=st.data(),
        bandwidth=st.floats(min_value=0.0, max_value=1e8),
        fail=st.booleans(),
    )
    def transaction(self, data, bandwidth, fail):
        """A multi-step transaction that either commits or aborts midway."""
        seg_id = data.draw(st.sampled_from(sorted(self.model)))
        eer_id = ReservationId(SRC, self.next_eer)
        self.next_eer += 1
        try:
            with self.store.transaction():
                self.store.add_eer(
                    E2EReservation(
                        reservation_id=eer_id,
                        eer_info=EerInfo(HostAddr(1), HostAddr(2)),
                        hops=make_segment().hops,
                        segment_ids=(seg_id,),
                        first_version=E2EVersion(
                            version=1, bandwidth=bandwidth, expiry=self.now + 16.0
                        ),
                    )
                )
                self.store.allocate_on_segment(seg_id, eer_id, bandwidth)
                if fail:
                    raise RuntimeError("downstream denied")
        except RuntimeError:
            pass  # rolled back: the model is untouched
        else:
            self.model[seg_id][eer_id] = bandwidth

    @rule(delta=st.floats(min_value=0.0, max_value=50.0))
    def advance_and_sweep(self, delta):
        self.now += delta
        self.store.sweep_expired(self.now)
        # Mirror: EERs expire at 16 s past creation; our model does not
        # track per-EER expiry, so only segments >300 s die — which the
        # bounded delta never reaches for *new* segments but may for old
        # ones.  Mirror by asking the store which segments survived.
        surviving = {r.reservation_id for r in self.store.segments()}
        for seg_id in list(self.model):
            if seg_id not in surviving:
                del self.model[seg_id]
        # EER allocations released by the sweep: mirror from the store.
        for seg_id in self.model:
            actual = self.store._eer_alloc[seg_id]
            self.model[seg_id] = {
                eer: bw for eer, bw in self.model[seg_id].items() if eer in actual
            }

    # -- invariants -------------------------------------------------------------

    @invariant()
    def sums_match_model(self):
        for seg_id, eers in self.model.items():
            expected = sum(eers.values())
            assert self.store.allocated_on_segment(seg_id) == pytest.approx(
                expected
            ), f"allocation sum drifted for {seg_id}"

    @invariant()
    def allocations_match_model(self):
        for seg_id, eers in self.model.items():
            for eer_id, bandwidth in eers.items():
                assert self.store.eer_allocation(seg_id, eer_id) == pytest.approx(
                    bandwidth
                )

    @invariant()
    def no_journal_left_behind(self):
        assert self.store._journal is None


StoreMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestStoreStateMachine = StoreMachine.TestCase
