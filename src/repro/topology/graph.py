"""The AS-level topology graph (§2.2).

Models exactly the structure Colibri relies on:

* ASes grouped into **isolation domains (ISDs)**, each with **core** and
  **non-core** members;
* inter-domain links of two kinds: ``CORE`` links between core ASes
  (possibly across ISDs) and ``PARENT_CHILD`` links inside an ISD, the
  parent being the provider on the path towards the core;
* per-AS **interface IDs** — "unique within an AS and can be defined by
  each AS independently" — which are how paths name their hops;
* per-link **capacity**, from which the Colibri traffic split (§3.4)
  derives the bandwidth available for reservations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import TopologyError, UnknownASError, UnknownInterfaceError
from repro.topology.addresses import IsdAs
from repro.util.sequence import SequenceAllocator
from repro.util.units import gbps

#: Interface ID 0 is reserved: it means "no interface", used at the first
#: hop's ingress and the last hop's egress of a segment (§2.2).
NO_INTERFACE = 0


class LinkType(enum.Enum):
    """Relationship encoded by an inter-domain link."""

    CORE = "core"  # between two core ASes
    PARENT_CHILD = "parent_child"  # provider (parent) -> customer (child)


@dataclass(frozen=True)
class Interface:
    """One end of an inter-domain link, owned by ``owner``."""

    owner: IsdAs
    ifid: int

    def __str__(self) -> str:
        return f"{self.owner}#{self.ifid}"


@dataclass(frozen=True)
class Link:
    """An inter-domain link between two interfaces with a capacity in bps.

    For ``PARENT_CHILD`` links, ``a`` is always the parent (provider) side.
    """

    a: Interface
    b: Interface
    link_type: LinkType
    capacity: float

    def other_end(self, this: IsdAs) -> Interface:
        """The interface at the far end as seen from AS ``this``."""
        if self.a.owner == this:
            return self.b
        if self.b.owner == this:
            return self.a
        raise TopologyError(f"AS {this} is not an endpoint of link {self}")

    def local_end(self, this: IsdAs) -> Interface:
        """The interface at AS ``this``."""
        if self.a.owner == this:
            return self.a
        if self.b.owner == this:
            return self.b
        raise TopologyError(f"AS {this} is not an endpoint of link {self}")

    def __str__(self) -> str:
        return f"{self.a}<->{self.b}({self.link_type.value})"


@dataclass
class ASNode:
    """An autonomous system: ISD membership, core flag, and interfaces."""

    isd_as: IsdAs
    is_core: bool = False
    interfaces: dict = field(default_factory=dict)  # ifid -> Link
    _ifid_alloc: SequenceAllocator = field(default_factory=lambda: SequenceAllocator(first=1))

    @property
    def isd(self) -> int:
        return self.isd_as.isd

    def allocate_ifid(self) -> int:
        """Pick a fresh interface ID, unique within this AS (§2.2)."""
        return self._ifid_alloc.allocate()

    def link_on(self, ifid: int) -> Link:
        link = self.interfaces.get(ifid)
        if link is None:
            raise UnknownInterfaceError(f"AS {self.isd_as} has no interface {ifid}")
        return link

    def neighbor_on(self, ifid: int) -> IsdAs:
        """The AS at the far end of interface ``ifid``."""
        return self.link_on(ifid).other_end(self.isd_as).owner

    def __str__(self) -> str:
        kind = "core" if self.is_core else "non-core"
        return f"AS {self.isd_as} ({kind}, {len(self.interfaces)} ifaces)"


class Topology:
    """The global AS graph.

    Built imperatively: :meth:`add_as` then :meth:`add_link`.  The link
    constructor validates the SCION structural rules (core links connect
    core ASes; parent-child links stay inside one ISD with the parent
    closer to the core).
    """

    DEFAULT_CAPACITY = gbps(40.0)

    def __init__(self):
        self._ases: dict[IsdAs, ASNode] = {}
        self._links: list[Link] = []

    # -- construction -------------------------------------------------------

    def add_as(self, isd_as: IsdAs, is_core: bool = False) -> ASNode:
        if isd_as in self._ases:
            raise TopologyError(f"AS {isd_as} already exists")
        node = ASNode(isd_as=isd_as, is_core=is_core)
        self._ases[isd_as] = node
        return node

    def add_link(
        self,
        a: IsdAs,
        b: IsdAs,
        link_type: LinkType = None,
        capacity: float = None,
        ifid_a: Optional[int] = None,
        ifid_b: Optional[int] = None,
    ) -> Link:
        """Connect ``a`` and ``b``; for parent-child links ``a`` is the parent.

        The link type defaults to ``CORE`` when both endpoints are core
        ASes and ``PARENT_CHILD`` otherwise.
        """
        node_a = self.node(a)
        node_b = self.node(b)
        if link_type is None:
            link_type = (
                LinkType.CORE
                if node_a.is_core and node_b.is_core
                else LinkType.PARENT_CHILD
            )
        self._validate_link(node_a, node_b, link_type)
        if capacity is None:
            capacity = self.DEFAULT_CAPACITY
        if capacity <= 0:
            raise TopologyError(f"link capacity must be positive, got {capacity}")
        ifid_a = node_a.allocate_ifid() if ifid_a is None else ifid_a
        ifid_b = node_b.allocate_ifid() if ifid_b is None else ifid_b
        for node, ifid in ((node_a, ifid_a), (node_b, ifid_b)):
            if ifid in node.interfaces:
                raise TopologyError(f"interface {ifid} already in use at {node.isd_as}")
            if ifid == NO_INTERFACE:
                raise TopologyError("interface ID 0 is reserved")
        link = Link(
            a=Interface(owner=a, ifid=ifid_a),
            b=Interface(owner=b, ifid=ifid_b),
            link_type=link_type,
            capacity=capacity,
        )
        node_a.interfaces[ifid_a] = link
        node_b.interfaces[ifid_b] = link
        self._links.append(link)
        return link

    def remove_link(self, link: Link) -> None:
        """Take an inter-domain link down (fibre cut, depeering).

        Forwarding state already in packet headers keeps working only if
        the physical link exists, so simulations model a cut by removing
        the link *and* having the affected border routers drop; what this
        method guarantees is that re-running beaconing will no longer
        offer paths across the link (§2.1: routing reacts, existing
        reservations elsewhere are untouched).
        """
        if link not in self._links:
            raise TopologyError(f"link {link} is not part of this topology")
        self._links.remove(link)
        del self.node(link.a.owner).interfaces[link.a.ifid]
        del self.node(link.b.owner).interfaces[link.b.ifid]

    @staticmethod
    def _validate_link(node_a: ASNode, node_b: ASNode, link_type: LinkType) -> None:
        if link_type is LinkType.CORE:
            if not (node_a.is_core and node_b.is_core):
                raise TopologyError(
                    f"core link requires two core ASes: {node_a.isd_as}, {node_b.isd_as}"
                )
        else:
            if node_a.isd != node_b.isd:
                raise TopologyError(
                    "parent-child links must stay inside one ISD: "
                    f"{node_a.isd_as} vs {node_b.isd_as}"
                )
            if node_b.is_core:
                raise TopologyError(
                    f"child end of a parent-child link cannot be core AS {node_b.isd_as}"
                )

    # -- lookup --------------------------------------------------------------

    def node(self, isd_as: IsdAs) -> ASNode:
        node = self._ases.get(isd_as)
        if node is None:
            raise UnknownASError(f"unknown AS {isd_as}")
        return node

    def __contains__(self, isd_as: IsdAs) -> bool:
        return isd_as in self._ases

    def ases(self) -> Iterator[ASNode]:
        return iter(self._ases.values())

    def links(self) -> Iterator[Link]:
        return iter(self._links)

    def core_ases(self, isd: Optional[int] = None) -> list[ASNode]:
        """Core ASes, optionally restricted to one ISD."""
        return [
            node
            for node in self._ases.values()
            if node.is_core and (isd is None or node.isd == isd)
        ]

    def isds(self) -> set:
        return {node.isd for node in self._ases.values()}

    def link_between(self, a: IsdAs, b: IsdAs) -> Link:
        """The (first) direct link between two ASes, if any."""
        for link in self.node(a).interfaces.values():
            if link.other_end(a).owner == b:
                return link
        raise TopologyError(f"no link between {a} and {b}")

    def children(self, parent: IsdAs) -> list[IsdAs]:
        """Customer ASes one level below ``parent`` in its ISD hierarchy."""
        node = self.node(parent)
        result = []
        for link in node.interfaces.values():
            if link.link_type is LinkType.PARENT_CHILD and link.a.owner == parent:
                result.append(link.b.owner)
        return result

    def parents(self, child: IsdAs) -> list[IsdAs]:
        """Provider ASes one level above ``child``."""
        node = self.node(child)
        result = []
        for link in node.interfaces.values():
            if link.link_type is LinkType.PARENT_CHILD and link.b.owner == child:
                result.append(link.a.owner)
        return result

    def core_neighbors(self, core: IsdAs) -> list[IsdAs]:
        """Core ASes adjacent to ``core`` via core links."""
        node = self.node(core)
        result = []
        for link in node.interfaces.values():
            if link.link_type is LinkType.CORE:
                result.append(link.other_end(core).owner)
        return result

    def __len__(self) -> int:
        return len(self._ases)

    def __repr__(self) -> str:
        return (
            f"Topology({len(self._ases)} ASes, {len(self._links)} links, "
            f"{len(self.isds())} ISDs)"
        )
