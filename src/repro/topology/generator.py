"""Synthetic topology generators.

The paper evaluates on commodity hardware with synthetic workloads; the
reproduction needs topologies of controlled shape.  Four generators cover
the spectrum:

* :func:`build_line_topology` — a chain of core ASes, the minimal shape
  for admission and forwarding benches with exact path lengths (Figs. 3-6
  sweep path length and reservation counts on such chains);
* :func:`build_core_mesh` — fully meshed core, for path-choice tests;
* :func:`build_two_isd_topology` — the canonical integration fixture: two
  ISDs, trees of non-core ASes, matching Fig. 1's S - X - Y - Z shape;
* :func:`build_internet_like` — a parameterized hierarchy (many ISDs,
  several cores each, branching customer trees) for scalability tests;
* :func:`build_caida_like` — thousands of ASes shaped like the measured
  AS graph: heavy-tailed customer cones under a peered tier-1 core,
  with multihomed leaves, for the Internet-scale scenario campaigns.

:func:`add_multihoming` retrofits secondary provider uplinks onto any
generated hierarchy; every generator that takes a ``multihome_fraction``
knob routes through it.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Optional

from repro.errors import TopologyError
from repro.topology.addresses import IsdAs
from repro.topology.graph import LinkType, Topology
from repro.util.units import gbps

DEFAULT_CAPACITY = gbps(40.0)

#: Capacity halving stops at this tier: real access networks bottom out
#: at a floor, and an unbounded decay would starve deep leaves of any
#: reservable bandwidth.
MAX_CAPACITY_TIER = 4


def _as_id(isd: int, index: int) -> IsdAs:
    """Deterministic AS numbering: readable and unique per generator call."""
    return IsdAs(isd=isd, asn=0xFF00_0000_0000 + index)


def _tier_capacity(capacity: float, depth: int, decay: float) -> float:
    """Link capacity for a customer at ``depth`` hops below the core."""
    return capacity * decay ** min(depth, MAX_CAPACITY_TIER)


def _core_depths(topology: Topology) -> dict:
    """Provider-tree depth of every AS: hops below the nearest core.

    BFS over PARENT_CHILD links from all cores at once; with multihoming
    an AS's depth is the *shortest* provider chain, which is what the
    capacity-monotonicity argument needs.
    """
    depths = {}
    queue = deque()
    for node in topology.ases():
        if node.is_core:
            depths[node.isd_as] = 0
            queue.append(node.isd_as)
    while queue:
        current = queue.popleft()
        for child in topology.children(current):
            if child not in depths:
                depths[child] = depths[current] + 1
                queue.append(child)
    return depths


def add_multihoming(
    topology: Topology,
    fraction: float,
    seed: int = 17,
    rng: Optional[random.Random] = None,
) -> int:
    """Give a fraction of single-homed ASes a secondary provider uplink.

    Real stub ASes are frequently multihomed; a pure provider tree
    understates path diversity and makes every leaf a single point of
    failure for the partition campaigns.  For each non-core AS with
    exactly one provider, with probability ``fraction`` add a second
    PARENT_CHILD uplink to a same-ISD AS strictly closer to the core.
    Choosing a strictly shallower provider keeps the provider DAG
    acyclic (beaconing's downward walk terminates) and keeps per-tier
    capacities non-increasing toward the leaves.

    The secondary uplink copies the primary uplink's capacity.  Returns
    the number of uplinks added.  Deterministic per seed; pass ``rng``
    to splice into an outer generator's random stream.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"multihome fraction must be in [0, 1], got {fraction}")
    chooser = rng if rng is not None else random.Random(seed)
    depths = _core_depths(topology)
    by_isd: dict = {}
    for node in topology.ases():
        by_isd.setdefault(node.isd_as.isd, []).append(node.isd_as)
    added = 0
    for node in list(topology.ases()):
        if node.is_core:
            continue
        isd_as = node.isd_as
        parents = topology.parents(isd_as)
        if len(parents) != 1:
            continue
        if chooser.random() >= fraction:
            continue
        depth = depths.get(isd_as)
        if depth is None:
            continue
        candidates = [
            other
            for other in by_isd[isd_as.isd]
            if other != parents[0] and depths.get(other, depth) < depth
        ]
        if not candidates:
            continue
        provider = chooser.choice(candidates)
        primary = topology.link_between(isd_as, parents[0])
        topology.add_link(provider, isd_as, LinkType.PARENT_CHILD, primary.capacity)
        added += 1
    return added


def _add_core_chords(
    topology: Topology,
    rng: random.Random,
    cores,
    count: int,
    capacity: float,
) -> int:
    """Add up to ``count`` random CORE chords between cores of *different*
    ISDs (intra-ISD cores are already meshed).  Attempts are bounded so a
    near-complete core graph can't loop forever."""
    if count <= 0 or len(cores) < 2:
        return 0
    added = 0
    for _ in range(count * 20):
        if added >= count:
            break
        a, b = rng.sample(cores, 2)
        if a.isd == b.isd:
            continue
        try:
            topology.link_between(a, b)
        except TopologyError:
            # Not linked yet — add the chord.
            topology.add_link(a, b, LinkType.CORE, capacity)
            added += 1
    return added


def build_line_topology(
    length: int, capacity: float = DEFAULT_CAPACITY, isd: int = 1
) -> Topology:
    """A chain of ``length`` core ASes joined by core links.

    Every AS pair at distance d has exactly one d-hop core-segment, which
    makes expected admission state and path lengths trivially computable
    in benchmarks.
    """
    if length < 1:
        raise ValueError(f"line topology needs at least 1 AS, got {length}")
    topology = Topology()
    previous = None
    for index in range(length):
        isd_as = _as_id(isd, index + 1)
        topology.add_as(isd_as, is_core=True)
        if previous is not None:
            topology.add_link(previous, isd_as, LinkType.CORE, capacity)
        previous = isd_as
    return topology


def build_core_mesh(size: int, capacity: float = DEFAULT_CAPACITY, isd: int = 1) -> Topology:
    """``size`` core ASes, fully meshed: maximal path choice."""
    if size < 1:
        raise ValueError(f"core mesh needs at least 1 AS, got {size}")
    topology = Topology()
    ases = []
    for index in range(size):
        isd_as = _as_id(isd, index + 1)
        topology.add_as(isd_as, is_core=True)
        ases.append(isd_as)
    for i, a in enumerate(ases):
        for b in ases[i + 1 :]:
            topology.add_link(a, b, LinkType.CORE, capacity)
    return topology


def build_two_isd_topology(capacity: float = DEFAULT_CAPACITY) -> Topology:
    """Two ISDs with one core AS each and two levels of customers.

    Shape (parent-child edges point down)::

        ISD 1:        core1 ---------- core2        :ISD 2
                      /   \\              /  \\
                   as11   as12        as21  as22
                    /       \\          /
                 as111     as121     as211

    Hosts in ``as111`` talking to ``as211`` exercise the full
    up + core + down combination with a transfer AS at each core; pairs
    under one core exercise shortcuts.
    """
    topology = Topology()
    core1 = _as_id(1, 1)
    core2 = _as_id(2, 1)
    topology.add_as(core1, is_core=True)
    topology.add_as(core2, is_core=True)
    topology.add_link(core1, core2, LinkType.CORE, capacity)

    def grow(isd: int, core: IsdAs, children: int, grandchildren: list) -> list:
        added = []
        for child_index in range(children):
            child = _as_id(isd, 10 + child_index + 1)
            topology.add_as(child, is_core=False)
            topology.add_link(core, child, LinkType.PARENT_CHILD, capacity)
            added.append(child)
            for grand_index in range(grandchildren[child_index]):
                grand = _as_id(isd, 100 + child_index * 10 + grand_index + 1)
                topology.add_as(grand, is_core=False)
                topology.add_link(child, grand, LinkType.PARENT_CHILD, capacity)
                added.append(grand)
        return added

    grow(1, core1, 2, [1, 1])
    grow(2, core2, 2, [1, 0])
    return topology


def build_power_law(
    as_count: int = 300,
    isd_count: int = 5,
    cores_per_isd: int = 3,
    capacity: float = DEFAULT_CAPACITY,
    seed: int = 13,
    multihome_fraction: float = 0.0,
) -> Topology:
    """A power-law-ish AS hierarchy via preferential attachment.

    The real Internet's AS graph is heavy-tailed: a few providers serve
    very many customers.  Inside each ISD, non-core ASes attach to an
    existing AS chosen with probability proportional to its current
    customer count (+1) — the classic Barabási-Albert process projected
    onto a provider tree, so SCION's segment structure stays intact.
    Cores are fully meshed inside an ISD; across ISDs a ring plus random
    chords (as in :func:`build_internet_like`) gives multiple
    core-segments per pair instead of a single ring path.

    Used by the scalability tests: hundreds of ASes with realistic
    degree skew, still fast to beacon.
    """
    if as_count < isd_count * cores_per_isd:
        raise ValueError(
            f"need at least {isd_count * cores_per_isd} ASes for "
            f"{isd_count} ISDs x {cores_per_isd} cores"
        )
    rng = random.Random(seed)
    topology = Topology()
    all_cores = []
    per_isd = as_count // isd_count

    for isd in range(1, isd_count + 1):
        cores = []
        for core_index in range(cores_per_isd):
            core = _as_id(isd, core_index + 1)
            topology.add_as(core, is_core=True)
            cores.append(core)
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                topology.add_link(a, b, LinkType.CORE, capacity)
        all_cores.append(cores)

        # Preferential attachment below the cores.
        members = list(cores)  # candidates to attach to
        child_counts = {isd_as: 1 for isd_as in members}  # +1 smoothing
        for index in range(per_isd - cores_per_isd):
            child = _as_id(isd, 100 + index)
            topology.add_as(child, is_core=False)
            weights = [child_counts[candidate] for candidate in members]
            parent = rng.choices(members, weights=weights, k=1)[0]
            topology.add_link(parent, child, LinkType.PARENT_CHILD, capacity)
            child_counts[parent] += 1
            child_counts[child] = 1
            members.append(child)

    for index in range(isd_count):
        if isd_count > 1:
            a = all_cores[index][0]
            b = all_cores[(index + 1) % isd_count][0]
            try:
                topology.link_between(a, b)
            except TopologyError:
                # Not linked yet — add the inter-ISD core link.
                topology.add_link(a, b, LinkType.CORE, capacity)
    flattened = [core for cores in all_cores for core in cores]
    _add_core_chords(topology, rng, flattened, max(0, isd_count - 2), capacity)
    if multihome_fraction:
        add_multihoming(topology, multihome_fraction, rng=rng)
    return topology


def build_internet_like(
    isd_count: int = 3,
    cores_per_isd: int = 2,
    children_per_node: int = 2,
    depth: int = 2,
    capacity: float = DEFAULT_CAPACITY,
    seed: int = 7,
) -> Topology:
    """A hierarchy of ``isd_count`` ISDs with branching customer trees.

    Core ASes inside an ISD are fully meshed; across ISDs a ring plus
    random chords connects the cores, giving multiple core-segments per
    pair.  Every non-core AS has one provider (a tree), which matches the
    segment model (multi-homing can be added by extra ``add_link`` calls).
    """
    if isd_count < 1 or cores_per_isd < 1:
        raise ValueError("need at least one ISD and one core AS per ISD")
    rng = random.Random(seed)
    topology = Topology()
    all_cores = []

    for isd in range(1, isd_count + 1):
        cores = []
        for core_index in range(cores_per_isd):
            core = _as_id(isd, core_index + 1)
            topology.add_as(core, is_core=True)
            cores.append(core)
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                topology.add_link(a, b, LinkType.CORE, capacity)
        all_cores.append(cores)

        next_id = 100
        frontier = list(cores)
        for _level in range(depth):
            new_frontier = []
            for parent in frontier:
                for _child in range(children_per_node):
                    child = _as_id(isd, next_id)
                    next_id += 1
                    topology.add_as(child, is_core=False)
                    topology.add_link(parent, child, LinkType.PARENT_CHILD, capacity)
                    new_frontier.append(child)
            frontier = new_frontier

    # Inter-ISD core connectivity: ring over the first core of each ISD,
    # then random chords between remaining cores for path diversity.
    for index in range(isd_count):
        a = all_cores[index][0]
        b = all_cores[(index + 1) % isd_count][0]
        if index != (index + 1) % isd_count:
            topology.add_link(a, b, LinkType.CORE, capacity)
    flattened = [core for cores in all_cores for core in cores]
    extra_chords = max(0, isd_count - 2)
    for _ in range(extra_chords):
        a, b = rng.sample(flattened, 2)
        try:
            topology.link_between(a, b)
        except TopologyError:
            # The sampled core pair is not linked yet — add the chord.
            topology.add_link(a, b, LinkType.CORE, capacity)
    return topology


def build_caida_like(
    as_count: int = 2000,
    isd_count: int = 8,
    tier1_per_isd: int = 3,
    alpha: float = 2.1,
    max_children: int = 256,
    peering_degree: float = 1.0,
    multihome_fraction: float = 0.15,
    capacity: float = DEFAULT_CAPACITY,
    tier_capacity_decay: float = 0.5,
    seed: int = 29,
) -> Topology:
    """A CAIDA-like AS graph: heavy-tailed customer cones under a peered
    tier-1 core, with multihomed leaves.

    Three structural properties of the measured AS graph matter for the
    Internet-scale campaigns and :func:`build_power_law` only delivers
    the first:

    * **heavy-tailed customer cones** — provider attractiveness is drawn
      from a Pareto(``alpha``) distribution (clamped at ``max_children``),
      so a handful of tier-1/tier-2 providers accumulate cones of
      hundreds of customers while most ASes are stubs.  Attachment
      probability is proportional to drawn attractiveness × (customers
      so far + 1), i.e. preferential attachment with intrinsic fitness;
    * **a peered core** — ``tier1_per_isd`` cores per ISD are meshed
      intra-ISD, ring-connected across ISDs, and then
      ``peering_degree × isd_count`` random inter-ISD peering chords are
      added, so core-segment diversity scales with the core instead of
      collapsing onto one ring;
    * **multihomed edges** — ``multihome_fraction`` of single-homed ASes
      gain a secondary provider uplink via :func:`add_multihoming`.

    Link capacities decay by ``tier_capacity_decay`` per provider tier
    (floored at tier :data:`MAX_CAPACITY_TIER`), so core links are fat
    and access links thin — a child's uplink never exceeds its
    provider's own uplink, which is the capacity-conservation property
    the generators guarantee.  Deterministic per seed at any
    ``as_count``; thousands of ASes build in well under a second.
    """
    if isd_count < 1 or tier1_per_isd < 1:
        raise ValueError("need at least one ISD and one tier-1 AS per ISD")
    if as_count < isd_count * tier1_per_isd:
        raise ValueError(
            f"need at least {isd_count * tier1_per_isd} ASes for "
            f"{isd_count} ISDs x {tier1_per_isd} tier-1 cores"
        )
    if alpha <= 1.0:
        raise ValueError(f"Pareto exponent must exceed 1, got {alpha}")
    if not 0.0 < tier_capacity_decay <= 1.0:
        raise ValueError(f"tier capacity decay must be in (0, 1], got {tier_capacity_decay}")
    rng = random.Random(seed)
    topology = Topology()
    all_cores = []

    for isd in range(1, isd_count + 1):
        cores = []
        for core_index in range(tier1_per_isd):
            core = _as_id(isd, core_index + 1)
            topology.add_as(core, is_core=True)
            cores.append(core)
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                topology.add_link(a, b, LinkType.CORE, capacity)
        all_cores.append(cores)

    # Inter-ISD ring for baseline reachability, then peering chords.
    if isd_count > 1:
        for index in range(isd_count):
            a = all_cores[index][0]
            b = all_cores[(index + 1) % isd_count][0]
            try:
                topology.link_between(a, b)
            except TopologyError:
                topology.add_link(a, b, LinkType.CORE, capacity)
        flattened = [core for cores in all_cores for core in cores]
        _add_core_chords(
            topology, rng, flattened, int(peering_degree * isd_count), capacity
        )

    # Customer cones: fitness-weighted preferential attachment per ISD.
    remaining = as_count - isd_count * tier1_per_isd
    base, leftover = divmod(remaining, isd_count)
    for isd_index, cores in enumerate(all_cores):
        isd = isd_index + 1
        cone_size = base + (1 if isd_index < leftover else 0)
        members = list(cores)
        depth = {isd_as: 0 for isd_as in members}
        attractiveness = {
            isd_as: min(
                float(max_children), (1.0 - rng.random()) ** (-1.0 / (alpha - 1.0))
            )
            for isd_as in members
        }
        customers = [0 for _ in members]
        fitness = [attractiveness[m] for m in members]
        weights = list(fitness)
        for index in range(cone_size):
            child = _as_id(isd, 1000 + index)
            topology.add_as(child, is_core=False)
            provider_index = rng.choices(range(len(members)), weights=weights, k=1)[0]
            provider = members[provider_index]
            child_depth = depth[provider] + 1
            topology.add_link(
                provider,
                child,
                LinkType.PARENT_CHILD,
                _tier_capacity(capacity, child_depth, tier_capacity_decay),
            )
            customers[provider_index] += 1
            weights[provider_index] = fitness[provider_index] * (
                customers[provider_index] + 1
            )
            depth[child] = child_depth
            members.append(child)
            customers.append(0)
            fitness.append(
                min(float(max_children), (1.0 - rng.random()) ** (-1.0 / (alpha - 1.0)))
            )
            weights.append(fitness[-1])

    if multihome_fraction:
        add_multihoming(topology, multihome_fraction, rng=rng)
    return topology
