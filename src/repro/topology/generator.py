"""Synthetic topology generators.

The paper evaluates on commodity hardware with synthetic workloads; the
reproduction needs topologies of controlled shape.  Four generators cover
the spectrum:

* :func:`build_line_topology` — a chain of core ASes, the minimal shape
  for admission and forwarding benches with exact path lengths (Figs. 3-6
  sweep path length and reservation counts on such chains);
* :func:`build_core_mesh` — fully meshed core, for path-choice tests;
* :func:`build_two_isd_topology` — the canonical integration fixture: two
  ISDs, trees of non-core ASes, matching Fig. 1's S - X - Y - Z shape;
* :func:`build_internet_like` — a parameterized hierarchy (many ISDs,
  several cores each, branching customer trees) for scalability tests.
"""

from __future__ import annotations

import random

from repro.errors import TopologyError
from repro.topology.addresses import IsdAs
from repro.topology.graph import LinkType, Topology
from repro.util.units import gbps

DEFAULT_CAPACITY = gbps(40.0)


def _as_id(isd: int, index: int) -> IsdAs:
    """Deterministic AS numbering: readable and unique per generator call."""
    return IsdAs(isd=isd, asn=0xFF00_0000_0000 + index)


def build_line_topology(
    length: int, capacity: float = DEFAULT_CAPACITY, isd: int = 1
) -> Topology:
    """A chain of ``length`` core ASes joined by core links.

    Every AS pair at distance d has exactly one d-hop core-segment, which
    makes expected admission state and path lengths trivially computable
    in benchmarks.
    """
    if length < 1:
        raise ValueError(f"line topology needs at least 1 AS, got {length}")
    topology = Topology()
    previous = None
    for index in range(length):
        isd_as = _as_id(isd, index + 1)
        topology.add_as(isd_as, is_core=True)
        if previous is not None:
            topology.add_link(previous, isd_as, LinkType.CORE, capacity)
        previous = isd_as
    return topology


def build_core_mesh(size: int, capacity: float = DEFAULT_CAPACITY, isd: int = 1) -> Topology:
    """``size`` core ASes, fully meshed: maximal path choice."""
    if size < 1:
        raise ValueError(f"core mesh needs at least 1 AS, got {size}")
    topology = Topology()
    ases = []
    for index in range(size):
        isd_as = _as_id(isd, index + 1)
        topology.add_as(isd_as, is_core=True)
        ases.append(isd_as)
    for i, a in enumerate(ases):
        for b in ases[i + 1 :]:
            topology.add_link(a, b, LinkType.CORE, capacity)
    return topology


def build_two_isd_topology(capacity: float = DEFAULT_CAPACITY) -> Topology:
    """Two ISDs with one core AS each and two levels of customers.

    Shape (parent-child edges point down)::

        ISD 1:        core1 ---------- core2        :ISD 2
                      /   \\              /  \\
                   as11   as12        as21  as22
                    /       \\          /
                 as111     as121     as211

    Hosts in ``as111`` talking to ``as211`` exercise the full
    up + core + down combination with a transfer AS at each core; pairs
    under one core exercise shortcuts.
    """
    topology = Topology()
    core1 = _as_id(1, 1)
    core2 = _as_id(2, 1)
    topology.add_as(core1, is_core=True)
    topology.add_as(core2, is_core=True)
    topology.add_link(core1, core2, LinkType.CORE, capacity)

    def grow(isd: int, core: IsdAs, children: int, grandchildren: list) -> list:
        added = []
        for child_index in range(children):
            child = _as_id(isd, 10 + child_index + 1)
            topology.add_as(child, is_core=False)
            topology.add_link(core, child, LinkType.PARENT_CHILD, capacity)
            added.append(child)
            for grand_index in range(grandchildren[child_index]):
                grand = _as_id(isd, 100 + child_index * 10 + grand_index + 1)
                topology.add_as(grand, is_core=False)
                topology.add_link(child, grand, LinkType.PARENT_CHILD, capacity)
                added.append(grand)
        return added

    grow(1, core1, 2, [1, 1])
    grow(2, core2, 2, [1, 0])
    return topology


def build_power_law(
    as_count: int = 300,
    isd_count: int = 5,
    cores_per_isd: int = 3,
    capacity: float = DEFAULT_CAPACITY,
    seed: int = 13,
) -> Topology:
    """A power-law-ish AS hierarchy via preferential attachment.

    The real Internet's AS graph is heavy-tailed: a few providers serve
    very many customers.  Inside each ISD, non-core ASes attach to an
    existing AS chosen with probability proportional to its current
    customer count (+1) — the classic Barabási-Albert process projected
    onto a provider tree, so SCION's segment structure stays intact.
    Cores are fully meshed inside an ISD and ring-connected across ISDs.

    Used by the scalability tests: hundreds of ASes with realistic
    degree skew, still fast to beacon.
    """
    if as_count < isd_count * cores_per_isd:
        raise ValueError(
            f"need at least {isd_count * cores_per_isd} ASes for "
            f"{isd_count} ISDs x {cores_per_isd} cores"
        )
    rng = random.Random(seed)
    topology = Topology()
    all_cores = []
    per_isd = as_count // isd_count

    for isd in range(1, isd_count + 1):
        cores = []
        for core_index in range(cores_per_isd):
            core = _as_id(isd, core_index + 1)
            topology.add_as(core, is_core=True)
            cores.append(core)
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                topology.add_link(a, b, LinkType.CORE, capacity)
        all_cores.append(cores)

        # Preferential attachment below the cores.
        members = list(cores)  # candidates to attach to
        child_counts = {isd_as: 1 for isd_as in members}  # +1 smoothing
        for index in range(per_isd - cores_per_isd):
            child = _as_id(isd, 100 + index)
            topology.add_as(child, is_core=False)
            weights = [child_counts[candidate] for candidate in members]
            parent = rng.choices(members, weights=weights, k=1)[0]
            topology.add_link(parent, child, LinkType.PARENT_CHILD, capacity)
            child_counts[parent] += 1
            child_counts[child] = 1
            members.append(child)

    for index in range(isd_count):
        if isd_count > 1:
            a = all_cores[index][0]
            b = all_cores[(index + 1) % isd_count][0]
            try:
                topology.link_between(a, b)
            except TopologyError:
                # Not linked yet — add the inter-ISD core link.
                topology.add_link(a, b, LinkType.CORE, capacity)
    return topology


def build_internet_like(
    isd_count: int = 3,
    cores_per_isd: int = 2,
    children_per_node: int = 2,
    depth: int = 2,
    capacity: float = DEFAULT_CAPACITY,
    seed: int = 7,
) -> Topology:
    """A hierarchy of ``isd_count`` ISDs with branching customer trees.

    Core ASes inside an ISD are fully meshed; across ISDs a ring plus
    random chords connects the cores, giving multiple core-segments per
    pair.  Every non-core AS has one provider (a tree), which matches the
    segment model (multi-homing can be added by extra ``add_link`` calls).
    """
    if isd_count < 1 or cores_per_isd < 1:
        raise ValueError("need at least one ISD and one core AS per ISD")
    rng = random.Random(seed)
    topology = Topology()
    all_cores = []

    for isd in range(1, isd_count + 1):
        cores = []
        for core_index in range(cores_per_isd):
            core = _as_id(isd, core_index + 1)
            topology.add_as(core, is_core=True)
            cores.append(core)
        for i, a in enumerate(cores):
            for b in cores[i + 1 :]:
                topology.add_link(a, b, LinkType.CORE, capacity)
        all_cores.append(cores)

        next_id = 100
        frontier = list(cores)
        for _level in range(depth):
            new_frontier = []
            for parent in frontier:
                for _child in range(children_per_node):
                    child = _as_id(isd, next_id)
                    next_id += 1
                    topology.add_as(child, is_core=False)
                    topology.add_link(parent, child, LinkType.PARENT_CHILD, capacity)
                    new_frontier.append(child)
            frontier = new_frontier

    # Inter-ISD core connectivity: ring over the first core of each ISD,
    # then random chords between remaining cores for path diversity.
    for index in range(isd_count):
        a = all_cores[index][0]
        b = all_cores[(index + 1) % isd_count][0]
        if index != (index + 1) % isd_count:
            topology.add_link(a, b, LinkType.CORE, capacity)
    flattened = [core for cores in all_cores for core in cores]
    extra_chords = max(0, isd_count - 2)
    for _ in range(extra_chords):
        a, b = rng.sample(flattened, 2)
        try:
            topology.link_between(a, b)
        except TopologyError:
            # The sampled core pair is not linked yet — add the chord.
            topology.add_link(a, b, LinkType.CORE, capacity)
    return topology
