"""NetworkX interoperability.

Research topologies (CAIDA-derived graphs, synthetic models, hand-drawn
scenarios) usually live as :mod:`networkx` graphs.  This bridge converts
them to and from :class:`~repro.topology.graph.Topology` so any such
graph can run Colibri:

* nodes need ``isd`` (int) and ``core`` (bool) attributes — or a
  classifier callable supplies them;
* edges may carry ``capacity`` (bps, defaulting to 40 Gbps Colibri-style)
  and are typed automatically: core↔core links become CORE; otherwise
  the core (or lower-``level``) endpoint becomes the parent.
"""

from __future__ import annotations

from typing import Callable, Optional

import networkx as nx

from repro.errors import TopologyError
from repro.topology.addresses import IsdAs
from repro.topology.graph import LinkType, Topology
from repro.util.units import gbps

DEFAULT_CAPACITY = gbps(40.0)


def from_networkx(
    graph: "nx.Graph",
    classify: Optional[Callable] = None,
    default_capacity: float = DEFAULT_CAPACITY,
) -> Topology:
    """Build a Colibri topology from a NetworkX graph.

    ``classify(node, attrs) -> (isd, is_core)`` overrides node
    attributes; without it, each node must carry ``isd`` and ``core``.
    Node identity becomes the AS number (hashed into the 48-bit space
    when not already an int), so reproducible graphs map reproducibly.
    """
    topology = Topology()
    mapping = {}
    for node, attrs in graph.nodes(data=True):
        if classify is not None:
            isd, is_core = classify(node, attrs)
        else:
            try:
                isd, is_core = attrs["isd"], attrs["core"]
            except KeyError as missing:
                raise TopologyError(
                    f"node {node!r} lacks attribute {missing}; provide "
                    "'isd' and 'core' or pass a classifier"
                ) from missing
        if isinstance(node, int) and 0 <= node < (1 << 48):
            asn = node
        else:
            asn = hash(str(node)) & ((1 << 48) - 1)
        isd_as = IsdAs(isd=isd, asn=asn)
        mapping[node] = isd_as
        topology.add_as(isd_as, is_core=bool(is_core))

    for a, b, attrs in graph.edges(data=True):
        as_a, as_b = mapping[a], mapping[b]
        node_a, node_b = topology.node(as_a), topology.node(as_b)
        capacity = attrs.get("capacity", default_capacity)
        if node_a.is_core and node_b.is_core:
            topology.add_link(as_a, as_b, LinkType.CORE, capacity)
        elif node_a.is_core:
            topology.add_link(as_a, as_b, LinkType.PARENT_CHILD, capacity)
        elif node_b.is_core:
            topology.add_link(as_b, as_a, LinkType.PARENT_CHILD, capacity)
        else:
            # Neither is core: the 'level' attribute (smaller = closer to
            # the core) or insertion order decides the provider.
            level_a = graph.nodes[a].get("level")
            level_b = graph.nodes[b].get("level")
            if level_a is not None and level_b is not None and level_a != level_b:
                parent, child = (as_a, as_b) if level_a < level_b else (as_b, as_a)
            else:
                parent, child = as_a, as_b
            topology.add_link(parent, child, LinkType.PARENT_CHILD, capacity)
    return topology


def to_networkx(topology: Topology) -> "nx.Graph":
    """Export a topology as a NetworkX graph (inverse of
    :func:`from_networkx` up to node naming)."""
    graph = nx.Graph()
    for node in topology.ases():
        graph.add_node(
            str(node.isd_as), isd=node.isd, core=node.is_core
        )
    for link in topology.links():
        graph.add_edge(
            str(link.a.owner),
            str(link.b.owner),
            capacity=link.capacity,
            type=link.link_type.value,
        )
    return graph
