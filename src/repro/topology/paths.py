"""End-to-end path construction from segments (§2.2).

Source hosts combine "at most one up-, one core-, and one down-segment"
into a full path.  The joints between segments are **transfer ASes** —
necessarily core ASes (§4.1).  When the up- and down-segment cross in a
common non-core AS, the combination takes a **shortcut** there instead of
going all the way to the core, avoiding the inefficiency of strictly
hierarchical routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import NoPathError, SegmentCombinationError
from repro.topology.addresses import IsdAs
from repro.topology.beaconing import Beaconing
from repro.topology.segments import HopField, Segment, SegmentType


@dataclass(frozen=True)
class EndToEndPath:
    """A complete forwarding path plus the segments it was built from.

    ``hops`` is one :class:`HopField` per on-path AS in travel order;
    ``segments`` records the 1–3 constituent segments so an EER setup can
    name the SegRs riding on them (§4.4).  ``transfer_ases`` are the joint
    ASes between consecutive segments.
    """

    hops: tuple
    segments: tuple
    transfer_ases: tuple

    @property
    def source_as(self) -> IsdAs:
        return self.hops[0].isd_as

    @property
    def destination_as(self) -> IsdAs:
        return self.hops[-1].isd_as

    @property
    def ases(self) -> tuple:
        return tuple(hop.isd_as for hop in self.hops)

    def __len__(self) -> int:
        return len(self.hops)

    def hop_index(self, isd_as: IsdAs) -> int:
        for index, hop in enumerate(self.hops):
            if hop.isd_as == isd_as:
                return index
        raise NoPathError(f"AS {isd_as} is not on path {self}")

    def __str__(self) -> str:
        return " -> ".join(str(hop) for hop in self.hops)


def _merge_joint(left_last: HopField, right_first: HopField) -> HopField:
    """Merge the joint AS's two half-hops into one transfer-AS hop."""
    if left_last.isd_as != right_first.isd_as:
        raise SegmentCombinationError(
            f"segments do not share a joint AS: {left_last.isd_as} vs "
            f"{right_first.isd_as}"
        )
    return HopField(
        isd_as=left_last.isd_as,
        ingress=left_last.ingress,
        egress=right_first.egress,
    )


_SEGMENT_ORDER = {SegmentType.UP: 0, SegmentType.CORE: 1, SegmentType.DOWN: 2}


def combine_segments(segments: list, allow_shortcut: bool = True) -> EndToEndPath:
    """Join 1–3 segments into an :class:`EndToEndPath`.

    Segments must appear in UP < CORE < DOWN order (each at most once) and
    consecutive segments must share their joint AS.  With
    ``allow_shortcut`` and exactly an (up, down) pair, the combination is
    cut at the lowest common AS when the segments cross below the core.
    """
    if not 1 <= len(segments) <= 3:
        raise SegmentCombinationError(
            f"a path combines 1 to 3 segments, got {len(segments)}"
        )
    order = [_SEGMENT_ORDER[segment.segment_type] for segment in segments]
    if sorted(order) != order or len(set(order)) != len(order):
        raise SegmentCombinationError(
            "segments must appear in up < core < down order, each at most once: "
            + ", ".join(segment.segment_type.value for segment in segments)
        )

    if (
        allow_shortcut
        and len(segments) == 2
        and segments[0].segment_type is SegmentType.UP
        and segments[1].segment_type is SegmentType.DOWN
    ):
        shortcut = _try_shortcut(segments[0], segments[1])
        if shortcut is not None:
            return shortcut

    hops = list(segments[0].hops)
    transfer = []
    for segment in segments[1:]:
        joint = _merge_joint(hops[-1], segment.hops[0])
        transfer.append(joint.isd_as)
        hops = hops[:-1] + [joint] + list(segment.hops[1:])
    _check_no_loops(hops)
    return EndToEndPath(
        hops=tuple(hops), segments=tuple(segments), transfer_ases=tuple(transfer)
    )


def _try_shortcut(up: Segment, down: Segment) -> Optional[EndToEndPath]:
    """Cut an (up, down) pair at the lowest AS they share, if any.

    Returns ``None`` when the only shared AS is the core joint itself (no
    shortcut possible) or the segments share no AS at all.
    """
    down_positions = {hop.isd_as: index for index, hop in enumerate(down.hops)}
    # Walk the up-segment from the source; the *first* crossing is the
    # lowest shared AS and yields the shortest shortcut.
    for up_index, up_hop in enumerate(up.hops):
        down_index = down_positions.get(up_hop.isd_as)
        if down_index is None:
            continue
        if up_index == len(up.hops) - 1 and down_index == 0:
            return None  # shared AS is the core joint: regular combination
        joint = _merge_joint(up.hops[up_index], down.hops[down_index])
        hops = list(up.hops[:up_index]) + [joint] + list(down.hops[down_index + 1 :])
        _check_no_loops(hops)
        return EndToEndPath(
            hops=tuple(hops),
            segments=(up, down),
            transfer_ases=(joint.isd_as,),
        )
    return None


def _check_no_loops(hops: list) -> None:
    ases = [hop.isd_as for hop in hops]
    if len(set(ases)) != len(ases):
        raise SegmentCombinationError(f"combined path visits an AS twice: {ases}")


class PathLookup:
    """Enumerates end-to-end paths between two ASes from beaconed segments.

    This is the path-service role of the SCION daemon: given source and
    destination AS, return candidate paths sorted by hop count.  Colibri's
    CServ uses the same segment combinations to assemble SegRs covering
    the path (§3.3, Appendix C).
    """

    def __init__(self, beaconing: Beaconing):
        self.beaconing = beaconing
        self.topology = beaconing.topology

    def paths(self, source: IsdAs, destination: IsdAs, limit: int = 5) -> list:
        if source == destination:
            raise NoPathError(f"source and destination are the same AS {source}")
        candidates = []
        for segments in self._segment_combinations(source, destination):
            try:
                candidates.append(combine_segments(segments))
            except SegmentCombinationError:
                continue
        if not candidates:
            raise NoPathError(f"no path from {source} to {destination}")
        unique: dict = {}
        for path in candidates:
            unique.setdefault(path.ases, path)
        ordered = sorted(unique.values(), key=len)
        return ordered[:limit]

    def _segment_combinations(self, source: IsdAs, destination: IsdAs):
        """Yield candidate segment lists (unvalidated)."""
        src_core = self.topology.node(source).is_core
        dst_core = self.topology.node(destination).is_core

        if src_core:
            up_options = [(None, source)]
        else:
            up_options = [
                (segment, segment.last_as)
                for core in self.beaconing.reachable_cores(source)
                for segment in self.beaconing.up_segments(source, core)
            ]
        if dst_core:
            down_options = [(None, destination)]
        else:
            down_options = [
                (segment, segment.first_as)
                for core in self.topology.core_ases(self.topology.node(destination).isd)
                for segment in self.beaconing.down_segments(core.isd_as, destination)
            ]

        for up_segment, up_core in up_options:
            for down_segment, down_core in down_options:
                if up_core == down_core:
                    segments = [
                        segment
                        for segment in (up_segment, down_segment)
                        if segment is not None
                    ]
                    if segments:
                        yield segments
                    continue
                for core_segment in self.beaconing.core_segments(up_core, down_core):
                    yield [
                        segment
                        for segment in (up_segment, core_segment, down_segment)
                        if segment is not None
                    ]
