"""Path selection policies (§2.1's "fine-grained routing optimization").

Path-aware networking hands the choice among candidate paths to the
endpoints.  This module provides the selection strategies a Colibri
deployment actually needs:

* :func:`shortest_first` — the default latency proxy;
* :func:`max_capacity_first` — prefer paths whose bottleneck link is
  widest (reservation-friendly ordering);
* :func:`most_disjoint` — greedy maximal AS-disjointness, the right
  input for multipath EERs (§2.1: "multiple reservations across
  multiple paths"): subflows that share no transit AS share no fate;
* :func:`path_capacity` / :func:`disjointness` — the underlying metrics.
"""

from __future__ import annotations

from repro.topology.graph import NO_INTERFACE, Topology
from repro.topology.paths import EndToEndPath


def path_capacity(topology: Topology, path: EndToEndPath) -> float:
    """The bottleneck link capacity along a path (bits per second)."""
    capacity = float("inf")
    for hop in path.hops:
        if hop.egress == NO_INTERFACE:
            continue
        link = topology.node(hop.isd_as).link_on(hop.egress)
        capacity = min(capacity, link.capacity)
    return capacity


def disjointness(a: EndToEndPath, b: EndToEndPath) -> float:
    """Fraction of *transit* ASes of ``a`` not shared with ``b``.

    Endpoints are excluded: every path shares the source and destination
    AS by construction, so only the middle matters for fate sharing.
    """
    middle_a = set(a.ases[1:-1])
    middle_b = set(b.ases[1:-1])
    if not middle_a:
        return 1.0  # a direct path shares no transit with anything
    return len(middle_a - middle_b) / len(middle_a)


def shortest_first(paths: list) -> list:
    """Sort candidate paths by hop count (stable)."""
    return sorted(paths, key=len)


def max_capacity_first(topology: Topology, paths: list) -> list:
    """Sort by bottleneck capacity, widest first; hop count breaks ties."""
    return sorted(
        paths, key=lambda path: (-path_capacity(topology, path), len(path))
    )


def most_disjoint(paths: list, count: int) -> list:
    """Greedy selection of up to ``count`` mutually disjoint paths.

    Starts from the shortest path, then repeatedly adds the candidate
    with the highest minimum disjointness against everything selected so
    far (ties broken by hop count).  The classic greedy gives no global
    optimality guarantee but is exactly what a host-side daemon can
    afford per connection setup.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not paths:
        return []
    remaining = shortest_first(paths)
    selected = [remaining.pop(0)]
    while remaining and len(selected) < count:
        best = max(
            remaining,
            key=lambda candidate: (
                min(disjointness(candidate, chosen) for chosen in selected),
                -len(candidate),
            ),
        )
        remaining.remove(best)
        selected.append(best)
    return selected
