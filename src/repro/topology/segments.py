"""Path segments (§2.2).

SCION splits routing into the discovery of three segment types:

* **up-segments** — from a non-core AS up to a core AS of its ISD;
* **down-segments** — from a core AS down to a non-core AS of its ISD;
* **core-segments** — between core ASes, possibly across ISDs.

A segment is an ordered list of :class:`HopField` entries, one per AS, in
the direction of travel.  Each hop names the AS and its ingress/egress
interface pair — "paths are represented by ingress-egress interface-pairs
for each on-path AS".  Interface ID 0 marks "no interface": the ingress
of the first hop and the egress of the last hop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.errors import PathError
from repro.topology.addresses import IsdAs
from repro.topology.graph import NO_INTERFACE, Topology


class SegmentType(enum.Enum):
    UP = "up"
    DOWN = "down"
    CORE = "core"


@dataclass(frozen=True)
class HopField:
    """One AS's hop in a segment or path: (AS, ingress, egress)."""

    isd_as: IsdAs
    ingress: int
    egress: int

    @property
    def interface_pair(self) -> tuple:
        return (self.ingress, self.egress)

    def reversed(self) -> "HopField":
        """The same hop traversed in the opposite direction."""
        return HopField(isd_as=self.isd_as, ingress=self.egress, egress=self.ingress)

    def __str__(self) -> str:
        return f"{self.isd_as}[{self.ingress}>{self.egress}]"


@dataclass(frozen=True)
class Segment:
    """An immutable path segment of a given :class:`SegmentType`."""

    segment_type: SegmentType
    hops: tuple

    def __post_init__(self):
        if not self.hops:
            raise PathError("segment must contain at least one hop")
        if self.hops[0].ingress != NO_INTERFACE:
            raise PathError(
                f"first hop of a segment must have ingress 0, got {self.hops[0]}"
            )
        if self.hops[-1].egress != NO_INTERFACE:
            raise PathError(
                f"last hop of a segment must have egress 0, got {self.hops[-1]}"
            )
        seen = set()
        for hop in self.hops:
            if hop.isd_as in seen:
                raise PathError(f"segment visits AS {hop.isd_as} twice")
            seen.add(hop.isd_as)

    @classmethod
    def from_hops(cls, segment_type: SegmentType, hops: Iterable[HopField]) -> "Segment":
        return cls(segment_type=segment_type, hops=tuple(hops))

    @property
    def first_as(self) -> IsdAs:
        return self.hops[0].isd_as

    @property
    def last_as(self) -> IsdAs:
        return self.hops[-1].isd_as

    @property
    def ases(self) -> tuple:
        return tuple(hop.isd_as for hop in self.hops)

    def __len__(self) -> int:
        return len(self.hops)

    def __contains__(self, isd_as: IsdAs) -> bool:
        return any(hop.isd_as == isd_as for hop in self.hops)

    def hop_of(self, isd_as: IsdAs) -> HopField:
        for hop in self.hops:
            if hop.isd_as == isd_as:
                return hop
        raise PathError(f"AS {isd_as} is not on segment {self}")

    def reversed(self, segment_type: SegmentType = None) -> "Segment":
        """The segment traversed backwards (e.g. down-segment from an
        up-segment discovery).  ``segment_type`` names the reversed type;
        by default UP <-> DOWN swap and CORE stays CORE.
        """
        if segment_type is None:
            swap = {
                SegmentType.UP: SegmentType.DOWN,
                SegmentType.DOWN: SegmentType.UP,
                SegmentType.CORE: SegmentType.CORE,
            }
            segment_type = swap[self.segment_type]
        return Segment(
            segment_type=segment_type,
            hops=tuple(hop.reversed() for hop in reversed(self.hops)),
        )

    def validate_against(self, topology: Topology) -> None:
        """Check every consecutive hop pair is joined by a real link.

        Guards synthetic or deserialized segments against referring to
        interfaces that do not exist or that do not connect where the
        segment claims.
        """
        for prev, nxt in zip(self.hops, self.hops[1:]):
            prev_node = topology.node(prev.isd_as)
            link = prev_node.link_on(prev.egress)
            far = link.other_end(prev.isd_as)
            if far.owner != nxt.isd_as or far.ifid != nxt.ingress:
                raise PathError(
                    f"hop {prev} does not connect to {nxt}: link leads to {far}"
                )

    def __str__(self) -> str:
        path = " -> ".join(str(hop) for hop in self.hops)
        return f"{self.segment_type.value}-segment[{path}]"
