"""SCION-style topology substrate (§2.2).

ASes are grouped into isolation domains (ISDs) with core and non-core
ASes.  Routing discovers up-, down-, and core-segments; source hosts
combine at most one of each into an end-to-end path.  Inter-domain links
are identified by per-AS interface IDs.
"""

from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.beaconing import Beaconing
from repro.topology.generator import (
    add_multihoming,
    build_caida_like,
    build_core_mesh,
    build_internet_like,
    build_line_topology,
    build_power_law,
    build_two_isd_topology,
)
from repro.topology.graph import ASNode, Interface, Link, Topology
from repro.topology.paths import EndToEndPath, PathLookup, combine_segments
from repro.topology.segments import HopField, Segment, SegmentType
from repro.topology.selection import (
    disjointness,
    max_capacity_first,
    most_disjoint,
    path_capacity,
    shortest_first,
)
from repro.topology.serialization import (
    dump_topology,
    dumps_topology,
    load_topology,
    loads_topology,
)

__all__ = [
    "IsdAs",
    "HostAddr",
    "Topology",
    "ASNode",
    "Interface",
    "Link",
    "SegmentType",
    "HopField",
    "Segment",
    "Beaconing",
    "EndToEndPath",
    "PathLookup",
    "combine_segments",
    "build_line_topology",
    "build_two_isd_topology",
    "build_core_mesh",
    "build_internet_like",
    "build_power_law",
    "build_caida_like",
    "add_multihoming",
    "most_disjoint",
    "disjointness",
    "path_capacity",
    "shortest_first",
    "max_capacity_first",
    "dump_topology",
    "dumps_topology",
    "load_topology",
    "loads_topology",
]
