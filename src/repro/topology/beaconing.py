"""Segment discovery ("beaconing", §2.2).

SCION's routing is a beaconing process: core ASes flood path-construction
beacons (i) down the intra-ISD provider hierarchy, discovering
down-segments (and, reversed, up-segments), and (ii) across core links,
discovering core-segments.  This module reproduces the *outcome* of that
process deterministically from the topology graph: the set of segments a
deployed SCION control plane would register.

Path stability (§2.1) falls out of the model: segments are pure functions
of the topology, so reservations built on them never shift underneath the
reservation holder the way BGP re-convergence would move an IP path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from repro.errors import NoSegmentError
from repro.topology.addresses import IsdAs
from repro.topology.graph import NO_INTERFACE, LinkType, Topology
from repro.topology.segments import HopField, Segment, SegmentType

#: Bound on core-segment length during discovery; real deployments bound
#: beacon propagation similarly to tame path explosion.
DEFAULT_MAX_CORE_HOPS = 6

#: How many distinct segments to retain per (first AS, last AS) pair.
#: Keeping several preserves the path choice Colibri exploits when the
#: first path has no reservation space (§2.1).
DEFAULT_SEGMENTS_PER_PAIR = 5


class Beaconing:
    """Discovers and serves up-, down-, and core-segments for a topology."""

    def __init__(
        self,
        topology: Topology,
        max_core_hops: int = DEFAULT_MAX_CORE_HOPS,
        segments_per_pair: int = DEFAULT_SEGMENTS_PER_PAIR,
    ):
        self.topology = topology
        self.max_core_hops = max_core_hops
        self.segments_per_pair = segments_per_pair
        # down: core AS -> leaf AS -> [Segment]; up is derived by reversal.
        self._down: dict = defaultdict(list)
        self._core: dict = defaultdict(list)
        self.discover()

    # -- discovery ----------------------------------------------------------

    def discover(self) -> None:
        """(Re-)run beaconing over the current topology."""
        self._down.clear()
        self._core.clear()
        for core in self.topology.core_ases():
            self._beacon_down(core.isd_as)
        self._beacon_core()

    def _beacon_down(self, core_as: IsdAs) -> None:
        """Propagate an intra-ISD beacon from ``core_as`` to every leaf.

        Depth-first over parent-child links; each path from the core AS to
        any AS below it becomes one down-segment.
        """

        def walk(current: IsdAs, hops: list, visited: set) -> None:
            node = self.topology.node(current)
            for ifid, link in sorted(node.interfaces.items()):
                if link.link_type is not LinkType.PARENT_CHILD:
                    continue
                if link.a.owner != current:  # only follow provider -> customer
                    continue
                child_iface = link.b
                child = child_iface.owner
                if child in visited:
                    continue
                # Extend the path: current egresses via ifid, child ingresses
                # via the child's interface; the child is (for now) the last
                # hop, so its egress is 0.
                extended = hops[:-1] + [
                    HopField(
                        isd_as=hops[-1].isd_as,
                        ingress=hops[-1].ingress,
                        egress=ifid,
                    ),
                    HopField(isd_as=child, ingress=child_iface.ifid, egress=NO_INTERFACE),
                ]
                segment = Segment.from_hops(SegmentType.DOWN, extended)
                bucket = self._down[(core_as, child)]
                if len(bucket) < self.segments_per_pair:
                    bucket.append(segment)
                walk(child, extended, visited | {child})

        root = [HopField(isd_as=core_as, ingress=NO_INTERFACE, egress=NO_INTERFACE)]
        walk(core_as, root, {core_as})

    def _beacon_core(self) -> None:
        """Discover core-segments between every pair of core ASes.

        Bounded depth-first search over core links, keeping up to
        ``segments_per_pair`` simple paths per ordered pair, shortest
        first (the DFS enumerates by increasing depth via iterative
        deepening to keep the retained set shortest-biased).
        """
        cores = [node.isd_as for node in self.topology.core_ases()]
        for origin in cores:
            found: dict = defaultdict(list)
            for depth in range(1, self.max_core_hops + 1):
                self._core_dfs(
                    origin,
                    [HopField(isd_as=origin, ingress=NO_INTERFACE, egress=NO_INTERFACE)],
                    {origin},
                    depth,
                    found,
                )
            for (first, last), segments in found.items():
                self._core[(first, last)] = segments[: self.segments_per_pair]

    def _core_dfs(
        self, current: IsdAs, hops: list, visited: set, budget: int, found: dict
    ) -> None:
        if budget == 0:
            return
        node = self.topology.node(current)
        for ifid, link in sorted(node.interfaces.items()):
            if link.link_type is not LinkType.CORE:
                continue
            far = link.other_end(current)
            neighbor = far.owner
            if neighbor in visited:
                continue
            extended = hops[:-1] + [
                HopField(isd_as=hops[-1].isd_as, ingress=hops[-1].ingress, egress=ifid),
                HopField(isd_as=neighbor, ingress=far.ifid, egress=NO_INTERFACE),
            ]
            key = (hops[0].isd_as, neighbor)
            bucket = found[key]
            segment = Segment.from_hops(SegmentType.CORE, extended)
            if segment not in bucket and len(bucket) < self.segments_per_pair:
                bucket.append(segment)
            self._core_dfs(neighbor, extended, visited | {neighbor}, budget - 1, found)

    # -- queries -------------------------------------------------------------

    def down_segments(self, core_as: IsdAs, leaf: IsdAs) -> list:
        """Down-segments from ``core_as`` to ``leaf`` (same ISD)."""
        return list(self._down.get((core_as, leaf), []))

    def up_segments(self, leaf: IsdAs, core_as: Optional[IsdAs] = None) -> list:
        """Up-segments from ``leaf`` towards ``core_as`` (or any core AS)."""
        result = []
        for (core, down_leaf), segments in self._down.items():
            if down_leaf != leaf:
                continue
            if core_as is not None and core != core_as:
                continue
            result.extend(segment.reversed() for segment in segments)
        return result

    def core_segments(self, first: IsdAs, last: IsdAs) -> list:
        """Core-segments from core AS ``first`` to core AS ``last``."""
        return list(self._core.get((first, last), []))

    def all_down_destinations(self, core_as: IsdAs) -> list:
        """Leaf ASes reachable from ``core_as`` by a down-segment."""
        return sorted(
            leaf for (core, leaf) in self._down if core == core_as
        )

    def reachable_cores(self, leaf: IsdAs) -> list:
        """Core ASes the leaf has an up-segment to (its own AS if core)."""
        node = self.topology.node(leaf)
        if node.is_core:
            return [leaf]
        cores = {core for (core, down_leaf) in self._down if down_leaf == leaf}
        if not cores:
            raise NoSegmentError(f"AS {leaf} has no up-segment to any core AS")
        return sorted(cores)

    def segment_count(self) -> dict:
        """Discovery statistics, handy for topology-generator tests."""
        return {
            "down_pairs": len(self._down),
            "down_segments": sum(len(v) for v in self._down.values()),
            "core_pairs": len(self._core),
            "core_segments": sum(len(v) for v in self._core.values()),
        }
