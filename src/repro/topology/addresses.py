"""ISD-AS and host addressing (§2.2).

SCION addresses an AS by the pair ``(ISD, AS number)``, written
``'1-ff00:0:110'`` in the canonical text form.  Host addresses are only
unique inside their AS (§4.3), so a full host identity is the pair
``(IsdAs, HostAddr)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import cached_property, total_ordering

_AS_TEXT_RE = re.compile(r"^([0-9a-fA-F]{1,4}):([0-9a-fA-F]{1,4}):([0-9a-fA-F]{1,4})$")

ISD_BITS = 16
AS_BITS = 48


@total_ordering
@dataclass(frozen=True)
class IsdAs:
    """An ISD-AS address: 16-bit ISD number + 48-bit AS number."""

    isd: int
    asn: int

    def __post_init__(self):
        if not 0 <= self.isd < (1 << ISD_BITS):
            raise ValueError(f"ISD {self.isd} out of range [0, 2^{ISD_BITS})")
        if not 0 <= self.asn < (1 << AS_BITS):
            raise ValueError(f"AS number {self.asn} out of range [0, 2^{AS_BITS})")

    @classmethod
    def parse(cls, text: str) -> "IsdAs":
        """Parse the canonical text form, e.g. ``'1-ff00:0:110'`` or ``'1-42'``.

        >>> IsdAs.parse("1-ff00:0:110")
        IsdAs.parse('1-ff00:0:110')
        """
        isd_text, _, as_text = text.partition("-")
        if not isd_text or not as_text:
            raise ValueError(f"malformed ISD-AS address {text!r}")
        isd = int(isd_text)
        match = _AS_TEXT_RE.match(as_text)
        if match:
            high, mid, low = (int(group, 16) for group in match.groups())
            asn = (high << 32) | (mid << 16) | low
        else:
            asn = int(as_text)
        return cls(isd=isd, asn=asn)

    @cached_property
    def packed(self) -> bytes:
        """8-byte wire encoding: 2 bytes ISD, 6 bytes AS number."""
        return self.isd.to_bytes(2, "big") + self.asn.to_bytes(6, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "IsdAs":
        if len(data) != 8:
            raise ValueError(f"ISD-AS wire form must be 8 bytes, got {len(data)}")
        return cls(isd=int.from_bytes(data[:2], "big"), asn=int.from_bytes(data[2:], "big"))

    def __str__(self) -> str:
        if self.asn < (1 << 16):
            return f"{self.isd}-{self.asn}"
        high = (self.asn >> 32) & 0xFFFF
        mid = (self.asn >> 16) & 0xFFFF
        low = self.asn & 0xFFFF
        return f"{self.isd}-{high:x}:{mid:x}:{low:x}"

    def __repr__(self) -> str:
        return f"IsdAs.parse({str(self)!r})"

    def __lt__(self, other: "IsdAs") -> bool:
        if not isinstance(other, IsdAs):
            return NotImplemented
        return (self.isd, self.asn) < (other.isd, other.asn)


@dataclass(frozen=True)
class HostAddr:
    """A host address, unique inside its AS (§4.3).

    Kept deliberately opaque (an integer), as Colibri never interprets
    host addresses beyond equality and wire encoding.
    """

    value: int

    def __post_init__(self):
        if not 0 <= self.value < (1 << 32):
            raise ValueError(f"host address {self.value} out of range [0, 2^32)")

    @property
    def packed(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "HostAddr":
        if len(data) != 4:
            raise ValueError(f"host address wire form must be 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __str__(self) -> str:
        return f"H{self.value}"
