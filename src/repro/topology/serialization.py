"""Topology serialization: share one AS-graph definition across tools.

Real deployments describe their topology in files (SCION's
``topology.json`` is the model here); this module round-trips the
:class:`~repro.topology.graph.Topology` through a JSON-compatible dict
so experiments, operator tooling and tests can pin exact graphs,
interface numbering included.
"""

from __future__ import annotations

import json

from repro.errors import ColibriError
from repro.topology.addresses import IsdAs
from repro.topology.graph import LinkType, Topology

FORMAT_VERSION = 1


def dump_topology(topology: Topology) -> dict:
    """Serialize a topology to a JSON-compatible dict."""
    return {
        "format": FORMAT_VERSION,
        "ases": [
            {"isd_as": str(node.isd_as), "core": node.is_core}
            for node in topology.ases()
        ],
        "links": [
            {
                "a": str(link.a.owner),
                "a_ifid": link.a.ifid,
                "b": str(link.b.owner),
                "b_ifid": link.b.ifid,
                "type": link.link_type.value,
                "capacity": link.capacity,
            }
            for link in topology.links()
        ],
    }


def dumps_topology(topology: Topology) -> str:
    return json.dumps(dump_topology(topology), sort_keys=True)


def load_topology(data: dict) -> Topology:
    """Reconstruct a topology from :func:`dump_topology` output.

    Interface IDs are restored exactly, so paths and segments computed
    against the original graph remain valid against the copy.
    """
    if data.get("format") != FORMAT_VERSION:
        raise ColibriError(
            f"unsupported topology format {data.get('format')!r}"
        )
    topology = Topology()
    for entry in data["ases"]:
        topology.add_as(IsdAs.parse(entry["isd_as"]), is_core=entry["core"])
    for entry in data["links"]:
        topology.add_link(
            IsdAs.parse(entry["a"]),
            IsdAs.parse(entry["b"]),
            LinkType(entry["type"]),
            capacity=entry["capacity"],
            ifid_a=entry["a_ifid"],
            ifid_b=entry["b_ifid"],
        )
    return topology


def loads_topology(text: str) -> Topology:
    return load_topology(json.loads(text))
