"""DiffServ-style baseline (§1, §8).

"DiffServ […] provides hosts with a way to divide their traffic into a
number of classes according to the application's requirements, indicated
in the IP packet's ToS header field.  […] Unfortunately, the guarantees
provided by DiffServ are weak, as they lack signaling between the
entities on the path" — and, crucially, nothing authenticates the
marking: any sender can claim the highest class.

:class:`DiffServRouter` honours DSCP markings with weighted queues and
no admission control.  Tests and the baseline bench show the predictable
failure: an adversary marking its flood as EF takes the premium class
down with it, which Colibri's authenticated, admission-controlled
reservations prevent.
"""

from __future__ import annotations

import enum
from collections import defaultdict, deque


class DscpClass(enum.IntEnum):
    """A minimal DSCP ladder: expedited > assured > best effort."""

    EF = 0  # expedited forwarding
    AF = 1  # assured forwarding
    BE = 2  # best effort


class DiffServRouter:
    """Strict-priority DSCP queues; markings are taken at face value."""

    def __init__(self, capacity: float, queue_bytes: int = 8 * 1024 * 1024):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.queue_bytes = queue_bytes
        self._queues = {cls: deque() for cls in DscpClass}
        self._queued = {cls: 0 for cls in DscpClass}
        self.sent_bytes: dict = defaultdict(int)  # (class, flow) -> bytes
        self.dropped: dict = defaultdict(int)

    def enqueue(self, flow: str, size_bytes: int, marking: DscpClass) -> bool:
        """No authentication, no admission: the marking is whatever the
        sender wrote in the header."""
        if self._queued[marking] + size_bytes > self.queue_bytes:
            self.dropped[(marking, flow)] += 1
            return False
        self._queues[marking].append((flow, size_bytes))
        self._queued[marking] += size_bytes
        return True

    def drain(self, duration: float) -> dict:
        """Serve one slice strictly by class priority; FIFO within class."""
        budget_bits = self.capacity * duration
        sent: dict = defaultdict(int)
        for marking in DscpClass:
            queue = self._queues[marking]
            while queue and queue[0][1] * 8 <= budget_bits:
                flow, size = queue.popleft()
                self._queued[marking] -= size
                budget_bits -= size * 8
                sent[(marking, flow)] += size
                self.sent_bytes[(marking, flow)] += size
        return dict(sent)

    def flow_rate(self, marking: DscpClass, flow: str, elapsed: float) -> float:
        """Average delivered bits per second for one (class, flow)."""
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed}")
        return self.sent_bytes[(marking, flow)] * 8 / elapsed
