"""Baseline architectures Colibri is compared against (§1, §8).

* :mod:`repro.baselines.intserv` — an RSVP-style per-flow-state system:
  strong guarantees, per-flow state on every router (the scalability
  failure Colibri's stateless data plane removes);
* :mod:`repro.baselines.diffserv` — a ToS-marking priority system: no
  admission, no authentication, hence no guarantees under adversarial
  marking (the security failure Colibri's cryptography removes).
"""

from repro.baselines.diffserv import DiffServRouter, DscpClass
from repro.baselines.intserv import IntServNetwork, IntServRouter, RsvpSession

__all__ = [
    "IntServNetwork",
    "IntServRouter",
    "RsvpSession",
    "DiffServRouter",
    "DscpClass",
]
