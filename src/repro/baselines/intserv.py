"""IntServ/RSVP-style baseline (§1, §8).

"IntServ provides very strict guarantees on the communication parameters
through end-to-end reservations, but is known to scale poorly in all
three areas because of the complex decisions that must be made for
processing the RSVP requests and the amount of per-flow state that
on-path routers have to keep."

This baseline reproduces that architecture faithfully enough to measure
the two scalability failures Colibri fixes:

* **per-flow state**: every router on a flow's path stores an entry for
  it, consulted on every packet — :meth:`IntServRouter.state_size` grows
  linearly with flows (the Colibri border router stores nothing);
* **soft state refresh**: RSVP state expires unless refreshed, so the
  control plane does O(flows) work *per refresh period* at every router.

It also exposes IntServ's security failure: PATH/RESV messages are
unauthenticated, so any host can tear down or inflate another's
reservation (:meth:`RsvpSession.teardown` accepts forged requests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import AdmissionDenied
from repro.topology.addresses import IsdAs

#: RSVP soft-state lifetime without refresh (RFC 2205 default order).
RSVP_STATE_LIFETIME = 30.0


@dataclass
class RsvpSession:
    """One reserved flow: the classic 5-tuple-ish key plus a rate."""

    session_id: int
    source: IsdAs
    destination: IsdAs
    rate: float  # bits per second
    path: tuple  # IsdAs sequence
    refreshed_at: float = 0.0

    def is_expired(self, now: float) -> bool:
        return now - self.refreshed_at > RSVP_STATE_LIFETIME


class IntServRouter:
    """A router keeping per-flow RSVP state — the anti-pattern."""

    def __init__(self, isd_as: IsdAs, capacity: float):
        self.isd_as = isd_as
        self.capacity = capacity
        self._flows: dict[int, RsvpSession] = {}
        self._reserved = 0.0
        self.packets_forwarded = 0
        self.packets_dropped = 0
        self.refresh_work = 0  # control-plane operations performed

    def admit(self, session: RsvpSession) -> None:
        if self._reserved + session.rate > self.capacity:
            raise AdmissionDenied(
                f"link at {self.isd_as} full: {self._reserved:.0f} + "
                f"{session.rate:.0f} > {self.capacity:.0f}",
                granted=max(0.0, self.capacity - self._reserved),
                at_as=self.isd_as,
            )
        self._flows[session.session_id] = session
        self._reserved += session.rate

    def remove(self, session_id: int) -> None:
        session = self._flows.pop(session_id, None)
        if session is not None:
            self._reserved -= session.rate

    def forward(self, session_id: int) -> bool:
        """Per-packet processing: the per-flow state lookup IS the cost."""
        session = self._flows.get(session_id)
        if session is None:
            self.packets_dropped += 1
            return False
        self.packets_forwarded += 1
        return True

    def refresh_sweep(self, now: float) -> int:
        """Soft-state maintenance: touch every flow, expire the stale.

        O(state_size) work per period at *every* router — the control-
        plane scalability failure."""
        expired = []
        for session in self._flows.values():
            self.refresh_work += 1
            if session.is_expired(now):
                expired.append(session.session_id)
        for session_id in expired:
            self.remove(session_id)
        return len(expired)

    @property
    def state_size(self) -> int:
        return len(self._flows)

    @property
    def reserved(self) -> float:
        return self._reserved


class IntServNetwork:
    """A path of IntServ routers with RSVP-like signaling."""

    def __init__(self, path: list, capacity: float):
        self.routers = {isd_as: IntServRouter(isd_as, capacity) for isd_as in path}
        self.path = tuple(path)
        self._ids = itertools.count(1)
        self.signaling_messages = 0

    def reserve(
        self, source: IsdAs, destination: IsdAs, rate: float, now: float = 0.0
    ) -> RsvpSession:
        """PATH downstream + RESV upstream: 2 messages per hop, state at
        every hop (admission rolls back on failure, like RSVP)."""
        session = RsvpSession(
            session_id=next(self._ids),
            source=source,
            destination=destination,
            rate=rate,
            path=self.path,
            refreshed_at=now,
        )
        admitted = []
        self.signaling_messages += len(self.path)  # PATH messages
        try:
            for isd_as in self.path:
                self.routers[isd_as].admit(session)
                admitted.append(isd_as)
                self.signaling_messages += 1  # RESV message
        except AdmissionDenied:
            for isd_as in admitted:
                self.routers[isd_as].remove(session.session_id)
            raise
        return session

    def refresh(self, session: RsvpSession, now: float) -> None:
        session.refreshed_at = now
        self.signaling_messages += 2 * len(self.path)

    def teardown(self, session_id: int, claimed_source: Optional[IsdAs] = None) -> None:
        """RSVP teardown — unauthenticated: any party naming the session
        can kill it.  ``claimed_source`` is deliberately not verified,
        reproducing the spoofing weakness (§1: 'an adversary can spoof
        protocol messages')."""
        for router in self.routers.values():
            router.remove(session_id)
        self.signaling_messages += len(self.path)

    def forward_packet(self, session: RsvpSession) -> bool:
        return all(
            self.routers[isd_as].forward(session.session_id) for isd_as in self.path
        )

    def total_state(self) -> int:
        return sum(router.state_size for router in self.routers.values())
