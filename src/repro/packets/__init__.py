"""Colibri packet formats: header fields, wire encoding, control payloads."""

from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp

__all__ = [
    "ColibriPacket",
    "PacketType",
    "PathField",
    "ResInfo",
    "EerInfo",
    "Timestamp",
]
