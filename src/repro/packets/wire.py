"""Low-level wire encoding helpers shared by packet and message formats.

A tiny big-endian encoder/decoder pair.  :class:`Writer` accumulates
fields; :class:`Reader` consumes them and raises
:class:`~repro.errors.PacketDecodeError` on truncation, so every message
parser gets bounds checking for free.
"""

from __future__ import annotations

import struct

from repro.errors import PacketDecodeError

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_F64 = struct.Struct("!d")


class PacketArena:
    """Preallocated slab of fixed-size packet slots, reused per burst.

    The zero-copy counterpart of building a fresh ``bytes`` per packet:
    the gateway writes each outgoing packet of a burst into the next
    slot in place (header template copy + Ts patch + HVF stamp), and
    the router validates straight out of the slab.  ``reset()`` between
    bursts recycles every slot without touching the memory — like a
    DPDK mempool, a slot's old bytes are garbage until overwritten, so
    consumers must honor the recorded packet length (the aliasing
    property test pins this down).

    The backing ``bytearray`` is allocated once and never resized,
    which keeps its base address stable — the native stamper caches a
    C pointer into it across calls.
    """

    __slots__ = ("buffer", "slot_size", "slots", "_cursor")

    def __init__(self, slots: int = 64, slot_size: int = 2048):
        if slots <= 0 or slot_size <= 0:
            raise ValueError(
                f"arena needs positive dimensions, got {slots} x {slot_size}"
            )
        self.buffer = bytearray(slots * slot_size)
        self.slot_size = slot_size
        self.slots = slots
        self._cursor = 0

    def reset(self) -> None:
        """Recycle every slot for the next burst (no memory traffic)."""
        self._cursor = 0

    @property
    def in_use(self) -> int:
        return self._cursor

    def take(self, length: int) -> int:
        """Claim the next slot for a ``length``-byte packet; returns its
        byte offset into :attr:`buffer`.

        Callers size the arena for their burst (slot count) and MTU
        (slot size); exceeding either is a programming error, not a
        runtime condition, hence ``ValueError``.
        """
        if length > self.slot_size:
            raise ValueError(
                f"packet of {length} B exceeds arena slot size {self.slot_size}"
            )
        cursor = self._cursor
        if cursor >= self.slots:
            raise ValueError(f"arena exhausted: all {self.slots} slots in use")
        self._cursor = cursor + 1
        return cursor * self.slot_size


class Writer:
    """Accumulates big-endian fields into a byte string."""

    def __init__(self):
        self._parts = []

    def u8(self, value: int) -> "Writer":
        self._parts.append(_U8.pack(value))
        return self

    def u16(self, value: int) -> "Writer":
        self._parts.append(_U16.pack(value))
        return self

    def u32(self, value: int) -> "Writer":
        self._parts.append(_U32.pack(value))
        return self

    def u64(self, value: int) -> "Writer":
        self._parts.append(_U64.pack(value))
        return self

    def f64(self, value: float) -> "Writer":
        self._parts.append(_F64.pack(value))
        return self

    def raw(self, data: bytes) -> "Writer":
        """Fixed-size bytes; the reader must know the length."""
        self._parts.append(data)
        return self

    def blob(self, data: bytes) -> "Writer":
        """Variable-size bytes with a 32-bit length prefix."""
        self._parts.append(_U32.pack(len(data)))
        self._parts.append(data)
        return self

    def finish(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Consumes fields written by :class:`Writer`, with truncation checks."""

    def __init__(self, data: bytes):
        self._data = data
        self._offset = 0

    def _take(self, size: int) -> bytes:
        end = self._offset + size
        if end > len(self._data):
            raise PacketDecodeError(
                f"message truncated: wanted {size} bytes at offset {self._offset}, "
                f"have {len(self._data) - self._offset}"
            )
        chunk = self._data[self._offset : end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def raw(self, size: int) -> bytes:
        return self._take(size)

    def blob(self) -> bytes:
        size = self.u32()
        return self._take(size)

    @property
    def remaining(self) -> int:
        return len(self._data) - self._offset

    def expect_end(self) -> None:
        if self.remaining:
            raise PacketDecodeError(f"{self.remaining} trailing bytes after message")
