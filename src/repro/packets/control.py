"""Control-plane message payloads (§4.4).

Setup and renewal requests/responses for SegRs and EERs.  These travel as
the ``Payload`` of Colibri packets (setup requests for SegRs go as
best-effort traffic; everything else rides an existing reservation).

All messages share a tagged wire format — a type byte followed by the
body — so :func:`decode_message` can parse any payload.  The bytes
returned by :meth:`ControlMessage.to_bytes` are exactly what the DRKey
MACs of §4.5 authenticate.

Grant accumulation: as a setup request travels, each on-path AS appends
an :class:`AsGrant` recording the bandwidth it can offer.  On the way
back, the response carries the final (minimum) grant plus one opaque
token/HopAuth per AS.  A failed setup still returns the grant vector so
the initiator "can determine the location of potential bottlenecks on
the segment" (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import PacketDecodeError
from repro.packets.fields import EerInfo, ResInfo
from repro.packets.wire import Reader, Writer
from repro.reservation.ids import ReservationId
from repro.topology.addresses import IsdAs
from repro.topology.segments import HopField

_MESSAGE_TYPES = {}


def _register(type_tag: int):
    def decorate(cls):
        cls.TYPE_TAG = type_tag
        _MESSAGE_TYPES[type_tag] = cls
        return cls

    return decorate


class ControlMessage:
    """Base class: tagged serialization plus the MAC input bytes."""

    TYPE_TAG = None

    def to_bytes(self) -> bytes:
        writer = Writer().u8(self.TYPE_TAG)
        self._write_body(writer)
        return writer.finish()

    def _write_body(self, writer: Writer) -> None:
        raise NotImplementedError

    @property
    def authenticated_bytes(self) -> bytes:
        """Bytes covered by the control-plane DRKey MAC (§4.5)."""
        return self.to_bytes()


def decode_message(data: bytes) -> ControlMessage:
    """Parse any control message from its tagged wire form."""
    reader = Reader(data)
    tag = reader.u8()
    cls = _MESSAGE_TYPES.get(tag)
    if cls is None:
        raise PacketDecodeError(f"unknown control message type {tag}")
    message = cls._read_body(reader)
    reader.expect_end()
    return message


# -- shared sub-structures ----------------------------------------------------


def _write_hops(writer: Writer, hops: tuple) -> None:
    writer.u8(len(hops))
    for hop in hops:
        writer.raw(hop.isd_as.packed).u16(hop.ingress).u16(hop.egress)


def _read_hops(reader: Reader) -> tuple:
    count = reader.u8()
    return tuple(
        HopField(
            isd_as=IsdAs.unpack(reader.raw(8)),
            ingress=reader.u16(),
            egress=reader.u16(),
        )
        for _ in range(count)
    )


@dataclass(frozen=True)
class AsGrant:
    """One AS's bandwidth offer, accumulated along a setup request."""

    isd_as: IsdAs
    granted: float  # bits per second

    def write(self, writer: Writer) -> None:
        writer.raw(self.isd_as.packed).f64(self.granted)

    @classmethod
    def read(cls, reader: Reader) -> "AsGrant":
        return cls(isd_as=IsdAs.unpack(reader.raw(8)), granted=reader.f64())


def _write_grants(writer: Writer, grants: tuple) -> None:
    writer.u8(len(grants))
    for grant in grants:
        grant.write(writer)


def _read_grants(reader: Reader) -> tuple:
    return tuple(AsGrant.read(reader) for _ in range(reader.u8()))


def _write_blobs(writer: Writer, blobs: tuple) -> None:
    writer.u8(len(blobs))
    for blob in blobs:
        writer.blob(blob)


def _read_blobs(reader: Reader) -> tuple:
    return tuple(reader.blob() for _ in range(reader.u8()))


# -- segment reservations ------------------------------------------------------


#: Wire values for segment types in SegReq messages.
SEGMENT_TYPE_CODES = {"up": 0, "down": 1, "core": 2}
SEGMENT_TYPE_NAMES = {code: name for name, code in SEGMENT_TYPE_CODES.items()}


@_register(1)
@dataclass(frozen=True)
class SegSetupRequest(ControlMessage):
    """Segment-reservation setup request (SegReq, §3.3).

    Travels as best-effort traffic along ``hops``; ``res_info.bandwidth``
    is the *requested* amount, ``min_bandwidth`` the floor below which the
    setup fails.  ``grants`` accumulates one entry per traversed AS.
    ``segment_type`` (one of :data:`SEGMENT_TYPE_CODES`) tells on-path
    ASes which kind of SegR they are granting — transfer-AS EER admission
    later depends on the up/core distinction (§4.7).
    """

    res_info: ResInfo
    hops: tuple
    min_bandwidth: float
    segment_type: int = 0
    grants: tuple = ()

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.res_info.packed)
        _write_hops(writer, self.hops)
        writer.f64(self.min_bandwidth)
        writer.u8(self.segment_type)
        _write_grants(writer, self.grants)

    @classmethod
    def _read_body(cls, reader: Reader) -> "SegSetupRequest":
        return cls(
            res_info=ResInfo.unpack(reader.raw(ResInfo.SIZE)),
            hops=_read_hops(reader),
            min_bandwidth=reader.f64(),
            segment_type=reader.u8(),
            grants=_read_grants(reader),
        )

    def with_grant(self, grant: AsGrant) -> "SegSetupRequest":
        return SegSetupRequest(
            res_info=self.res_info,
            hops=self.hops,
            min_bandwidth=self.min_bandwidth,
            segment_type=self.segment_type,
            grants=self.grants + (grant,),
        )


@_register(2)
@dataclass(frozen=True)
class SegSetupResponse(ControlMessage):
    """Reply to a SegReq, sent back along the segment (§3.3).

    On success, ``granted`` is the final agreed bandwidth and ``tokens``
    holds one Eq. (3) token per on-path AS (in path order).  On failure,
    ``grants`` exposes each AS's offer for bottleneck diagnosis.
    """

    res_info: ResInfo
    success: bool
    granted: float
    tokens: tuple = ()
    grants: tuple = ()

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.res_info.packed).u8(1 if self.success else 0).f64(self.granted)
        _write_blobs(writer, self.tokens)
        _write_grants(writer, self.grants)

    @classmethod
    def _read_body(cls, reader: Reader) -> "SegSetupResponse":
        return cls(
            res_info=ResInfo.unpack(reader.raw(ResInfo.SIZE)),
            success=bool(reader.u8()),
            granted=reader.f64(),
            tokens=_read_blobs(reader),
            grants=_read_grants(reader),
        )


@_register(3)
@dataclass(frozen=True)
class SegRenewalRequest(ControlMessage):
    """Renewal of an existing SegR, sent over the SegR itself (§4.4).

    The packet already carries Path/SrcAS/ResId, so the payload only
    names the new bandwidth, minimum, expiry, and version.
    """

    reservation: ReservationId
    new_bandwidth: float
    min_bandwidth: float
    new_expiry: float
    new_version: int
    grants: tuple = ()

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.reservation.packed)
        writer.f64(self.new_bandwidth).f64(self.min_bandwidth)
        writer.f64(self.new_expiry).u16(self.new_version)
        _write_grants(writer, self.grants)

    @classmethod
    def _read_body(cls, reader: Reader) -> "SegRenewalRequest":
        return cls(
            reservation=ReservationId.unpack(reader.raw(12)),
            new_bandwidth=reader.f64(),
            min_bandwidth=reader.f64(),
            new_expiry=reader.f64(),
            new_version=reader.u16(),
            grants=_read_grants(reader),
        )

    def with_grant(self, grant: AsGrant) -> "SegRenewalRequest":
        return SegRenewalRequest(
            reservation=self.reservation,
            new_bandwidth=self.new_bandwidth,
            min_bandwidth=self.min_bandwidth,
            new_expiry=self.new_expiry,
            new_version=self.new_version,
            grants=self.grants + (grant,),
        )


@_register(4)
@dataclass(frozen=True)
class SegActivationRequest(ControlMessage):
    """Explicit switch of a SegR to a pending version (§4.2).

    Only one SegR version may be active at a time; activation is a
    separate request so every on-path AS switches at a controlled instant
    and EER admission never sees two versions at once.
    """

    reservation: ReservationId
    version: int

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.reservation.packed).u16(self.version)

    @classmethod
    def _read_body(cls, reader: Reader) -> "SegActivationRequest":
        return cls(
            reservation=ReservationId.unpack(reader.raw(12)), version=reader.u16()
        )


@_register(5)
@dataclass(frozen=True)
class SegTeardownNotice(ControlMessage):
    """Advisory removal of a SegR before expiry (extension beyond the
    paper, which lets SegRs expire naturally; an explicit teardown frees
    bandwidth faster when an AS retires a segment)."""

    reservation: ReservationId

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.reservation.packed)

    @classmethod
    def _read_body(cls, reader: Reader) -> "SegTeardownNotice":
        return cls(reservation=ReservationId.unpack(reader.raw(12)))


# -- end-to-end reservations ----------------------------------------------------


@_register(6)
@dataclass(frozen=True)
class EerSetupRequest(ControlMessage):
    """End-to-end-reservation setup request (EEReq, §3.3, §4.4).

    Carries the EER path, the EER ResInfo, the EERInfo, "plus the ResIds
    of all segments" it rides on (one to three SegRs).  Transfer ASes use
    ``segment_ids`` to copy the payload onto the next SegR's packet.
    """

    res_info: ResInfo
    eer_info: EerInfo
    hops: tuple
    segment_ids: tuple
    grants: tuple = ()

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.res_info.packed).raw(self.eer_info.packed)
        _write_hops(writer, self.hops)
        writer.u8(len(self.segment_ids))
        for seg_id in self.segment_ids:
            writer.raw(seg_id.packed)
        _write_grants(writer, self.grants)

    @classmethod
    def _read_body(cls, reader: Reader) -> "EerSetupRequest":
        res_info = ResInfo.unpack(reader.raw(ResInfo.SIZE))
        eer_info = EerInfo.unpack(reader.raw(EerInfo.SIZE))
        hops = _read_hops(reader)
        segment_ids = tuple(
            ReservationId.unpack(reader.raw(12)) for _ in range(reader.u8())
        )
        return cls(
            res_info=res_info,
            eer_info=eer_info,
            hops=hops,
            segment_ids=segment_ids,
            grants=_read_grants(reader),
        )

    def with_grant(self, grant: AsGrant) -> "EerSetupRequest":
        return EerSetupRequest(
            res_info=self.res_info,
            eer_info=self.eer_info,
            hops=self.hops,
            segment_ids=self.segment_ids,
            grants=self.grants + (grant,),
        )


@_register(7)
@dataclass(frozen=True)
class EerSetupResponse(ControlMessage):
    """Reply to an EEReq (§3.3).

    On success, ``sealed_hopauths`` holds one AEAD-encrypted HopAuth per
    on-path AS (Eq. 5), decryptable only by the source AS's CServ; the
    grant vector is returned on failure for bottleneck diagnosis.
    """

    res_info: ResInfo
    success: bool
    granted: float
    sealed_hopauths: tuple = ()
    grants: tuple = ()

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.res_info.packed).u8(1 if self.success else 0).f64(self.granted)
        _write_blobs(writer, self.sealed_hopauths)
        _write_grants(writer, self.grants)

    @classmethod
    def _read_body(cls, reader: Reader) -> "EerSetupResponse":
        return cls(
            res_info=ResInfo.unpack(reader.raw(ResInfo.SIZE)),
            success=bool(reader.u8()),
            granted=reader.f64(),
            sealed_hopauths=_read_blobs(reader),
            grants=_read_grants(reader),
        )


@_register(8)
@dataclass(frozen=True)
class EerRenewalRequest(ControlMessage):
    """Renewal of an existing EER over the EER itself (§4.4).

    Only the new bandwidth, expiry and version are specified; multiple
    versions of an EER may coexist (§4.2) so no activation step exists.
    """

    reservation: ReservationId
    new_bandwidth: float
    new_expiry: float
    new_version: int
    grants: tuple = ()

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.reservation.packed)
        writer.f64(self.new_bandwidth).f64(self.new_expiry).u16(self.new_version)
        _write_grants(writer, self.grants)

    @classmethod
    def _read_body(cls, reader: Reader) -> "EerRenewalRequest":
        return cls(
            reservation=ReservationId.unpack(reader.raw(12)),
            new_bandwidth=reader.f64(),
            new_expiry=reader.f64(),
            new_version=reader.u16(),
            grants=_read_grants(reader),
        )

    def with_grant(self, grant: AsGrant) -> "EerRenewalRequest":
        return EerRenewalRequest(
            reservation=self.reservation,
            new_bandwidth=self.new_bandwidth,
            new_expiry=self.new_expiry,
            new_version=self.new_version,
            grants=self.grants + (grant,),
        )


# -- failure cleanup ------------------------------------------------------------


@_register(9)
@dataclass(frozen=True)
class EerAbortNotice(ControlMessage):
    """Initiator-issued cleanup of a failed EER setup or renewal (§3.3).

    "In case of an unsuccessful request, the ASes clean up their
    temporary reservations."  When a response is lost mid-path, some
    on-path ASes have already committed the allocation; once the
    initiator gives up retrying it aborts those hops explicitly.
    ``version <= 1`` removes the whole EER; a higher version drops only
    that renewal's state (older versions stay live, §4.2).
    """

    reservation: ReservationId
    version: int

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.reservation.packed).u16(self.version)

    @classmethod
    def _read_body(cls, reader: Reader) -> "EerAbortNotice":
        return cls(
            reservation=ReservationId.unpack(reader.raw(12)), version=reader.u16()
        )


@_register(10)
@dataclass(frozen=True)
class SegAbortNotice(ControlMessage):
    """Initiator-issued cleanup of a failed SegR setup or renewal (§3.3).

    Same semantics as :class:`EerAbortNotice`, for segment reservations:
    ``version <= 1`` removes the SegR entirely, a higher version drops
    only the pending renewal version.
    """

    reservation: ReservationId
    version: int

    def _write_body(self, writer: Writer) -> None:
        writer.raw(self.reservation.packed).u16(self.version)

    @classmethod
    def _read_body(cls, reader: Reader) -> "SegAbortNotice":
        return cls(
            reservation=ReservationId.unpack(reader.raw(12)), version=reader.u16()
        )
