"""Colibri header fields (Eq. 2a-2d, §4.3).

A Colibri packet traversing AS0..ASl carries::

    Packet  = (Path || ResInfo || EERInfo || Ts || V_0 || .. || V_l || Payload)
    Path    = ((In_0, Eg_0) || .. || (In_l, Eg_l))
    ResInfo = (SrcAS || ResId || Bw || ExpT || Ver)
    EERInfo = (SrcHost || DstHost)

Every field exposes a canonical ``packed`` byte form: those exact bytes
feed the MAC computations of §4.5, so serialization *is* the
authenticated message.  All multi-byte integers are big-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property

from repro.errors import PacketDecodeError, PacketFieldError
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs


@dataclass(frozen=True)
class PathField:
    """The packet-carried forwarding state: one (In, Eg) pair per AS (Eq. 2b)."""

    interface_pairs: tuple  # tuple[(int, int), ...]

    WIRE_PAIR = struct.Struct("!HH")

    def __post_init__(self):
        if not self.interface_pairs:
            raise PacketFieldError("path must contain at least one hop")
        for pair in self.interface_pairs:
            ingress, egress = pair
            if not (0 <= ingress < 1 << 16 and 0 <= egress < 1 << 16):
                raise PacketFieldError(f"interface pair {pair} out of 16-bit range")

    @classmethod
    def from_hops(cls, hops) -> "PathField":
        """Build from topology hop fields (anything with ingress/egress)."""
        return cls(tuple((hop.ingress, hop.egress) for hop in hops))

    def __len__(self) -> int:
        return len(self.interface_pairs)

    def pair(self, index: int) -> tuple:
        return self.interface_pairs[index]

    @property
    def packed(self) -> bytes:
        return b"".join(
            self.WIRE_PAIR.pack(ingress, egress)
            for ingress, egress in self.interface_pairs
        )

    def packed_pair(self, index: int) -> bytes:
        """Wire form of one (In_i, Eg_i) pair — MAC input for AS_i (Eq. 3/4)."""
        ingress, egress = self.interface_pairs[index]
        return self.WIRE_PAIR.pack(ingress, egress)

    @classmethod
    def unpack(cls, data: bytes, hop_count: int) -> "PathField":
        need = cls.WIRE_PAIR.size * hop_count
        if len(data) < need:
            raise PacketDecodeError(f"path field truncated: {len(data)} < {need} bytes")
        pairs = tuple(
            cls.WIRE_PAIR.unpack_from(data, index * cls.WIRE_PAIR.size)
            for index in range(hop_count)
        )
        return cls(pairs)


@dataclass(frozen=True)
class ResInfo:
    """Reservation metadata: (SrcAS, ResId, Bw, ExpT, Ver) (Eq. 2c)."""

    reservation: ReservationId
    bandwidth: float  # bits per second
    expiry: float  # absolute expiration time, seconds
    version: int

    WIRE = struct.Struct("!12sdd H")

    def __post_init__(self):
        if self.bandwidth < 0:
            raise PacketFieldError(f"bandwidth must be non-negative, got {self.bandwidth}")
        if not 0 <= self.version < 1 << 16:
            raise PacketFieldError(f"version {self.version} out of 16-bit range")

    @property
    def src_as(self) -> IsdAs:
        return self.reservation.src_as

    @cached_property
    def packed(self) -> bytes:
        # Cached: ResInfo is frozen and its wire form feeds every Eq. 3/4
        # MAC recompute, so each instance packs at most once.
        return self.WIRE.pack(
            self.reservation.packed, self.bandwidth, self.expiry, self.version
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ResInfo":
        if len(data) < cls.WIRE.size:
            raise PacketDecodeError(f"ResInfo truncated: {len(data)} < {cls.WIRE.size}")
        res_id_bytes, bandwidth, expiry, version = cls.WIRE.unpack(data[: cls.WIRE.size])
        return cls(
            reservation=ReservationId.unpack(res_id_bytes),
            bandwidth=bandwidth,
            expiry=expiry,
            version=version,
        )

    SIZE = WIRE.size


@dataclass(frozen=True)
class EerInfo:
    """End-host addresses, only present on EER data packets (Eq. 2d)."""

    src_host: HostAddr
    dst_host: HostAddr

    @property
    def packed(self) -> bytes:
        return self.src_host.packed + self.dst_host.packed

    @classmethod
    def unpack(cls, data: bytes) -> "EerInfo":
        if len(data) < 8:
            raise PacketDecodeError(f"EERInfo truncated: {len(data)} < 8 bytes")
        return cls(
            src_host=HostAddr.unpack(data[:4]), dst_host=HostAddr.unpack(data[4:8])
        )

    SIZE = 8


class Timestamp:
    """The high-precision packet timestamp Ts (§4.3).

    Ts is *relative to ExpT* and "uniquely identifies the packet for the
    particular source": the gateway encodes the packet creation instant as
    microseconds before the reservation's expiration, plus a sequence
    component for packets created in the same microsecond.  The pair
    (time, sequence) fits a single 8-byte field: 48 bits of microseconds
    (enough for 8.9 years) and 16 bits of sequence.
    """

    WIRE = struct.Struct("!Q")
    SIZE = WIRE.size
    _SEQ_BITS = 16
    _SEQ_MASK = (1 << _SEQ_BITS) - 1

    def __init__(self, micros_before_expiry: int, sequence: int = 0):
        if micros_before_expiry < 0:
            raise PacketFieldError(
                f"timestamp lies after the expiration time "
                f"({micros_before_expiry} µs before expiry)"
            )
        if micros_before_expiry >= 1 << 48:
            raise PacketFieldError("timestamp exceeds 48-bit microsecond range")
        if not 0 <= sequence <= self._SEQ_MASK:
            raise PacketFieldError(f"timestamp sequence {sequence} out of 16-bit range")
        self.micros_before_expiry = micros_before_expiry
        self.sequence = sequence

    @classmethod
    def create(cls, now: float, expiry: float, sequence: int = 0) -> "Timestamp":
        """Encode the current instant relative to the expiration time."""
        delta = expiry - now
        if delta < 0:
            raise PacketFieldError(f"packet created after expiry ({delta:.6f} s late)")
        return cls(int(delta * 1e6), sequence)

    def absolute(self, expiry: float) -> float:
        """Recover the absolute creation time given the expiry from ResInfo."""
        return expiry - self.micros_before_expiry / 1e6

    @cached_property
    def packed(self) -> bytes:
        # Cached: Ts never changes after creation, and every on-path
        # router packs it twice (Eq. 6 message + replay identifier).
        value = (self.micros_before_expiry << self._SEQ_BITS) | self.sequence
        return self.WIRE.pack(value)

    @classmethod
    def unpack(cls, data: bytes) -> "Timestamp":
        if len(data) < cls.SIZE:
            raise PacketDecodeError(f"timestamp truncated: {len(data)} < {cls.SIZE}")
        (value,) = cls.WIRE.unpack(data[: cls.SIZE])
        return cls(value >> cls._SEQ_BITS, value & cls._SEQ_MASK)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Timestamp)
            and self.micros_before_expiry == other.micros_before_expiry
            and self.sequence == other.sequence
        )

    def __hash__(self) -> int:
        return hash((self.micros_before_expiry, self.sequence))

    def __repr__(self) -> str:
        return f"Timestamp({self.micros_before_expiry}µs, seq={self.sequence})"
