"""The Colibri packet (Eq. 2a) with byte-level serialization.

One format serves all Colibri control- and data-plane traffic (§4.3):

* ``SEGMENT`` packets travel over a SegR — SegR renewals and EER setup
  requests — and carry the truncated SegR tokens of Eq. (3) as HVFs;
* ``EER_DATA`` packets travel over an EER and carry the per-packet HVFs
  of Eq. (6), plus the EERInfo host addresses.

The header layout (big-endian)::

    magic(2) version(1) flags(1) hop_count(1) hop_index(1)
    Path        hop_count * 4 bytes
    ResInfo     30 bytes
    [EERInfo    8 bytes, EER_DATA only]
    Ts          8 bytes
    HVFs        hop_count * L_HVF bytes
    payload_len(4) payload

``hop_index`` is the only mutable field: each border router advances it as
the packet crosses the AS, the way SCION moves its current-hop pointer.
It is deliberately *not* covered by any MAC — a router can always set it
to its own position, so authenticating it would add nothing.
"""

from __future__ import annotations

import struct
from collections import namedtuple
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.constants import L_HVF
from repro.errors import PacketDecodeError, PacketFieldError
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp

MAGIC = 0xC0B1
FORMAT_VERSION = 1

_FIXED = struct.Struct("!HBBBB")
_PAYLOAD_LEN = struct.Struct("!I")

#: Byte offsets of every header field within a serialized packet, plus
#: the total header size.  ``eer`` equals ``ts`` for SEGMENT packets
#: (the EERInfo field has zero width there).
WireOffsets = namedtuple(
    "WireOffsets", ("path", "res", "eer", "ts", "hvf", "payload_len", "header")
)


class HvfVector:
    """Per-hop HVF tags sharing one flat buffer (zero-copy Eq. 6 output).

    The batch stampers produce all hop tags of a packet as one
    contiguous byte string (a single C call / one ``join``); this wraps
    that string as the sequence ``ColibriPacket.hvfs`` expects without
    slicing ``hop_count`` little ``bytes`` objects up front.  Tags are
    sliced lazily on access; serialization appends :attr:`flat` in one
    piece.  ``start``/``count`` let many packets of one burst share a
    single message-major buffer from ``stamp_many``.

    Item assignment copies the shared buffer first (copy-on-write), so
    tests forging a tag cannot corrupt sibling packets of the burst.
    """

    __slots__ = ("buffer", "start", "count")

    def __init__(self, buffer: bytes, start: int = 0, count: Optional[int] = None):
        if count is None:
            count = (len(buffer) - start) // L_HVF
        self.buffer = buffer
        self.start = start
        self.count = count

    def __len__(self) -> int:
        return self.count

    def _index(self, index: int) -> int:
        if index < 0:
            index += self.count
        if not 0 <= index < self.count:
            raise IndexError(f"HVF index {index} out of range for {self.count} hops")
        return index

    def __getitem__(self, index: int) -> bytes:
        offset = self.start + self._index(index) * L_HVF
        return self.buffer[offset : offset + L_HVF]

    def __setitem__(self, index: int, tag: bytes) -> None:
        if len(tag) != L_HVF:
            raise PacketFieldError(f"HVF must be {L_HVF} bytes, got {len(tag)}")
        index = self._index(index)
        private = bytearray(self.flat)
        private[index * L_HVF : (index + 1) * L_HVF] = tag
        self.buffer = bytes(private)
        self.start = 0

    def __iter__(self):
        buffer = self.buffer
        offset = self.start
        for _ in range(self.count):
            yield buffer[offset : offset + L_HVF]
            offset += L_HVF

    @property
    def flat(self) -> bytes:
        """All tags concatenated in path order."""
        start = self.start
        end = start + self.count * L_HVF
        buffer = self.buffer
        if start == 0 and end == len(buffer):
            return buffer
        return buffer[start:end]

    def __eq__(self, other) -> bool:
        if isinstance(other, HvfVector):
            return self.flat == other.flat
        if isinstance(other, (list, tuple)):
            return self.count == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"HvfVector({self.count} tags)"


class PacketType:
    """Packet type carried in the flags byte."""

    SEGMENT = 0  # control traffic over a SegR (or best-effort setup)
    EER_DATA = 1  # data traffic over an EER

    _VALID = (SEGMENT, EER_DATA)


@dataclass
class ColibriPacket:
    """A parsed (or under-construction) Colibri packet.

    ``hvfs`` holds one ``L_HVF``-byte tag per hop; empty tags
    (``b'\\x00' * L_HVF``) stand for "not yet filled in" on packets still
    at the end host (§4.6: hosts send packets with empty header fields to
    the gateway, which fills them).
    """

    packet_type: int
    path: PathField
    res_info: ResInfo
    timestamp: Timestamp
    hvfs: list
    eer_info: Optional[EerInfo] = None
    payload: bytes = b""
    hop_index: int = 0

    EMPTY_HVF = b"\x00" * L_HVF

    def __post_init__(self):
        if self.packet_type not in PacketType._VALID:
            raise PacketFieldError(f"unknown packet type {self.packet_type}")
        if self.packet_type == PacketType.EER_DATA and self.eer_info is None:
            raise PacketFieldError("EER data packets must carry EERInfo")
        if len(self.hvfs) != len(self.path):
            raise PacketFieldError(
                f"need one HVF per hop: {len(self.hvfs)} HVFs, {len(self.path)} hops"
            )
        for hvf in self.hvfs:
            if len(hvf) != L_HVF:
                raise PacketFieldError(f"HVF must be {L_HVF} bytes, got {len(hvf)}")
        if not 0 <= self.hop_index < len(self.path):
            raise PacketFieldError(
                f"hop index {self.hop_index} out of range for {len(self.path)} hops"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def blank(
        cls,
        packet_type: int,
        path: PathField,
        res_info: ResInfo,
        timestamp: Timestamp,
        eer_info: Optional[EerInfo] = None,
        payload: bytes = b"",
    ) -> "ColibriPacket":
        """A packet with all-zero HVFs, as an end host hands to the gateway."""
        return cls(
            packet_type=packet_type,
            path=path,
            res_info=res_info,
            timestamp=timestamp,
            hvfs=[cls.EMPTY_HVF] * len(path),
            eer_info=eer_info,
            payload=payload,
        )

    @classmethod
    def trusted(
        cls,
        packet_type: int,
        path: PathField,
        res_info: ResInfo,
        timestamp: Timestamp,
        hvfs: list,
        eer_info: Optional[EerInfo] = None,
        payload: bytes = b"",
    ) -> "ColibriPacket":
        """Construct without re-running ``__post_init__`` validation.

        For components that computed every field themselves and already
        guarantee the invariants — the gateway stamps exactly one
        ``L_HVF``-byte HVF per hop by construction, so re-checking each
        on the Fig. 5 fast path is pure overhead.  Anything built from
        external input (``from_bytes``, hosts, tests) must use the
        normal validating constructor.
        """
        packet = object.__new__(cls)
        packet.packet_type = packet_type
        packet.path = path
        packet.res_info = res_info
        packet.timestamp = timestamp
        packet.hvfs = hvfs
        packet.eer_info = eer_info
        packet.payload = payload
        packet.hop_index = 0
        return packet

    # -- properties -----------------------------------------------------------

    @property
    def hop_count(self) -> int:
        return len(self.path)

    @property
    def is_eer_data(self) -> bool:
        return self.packet_type == PacketType.EER_DATA

    #: Memoized ``(hop_count, is_eer_data) -> header bytes``.  Header
    #: sizes are pure arithmetic over a handful of hop counts, and the
    #: router reads ``total_size`` once per validated packet (PktSize,
    #: Eq. 6), so the table turns that into one dict probe.
    _HEADER_SIZES: ClassVar[dict] = {}

    #: Memoized ``(hop_count, is_eer_data) -> WireOffsets`` — the field
    #: positions the zero-copy paths patch in place (Ts, HVFs) or read
    #: with ``unpack_from`` (router wire validation).
    _WIRE_OFFSETS: ClassVar[dict] = {}

    @staticmethod
    def wire_offsets(hop_count: int, is_eer_data: bool = True) -> WireOffsets:
        """Field offsets within the serialized header.

        The arena fast paths never re-derive the layout per packet: the
        gateway patches Ts and stamps HVFs at these fixed positions in a
        prebuilt header template, and the router ``unpack_from``s the
        fields it authenticates straight out of the wire buffer.
        """
        key = (hop_count, is_eer_data)
        offsets = ColibriPacket._WIRE_OFFSETS.get(key)
        if offsets is None:
            path = _FIXED.size
            res = path + hop_count * PathField.WIRE_PAIR.size
            eer = res + ResInfo.SIZE
            ts = eer + (EerInfo.SIZE if is_eer_data else 0)
            hvf = ts + Timestamp.SIZE
            payload_len = hvf + hop_count * L_HVF
            header = payload_len + _PAYLOAD_LEN.size
            offsets = WireOffsets(path, res, eer, ts, hvf, payload_len, header)
            ColibriPacket._WIRE_OFFSETS[key] = offsets
        return offsets

    @staticmethod
    def header_size_for(hop_count: int, is_eer_data: bool = True) -> int:
        """Header bytes of a packet with ``hop_count`` hops.

        The header size depends only on hop count and packet type, so the
        gateway computes it once per reservation instead of per packet —
        PktSize (Eq. 6) must be known *before* the packet object exists
        for the monitor to reject non-conforming traffic cheaply.
        """
        key = (hop_count, is_eer_data)
        size = ColibriPacket._HEADER_SIZES.get(key)
        if size is None:
            eer = EerInfo.SIZE if is_eer_data else 0
            size = (
                _FIXED.size
                + hop_count * PathField.WIRE_PAIR.size
                + ResInfo.SIZE
                + eer
                + Timestamp.SIZE
                + hop_count * L_HVF
                + _PAYLOAD_LEN.size
            )
            ColibriPacket._HEADER_SIZES[key] = size
        return size

    @staticmethod
    def wire_template(
        packet_type: int,
        path: PathField,
        res_info: ResInfo,
        eer_info: Optional[EerInfo] = None,
    ) -> bytes:
        """Serialized header up to (excluding) Ts, at ``hop_index`` 0.

        Everything before the Ts field is constant for one reservation
        version, so the zero-copy gateway builds this prefix once and
        copies it into each arena slot, then patches only Ts, HVFs and
        the payload section in place — byte-identical to
        :meth:`to_bytes` of the equivalent packet object.
        """
        flags = packet_type & 0x0F
        parts = [
            _FIXED.pack(MAGIC, FORMAT_VERSION, flags, len(path), 0),
            path.packed,
            res_info.packed,
        ]
        if eer_info is not None:
            parts.append(eer_info.packed)
        return b"".join(parts)

    @property
    def header_size(self) -> int:
        key = (len(self.path), self.packet_type == PacketType.EER_DATA)
        size = self._HEADER_SIZES.get(key)
        return size if size is not None else self.header_size_for(*key)

    @property
    def total_size(self) -> int:
        """Packet size including the Colibri header — the PktSize of Eq. (6)."""
        key = (len(self.path), self.packet_type == PacketType.EER_DATA)
        size = self._HEADER_SIZES.get(key)
        if size is None:
            size = self.header_size_for(*key)
        return size + len(self.payload)

    def advance_hop(self) -> None:
        """Move the current-hop pointer past this AS."""
        if self.hop_index + 1 >= len(self.path):
            raise PacketFieldError("cannot advance past the last hop")
        self.hop_index += 1

    def current_pair(self) -> tuple:
        """(In, Eg) interface pair at the current hop."""
        return self.path.pair(self.hop_index)

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        flags = self.packet_type & 0x0F
        parts = [
            _FIXED.pack(MAGIC, FORMAT_VERSION, flags, self.hop_count, self.hop_index),
            self.path.packed,
            self.res_info.packed,
        ]
        if self.is_eer_data:
            parts.append(self.eer_info.packed)
        parts.append(self.timestamp.packed)
        hvfs = self.hvfs
        if type(hvfs) is HvfVector:
            parts.append(hvfs.flat)
        else:
            parts.extend(hvfs)
        parts.append(_PAYLOAD_LEN.pack(len(self.payload)))
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColibriPacket":
        if len(data) < _FIXED.size:
            raise PacketDecodeError(f"packet truncated at fixed header: {len(data)} bytes")
        magic, version, flags, hop_count, hop_index = _FIXED.unpack_from(data)
        if magic != MAGIC:
            raise PacketDecodeError(f"bad magic 0x{magic:04x}, expected 0x{MAGIC:04x}")
        if version != FORMAT_VERSION:
            raise PacketDecodeError(f"unsupported format version {version}")
        packet_type = flags & 0x0F
        if packet_type not in PacketType._VALID:
            raise PacketDecodeError(f"unknown packet type {packet_type}")
        if hop_count == 0:
            raise PacketDecodeError("packet declares zero hops")
        offset = _FIXED.size

        path = PathField.unpack(data[offset:], hop_count)
        offset += hop_count * PathField.WIRE_PAIR.size
        res_info = ResInfo.unpack(data[offset:])
        offset += ResInfo.SIZE
        eer_info = None
        if packet_type == PacketType.EER_DATA:
            eer_info = EerInfo.unpack(data[offset:])
            offset += EerInfo.SIZE
        timestamp = Timestamp.unpack(data[offset:])
        offset += Timestamp.SIZE
        hvfs = []
        for _ in range(hop_count):
            hvf = data[offset : offset + L_HVF]
            if len(hvf) != L_HVF:
                raise PacketDecodeError("packet truncated inside HVFs")
            hvfs.append(hvf)
            offset += L_HVF
        if len(data) < offset + _PAYLOAD_LEN.size:
            raise PacketDecodeError("packet truncated at payload length")
        (payload_len,) = _PAYLOAD_LEN.unpack_from(data, offset)
        offset += _PAYLOAD_LEN.size
        payload = data[offset : offset + payload_len]
        if len(payload) != payload_len:
            raise PacketDecodeError(
                f"payload truncated: declared {payload_len}, got {len(payload)} bytes"
            )
        if hop_index >= hop_count:
            raise PacketDecodeError(f"hop index {hop_index} >= hop count {hop_count}")
        return cls(
            packet_type=packet_type,
            path=path,
            res_info=res_info,
            timestamp=timestamp,
            hvfs=hvfs,
            eer_info=eer_info,
            payload=payload,
            hop_index=hop_index,
        )

    def __repr__(self) -> str:
        kind = "EER" if self.is_eer_data else "SegR"
        return (
            f"ColibriPacket({kind}, res={self.res_info.reservation}, "
            f"hop={self.hop_index}/{self.hop_count}, {self.total_size} B)"
        )


class WirePacketView:
    """A serialized packet living inside a shared arena buffer.

    The zero-copy gateway path (``send_batch_wire``) writes each packet
    straight into a :class:`~repro.packets.wire.PacketArena` slot and
    hands out these views instead of ``bytes``.  A view stays valid
    until the arena is ``reset()`` for the next burst — the same
    lifetime contract as a DPDK mbuf.  ``view()`` exposes the bytes
    without copying (what the router's wire validation reads);
    ``materialize()`` copies them out for anything that must outlive
    the burst.
    """

    __slots__ = ("buffer", "offset", "length")

    def __init__(self, buffer: bytearray, offset: int, length: int):
        self.buffer = buffer
        self.offset = offset
        self.length = length

    def view(self) -> memoryview:
        """Zero-copy window onto the packet's wire bytes."""
        return memoryview(self.buffer)[self.offset : self.offset + self.length]

    @property
    def hop_index(self) -> int:
        """Current-hop pointer, read straight off the wire."""
        return self.buffer[self.offset + 5]

    @property
    def hop_count(self) -> int:
        return self.buffer[self.offset + 4]

    def advance_hop(self) -> None:
        """Patch the hop pointer in place — the per-hop header mutation
        a forwarding router performs, without reserializing anything
        (``hop_index`` is the only mutable wire field)."""
        hop_index = self.buffer[self.offset + 5]
        if hop_index + 1 >= self.buffer[self.offset + 4]:
            raise PacketFieldError("cannot advance past the last hop")
        self.buffer[self.offset + 5] = hop_index + 1

    def materialize(self) -> bytes:
        """Copy the packet out of the arena (cold path only)."""
        return bytes(self.buffer[self.offset : self.offset + self.length])

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return f"WirePacketView({self.length} B @ {self.offset})"
