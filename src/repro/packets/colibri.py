"""The Colibri packet (Eq. 2a) with byte-level serialization.

One format serves all Colibri control- and data-plane traffic (§4.3):

* ``SEGMENT`` packets travel over a SegR — SegR renewals and EER setup
  requests — and carry the truncated SegR tokens of Eq. (3) as HVFs;
* ``EER_DATA`` packets travel over an EER and carry the per-packet HVFs
  of Eq. (6), plus the EERInfo host addresses.

The header layout (big-endian)::

    magic(2) version(1) flags(1) hop_count(1) hop_index(1)
    Path        hop_count * 4 bytes
    ResInfo     30 bytes
    [EERInfo    8 bytes, EER_DATA only]
    Ts          8 bytes
    HVFs        hop_count * L_HVF bytes
    payload_len(4) payload

``hop_index`` is the only mutable field: each border router advances it as
the packet crosses the AS, the way SCION moves its current-hop pointer.
It is deliberately *not* covered by any MAC — a router can always set it
to its own position, so authenticating it would add nothing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.constants import L_HVF
from repro.errors import PacketDecodeError, PacketFieldError
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp

MAGIC = 0xC0B1
FORMAT_VERSION = 1

_FIXED = struct.Struct("!HBBBB")
_PAYLOAD_LEN = struct.Struct("!I")


class PacketType:
    """Packet type carried in the flags byte."""

    SEGMENT = 0  # control traffic over a SegR (or best-effort setup)
    EER_DATA = 1  # data traffic over an EER

    _VALID = (SEGMENT, EER_DATA)


@dataclass
class ColibriPacket:
    """A parsed (or under-construction) Colibri packet.

    ``hvfs`` holds one ``L_HVF``-byte tag per hop; empty tags
    (``b'\\x00' * L_HVF``) stand for "not yet filled in" on packets still
    at the end host (§4.6: hosts send packets with empty header fields to
    the gateway, which fills them).
    """

    packet_type: int
    path: PathField
    res_info: ResInfo
    timestamp: Timestamp
    hvfs: list
    eer_info: Optional[EerInfo] = None
    payload: bytes = b""
    hop_index: int = 0

    EMPTY_HVF = b"\x00" * L_HVF

    def __post_init__(self):
        if self.packet_type not in PacketType._VALID:
            raise PacketFieldError(f"unknown packet type {self.packet_type}")
        if self.packet_type == PacketType.EER_DATA and self.eer_info is None:
            raise PacketFieldError("EER data packets must carry EERInfo")
        if len(self.hvfs) != len(self.path):
            raise PacketFieldError(
                f"need one HVF per hop: {len(self.hvfs)} HVFs, {len(self.path)} hops"
            )
        for hvf in self.hvfs:
            if len(hvf) != L_HVF:
                raise PacketFieldError(f"HVF must be {L_HVF} bytes, got {len(hvf)}")
        if not 0 <= self.hop_index < len(self.path):
            raise PacketFieldError(
                f"hop index {self.hop_index} out of range for {len(self.path)} hops"
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def blank(
        cls,
        packet_type: int,
        path: PathField,
        res_info: ResInfo,
        timestamp: Timestamp,
        eer_info: Optional[EerInfo] = None,
        payload: bytes = b"",
    ) -> "ColibriPacket":
        """A packet with all-zero HVFs, as an end host hands to the gateway."""
        return cls(
            packet_type=packet_type,
            path=path,
            res_info=res_info,
            timestamp=timestamp,
            hvfs=[cls.EMPTY_HVF] * len(path),
            eer_info=eer_info,
            payload=payload,
        )

    @classmethod
    def trusted(
        cls,
        packet_type: int,
        path: PathField,
        res_info: ResInfo,
        timestamp: Timestamp,
        hvfs: list,
        eer_info: Optional[EerInfo] = None,
        payload: bytes = b"",
    ) -> "ColibriPacket":
        """Construct without re-running ``__post_init__`` validation.

        For components that computed every field themselves and already
        guarantee the invariants — the gateway stamps exactly one
        ``L_HVF``-byte HVF per hop by construction, so re-checking each
        on the Fig. 5 fast path is pure overhead.  Anything built from
        external input (``from_bytes``, hosts, tests) must use the
        normal validating constructor.
        """
        packet = object.__new__(cls)
        packet.packet_type = packet_type
        packet.path = path
        packet.res_info = res_info
        packet.timestamp = timestamp
        packet.hvfs = hvfs
        packet.eer_info = eer_info
        packet.payload = payload
        packet.hop_index = 0
        return packet

    # -- properties -----------------------------------------------------------

    @property
    def hop_count(self) -> int:
        return len(self.path)

    @property
    def is_eer_data(self) -> bool:
        return self.packet_type == PacketType.EER_DATA

    #: Memoized ``(hop_count, is_eer_data) -> header bytes``.  Header
    #: sizes are pure arithmetic over a handful of hop counts, and the
    #: router reads ``total_size`` once per validated packet (PktSize,
    #: Eq. 6), so the table turns that into one dict probe.
    _HEADER_SIZES: ClassVar[dict] = {}

    @staticmethod
    def header_size_for(hop_count: int, is_eer_data: bool = True) -> int:
        """Header bytes of a packet with ``hop_count`` hops.

        The header size depends only on hop count and packet type, so the
        gateway computes it once per reservation instead of per packet —
        PktSize (Eq. 6) must be known *before* the packet object exists
        for the monitor to reject non-conforming traffic cheaply.
        """
        key = (hop_count, is_eer_data)
        size = ColibriPacket._HEADER_SIZES.get(key)
        if size is None:
            eer = EerInfo.SIZE if is_eer_data else 0
            size = (
                _FIXED.size
                + hop_count * PathField.WIRE_PAIR.size
                + ResInfo.SIZE
                + eer
                + Timestamp.SIZE
                + hop_count * L_HVF
                + _PAYLOAD_LEN.size
            )
            ColibriPacket._HEADER_SIZES[key] = size
        return size

    @property
    def header_size(self) -> int:
        key = (len(self.path), self.packet_type == PacketType.EER_DATA)
        size = self._HEADER_SIZES.get(key)
        return size if size is not None else self.header_size_for(*key)

    @property
    def total_size(self) -> int:
        """Packet size including the Colibri header — the PktSize of Eq. (6)."""
        key = (len(self.path), self.packet_type == PacketType.EER_DATA)
        size = self._HEADER_SIZES.get(key)
        if size is None:
            size = self.header_size_for(*key)
        return size + len(self.payload)

    def advance_hop(self) -> None:
        """Move the current-hop pointer past this AS."""
        if self.hop_index + 1 >= len(self.path):
            raise PacketFieldError("cannot advance past the last hop")
        self.hop_index += 1

    def current_pair(self) -> tuple:
        """(In, Eg) interface pair at the current hop."""
        return self.path.pair(self.hop_index)

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        flags = self.packet_type & 0x0F
        parts = [
            _FIXED.pack(MAGIC, FORMAT_VERSION, flags, self.hop_count, self.hop_index),
            self.path.packed,
            self.res_info.packed,
        ]
        if self.is_eer_data:
            parts.append(self.eer_info.packed)
        parts.append(self.timestamp.packed)
        parts.extend(self.hvfs)
        parts.append(_PAYLOAD_LEN.pack(len(self.payload)))
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ColibriPacket":
        if len(data) < _FIXED.size:
            raise PacketDecodeError(f"packet truncated at fixed header: {len(data)} bytes")
        magic, version, flags, hop_count, hop_index = _FIXED.unpack_from(data)
        if magic != MAGIC:
            raise PacketDecodeError(f"bad magic 0x{magic:04x}, expected 0x{MAGIC:04x}")
        if version != FORMAT_VERSION:
            raise PacketDecodeError(f"unsupported format version {version}")
        packet_type = flags & 0x0F
        if packet_type not in PacketType._VALID:
            raise PacketDecodeError(f"unknown packet type {packet_type}")
        if hop_count == 0:
            raise PacketDecodeError("packet declares zero hops")
        offset = _FIXED.size

        path = PathField.unpack(data[offset:], hop_count)
        offset += hop_count * PathField.WIRE_PAIR.size
        res_info = ResInfo.unpack(data[offset:])
        offset += ResInfo.SIZE
        eer_info = None
        if packet_type == PacketType.EER_DATA:
            eer_info = EerInfo.unpack(data[offset:])
            offset += EerInfo.SIZE
        timestamp = Timestamp.unpack(data[offset:])
        offset += Timestamp.SIZE
        hvfs = []
        for _ in range(hop_count):
            hvf = data[offset : offset + L_HVF]
            if len(hvf) != L_HVF:
                raise PacketDecodeError("packet truncated inside HVFs")
            hvfs.append(hvf)
            offset += L_HVF
        if len(data) < offset + _PAYLOAD_LEN.size:
            raise PacketDecodeError("packet truncated at payload length")
        (payload_len,) = _PAYLOAD_LEN.unpack_from(data, offset)
        offset += _PAYLOAD_LEN.size
        payload = data[offset : offset + payload_len]
        if len(payload) != payload_len:
            raise PacketDecodeError(
                f"payload truncated: declared {payload_len}, got {len(payload)} bytes"
            )
        if hop_index >= hop_count:
            raise PacketDecodeError(f"hop index {hop_index} >= hop count {hop_count}")
        return cls(
            packet_type=packet_type,
            path=path,
            res_info=res_info,
            timestamp=timestamp,
            hvfs=hvfs,
            eer_info=eer_info,
            payload=payload,
            hop_index=hop_index,
        )

    def __repr__(self) -> str:
        kind = "EER" if self.is_eer_data else "SegR"
        return (
            f"ColibriPacket({kind}, res={self.res_info.reservation}, "
            f"hop={self.hop_index}/{self.hop_count}, {self.total_size} B)"
        )
