"""Monotonic identifier allocation.

The CServ "increases the ResId for every new SegR or EER" (§4.3) so the
pair ``(SrcAS, ResId)`` is globally unique.  :class:`SequenceAllocator`
provides that counter with overflow detection, and is reused anywhere a
dense monotonically-increasing ID is needed (interface IDs, flow labels).
"""

from __future__ import annotations


class SequenceAllocator:
    """A strictly increasing integer sequence starting at ``first``.

    ``width_bits`` bounds the ID space (ResIds are carried in a fixed-width
    header field); exhausting it raises :class:`OverflowError` rather than
    silently wrapping, which would break global uniqueness.
    """

    def __init__(self, first: int = 1, width_bits: int = 32):
        if first < 0:
            raise ValueError(f"sequence must start at a non-negative value, got {first}")
        self._next = first
        self._limit = 1 << width_bits

    @property
    def peek(self) -> int:
        """The value the next call to :meth:`allocate` will return."""
        return self._next

    def allocate(self) -> int:
        """Return the next ID and advance the sequence."""
        value = self._next
        if value >= self._limit:
            raise OverflowError(
                f"sequence exhausted: next value {value} exceeds {self._limit - 1}"
            )
        self._next = value + 1
        return value

    def __repr__(self) -> str:
        return f"SequenceAllocator(next={self._next}, limit={self._limit})"
