"""Clock abstractions.

The paper assumes all ASes are synchronized within ±0.1 s (§2.3).  To test
behaviour under that assumption — reservation start/end scheduling,
duplicate detection, traffic monitoring — the library never calls
``time.time()`` directly.  Components take a :class:`Clock`, which in
production is a :class:`WallClock` and in tests/simulations a
:class:`SimClock` (manually advanced) optionally wrapped in a
:class:`SkewedClock` to model per-AS synchronization error.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.errors import SimulationError


class Clock(ABC):
    """Source of the current time in seconds (float, epoch-like)."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds."""


class WallClock(Clock):
    """Real system time, for live deployments and wall-clock benchmarks."""

    def now(self) -> float:
        return time.time()


class PerfClock(Clock):
    """High-resolution monotonic time, for throughput measurement only.

    The shard executor (:mod:`repro.dataplane.shards`) times its workers
    with one of these; it is *not* an epoch clock and must never feed
    protocol logic (expiry, freshness, monitoring), which always takes a
    :class:`WallClock`/:class:`SimClock`.
    """

    def now(self) -> float:
        return time.perf_counter()


class SimClock(Clock):
    """A manually driven clock for deterministic tests and simulations.

    Time only moves when :meth:`advance` or :meth:`set` is called; it can
    never go backwards, matching the monotonicity every consumer relies on.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new time."""
        if delta < 0:
            raise SimulationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def set(self, when: float) -> float:
        """Jump to an absolute time ``when`` (must not move backwards)."""
        if when < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = float(when)
        return self._now


class SkewedClock(Clock):
    """A view of another clock offset by a fixed skew.

    Models imperfect time synchronization between ASes: each AS holds a
    ``SkewedClock`` over the shared simulation clock with its own offset
    in ``[-MAX_CLOCK_SKEW, +MAX_CLOCK_SKEW]``.
    """

    def __init__(self, base: Clock, offset: float):
        self.base = base
        self.offset = float(offset)

    def now(self) -> float:
        return self.base.now() + self.offset
