"""Utility substrates: clocks, bandwidth units, ID sequences."""

from repro.util.clock import Clock, PerfClock, SimClock, SkewedClock, WallClock
from repro.util.metrics import Counters
from repro.util.sequence import SequenceAllocator
from repro.util.units import (
    GBPS,
    KBPS,
    MBPS,
    bits_to_bytes,
    bytes_to_bits,
    format_bandwidth,
    gbps,
    kbps,
    mbps,
)

__all__ = [
    "Clock",
    "PerfClock",
    "SimClock",
    "SkewedClock",
    "WallClock",
    "Counters",
    "SequenceAllocator",
    "GBPS",
    "MBPS",
    "KBPS",
    "gbps",
    "mbps",
    "kbps",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bandwidth",
]
