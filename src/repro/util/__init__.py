"""Utility substrates: clocks, bandwidth units, ID sequences."""

from repro.util.clock import Clock, SimClock, SkewedClock, WallClock
from repro.util.sequence import SequenceAllocator
from repro.util.units import (
    GBPS,
    KBPS,
    MBPS,
    bits_to_bytes,
    bytes_to_bits,
    format_bandwidth,
    gbps,
    kbps,
    mbps,
)

__all__ = [
    "Clock",
    "SimClock",
    "SkewedClock",
    "WallClock",
    "SequenceAllocator",
    "GBPS",
    "MBPS",
    "KBPS",
    "gbps",
    "mbps",
    "kbps",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bandwidth",
]
