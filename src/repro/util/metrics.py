"""Small statistics helpers used across tests and benchmarks, plus the
named-counter primitive the data-plane fast paths report through."""

from __future__ import annotations

import math


class Counters:
    """Named monotonic counters for soft-state components.

    The σ-cache (docs/performance.md) and similar accelerators report
    hit/miss/eviction counts through one of these; the snapshot feeds
    :func:`repro.util.observability.render_metrics` via
    :meth:`~repro.sim.scenario.ColibriNetwork.telemetry`.  Deliberately
    minimal — a dict with a bump method — so incrementing stays cheap
    enough for per-packet paths.

    >>> c = Counters("sigma_cache")
    >>> c.bump("hits"); c.bump("hits"); c.bump("misses")
    >>> c.snapshot()
    {'sigma_cache_hits': 2, 'sigma_cache_misses': 1}
    """

    __slots__ = ("prefix", "_values")

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._values: dict = {}

    def bump(self, name: str, by: int = 1) -> None:
        self._values[name] = self._values.get(name, 0) + by

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def reset(self) -> None:
        self._values.clear()

    def snapshot(self) -> dict:
        """Counter values keyed ``<prefix>_<name>`` (or bare names)."""
        if not self.prefix:
            return dict(self._values)
        return {f"{self.prefix}_{name}": value for name, value in self._values.items()}


def merge_counters(snapshots: list) -> dict:
    """Key-wise sum of counter snapshots (the ``Counters.snapshot`` /
    router ``stats`` shape): how the shard executor folds per-process
    telemetry back into one view.  Associative and commutative, so the
    merge order across shards cannot change the result."""
    merged: dict = {}
    for snapshot in snapshots:
        for name, value in snapshot.items():
            merged[name] = merged.get(name, 0) + value
    return merged


def jain_fairness(allocations: list) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/n = one taker.

    The standard measure for "did the admission algorithm share the
    bottleneck fairly" — used by the fairness tests on tube-fair SegR
    admission (§4.7).

    >>> jain_fairness([1.0, 1.0, 1.0, 1.0])
    1.0
    >>> round(jain_fairness([4.0, 0.0, 0.0, 0.0]), 3)
    0.25
    """
    if not allocations:
        raise ValueError("fairness of an empty allocation is undefined")
    if any(value < 0 for value in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    if total == 0:
        return 1.0  # nobody got anything: trivially equal
    squares = sum(value * value for value in allocations)
    return total * total / (len(allocations) * squares)


def percentile(values: list, fraction: float) -> float:
    """Nearest-rank percentile, e.g. ``percentile(latencies, 0.99)``."""
    if not values:
        raise ValueError("percentile of an empty list is undefined")
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def mean(values: list) -> float:
    if not values:
        raise ValueError("mean of an empty list is undefined")
    return sum(values) / len(values)
