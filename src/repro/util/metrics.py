"""Small statistics helpers used across tests and benchmarks."""

from __future__ import annotations

import math


def jain_fairness(allocations: list) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/n = one taker.

    The standard measure for "did the admission algorithm share the
    bottleneck fairly" — used by the fairness tests on tube-fair SegR
    admission (§4.7).

    >>> jain_fairness([1.0, 1.0, 1.0, 1.0])
    1.0
    >>> round(jain_fairness([4.0, 0.0, 0.0, 0.0]), 3)
    0.25
    """
    if not allocations:
        raise ValueError("fairness of an empty allocation is undefined")
    if any(value < 0 for value in allocations):
        raise ValueError("allocations must be non-negative")
    total = sum(allocations)
    if total == 0:
        return 1.0  # nobody got anything: trivially equal
    squares = sum(value * value for value in allocations)
    return total * total / (len(allocations) * squares)


def percentile(values: list, fraction: float) -> float:
    """Nearest-rank percentile, e.g. ``percentile(latencies, 0.99)``."""
    if not values:
        raise ValueError("percentile of an empty list is undefined")
    if not 0 <= fraction <= 1:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def mean(values: list) -> float:
    if not values:
        raise ValueError("mean of an empty list is undefined")
    return sum(values) / len(values)
