"""Bandwidth and size units.

All bandwidth values inside the library are plain floats in **bits per
second** — the natural unit for the paper's Gbps-denominated evaluation —
and all sizes are integers in **bytes**.  The helpers here convert between
human-friendly units and those canonical ones, so call sites read like the
paper: ``gbps(0.4)`` for reservation 1 of Table 2.
"""

from __future__ import annotations

KBPS = 1_000.0
MBPS = 1_000_000.0
GBPS = 1_000_000_000.0


def kbps(value: float) -> float:
    """Kilobits per second to bits per second."""
    return value * KBPS


def mbps(value: float) -> float:
    """Megabits per second to bits per second."""
    return value * MBPS


def gbps(value: float) -> float:
    """Gigabits per second to bits per second."""
    return value * GBPS


def bytes_to_bits(num_bytes: int) -> int:
    """Size in bytes to size in bits."""
    return num_bytes * 8


def bits_to_bytes(num_bits: float) -> float:
    """Size in bits to size in bytes (may be fractional for rates)."""
    return num_bits / 8


def format_bandwidth(bits_per_second: float) -> str:
    """Render a rate with the largest sensible unit, e.g. ``'0.400 Gbps'``.

    >>> format_bandwidth(400_000_000)
    '0.400 Gbps'
    >>> format_bandwidth(1_500)
    '1.500 Kbps'
    >>> format_bandwidth(12)
    '12.000 bps'
    """
    if bits_per_second >= GBPS / 10:
        return f"{bits_per_second / GBPS:.3f} Gbps"
    if bits_per_second >= MBPS / 10:
        return f"{bits_per_second / MBPS:.3f} Mbps"
    if bits_per_second >= KBPS / 10:
        return f"{bits_per_second / KBPS:.3f} Kbps"
    return f"{bits_per_second:.3f} bps"
