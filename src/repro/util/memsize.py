"""Deep heap measurement for memory-budget checks.

The §4.6 statelessness claim and the campaign memory budgets both need
the same primitive: the total heap reachable from a component, not just
``sys.getsizeof`` of its top object.  This walks the object graph once,
id-deduplicated, so shared payloads are charged to whoever is reached
first and never double-counted.

Used by ``benchmarks/test_memory_footprint.py`` and the campaign
runner's per-phase ``memory_footprint`` rows.
"""

from __future__ import annotations

import sys
from typing import Optional, Set


def deep_size(obj, seen: Optional[Set[int]] = None) -> int:
    """Recursive sys.getsizeof over the object graph (id-deduplicated).

    Pass a shared ``seen`` set to measure several roots without double
    counting objects reachable from more than one of them.
    """
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(deep_size(k, seen) + deep_size(v, seen) for k, v in obj.items())
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(deep_size(item, seen) for item in obj)
    elif hasattr(obj, "__dict__"):
        size += deep_size(obj.__dict__, seen)
    elif hasattr(obj, "__slots__"):
        size += sum(
            deep_size(getattr(obj, slot), seen)
            for slot in obj.__slots__
            if hasattr(obj, slot)
        )
    return size
