"""Prometheus-style metrics rendering for the management plane.

Converts a :meth:`~repro.sim.scenario.ColibriNetwork.telemetry` snapshot
into the text exposition format every monitoring stack ingests, so a
deployment scrapes the same counters the tests assert on.

:func:`register_telemetry_gauges` bridges the two metrics stacks: every
flat telemetry counter is mirrored into the
:class:`~repro.obs.metrics.MetricsRegistry` as a callback gauge, so the
SLO engine evaluates over one snapshot covering both layers.  To keep
each counter reported exactly once, :func:`render_metrics` excludes the
mirrored names from the registry block it appends.
"""

from __future__ import annotations

_HELP = {
    "segments": "Segment reservations stored at the AS",
    "eers": "End-to-end reservations stored at the AS",
    "seg_decisions": "SegR admission decisions taken",
    "eer_decisions": "EER admission decisions taken",
    "gateway_sent": "Packets stamped and sent by the gateway",
    "gateway_dropped": "Packets dropped at the gateway (monitoring/expiry)",
    "router_drops": "Packets dropped by the border router",
    "router_forwarded": "Packets forwarded or delivered by the border router",
    "blocked_sources": "Source ASes currently on the policing blocklist",
    "offenses": "Confirmed overuse offenses reported to the CServ",
}

_PREFIX = "colibri"


def render_metrics(telemetry: dict, registry=None) -> str:
    """Render a telemetry snapshot as Prometheus exposition text.

    Per-AS values become labelled samples; the ``total`` entry becomes
    the unlabelled aggregate.  Unknown keys are exported verbatim with a
    generic HELP line so extensions flow through automatically.

    When ``registry`` (a :class:`repro.obs.MetricsRegistry`) is given its
    instruments — histograms as ``_bucket``/``_sum``/``_count`` triples,
    plus gauges and counters — are appended after the telemetry
    counters, so one scrape covers both planes.
    """
    lines = []
    names = sorted(
        {
            key
            for entry in telemetry.values()
            for key in (entry if isinstance(entry, dict) else {})
        }
    )
    for name in names:
        metric = f"{_PREFIX}_{name}"
        help_text = _HELP.get(name, f"Colibri counter {name}")
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} gauge")
        for entity, entry in sorted(telemetry.items()):
            if not isinstance(entry, dict) or name not in entry:
                continue
            value = entry[name]
            if entity == "total":
                lines.append(f"{metric} {value}")
            else:
                lines.append(f'{metric}{{isd_as="{entity}"}} {value}')
    text = "\n".join(lines) + "\n"
    if registry is not None:
        text += registry.render(exclude=frozenset(names))
    return text


def register_telemetry_gauges(registry, telemetry_fn) -> list:
    """Mirror every flat telemetry counter into ``registry``.

    Each key of ``telemetry_fn()["total"]`` becomes a callback gauge of
    the same name, read live from the aggregate — the adapter that lets
    the SLO engine (which consumes registry snapshots only) see the
    management-plane counters.  Returns the mirrored names;
    :func:`render_metrics` drops exactly these from the registry block
    so no counter is double-reported in one scrape.
    """
    names = sorted(telemetry_fn()["total"])
    for name in names:

        def _read(key=name):
            return float(telemetry_fn()["total"].get(key, 0))

        registry.gauge(
            name, help_text=_HELP.get(name, f"Colibri counter {name}")
        ).set_function(_read)
    return names
