"""Exception hierarchy for the Colibri reproduction library.

Every error raised by :mod:`repro` derives from :class:`ColibriError`, so
applications can catch the whole family with a single ``except`` clause.
The hierarchy mirrors the paper's subsystems: topology and path errors,
cryptographic failures, reservation/admission failures, data-plane
validation failures, and simulation errors.
"""

from __future__ import annotations


class ColibriError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Topology and path errors
# ---------------------------------------------------------------------------


class TopologyError(ColibriError):
    """Invalid topology construction or lookup (unknown AS, interface, link)."""


class UnknownASError(TopologyError):
    """An ISD-AS address does not exist in the topology."""


class UnknownInterfaceError(TopologyError):
    """An interface ID does not exist at the given AS."""


class PathError(ColibriError):
    """A path or segment could not be constructed or is malformed."""


class NoSegmentError(PathError):
    """Beaconing found no segment satisfying the query."""


class NoPathError(PathError):
    """No combination of segments yields an end-to-end path."""


class SegmentCombinationError(PathError):
    """Segments cannot be joined (no shared core AS / wrong directions)."""


# ---------------------------------------------------------------------------
# Cryptography errors
# ---------------------------------------------------------------------------


class CryptoError(ColibriError):
    """Base class for cryptographic failures."""


class MacVerificationError(CryptoError):
    """A message-authentication code did not verify."""


class AeadError(CryptoError):
    """AEAD decryption failed (bad tag, truncated ciphertext)."""


class KeyFetchError(CryptoError):
    """A DRKey second-level fetch was rejected or the key server is unknown."""


# ---------------------------------------------------------------------------
# Packet errors
# ---------------------------------------------------------------------------


class PacketError(ColibriError):
    """A packet is malformed or fails structural validation."""


class PacketDecodeError(PacketError):
    """Byte-level deserialization failed."""


class PacketFieldError(PacketError):
    """A header field holds an out-of-range or inconsistent value."""


# ---------------------------------------------------------------------------
# Control-plane transport errors
# ---------------------------------------------------------------------------


class TransportError(ColibriError):
    """A control-plane call failed at the transport layer (§3.3, §6.1).

    Transport failures are *transient by definition*: the request or its
    response was lost, delayed past its budget, or the peer is currently
    unreachable.  They say nothing about admission — retrying is safe and
    is exactly what :class:`repro.control.retry.RetryingCaller` does.
    """


class Unreachable(TransportError):
    """The destination AS is partitioned away, flapping, not registered,
    or the injected link dropped the request or response."""


class CallTimeout(TransportError):
    """The call's latency budget elapsed before the response arrived.

    The handler may well have run (the response was merely late), so the
    caller must treat the remote state as unknown — idempotent retries
    and, on give-up, explicit cleanup restore the §3.3 invariant.
    """


class CircuitOpen(Unreachable):
    """The circuit breaker for the destination AS is open: recent calls
    failed persistently, so new calls fail fast instead of burning the
    retry budget against a dead peer.

    Subclasses :class:`Unreachable` (the peer is *presumed* unreachable)
    and, like :class:`RetriesExhausted`, is terminal: upstream retriers
    propagate it instead of retrying, so a dead AS deep in a path does
    not trigger a multiplicative retry storm across every hop before it.
    """


class RetriesExhausted(Unreachable):
    """A retrying caller used its whole attempt budget against one link.

    Terminal for upstream retriers: the loss already got its retries at
    the hop adjacent to it, where retrying is cheapest.  Re-retrying at
    every upstream hop would multiply the attempt count exponentially
    with path length — and charge each upstream breaker for a failure on
    a link that is not theirs."""


# ---------------------------------------------------------------------------
# Reservation and admission errors
# ---------------------------------------------------------------------------


class ReservationError(ColibriError):
    """Base class for reservation-lifecycle failures."""


class ReservationNotFound(ReservationError):
    """No reservation with the given (SrcAS, ResId) is known."""


class ReservationExpired(ReservationError):
    """The reservation (or the version used) has expired."""


class VersionError(ReservationError):
    """Illegal version transition (stale version, duplicate, activation
    of a non-pending version)."""


class AdmissionDenied(ReservationError):
    """The admission algorithm denied the request.

    ``granted`` carries the bandwidth the AS would have granted (possibly
    zero), letting initiators locate bottlenecks as described in §3.3.
    """

    def __init__(self, message: str, granted: float = 0.0, at_as: object = None):
        super().__init__(message)
        self.granted = granted
        self.at_as = at_as


class PolicyDenied(AdmissionDenied):
    """An intra-AS policy (source or destination AS) refused the request."""


class InsufficientBandwidth(AdmissionDenied):
    """Less bandwidth than the requested minimum is available."""


class RateLimited(ReservationError):
    """The CServ rate limiter rejected the request (§5.3)."""


class StoreConflict(ReservationError):
    """A transactional store operation conflicted or was rolled back."""


# ---------------------------------------------------------------------------
# Data-plane errors
# ---------------------------------------------------------------------------


class DataPlaneError(ColibriError):
    """Base class for forwarding-time failures."""


class HvfMismatch(DataPlaneError):
    """The hop validation field in the packet does not match Eq. (3)/(6)."""


class DuplicatePacket(DataPlaneError):
    """The replay-suppression system flagged the packet as a duplicate."""


class SourceBlocked(DataPlaneError):
    """The packet's source AS is on the policing blocklist (§4.8)."""


class BandwidthExceeded(DataPlaneError):
    """The deterministic monitor dropped the packet for overuse."""


class FreshnessError(DataPlaneError):
    """The packet timestamp lies outside the acceptance window."""


# ---------------------------------------------------------------------------
# Simulation errors
# ---------------------------------------------------------------------------


class SimulationError(ColibriError):
    """Discrete-event simulation misuse (time going backwards, etc.)."""
