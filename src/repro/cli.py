"""Command-line interface: ``python -m repro <command>``.

Four commands for kicking the tires without writing code:

* ``demo``      — the quickstart flow with verbose per-hop output;
* ``attack``    — run one of the §5 adversaries and print the outcome;
* ``topology``  — describe a generated topology and its beaconed segments;
* ``telemetry`` — run a small workload and dump the management-plane view;
* ``trace``     — run a seeded workload with tracing on and dump the spans;
* ``health``    — the operator health report: SLO burn rates, firing
  alerts, journal statistics, and §5 overuse evidence, over a clean or
  attacked seeded scenario.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import ColibriNetwork, EndHost, HostAddr, IsdAs
from repro.topology import Beaconing, build_internet_like, build_two_isd_topology
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)


def cmd_demo(args) -> int:
    network = ColibriNetwork(build_two_isd_topology())
    print(f"deployed Colibri on {len(network.ases())} ASes")
    segments = network.reserve_segments(SRC, DST, gbps(2))
    for segr in segments:
        print(
            f"  SegR {segr.reservation_id} "
            f"({segr.segment.segment_type.value}): "
            f"{format_bandwidth(segr.bandwidth)}"
        )
    host = EndHost(network, SRC, HostAddr(1))
    socket = host.connect(DST, HostAddr(2), mbps(args.bandwidth))
    print(
        f"EER {socket.handle.reservation_id}: "
        f"{format_bandwidth(socket.reserved_bandwidth)} over "
        f"{len(socket.handle.hops)} ASes"
    )
    for index in range(args.packets):
        report = socket.send(f"packet {index}".encode())
        status = "delivered" if report.delivered else f"dropped at {report.dropped_at}"
        print(f"  packet {index}: {status}")
    return 0


def cmd_attack(args) -> int:
    from repro.attacks import ReplayAttack, SpoofingAttack

    network = ColibriNetwork(build_two_isd_topology())
    network.reserve_segments(SRC, DST, gbps(1))
    handle = network.establish_eer(SRC, DST, mbps(10))
    if args.kind == "replay":
        attack = ReplayAttack(network, vantage=IsdAs(2, BASE + 1))
        for index in range(5):
            attack.observe_delivery(network.send(SRC, handle, f"p{index}".encode()))
        outcome = attack.replay(copies=args.intensity)
        print(f"replayed {outcome.replayed}, suppressed {outcome.replays_suppressed}")
        print(f"victim framed: {outcome.victim_blocked}")
        return 0 if outcome.replays_delivered == 0 else 1
    attack = SpoofingAttack(network, victim=SRC, target=IsdAs(1, BASE + 1))
    report = attack.forge_fresh(count=args.intensity)
    print(f"forged {report.sent}, rejected {report.rejected_bad_hvf}")
    return 0 if report.all_rejected else 1


def cmd_topology(args) -> int:
    if args.shape == "two-isd":
        topology = build_two_isd_topology()
    else:
        topology = build_internet_like(isd_count=args.isds)
    print(topology)
    beaconing = Beaconing(topology)
    counts = beaconing.segment_count()
    print(f"beaconing: {counts}")
    for node in topology.ases():
        print(f"  {node}")
    return 0


def cmd_telemetry(args) -> int:
    network = ColibriNetwork(build_two_isd_topology())
    network.reserve_segments(SRC, DST, gbps(1))
    handle = network.establish_eer(SRC, DST, mbps(10))
    for _ in range(args.packets):
        network.send(SRC, handle, b"telemetry workload")
    snapshot = network.telemetry()
    if args.format == "prometheus":
        from repro.util.observability import render_metrics

        print(render_metrics(snapshot), end="")
    else:
        print(json.dumps(snapshot, indent=2))
    return 0


def cmd_trace(args) -> int:
    if args.distributed:
        return _trace_distributed(args)
    network = ColibriNetwork(build_two_isd_topology())
    obs = network.enable_observability(seed=args.seed, journal=args.events)
    network.reserve_segments(SRC, DST, gbps(1))
    handle = network.establish_eer(SRC, DST, mbps(10))
    for _ in range(args.packets):
        network.send(SRC, handle, b"trace workload")
    if args.events:
        from repro.obs.report import render_events

        print(render_events(obs), end="")
    elif args.format == "jsonl":
        print(obs.tracer.export_jsonl(), end="")
    else:
        print(obs.tracer.render_tree())
    if args.metrics:
        from repro.util.observability import render_metrics

        print(render_metrics(network.telemetry(), registry=obs.metrics), end="")
    return 0


def _trace_distributed(args) -> int:
    """A two-worker forced-process sharded pass with trace propagation:
    the parent opens the root span, each worker adopts the remote
    context, and the streams stitch into one forest
    (docs/observability.md §9)."""
    from repro.dataplane.shards import ShardExecutor
    from repro.obs.distributed import (
        TraceContext,
        merge_traces,
        render_span_forest,
        spans_jsonl,
    )
    from repro.obs.trace import TraceCollector
    from repro.util.clock import SimClock

    tracer = TraceCollector(SimClock(0.0), seed=args.seed)
    span = tracer.start("fig6.sharded_run")
    context = TraceContext.from_span(span, seed=args.seed)
    executor = ShardExecutor(
        "router", reservations=64, packets=args.packets or 256, batch=64,
        seed=args.seed, obs_seed=args.seed, trace=context,
    )
    try:
        result = executor.run(2, force_processes=True)
    finally:
        tracer.finish(span)
    merged = result.merged_telemetry(expected_workers=[0, 1])
    stitched = merge_traces(tracer.spans(), merged.spans)
    if args.format == "jsonl":
        print(spans_jsonl(stitched), end="")
    else:
        print(render_span_forest(stitched))
    if args.events:
        print(merged.events_jsonl(), end="")
    if args.metrics:
        print(merged.registry.render(), end="")
    return 0


def cmd_health(args) -> int:
    from repro.obs.report import health_report, render_health, run_health_scenario

    network, obs = run_health_scenario(seed=args.seed, attack=args.attack)
    report = health_report(network, obs)
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_health(report), end="")
    return 1 if report["firing"] else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Colibri (CoNEXT 2021) reproduction — demo CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="segments -> EER -> guaranteed packets")
    demo.add_argument("--bandwidth", type=float, default=50.0, help="EER Mbps")
    demo.add_argument("--packets", type=int, default=3)
    demo.set_defaults(handler=cmd_demo)

    attack = sub.add_parser("attack", help="run a §5 adversary")
    attack.add_argument("kind", choices=["replay", "spoofing"])
    attack.add_argument("--intensity", type=int, default=100)
    attack.set_defaults(handler=cmd_attack)

    topology = sub.add_parser("topology", help="describe a generated topology")
    topology.add_argument("--shape", choices=["two-isd", "internet"], default="two-isd")
    topology.add_argument("--isds", type=int, default=3)
    topology.set_defaults(handler=cmd_topology)

    telemetry = sub.add_parser("telemetry", help="dump the management-plane view")
    telemetry.add_argument("--packets", type=int, default=10)
    telemetry.add_argument(
        "--format", choices=["json", "prometheus"], default="json"
    )
    telemetry.set_defaults(handler=cmd_telemetry)

    trace = sub.add_parser("trace", help="dump trace spans of a seeded workload")
    trace.add_argument("--packets", type=int, default=3)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--format", choices=["tree", "jsonl"], default="tree")
    trace.add_argument(
        "--metrics",
        action="store_true",
        help="append the metrics registry in exposition format",
    )
    trace.add_argument(
        "--events",
        action="store_true",
        help="interleave journal events with the spans, chronologically",
    )
    trace.add_argument(
        "--distributed",
        action="store_true",
        help="run a 2-worker forced-process sharded pass and print the "
        "stitched cross-process span forest",
    )
    trace.set_defaults(handler=cmd_trace)

    health = sub.add_parser(
        "health", help="SLO burn rates, alerts, journal stats, overuse evidence"
    )
    health.add_argument("--seed", type=int, default=0)
    health.add_argument(
        "--attack",
        action="store_true",
        help="inject the §7.1 threat-3 overuse attacker",
    )
    health.add_argument("--format", choices=["text", "json"], default="text")
    health.set_defaults(handler=cmd_health)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
