"""Per-AS Colibri capacity: the local traffic matrix (§4.7).

"As a first step, any two neighboring ASes agree on the bandwidth
available for Colibri traffic (the traffic split in §3.4) on their
inter-domain link […]  Based on these, each AS can define a local traffic
matrix that describes the allocation of Colibri traffic between
interface pairs."

The matrix answers two questions during admission:

* :meth:`interface_capacity` — Colibri bandwidth of one interface, the
  cap in the demand-adjustment rules;
* :meth:`pair_capacity` — bandwidth the AS allocates between a specific
  ingress-egress pair, defaulting to the smaller endpoint but overridable
  per pair (an AS may reserve transit capacity asymmetrically).

Interface 0 ("no interface") is the AS-internal side — the origin of
reservations this AS initiates and the sink of those terminating here.
Its capacity defaults to the *sum* of the external interfaces: an AS can
legitimately originate up to its total egress capacity, and internal
fabric is not the contended resource the paper models.
"""

from __future__ import annotations

from typing import Optional

from repro.constants import CONTROL_SHARE, EER_SHARE
from repro.errors import TopologyError
from repro.topology.graph import NO_INTERFACE, ASNode

#: Fraction of raw link capacity available to Colibri (control + EER data);
#: the remaining 20 % is pinned to best-effort traffic (§3.4).
DEFAULT_COLIBRI_SHARE = CONTROL_SHARE + EER_SHARE


class TrafficMatrix:
    """Colibri capacities for one AS's interfaces and interface pairs."""

    def __init__(
        self,
        node: ASNode,
        colibri_share: float = DEFAULT_COLIBRI_SHARE,
        internal_capacity: Optional[float] = None,
    ):
        if not 0 < colibri_share <= 1:
            raise ValueError(f"colibri share must be in (0, 1], got {colibri_share}")
        self.node = node
        self.colibri_share = colibri_share
        self._overrides: dict[tuple, float] = {}
        self._interface_capacity: dict[int, float] = {
            ifid: link.capacity * colibri_share
            for ifid, link in node.interfaces.items()
        }
        if internal_capacity is None:
            internal_capacity = sum(self._interface_capacity.values())
        self._interface_capacity[NO_INTERFACE] = internal_capacity

    def interface_capacity(self, ifid: int) -> float:
        """Colibri bandwidth of interface ``ifid`` (bps)."""
        capacity = self._interface_capacity.get(ifid)
        if capacity is None:
            raise TopologyError(
                f"AS {self.node.isd_as} has no interface {ifid} in its traffic matrix"
            )
        return capacity

    def set_pair_capacity(self, ingress: int, egress: int, capacity: float) -> None:
        """Override the Colibri allocation for one ingress-egress pair."""
        if capacity < 0:
            raise ValueError(f"pair capacity must be non-negative, got {capacity}")
        # Validate both interfaces exist.
        self.interface_capacity(ingress)
        self.interface_capacity(egress)
        self._overrides[(ingress, egress)] = capacity

    def pair_capacity(self, ingress: int, egress: int) -> float:
        """Colibri bandwidth between an interface pair.

        Defaults to ``min(capacity(ingress), capacity(egress))`` — traffic
        through the pair can exceed neither side.
        """
        override = self._overrides.get((ingress, egress))
        if override is not None:
            return override
        return min(self.interface_capacity(ingress), self.interface_capacity(egress))

    def interfaces(self) -> list:
        return sorted(self._interface_capacity)

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix({self.node.isd_as}, share={self.colibri_share}, "
            f"{len(self._interface_capacity)} interfaces)"
        )
