"""Intra-AS admission policies for EERs (§4.7, §5.2).

"It falls to the AS in which H_S is situated to set limits on the maximum
bandwidth that H_S can request.  This intra-AS admission policy can be
defined by each AS independently."  Source and destination ASes run such
a policy; the library ships three and applications can subclass
:class:`AdmissionPolicy` for their own.

The policy is also the EER-level defense of §5.2: since source and
destination ASes "have direct business relationships with end hosts and
control their address space, they can easily define and enforce these
rules".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict

from repro.errors import PolicyDenied
from repro.topology.addresses import HostAddr


class AdmissionPolicy(ABC):
    """Decides whether a local host may hold the requested EER bandwidth."""

    @abstractmethod
    def authorize(self, host: HostAddr, requested: float) -> None:
        """Raise :class:`PolicyDenied` if the host may not have ``requested``
        additional bits per second; otherwise record the allocation."""

    @abstractmethod
    def release(self, host: HostAddr, bandwidth: float) -> None:
        """Return previously authorized bandwidth (EER expired)."""


class AllowAllPolicy(AdmissionPolicy):
    """No intra-AS restrictions — the permissive default for experiments."""

    def authorize(self, host: HostAddr, requested: float) -> None:
        if requested < 0:
            raise PolicyDenied(f"negative bandwidth request {requested}")

    def release(self, host: HostAddr, bandwidth: float) -> None:
        pass


class PerHostCapPolicy(AdmissionPolicy):
    """Caps the aggregate EER bandwidth each host may hold.

    The canonical "direct business relationship" policy: a host's plan
    entitles it to ``default_cap`` bps across all its EERs, overridable
    per host (``set_cap``) for premium customers.
    """

    def __init__(self, default_cap: float):
        if default_cap < 0:
            raise ValueError(f"default cap must be non-negative, got {default_cap}")
        self.default_cap = default_cap
        self._caps: dict[HostAddr, float] = {}
        self._in_use: dict[HostAddr, float] = defaultdict(float)

    def set_cap(self, host: HostAddr, cap: float) -> None:
        self._caps[host] = cap

    def cap_of(self, host: HostAddr) -> float:
        return self._caps.get(host, self.default_cap)

    def in_use(self, host: HostAddr) -> float:
        return self._in_use.get(host, 0.0)

    def authorize(self, host: HostAddr, requested: float) -> None:
        if requested < 0:
            raise PolicyDenied(f"negative bandwidth request {requested}")
        cap = self.cap_of(host)
        used = self._in_use[host]
        if used + requested > cap:
            raise PolicyDenied(
                f"host {host} would hold {used + requested:.0f} bps, cap is {cap:.0f}",
                granted=max(0.0, cap - used),
            )
        self._in_use[host] = used + requested

    def release(self, host: HostAddr, bandwidth: float) -> None:
        self._in_use[host] = max(0.0, self._in_use[host] - bandwidth)


class DenyListPolicy(AdmissionPolicy):
    """Wraps another policy and refuses named hosts outright.

    Models the punitive end of policing: an AS cutting off a customer
    that repeatedly overused reservations.
    """

    def __init__(self, inner: AdmissionPolicy):
        self.inner = inner
        self._denied: set = set()

    def deny(self, host: HostAddr) -> None:
        self._denied.add(host)

    def allow(self, host: HostAddr) -> None:
        self._denied.discard(host)

    def is_denied(self, host: HostAddr) -> bool:
        return host in self._denied

    def authorize(self, host: HostAddr, requested: float) -> None:
        if host in self._denied:
            raise PolicyDenied(f"host {host} is deny-listed")
        self.inner.authorize(host, requested)

    def release(self, host: HostAddr, bandwidth: float) -> None:
        self.inner.release(host, bandwidth)
