"""Bounded-tube-fairness SegR admission (§4.7, Fig. 3).

The admission algorithm "distributes the capacity among competing SegRs
proportionally to their adjusted bandwidth demand" and, per the formal
analysis the paper cites [62], guarantees that no AS or group of ASes can
reserve excessive bandwidth (botnet-size independence, §5.2).

For one request the grant is::

    ideal = adjusted * min(1, egress_capacity / total_adjusted_at_egress)
    grant = min(ideal, egress_capacity - sum_of_committed_grants)

where ``total_adjusted_at_egress`` includes the new request.  When total
adjusted demand fits in the egress, every reservation receives its full
adjusted demand; under contention, shares shrink proportionally.  The
second ``min`` keeps the hard §5.1 invariant — the sum of all grants
never exceeds capacity — at every instant.  Because a renewal excludes
the renewing reservation's own previous grant, repeated renewal rounds
converge to the proportional (tube-fair) allocation: over-granted early
arrivals shrink to their ideal share, freeing capacity that later
arrivals pick up at their next renewal.  SegRs renew every ~5 minutes
(§3.3), so convergence takes at most a couple of renewal periods.

Everything is O(1) in the number of existing SegRs: the aggregates come
from the memoized :class:`~repro.reservation.index.InterfacePairIndex`.
A ``memoize=False`` mode recomputes the aggregates from scratch on every
request, reproducing the naive O(n) behaviour for the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.admission.demands import AdjustedDemand, adjust_demand
from repro.admission.traffic_matrix import TrafficMatrix
from repro.errors import InsufficientBandwidth
from repro.reservation.ids import ReservationId
from repro.reservation.index import IndexedDemand, InterfacePairIndex
from repro.topology.addresses import IsdAs


@dataclass(frozen=True)
class SegmentGrant:
    """The admission outcome an AS records and reports upstream."""

    reservation_id: ReservationId
    demand: AdjustedDemand
    granted: float


class SegmentAdmission:
    """Per-AS SegR admission state and decision procedure."""

    def __init__(self, matrix: TrafficMatrix, memoize: bool = True):
        self.matrix = matrix
        self.memoize = memoize
        self.index = InterfacePairIndex()
        self.decisions = 0  # observability counter

    # -- decision ------------------------------------------------------------------

    def evaluate(
        self,
        reservation_id: ReservationId,
        source: IsdAs,
        ingress: int,
        egress: int,
        requested: float,
    ) -> SegmentGrant:
        """Compute the grant for a request without committing it.

        ``evaluate`` then :meth:`commit` mirrors the two phases of setup:
        the grant is computed when the request passes forward, and
        recorded when the successful response passes back (§3.3).
        """
        self.decisions += 1
        if not self.memoize:
            # Ablation: rebuild aggregates by iterating every entry, the
            # naive implementation whose cost grows linearly (DESIGN.md §5).
            self.index.recompute_from(list(self.index._entries.values()))
        # A renewal re-evaluates an existing reservation: exclude its old
        # demand from the aggregates so it competes only with others.
        previous = None
        if reservation_id in self.index:
            previous = self.index.entry(reservation_id)
            self.index.remove(reservation_id)
        try:
            demand = adjust_demand(
                self.matrix, self.index, source, ingress, egress, requested
            )
            eg_cap = self.matrix.interface_capacity(egress)
            total_adjusted = self.index.egress_adjusted(egress) + demand.adjusted
            if total_adjusted > eg_cap > 0:
                ideal = demand.adjusted * (eg_cap / total_adjusted)
            else:
                ideal = demand.adjusted
            free = max(0.0, eg_cap - self.index.egress_granted(egress))
            granted = min(ideal, free)
        finally:
            if previous is not None:
                self.index.add(previous)
        return SegmentGrant(
            reservation_id=reservation_id, demand=demand, granted=granted
        )

    def commit(self, grant: SegmentGrant) -> None:
        """Record a granted reservation in the aggregates."""
        demand = grant.demand
        self.index.add(
            IndexedDemand(
                reservation_id=grant.reservation_id,
                source=demand.source,
                ingress=demand.ingress,
                egress=demand.egress,
                capped_demand=demand.capped,
                adjusted_demand=demand.adjusted,
                granted=grant.granted,
            )
        )

    def admit(
        self,
        reservation_id: ReservationId,
        source: IsdAs,
        ingress: int,
        egress: int,
        requested: float,
        minimum: float,
    ) -> SegmentGrant:
        """Evaluate and commit in one step, enforcing the minimum.

        Raises :class:`InsufficientBandwidth` (carrying the would-be
        grant, for bottleneck diagnosis) when the grant is below the
        requested minimum.
        """
        grant = self.evaluate(reservation_id, source, ingress, egress, requested)
        if grant.granted < minimum:
            raise InsufficientBandwidth(
                f"granted {grant.granted:.0f} bps < minimum {minimum:.0f} bps "
                f"for SegR {reservation_id}",
                granted=grant.granted,
                at_as=self.matrix.node.isd_as,
            )
        self.commit(grant)
        return grant

    def release(self, reservation_id: ReservationId) -> None:
        """Remove an expired or torn-down SegR from the aggregates."""
        self.index.remove(reservation_id)

    def __len__(self) -> int:
        return len(self.index)
