"""Demand adjustment for SegR admission (§4.7).

Colibri "distributes the capacity among competing SegRs proportionally to
their adjusted bandwidth demand", where adjustment applies three caps:

1. the total demand coming from an ingress interface is limited by that
   interface's capacity;
2. the demand between an ingress and an egress interface is limited by
   the egress interface's capacity;
3. the total demand of a particular source AS at a particular egress
   interface is limited by that interface's capacity.

Rules 1 and 3 are *aggregate* caps: when the sum over all reservations
sharing an ingress (or a source-egress pair) exceeds the interface
capacity, every member's demand is scaled down proportionally.  Rule 2 is
a per-reservation cap.  The aggregates come from the memoized
:class:`~repro.reservation.index.InterfacePairIndex`, which is what makes
the whole adjustment O(1) per request.

These caps yield the *botnet-size independence* of §5.2: no matter how
many reservations an adversary (or colluding group behind one ingress)
requests, their total adjusted demand at an egress stays bounded by the
interface capacities, so the proportional share of a benign AS has a
guaranteed floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.admission.traffic_matrix import TrafficMatrix
from repro.reservation.index import InterfacePairIndex
from repro.topology.addresses import IsdAs


@dataclass(frozen=True)
class AdjustedDemand:
    """The outcome of demand adjustment for one SegR request."""

    source: IsdAs
    ingress: int
    egress: int
    requested: float
    capped: float  # after per-reservation caps (rule 2 + interface bounds)
    adjusted: float  # after aggregate scaling (rules 1 and 3)


def adjust_demand(
    matrix: TrafficMatrix,
    index: InterfacePairIndex,
    source: IsdAs,
    ingress: int,
    egress: int,
    requested: float,
) -> AdjustedDemand:
    """Apply the three adjustment rules to one new demand.

    The aggregate sums used for rules 1 and 3 include the new demand
    itself, so a single source asking for the moon still ends up bounded
    by the interface capacity rather than crowding the denominator.
    """
    if requested < 0:
        raise ValueError(f"requested bandwidth must be non-negative, got {requested}")
    in_cap = matrix.interface_capacity(ingress)
    eg_cap = matrix.interface_capacity(egress)
    pair_cap = matrix.pair_capacity(ingress, egress)

    # Rule 2 (+ physical bounds): one reservation can never exceed the
    # egress capacity, nor the pair allocation, nor its own request.
    capped = min(requested, in_cap, eg_cap, pair_cap)

    # Rule 1: scale by ingress crowding.
    ingress_total = index.ingress_demand(ingress) + capped
    ingress_factor = min(1.0, in_cap / ingress_total) if ingress_total > 0 else 1.0

    # Rule 3: scale by this source's crowding at the egress.
    source_total = index.source_demand(source, egress) + capped
    source_factor = min(1.0, eg_cap / source_total) if source_total > 0 else 1.0

    adjusted = capped * ingress_factor * source_factor
    return AdjustedDemand(
        source=source,
        ingress=ingress,
        egress=egress,
        requested=requested,
        capped=capped,
        adjusted=adjusted,
    )
