"""EER admission per AS role (§4.7, Fig. 4).

"The EER admission depends on the type of AS (§4.1)":

* **source AS** — checks the first SegR *and* its intra-AS policy;
* **transit AS** — checks only the SegR under the request ("this is
  necessary to defend against malicious source ASes, which may forward
  EEReqs for more bandwidth than available in the SegR");
* **transfer AS** — checks both SegRs it joins, and between up- and
  core-SegR distributes the core-SegR's bandwidth among competing
  up-SegRs proportionally to their demand;
* **destination AS** — same as the source AS (policy side applies to the
  destination host accepting the EER).

Every check is a constant number of O(1) reads against the reservation
store's incrementally maintained sums — the flat lines of Fig. 4.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass
from typing import Optional

from repro.admission.policy import AdmissionPolicy, AllowAllPolicy
from repro.errors import InsufficientBandwidth, ReservationError, ReservationExpired
from repro.reservation.ids import ReservationId
from repro.reservation.store import ReservationStore
from repro.topology.addresses import HostAddr, IsdAs


class AsRole(enum.Enum):
    """Position of an AS relative to an EER's path (§4.1)."""

    SOURCE = "source"
    TRANSIT = "transit"
    TRANSFER = "transfer"
    DESTINATION = "destination"


@dataclass(frozen=True)
class EerDecision:
    """Outcome of one AS's EER admission check."""

    granted: float
    role: AsRole
    segments_checked: tuple


class TransferDistributor:
    """Proportional division of a core-SegR among competing up-SegRs (§4.7).

    A transfer AS between up- and core-SegR tracks, per core-SegR, the
    total EER demand arriving from each up-SegR (capped at that up-SegR's
    bandwidth).  When the aggregate demand exceeds the core-SegR's
    capacity, each up-SegR's share shrinks to
    ``core_bw * demand(up) / total_demand``.
    """

    def __init__(self):
        # core SegR id -> (up SegR id -> accumulated capped demand)
        self._demands: dict[ReservationId, dict] = defaultdict(lambda: defaultdict(float))
        # registration key (EER id) -> ((core, up) -> applied increment).
        # The cap makes registration non-linear: the increment actually
        # applied can be smaller than the amount offered, so symmetric
        # release needs the applied value remembered per registration.
        self._registered: dict = {}

    def register_demand(
        self,
        core_segment: ReservationId,
        up_segment: ReservationId,
        amount: float,
        up_capacity: float,
        key=None,
    ) -> float:
        """Accumulate demand from ``up_segment``; returns the *applied*
        increment after the ``up_capacity`` cap.  With ``key`` (the EER
        id) the applied increment is recorded so :meth:`release_demand`
        and :meth:`release_key` can return exactly it later."""
        demands = self._demands[core_segment]
        previous = demands[up_segment]
        demands[up_segment] = min(previous + amount, up_capacity)
        applied = demands[up_segment] - previous
        if key is not None and applied > 0.0:
            pairs = self._registered.setdefault(key, {})
            pair = (core_segment, up_segment)
            pairs[pair] = pairs.get(pair, 0.0) + applied
        return applied

    def release_demand(
        self,
        core_segment: ReservationId,
        up_segment: ReservationId,
        amount: Optional[float] = None,
        key=None,
    ) -> None:
        """Return previously registered demand.

        With ``key``, exactly the increment recorded for that key on
        this (core, up) pair is released — the only release that is
        symmetric when registration hit the ``up_capacity`` cap.  The
        ``amount`` form remains for callers without a ledger entry, but
        releasing an uncapped amount against a capped registration
        under-counts surviving demand (the cap-then-release bug).
        """
        if key is not None:
            pairs = self._registered.get(key)
            if pairs is None:
                return
            amount = pairs.pop((core_segment, up_segment), 0.0)
            if not pairs:
                del self._registered[key]
        demands = self._demands.get(core_segment)
        if not demands or not amount:
            return
        demands[up_segment] = max(0.0, demands[up_segment] - amount)

    def release_key(self, key) -> float:
        """Release every registration recorded under ``key`` (the EER
        expired or aborted); returns the total demand returned.  The
        sweep calls this so quotas decay with the *live* population
        instead of accumulating demand from long-gone EERs."""
        pairs = self._registered.pop(key, None)
        if not pairs:
            return 0.0
        released = 0.0
        for (core_segment, up_segment), applied in pairs.items():
            demands = self._demands.get(core_segment)
            if not demands:
                continue
            demands[up_segment] = max(0.0, demands[up_segment] - applied)
            released += applied
        return released

    def demand(
        self, core_segment: ReservationId, up_segment: ReservationId
    ) -> float:
        """Accumulated capped demand from one up-SegR — the per-up
        ``already`` the quota check compares against its share."""
        demands = self._demands.get(core_segment)
        if not demands:
            return 0.0
        return demands.get(up_segment, 0.0)

    def total_demand(self, core_segment: ReservationId) -> float:
        return sum(self._demands.get(core_segment, {}).values())

    def quota(
        self,
        core_segment: ReservationId,
        up_segment: ReservationId,
        core_bandwidth: float,
    ) -> float:
        """Bandwidth of the core-SegR available to EERs from ``up_segment``."""
        demands = self._demands.get(core_segment, {})
        total = sum(demands.values())
        if total <= core_bandwidth:
            return core_bandwidth  # uncontended: no quota needed
        share = demands.get(up_segment, 0.0)
        return core_bandwidth * share / total if total > 0 else 0.0


class EerAdmission:
    """One AS's EER admission procedure over its reservation store."""

    def __init__(
        self,
        isd_as: IsdAs,
        store: ReservationStore,
        source_policy: Optional[AdmissionPolicy] = None,
        destination_policy: Optional[AdmissionPolicy] = None,
    ):
        self.isd_as = isd_as
        self.store = store
        self.source_policy = source_policy or AllowAllPolicy()
        self.destination_policy = destination_policy or AllowAllPolicy()
        self.distributor = TransferDistributor()
        self.decisions = 0

    # -- building blocks ---------------------------------------------------------

    def _segment_available(self, segment_id: ReservationId, now: float) -> float:
        """Free EER bandwidth on a SegR: active bandwidth minus admitted EERs."""
        segment = self.store.get_segment(segment_id)
        if segment.is_expired(now):
            raise ReservationExpired(
                f"SegR {segment_id} expired at {segment.expiry} (now {now})"
            )
        return segment.bandwidth - self.store.allocated_on_segment(segment_id)

    def _check_segment(
        self, segment_id: ReservationId, requested: float, now: float
    ) -> float:
        available = self._segment_available(segment_id, now)
        if available < requested:
            raise InsufficientBandwidth(
                f"SegR {segment_id} has {available:.0f} bps free, "
                f"EER requested {requested:.0f}",
                granted=max(0.0, available),
                at_as=self.isd_as,
            )
        return requested

    # -- the role-specific decisions (§4.7) -----------------------------------------

    def decide(
        self,
        role: AsRole,
        requested: float,
        now: float,
        segment_in: Optional[ReservationId] = None,
        segment_out: Optional[ReservationId] = None,
        host: Optional[HostAddr] = None,
        core_contention: bool = False,
        flow: Optional[ReservationId] = None,
    ) -> EerDecision:
        """Run the admission check for this AS's role on the request path.

        ``segment_in``/``segment_out`` name the SegR the request arrives
        on and departs on; source ASes only have ``segment_out``,
        destinations only ``segment_in``, transits exactly one of the two
        (the same SegR), transfers both.  With ``core_contention`` a
        transfer AS additionally applies the proportional up-SegR quota
        against the outgoing core-SegR; ``flow`` (the EER id) keys the
        demand registration so its exact capped increment can be
        released when the EER fails, aborts, or expires.
        """
        self.decisions += 1
        checked = []
        if role is AsRole.SOURCE:
            if host is not None:
                self.source_policy.authorize(host, requested)
            try:
                granted = self._check_segment(segment_out, requested, now)
            except ReservationError:
                # Expired/unknown SegR or insufficient bandwidth: undo the
                # policy charge before propagating the denial.
                if host is not None:
                    self.source_policy.release(host, requested)
                raise
            checked.append(segment_out)
        elif role is AsRole.TRANSIT:
            segment = segment_in if segment_in is not None else segment_out
            granted = self._check_segment(segment, requested, now)
            checked.append(segment)
        elif role is AsRole.TRANSFER:
            granted = self._check_segment(segment_in, requested, now)
            checked.append(segment_in)
            # The outgoing core-SegR is checked *before* any demand is
            # registered: a denial here used to leave the registration
            # behind, permanently shrinking other up-SegRs' quotas.
            granted = min(granted, self._check_segment(segment_out, requested, now))
            checked.append(segment_out)
            if core_contention:
                up_segment = self.store.get_segment(segment_in)
                core_segment = self.store.get_segment(segment_out)
                quota = self.distributor.quota(
                    segment_out, segment_in, core_segment.bandwidth
                )
                # `already` is this up-SegR's own accumulated demand, not
                # the whole core-SegR's allocation: §4.7 divides the core
                # among up-SegRs by *their* demand, so one up-SegR's
                # backlog must not consume another's share.
                already = self.distributor.demand(segment_out, segment_in)
                if requested > quota - min(already, quota):
                    raise InsufficientBandwidth(
                        f"up-SegR {segment_in} quota on core-SegR {segment_out} "
                        f"is {quota:.0f} bps",
                        granted=max(0.0, quota - already),
                        at_as=self.isd_as,
                    )
                self.distributor.register_demand(
                    segment_out, segment_in, requested, up_segment.bandwidth,
                    key=flow,
                )
        elif role is AsRole.DESTINATION:
            if host is not None:
                self.destination_policy.authorize(host, requested)
            try:
                granted = self._check_segment(segment_in, requested, now)
            except ReservationError:
                # Same roll-back as the source side (§4.7).
                if host is not None:
                    self.destination_policy.release(host, requested)
                raise
            checked.append(segment_in)
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown role {role}")
        return EerDecision(granted=granted, role=role, segments_checked=tuple(checked))

    def commit(
        self, eer_id: ReservationId, decision: EerDecision, bandwidth: float
    ) -> None:
        """Record the admitted EER's bandwidth on every checked SegR."""
        for segment_id in decision.segments_checked:
            self.store.allocate_on_segment(segment_id, eer_id, bandwidth)

    # -- renewals (§4.2) ----------------------------------------------------------

    def renew_delta(
        self,
        eer_id: ReservationId,
        segment_ids,
        new_bandwidth: float,
        now: float,
        role: AsRole = AsRole.TRANSIT,
    ) -> EerDecision:
        """Incremental renewal: recompute the EER's allocation in place.

        A renewal is not a new admission — the EER already occupies
        bandwidth on every SegR it rides, and versions share that budget
        (§4.2).  Instead of releasing and re-admitting through the full
        role dispatch, each SegR offers ``current allocation + free
        bandwidth``; the grant is the request capped at the minimum
        offer across segments.  Two O(1) store reads per SegR, no
        mutation, and by construction the grant never falls below what a
        segment can absorb in place — an AS that cannot cover the full
        growth makes a *partial* grant ("all on-path ASes can specify
        the amount of bandwidth they are willing to grant", §4.2)
        instead of failing the renewal.

        Raises :class:`ReservationExpired` when a SegR is dead and
        :class:`ReservationNotFound` when one is unknown; grants of 0.0
        mean the EER survives at whatever it already holds.
        """
        self.decisions += 1
        offered = new_bandwidth
        for segment_id in segment_ids:
            current = self.store.eer_allocation(segment_id, eer_id)
            headroom = current + self._segment_available(segment_id, now)
            offered = min(offered, headroom)
        return EerDecision(
            granted=max(0.0, offered),
            role=role,
            segments_checked=tuple(segment_ids),
        )

    def commit_renewal(
        self, eer_id: ReservationId, decision: EerDecision, granted: float
    ) -> None:
        """Apply a renewal grant: raise each segment's allocation to the
        granted amount, never shrinking below what already runs (older
        versions stay live until they expire on their own, §4.2)."""
        for segment_id in decision.segments_checked:
            current = self.store.eer_allocation(segment_id, eer_id)
            if granted > current:
                self.store.allocate_on_segment(segment_id, eer_id, granted)
