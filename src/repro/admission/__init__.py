"""Admission control: traffic matrices, demand adjustment, tube fairness,
EER admission per AS role, and intra-AS policies (§4.7)."""

from repro.admission.demands import AdjustedDemand, adjust_demand
from repro.admission.eer_admission import EerAdmission, TransferDistributor
from repro.admission.policy import (
    AdmissionPolicy,
    AllowAllPolicy,
    DenyListPolicy,
    PerHostCapPolicy,
)
from repro.admission.traffic_matrix import TrafficMatrix
from repro.admission.tube_fairness import SegmentAdmission

__all__ = [
    "TrafficMatrix",
    "AdjustedDemand",
    "adjust_demand",
    "SegmentAdmission",
    "EerAdmission",
    "TransferDistributor",
    "AdmissionPolicy",
    "AllowAllPolicy",
    "DenyListPolicy",
    "PerHostCapPolicy",
]
