"""Internet-scale scenario campaigns (ROADMAP: "Internet-scale
scenario campaigns"; paper §7's adversarial mixes at AS-graph scale).

A *campaign* is a declarative, seeded, injected-clock schedule of
phases — a time-compressed "day" of an inter-domain deployment, where a
few hundred simulated seconds stand in for hours of wall time by
scaling arrival rates instead of the clock.  Each :class:`Phase` mixes

* honest churn (:class:`WorkloadSpec` → :class:`~repro.sim.workload.EerWorkload`),
* renewal storms (:class:`RenewalStormSpec` — synchronized EER cohorts
  all hitting their renewal window together),
* §4.8 adversaries (:class:`OveruseSpec` — a rogue gateway stamping
  valid HVFs above the reserved rate; :class:`BogusSpec` — forged-HVF
  DDoS floods fired straight at a victim border router),
* control-plane faults (:class:`FaultSpec` — deterministic link loss
  creating partial partitions the retry/breaker layer must ride out),

over a shared :class:`~repro.sim.events.EventLoop`.  Between phases the
runner evaluates soak-style **invariant checkers**:

* *accounting conservation* — :meth:`ColibriNetwork.audit` finds no
  allocation drift, over-allocation, or orphaned EERs;
* *identity-verified policing* — no source is blocklisted or denied
  without at least one journal event whose verdict carried a
  cryptographically verified identity (``drop_overuse`` with
  ``identity_verified=True``) or a monitor confirmation;
* *journal boundedness* — the flight recorder never wrapped, so the
  export is complete evidence;

and at the end of the run, *SLO replay equivalence*: the live
:class:`~repro.obs.slo.AlertEngine`'s transition sequence must be
byte-for-byte reproducible by :func:`~repro.obs.slo.replay_journal`
over the exported journal at the recorded tick times.  Everything is
driven by one seed, so a campaign is a reproducible experiment: same
seed ⇒ byte-identical journal JSONL and identical SLO transitions.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.constants import EER_LIFETIME
from repro.control.renewal import RenewalScheduler
from repro.control.rpc import FaultInjector, LinkFaults
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.shards import ShardExecutor
from repro.errors import ColibriError
from repro.obs import ObsContext
from repro.obs.distributed import TelemetryGapError, TraceContext
from repro.obs.events import (
    MONITOR_CONFIRMED_OVERUSE,
    SHARD_COMPLETED,
    VERDICT_DROPPED,
    merge_events,
    parse_jsonl,
)
from repro.obs.sampling import SamplingProfiler
from repro.obs.slo import AlertEngine, SLOSpec, event_counter_name, replay_journal
from repro.packets.colibri import ColibriPacket
from repro.packets.fields import EerInfo, PathField, ResInfo
from repro.packets.wire import PacketArena
from repro.reservation.ids import ReservationId
from repro.sim.events import EventLoop
from repro.sim.scenario import ColibriNetwork
from repro.sim.traffic import BogusColibriSource, OverusingSource
from repro.sim.workload import EerWorkload
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.graph import Topology
from repro.util.clock import SimClock
from repro.util.memsize import deep_size
from repro.util.units import gbps

#: Extra simulated time appended to a draining phase so retired sessions'
#: EERs expire (one lifetime) and housekeeping provably reclaims them.
DRAIN_MARGIN = EER_LIFETIME * 1.25 + 1.0

#: Cadence of the campaign-wide renewal keep-alive (SegR tubes and
#: attack/storm EERs tracked in per-AS RenewalSchedulers).
RENEWAL_TICK = 1.0


# -- declarative specs ---------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """Honest Poisson EER churn between one AS pair (one
    :class:`~repro.sim.workload.EerWorkload` per phase instance)."""

    source: IsdAs
    destination: IsdAs
    arrival_rate: float = 2.0
    mean_holding: float = 30.0
    min_bandwidth: float = 1e5
    max_bandwidth: float = 1e7


@dataclass(frozen=True)
class OveruseSpec:
    """A rogue source AS overusing its own valid EER (§4.8, threat 3).

    The attacker holds a legitimate reservation of ``bandwidth`` but
    stamps ``factor``× that rate through its own (non-monitoring)
    gateway; downstream routers must OFD-flag, confirm, blocklist, and
    report it.
    """

    source: IsdAs
    destination: IsdAs
    bandwidth: float = 1e6
    factor: float = 4.0
    packet_bytes: int = 500
    tick: float = 0.05


@dataclass(frozen=True)
class BogusSpec:
    """Forged-HVF Colibri flood at one victim border router (threat 2).

    These packets reference no stored reservation, so they are fired at
    the victim's router directly — exactly what an adversary outside the
    reservation system can do.
    """

    attacker: IsdAs
    victim: IsdAs
    rate: float = 8e6  # bits/second offered
    packet_bytes: int = 500
    path_pairs: tuple = ((0, 1), (2, 0))
    tick: float = 0.05


@dataclass(frozen=True)
class RenewalStormSpec:
    """A cohort of EERs established at phase start in one instant.

    Because they share a birth time they share expiry, so every
    ``EER_LIFETIME - eer_lead`` seconds the whole cohort renews in the
    same scheduler tick — the storm the PR 7 control plane must absorb.
    """

    source: IsdAs
    destination: IsdAs
    count: int = 100
    bandwidth: float = 1e5


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic link loss for the phase (partial partition).

    ``pairs`` are ``(caller, dest)`` with ``None`` as wildcard, exactly
    as :meth:`FaultInjector.set_link` takes them.  Faults are applied at
    phase start and cleared when the phase's active window ends, so the
    drain window observes the healing (breakers closing again).
    """

    pairs: Tuple[Tuple[Optional[IsdAs], Optional[IsdAs]], ...]
    request_loss: float = 1.0
    response_loss: float = 0.0
    latency: float = 0.0


@dataclass(frozen=True)
class ShardSoakSpec:
    """A short forced-process sharded data-plane soak run after the
    last phase — the campaign's cross-process telemetry leg.

    Each worker process runs its own obs shard (tracer/registry/journal
    seeded ``campaign seed + shard index``) under a
    :class:`~repro.obs.distributed.TraceContext` minted from the
    campaign tracer's ``campaign.shard_soak`` span, so the workers'
    spans stitch into the campaign's own trace, and streams its capture
    home as sequence-numbered telemetry frames.  The merged worker
    journal lands in the ``journal.jsonl`` artifact; SLO replay keeps
    reading the parent-only export (worker events ride a private
    workload clock, so replaying them against campaign tick times would
    be meaningless).
    """

    component: str = "router"
    shards: int = 2
    reservations: int = 256
    packets: int = 2048
    batch: int = 64


@dataclass(frozen=True)
class Phase:
    """One segment of the campaign timeline."""

    name: str
    duration: float
    workloads: Tuple[WorkloadSpec, ...] = ()
    overuse: Tuple[OveruseSpec, ...] = ()
    bogus: Tuple[BogusSpec, ...] = ()
    storms: Tuple[RenewalStormSpec, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    housekeeping_every: float = 5.0
    slo_every: float = 1.0
    #: Append a drain window (``DRAIN_MARGIN``) where arrivals stop,
    #: sessions retire, and housekeeping reclaims the expired state —
    #: the teardown half of a flash crowd.  Phases that hand their churn
    #: to an immediately following phase set this False.
    drain: bool = True


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded campaign: topology factory + phase timeline."""

    name: str
    topology: Callable[[], Topology]
    phases: Tuple[Phase, ...]
    seed: int = 0
    journal_capacity: int = 1 << 20
    compact_dataplane: bool = True
    #: Bandwidth of the pre-reserved SegR "tubes" under every used pair.
    #: Sized for tier-decayed CAIDA-like access links: several tubes must
    #: fit the reservable share of a ~2.5 Gbps deep leaf uplink.
    segr_bandwidth: float = 2e8
    slos: Callable[[], Tuple[SLOSpec, ...]] = None  # default: campaign_slos
    #: Optional post-phase sharded soak with cross-process telemetry
    #: streaming and an in-parent sampled wire pass; ``None`` skips
    #: both and leaves the campaign exactly as before.
    shard_soak: Optional[ShardSoakSpec] = None


def campaign_slos() -> Tuple[SLOSpec, ...]:
    """The campaign SLO catalog — deliberately journal-only.

    Every spec references only ``events_*_total`` counters (present both
    in the live registry via journal gauges and in the registry
    :func:`~repro.obs.slo.registry_from_events` rebuilds), which is what
    makes the live-vs-replay equivalence invariant checkable at all.
    ``default_slos`` by contrast reads wall-latency histograms and live
    telemetry gauges that no journal export can reconstruct.
    """
    return (
        # Router drops should stay a small fraction of all recorded
        # events; a DDoS phase drives this into pending/firing and the
        # drain should resolve it.
        SLOSpec.ratio(
            "campaign_drop_burn",
            numerator=event_counter_name(VERDICT_DROPPED),
            denominator="events_total",
            objective=0.60,
        ),
        # Confirmed overuse is rare by design; any sustained confirmation
        # stream means the policing pipeline is hot.
        SLOSpec.ratio(
            "campaign_overuse_burn",
            numerator=event_counter_name(MONITOR_CONFIRMED_OVERUSE),
            denominator="events_total",
            objective=0.98,
        ),
        # Breaker flips trace control-plane instability (partitions).
        SLOSpec.ratio(
            "campaign_breaker_churn",
            numerator=event_counter_name("BreakerTransition"),
            denominator="events_total",
            objective=0.95,
        ),
    )


# -- results -------------------------------------------------------------------


@dataclass
class PhaseReport:
    """What one phase did and what state it left behind."""

    name: str
    started: float
    ended: float
    stats: Dict[str, int] = field(default_factory=dict)
    attack_verdicts: Dict[str, int] = field(default_factory=dict)
    renewals: Dict[str, int] = field(default_factory=dict)
    telemetry: Dict[str, float] = field(default_factory=dict)
    memory: Dict[str, float] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)


@dataclass
class CampaignResult:
    """Everything a campaign run produced, artifact-ready."""

    name: str
    seed: int
    phase_reports: List[PhaseReport]
    journal_jsonl: str
    slo_times: List[float]
    transitions: List[tuple]
    replay_transitions: List[tuple]
    violations: List[str]
    #: Shard-soak workers' journal events in interchange form (identity
    #: order, byte-identical across same-seed runs); merged into the
    #: ``journal.jsonl`` artifact while :attr:`journal_jsonl` stays
    #: parent-only for SLO replay.
    worker_journal_jsonl: str = ""
    #: Per-worker telemetry-stream bookkeeping:
    #: ``{worker_id: {"frames": n, "spans": n, "events": n}}``.
    worker_streams: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Wire-path sampling-profiler snapshot from the in-parent sampled
    #: pass (empty when the campaign ran without a shard soak).
    sampling: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def replay_equivalent(self) -> bool:
        return self.transitions == self.replay_transitions

    def summary(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "ok": self.ok,
            "violations": self.violations,
            "replay_equivalent": self.replay_equivalent,
            "slo_transitions": [list(t) for t in self.transitions],
            "worker_streams": {
                str(worker_id): dict(counts)
                for worker_id, counts in sorted(self.worker_streams.items())
            },
            # Only the deterministic head of the profiler snapshot: the
            # stage timings are real wall durations and live in the
            # sampling.json artifact, keeping summary.json byte-stable.
            "sampling": {
                key: self.sampling[key]
                for key in ("every", "total_bursts", "sampled_bursts")
                if key in self.sampling
            },
            "phases": [
                {
                    "name": report.name,
                    "started": report.started,
                    "ended": report.ended,
                    "stats": report.stats,
                    "attack_verdicts": report.attack_verdicts,
                    "renewals": report.renewals,
                    "telemetry": report.telemetry,
                    "memory": report.memory,
                    "violations": report.violations,
                }
                for report in self.phase_reports
            ],
        }

    def write_artifacts(self, directory) -> Path:
        """Write the per-campaign artifact set under ``directory/name``.

        * ``journal.jsonl`` — the full exported flight recording,
          including the shard-soak workers' streamed events (merged by
          event identity, so the artifact is the *complete* evidence
          set even though SLO replay reads the parent-only export);
        * ``slo_replay.json`` — tick times, live + replayed transitions,
          and the equivalence verdict;
        * ``summary.json`` — phase reports and violations;
        * ``sampling.json`` — the wire-path sampling-profiler snapshot,
          when the campaign ran one;

        and append one row to ``directory/memory_footprint.txt`` so CI
        can track that reservation state stays sublinear in flows.
        """
        root = Path(directory)
        target = root / self.name
        target.mkdir(parents=True, exist_ok=True)
        journal_text = self.journal_jsonl
        if self.worker_journal_jsonl:
            merged = merge_events(
                parse_jsonl(self.journal_jsonl),
                parse_jsonl(self.worker_journal_jsonl),
            )
            journal_text = "".join(
                json.dumps(event.to_dict(), sort_keys=True) + "\n"
                for event in merged
            )
        (target / "journal.jsonl").write_text(journal_text)
        if self.sampling:
            (target / "sampling.json").write_text(
                json.dumps(self.sampling, sort_keys=True, indent=2) + "\n"
            )
        (target / "slo_replay.json").write_text(
            json.dumps(
                {
                    "times": self.slo_times,
                    "live_transitions": [list(t) for t in self.transitions],
                    "replay_transitions": [
                        list(t) for t in self.replay_transitions
                    ],
                    "equivalent": self.replay_equivalent,
                },
                sort_keys=True,
                indent=2,
            )
            + "\n"
        )
        (target / "summary.json").write_text(
            json.dumps(self.summary(), sort_keys=True, indent=2) + "\n"
        )
        footprint = root / "memory_footprint.txt"
        arrivals = sum(r.stats.get("arrivals", 0) for r in self.phase_reports)
        peak = max(
            (r.memory.get("store_bytes", 0.0) for r in self.phase_reports),
            default=0.0,
        )
        live = self.phase_reports[-1].memory.get("live_eers", 0.0) if (
            self.phase_reports
        ) else 0.0
        with footprint.open("a") as handle:
            handle.write(
                f"{self.name:>24} | arrivals {arrivals:>9} | "
                f"peak store {peak / 1024:>9.0f}KB | final live EERs {live:>7.0f}\n"
            )
        return target


# -- invariant checkers --------------------------------------------------------


def check_accounting(runner: "CampaignRunner") -> List[str]:
    """PR 7 ledger conservation: the cross-AS audit must be clean."""
    return runner.network.audit()


def check_journal_bounded(runner: "CampaignRunner") -> List[str]:
    """The flight recorder must not have wrapped: an evicted event would
    silently break both forensics and replay equivalence."""
    journal = runner.network.obs.journal if runner.network.obs else None
    if journal is None:
        return ["journal not enabled"]
    stats = journal.stats()
    if stats["dropped"]:
        return [
            f"journal wrapped: dropped {stats['dropped']} of "
            f"{stats['total']} events (capacity {stats['capacity']})"
        ]
    return []


def check_identity_verified_policing(runner: "CampaignRunner") -> List[str]:
    """No punitive verdict without identity-verified evidence (§4.6/§4.8).

    Every blocklisted source and every CServ-denied source must be
    backed by at least one journal event that established the offender's
    identity cryptographically: a ``drop_overuse`` verdict with
    ``identity_verified=True``, or a monitor confirmation joined back to
    an identity-verified drop of the same flow.
    """
    obs = runner.network.obs
    journal = obs.journal if obs is not None else None
    if journal is None:
        return ["journal not enabled"]
    verified_sources = set()
    verified_flows = set()
    confirmed_flows = set()
    for event in journal.events():
        if event.type == VERDICT_DROPPED and event.attrs.get("identity_verified"):
            verified_sources.add(event.attrs.get("src_as"))
            verified_flows.add(event.attrs.get("flow"))
        elif event.type == MONITOR_CONFIRMED_OVERUSE:
            confirmed_flows.add(event.attrs.get("flow"))
    violations = []
    if not confirmed_flows <= verified_flows:
        # A monitor only confirms flows whose packets authenticated; a
        # confirmation with no verified drop means evidence is missing.
        for flow in sorted(confirmed_flows - verified_flows):
            violations.append(
                f"monitor confirmed flow {flow} without an identity-verified drop"
            )
    for isd_as, stack in runner.network._stacks.items():
        for source in stack.router.blocklist.blocked_ases():
            if str(source) not in verified_sources:
                violations.append(
                    f"{isd_as}: blocklisted {source} without identity-verified evidence"
                )
        for source in stack.cserv.denied_sources:
            if str(source) not in verified_sources:
                violations.append(
                    f"{isd_as}: denied {source} without identity-verified evidence"
                )
    return violations


def check_no_residual_eers(runner: "CampaignRunner") -> List[str]:
    """After a fully drained campaign, every EER must be gone: sessions
    retired, reservations expired, stores swept.  Residue here is the
    accounting leak the flash-crowd teardown exists to catch."""
    violations = []
    for isd_as, stack in runner.network._stacks.items():
        count = stack.cserv.store.eer_count()
        if count:
            violations.append(f"{isd_as}: {count} residual EERs after drain")
    return violations


def check_worker_streams(runner: "CampaignRunner") -> List[str]:
    """Every shard-soak worker must have streamed a complete telemetry
    sequence home (§7.1 forensics across the process boundary).

    An absent stream, a gapped or truncated frame sequence (the
    assembler's sequence-number check), or a worker whose journal never
    recorded its ``ShardCompleted`` event all mean the merged
    ``journal.jsonl`` artifact is silently missing evidence.
    """
    soak = runner.spec.shard_soak
    if soak is None:
        return []
    if runner._soak_error is not None:
        return [f"worker telemetry stream defect: {runner._soak_error}"]
    merged = runner._soak_telemetry
    if merged is None:
        return ["shard soak produced no telemetry frames"]
    completed = {
        event.attrs.get("shard_index")
        for event in merged.events
        if event.type == SHARD_COMPLETED
    }
    violations = []
    for worker_id in range(soak.shards):
        if not runner._worker_streams.get(worker_id, {}).get("frames"):
            violations.append(f"worker {worker_id}: no telemetry frames")
        elif worker_id not in completed:
            violations.append(
                f"worker {worker_id}: journal stream carries no "
                f"{SHARD_COMPLETED} event"
            )
    return violations


#: Evaluated after every phase.
PHASE_CHECKERS: Tuple[Tuple[str, Callable], ...] = (
    ("accounting", check_accounting),
    ("journal_bounded", check_journal_bounded),
    ("identity_verified_policing", check_identity_verified_policing),
)

#: Evaluated once after the final phase.
FINAL_CHECKERS: Tuple[Tuple[str, Callable], ...] = (
    ("no_residual_eers", check_no_residual_eers),
    ("worker_streams", check_worker_streams),
)

#: Final checkers that are only meaningful after a fully drained
#: campaign (a non-draining final phase legitimately leaves live EERs).
DRAIN_ONLY_FINAL = (check_no_residual_eers,)


# -- the runner ----------------------------------------------------------------


class CampaignRunner:
    """Executes one :class:`CampaignSpec` deterministically."""

    def __init__(self, spec: CampaignSpec):
        self.spec = spec
        self.network: Optional[ColibriNetwork] = None
        self.loop: Optional[EventLoop] = None
        self.faults = FaultInjector(seed=spec.seed + 1)
        self._rng = random.Random(spec.seed)
        self._schedulers: Dict[IsdAs, RenewalScheduler] = {}
        self._slo_times: List[float] = []
        self._engine: Optional[AlertEngine] = None
        # Workloads and attack/storm EER handles live until the next
        # draining phase, not just to the end of the phase that started
        # them — a flash crowd's baseline churn keeps running under the
        # surge.  Stats are reported per phase as deltas.
        self._live_workloads: List[EerWorkload] = []
        self._reported: Dict[int, Dict[str, int]] = {}
        self._tracked_handles: List[Tuple[IsdAs, object]] = []
        # Shard-soak results (populated only when spec.shard_soak is set).
        self._soak_telemetry = None
        self._soak_error: Optional[str] = None
        self._worker_streams: Dict[int, Dict[str, int]] = {}
        self._sampling: dict = {}

    # -- wiring ----------------------------------------------------------------

    def _scheduler(self, isd_as: IsdAs) -> RenewalScheduler:
        scheduler = self._schedulers.get(isd_as)
        if scheduler is None:
            scheduler = RenewalScheduler(self.network.cserv(isd_as))
            self._schedulers[isd_as] = scheduler
        return scheduler

    def _pairs(self) -> List[Tuple[IsdAs, IsdAs]]:
        """Every (src, dst) AS pair any phase touches, in spec order."""
        pairs: List[Tuple[IsdAs, IsdAs]] = []
        seen = set()
        for phase in self.spec.phases:
            for group in (phase.workloads, phase.storms, phase.overuse):
                for item in group:
                    pair = (item.source, item.destination)
                    if pair not in seen:
                        seen.add(pair)
                        pairs.append(pair)
        return pairs

    def _setup(self) -> None:
        net = ColibriNetwork(
            self.spec.topology(),
            faults=self.faults,
            compact_dataplane=self.spec.compact_dataplane,
        )
        self.network = net
        self.loop = EventLoop(net.clock)
        obs = net.enable_observability(
            seed=self.spec.seed,
            journal=True,
            journal_capacity=self.spec.journal_capacity,
            perf=net.clock,
        )
        slo_factory = self.spec.slos or campaign_slos
        self._engine = AlertEngine(slo_factory()).watch(obs.metrics, net.clock)
        # Pre-reserve the SegR tubes every used pair rides, and keep
        # them alive for the whole campaign horizon.
        for source, destination in self._pairs():
            for segment_reservation in net.reserve_segments(
                source, destination, self.spec.segr_bandwidth
            ):
                initiator = segment_reservation.reservation_id.src_as
                self._scheduler(initiator).track_segment(
                    segment_reservation.reservation_id,
                    bandwidth=self.spec.segr_bandwidth,
                )

    def _tick_slo(self) -> None:
        self._slo_times.append(self.network.clock.now())
        self._engine.tick()

    def _tick_renewals(self) -> None:
        for scheduler in self._schedulers.values():
            scheduler.tick()

    # -- attack pumps ----------------------------------------------------------

    def _pump_overuse(
        self, source: OverusingSource, tick: float, verdicts: Dict[str, int]
    ) -> None:
        now = self.network.clock.now()
        for packet in source.packets(now, tick):
            report = self.network.forward(packet)
            for _, verdict in report.verdicts:
                verdicts[verdict.value] = verdicts.get(verdict.value, 0) + 1

    def _pump_bogus(
        self, source: BogusColibriSource, victim: IsdAs, tick: float,
        verdicts: Dict[str, int],
    ) -> None:
        now = self.network.clock.now()
        router = self.network.router(victim)
        for packet in router.process_batch(list(source.packets(now, tick))):
            verdicts[packet.verdict.value] = (
                verdicts.get(packet.verdict.value, 0) + 1
            )

    # -- the shard soak --------------------------------------------------------

    #: Shape of the in-parent sampled wire pass: small enough to stay
    #: campaign-smoke cheap, long enough for several profiler samples
    #: at the default 1-in-16 rate.
    WIRE_SAMPLE_RESERVATIONS = 16
    WIRE_SAMPLE_BURSTS = 64
    WIRE_SAMPLE_PATH = 4

    def _run_shard_soak(self) -> None:
        """The post-phase forced-process sharded soak: worker obs shards
        adopt a trace context minted under the campaign tracer, so their
        spans stitch into the campaign's own trace, and their journals
        ride home as sequence-numbered telemetry frames."""
        soak = self.spec.shard_soak
        obs = self.network.obs
        tracer = obs.tracer if obs is not None else None
        span = None
        ctx = None
        if tracer is not None:
            span = tracer.start(
                "campaign.shard_soak",
                {"component": soak.component, "shards": soak.shards},
            )
            ctx = TraceContext.from_span(span, seed=self.spec.seed)
        executor = ShardExecutor(
            soak.component,
            reservations=soak.reservations,
            packets=soak.packets,
            batch=soak.batch,
            seed=self.spec.seed,
            obs_seed=self.spec.seed,
            trace=ctx,
        )
        try:
            result = executor.run(soak.shards, force_processes=True)
        finally:
            if tracer is not None:
                tracer.finish(span)
        streams: Dict[int, Dict[str, int]] = {}
        for outcome in result.shards:
            for frame in outcome.frames:
                row = streams.setdefault(
                    frame.worker_id, {"frames": 0, "spans": 0, "events": 0}
                )
                row["frames"] += 1
                row["spans"] += len(frame.spans)
                row["events"] += len(frame.events)
        self._worker_streams = streams
        try:
            self._soak_telemetry = result.merged_telemetry(
                expected_workers=list(range(soak.shards))
            )
        except TelemetryGapError as error:
            self._soak_error = str(error)
        self._sampling = self._sampled_wire_pass()

    def _sampled_wire_pass(self) -> dict:
        """A short in-parent ``send_batch_wire`` pass with the wire-path
        sampling profiler armed, so every campaign artifact set carries
        a per-stage latency snapshot of the zero-copy fast path.  The
        gateway is private and disposable — the pass never touches the
        campaign network's accounting."""
        batch = self.spec.shard_soak.batch
        clock = SimClock(1000.0)
        gateway = ColibriGateway(_WIRE_SAMPLE_AS, clock)
        rng = random.Random(self.spec.seed)
        pairs = (
            [(0, 1)] + [(2, 3)] * (self.WIRE_SAMPLE_PATH - 2) + [(4, 0)]
        )
        path = PathField(tuple(pairs))
        eer_info = EerInfo(HostAddr(1), HostAddr(2))
        expiry = clock.now() + EER_LIFETIME * 1000
        ids = []
        for index in range(self.WIRE_SAMPLE_RESERVATIONS):
            res_id = ReservationId(_WIRE_SAMPLE_AS, index + 1)
            res_info = ResInfo(
                reservation=res_id,
                bandwidth=gbps(1000),
                expiry=expiry,
                version=1,
            )
            hop_auths = tuple(
                rng.getrandbits(128).to_bytes(16, "big")
                for _ in range(self.WIRE_SAMPLE_PATH)
            )
            gateway.install(res_id, path, eer_info, res_info, hop_auths)
            ids.append(res_id)
        obs = ObsContext.create(clock, seed=self.spec.seed)
        obs.sampler = SamplingProfiler()
        gateway.obs = obs
        arena = PacketArena(
            slots=batch,
            slot_size=ColibriPacket.header_size_for(self.WIRE_SAMPLE_PATH),
        )
        for _ in range(self.WIRE_SAMPLE_BURSTS):
            requests = [
                (ids[rng.randrange(len(ids))], b"") for _ in range(batch)
            ]
            gateway.send_batch_wire(requests, arena)
            clock.advance(1e-6)
        return obs.sampler.snapshot()

    # -- the run ---------------------------------------------------------------

    def run(self) -> CampaignResult:
        self._setup()
        net, loop = self.network, self.loop
        phase_reports: List[PhaseReport] = []
        all_violations: List[str] = []

        for phase_index, phase in enumerate(self.spec.phases):
            start = net.clock.now()
            active_end = start + phase.duration
            phase_end = active_end + (DRAIN_MARGIN if phase.drain else 0.0)

            for fault_spec in phase.faults:
                for caller, dest in fault_spec.pairs:
                    self.faults.set_link(
                        caller,
                        dest,
                        LinkFaults(
                            request_loss=fault_spec.request_loss,
                            response_loss=fault_spec.response_loss,
                            latency=fault_spec.latency,
                        ),
                    )

            for workload_spec in phase.workloads:
                workload = EerWorkload(
                    net,
                    loop,
                    workload_spec.source,
                    workload_spec.destination,
                    arrival_rate=workload_spec.arrival_rate,
                    mean_holding=workload_spec.mean_holding,
                    min_bandwidth=workload_spec.min_bandwidth,
                    max_bandwidth=workload_spec.max_bandwidth,
                    seed=self._rng.randrange(1 << 31),
                )
                workload.start()
                self._live_workloads.append(workload)

            storm_failures = 0
            for storm in phase.storms:
                cserv = net.cserv(storm.source)
                scheduler = self._scheduler(storm.source)
                for index in range(storm.count):
                    try:
                        handle = cserv.setup_eer(
                            storm.destination,
                            # Distinct src hosts so each EER is its own flow.
                            _host(index + 1),
                            _host(1),
                            storm.bandwidth,
                        )
                    except ColibriError:
                        storm_failures += 1
                        continue
                    scheduler.track_eer(handle)
                    self._tracked_handles.append((storm.source, handle))

            attack_verdicts: Dict[str, int] = {}
            for overuse_spec in phase.overuse:
                cserv = net.cserv(overuse_spec.source)
                handle = cserv.setup_eer(
                    overuse_spec.destination,
                    _host(9000 + phase_index),
                    _host(1),
                    overuse_spec.bandwidth,
                )
                self._scheduler(overuse_spec.source).track_eer(handle)
                self._tracked_handles.append((overuse_spec.source, handle))
                source = OverusingSource(
                    net.gateway(overuse_spec.source),
                    handle,
                    overuse_spec.bandwidth * overuse_spec.factor,
                    overuse_spec.packet_bytes,
                )
                loop.every(
                    overuse_spec.tick,
                    lambda s=source, t=overuse_spec.tick: self._pump_overuse(
                        s, t, attack_verdicts
                    ),
                    until=active_end,
                )

            for bogus_spec in phase.bogus:
                source = BogusColibriSource(
                    bogus_spec.attacker,
                    bogus_spec.path_pairs,
                    bogus_spec.rate,
                    bogus_spec.packet_bytes,
                    # A plausible (encodable) expiry: the forgeries must
                    # fail HVF verification, not timestamp validation.
                    expiry=active_end + EER_LIFETIME,
                    seed=self._rng.randrange(1 << 31),
                )
                loop.every(
                    bogus_spec.tick,
                    lambda s=source, v=bogus_spec.victim,
                    t=bogus_spec.tick: self._pump_bogus(
                        s, v, t, attack_verdicts
                    ),
                    until=active_end,
                )

            loop.every(
                phase.housekeeping_every,
                lambda: net.housekeeping(),
                until=phase_end,
            )
            loop.every(phase.slo_every, self._tick_slo, until=phase_end)
            loop.every(RENEWAL_TICK, self._tick_renewals, until=active_end)

            loop.run_until(max(active_end, net.clock.now()))

            # Heal this phase's faults before draining, so the drain
            # window observes the recovery (breakers closing, renewals
            # succeeding again).
            for fault_spec in phase.faults:
                for caller, dest in fault_spec.pairs:
                    self.faults.set_link(caller, dest, LinkFaults())

            if phase.drain:
                for workload in self._live_workloads:
                    workload.stop()
                    workload.retire_all()
                for source, handle in self._tracked_handles:
                    self._scheduler(source).untrack(handle.reservation_id)
                self._tracked_handles.clear()
                loop.run_until(max(phase_end, net.clock.now()))

            stats = self._phase_stats()
            stats["storm_setup_failures"] = storm_failures
            if phase.drain:
                self._live_workloads.clear()

            renewals: Dict[str, int] = {}
            for scheduler in self._schedulers.values():
                for key, value in scheduler.renewals.items():
                    renewals[key] = renewals.get(key, 0) + value

            report = PhaseReport(
                name=phase.name,
                started=start,
                ended=net.clock.now(),
                stats=stats,
                attack_verdicts=attack_verdicts,
                renewals=renewals,
                telemetry=dict(net.telemetry()["total"]),
                memory=self._memory_row(stats.get("arrivals", 0)),
            )
            for checker_name, checker in PHASE_CHECKERS:
                for violation in checker(self):
                    report.violations.append(f"{checker_name}: {violation}")
            phase_reports.append(report)
            all_violations.extend(
                f"phase {phase.name}: {violation}"
                for violation in report.violations
            )

        if self.spec.shard_soak is not None:
            self._run_shard_soak()

        drained = bool(self.spec.phases) and self.spec.phases[-1].drain
        for checker_name, checker in FINAL_CHECKERS:
            if checker in DRAIN_ONLY_FINAL and not drained:
                continue
            for violation in checker(self):
                all_violations.append(f"final {checker_name}: {violation}")

        journal_jsonl = ""
        if net.obs is not None and net.obs.journal is not None:
            journal_jsonl = net.obs.journal.export_jsonl()
        replayed = self._replay(journal_jsonl)
        if replayed != self._engine.transitions:
            all_violations.append(
                "slo_replay: live transitions != journal replay "
                f"({len(self._engine.transitions)} live vs {len(replayed)} replayed)"
            )
        return CampaignResult(
            name=self.spec.name,
            seed=self.spec.seed,
            phase_reports=phase_reports,
            journal_jsonl=journal_jsonl,
            slo_times=list(self._slo_times),
            transitions=list(self._engine.transitions),
            replay_transitions=replayed,
            violations=all_violations,
            worker_journal_jsonl=(
                self._soak_telemetry.events_jsonl()
                if self._soak_telemetry is not None
                else ""
            ),
            worker_streams=dict(self._worker_streams),
            sampling=dict(self._sampling),
        )

    def _replay(self, journal_jsonl: str) -> List[tuple]:
        """Re-run the campaign SLOs offline over the exported journal at
        the recorded live tick times."""
        slo_factory = self.spec.slos or campaign_slos
        engine = AlertEngine(slo_factory())
        replay_journal(parse_jsonl(journal_jsonl), engine, self._slo_times)
        return engine.transitions

    def _phase_stats(self) -> Dict[str, int]:
        """Per-phase workload activity: deltas of every live workload's
        cumulative stats since the last phase report, so churn carried
        across undrained phase boundaries is attributed to the phase in
        which it actually happened."""
        stats: Dict[str, int] = {}
        for workload in self._live_workloads:
            current = vars(workload.stats)
            previous = self._reported.get(id(workload), {})
            for key, value in current.items():
                stats[key] = stats.get(key, 0) + value - previous.get(key, 0)
            self._reported[id(workload)] = dict(current)
        return stats

    def _memory_row(self, arrivals: int) -> Dict[str, float]:
        """Reservation-state heap across all CServ stores (shared ``seen``
        set, so cross-store shared payloads are counted once)."""
        seen: set = set()
        store_bytes = 0
        live = 0
        for stack in self.network._stacks.values():
            store = stack.cserv.store
            live += store.eer_count()
            if store.eer_count() or store.segment_count():
                store_bytes += deep_size(store, seen)
        obs = self.network.obs
        journal = obs.journal if obs is not None else None
        return {
            "arrivals": float(arrivals),
            "live_eers": float(live),
            "store_bytes": float(store_bytes),
            "journal_events": float(
                journal.total_events if journal is not None else 0
            ),
        }


def _host(index: int) -> HostAddr:
    return HostAddr(index % (1 << 32))


#: Private-use AS for the disposable sampled-wire-pass gateway.
_WIRE_SAMPLE_AS = IsdAs(1, 0xFF00_0000_0000 + 1)


def run_campaign(spec: CampaignSpec) -> CampaignResult:
    """Convenience one-shot: build a runner, run it, return the result."""
    return CampaignRunner(spec).run()
