"""The five canonical ROADMAP campaigns, parameterized by scale.

Each builder returns a :class:`~repro.sim.campaign.CampaignSpec` over a
CAIDA-like topology at one of three scales:

* ``quick`` — tens of ASes, seconds of simulated time: the CI-gated
  budget suite in ``tests/load`` / ``tests/stress`` runs these;
* ``default`` — hundreds of ASes, the local-dev soak shape;
* ``full`` — thousands of ASes and ≥10⁵ EER arrivals, the
  EXPERIMENTS.md record produced by ``benchmarks/test_campaign_scale``.

Endpoints are chosen deterministically from the topology's stub ASes,
round-robined across ISDs so every campaign exercises inter-ISD paths.
The catalog (`CANONICAL`) maps the ROADMAP scenario names to builders:

* ``flash_crowd`` — baseline churn, then a 6-10× arrival surge on the
  same pairs, then teardown (zero residual state);
* ``multi_as_overuse`` — honest traffic while three ASes in different
  ISDs overuse valid EERs toward one victim (§4.8 must confirm,
  blocklist, and report every one of them);
* ``renewal_storm`` — a synchronized EER cohort renewing in lockstep
  waves on top of background churn (the PR 7 control-plane stress);
* ``partition_recovery`` — a destination AS becomes unreachable on the
  control plane mid-campaign; circuit breakers must open, the fabric
  must stay conservative, and recovery must close the breakers;
* ``ddos_mix`` — the Table 2 threat mix beyond Table 2's three-source
  setup: forged-HVF floods at two victim routers plus a rogue overuser
  plus honest churn, simultaneously.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.campaign import (
    BogusSpec,
    CampaignSpec,
    FaultSpec,
    OveruseSpec,
    Phase,
    RenewalStormSpec,
    WorkloadSpec,
)
from repro.topology.addresses import IsdAs
from repro.topology.generator import build_caida_like

QUICK = "quick"
DEFAULT = "default"
FULL = "full"

#: Topology shape per scale.  One seed across scales: a campaign at any
#: scale is reproducible from its (name, scale, seed) triple alone.
TOPOLOGY_PARAMS: Dict[str, dict] = {
    QUICK: dict(as_count=60, isd_count=3, tier1_per_isd=2, seed=29),
    DEFAULT: dict(as_count=300, isd_count=5, tier1_per_isd=3, seed=29),
    FULL: dict(as_count=2000, isd_count=8, tier1_per_isd=3, seed=29),
}

#: Workload intensity per scale: (baseline arrivals/s, surge factor,
#: active phase duration in simulated seconds, storm cohort size).
_INTENSITY: Dict[str, dict] = {
    QUICK: dict(arrivals=1.0, surge=6.0, duration=10.0, cohort=30),
    DEFAULT: dict(arrivals=4.0, surge=8.0, duration=30.0, cohort=200),
    FULL: dict(arrivals=40.0, surge=10.0, duration=120.0, cohort=2000),
}


def _topology_factory(scale: str) -> Callable:
    params = dict(TOPOLOGY_PARAMS[scale])
    return lambda: build_caida_like(**params)


def _cone_root(topology, leaf: IsdAs) -> IsdAs:
    """The top-of-cone ancestor (direct child of a core) of ``leaf``.

    Walks the (deterministically chosen) primary provider chain upward.
    """
    node = leaf
    while not topology.node(node).is_core:
        up = sorted(topology.parents(node), key=str)[0]
        if topology.node(up).is_core:
            return node
        node = up
    return node


def endpoints(scale: str, count: int) -> List[IsdAs]:
    """``count`` deterministic stub ASes, round-robined across ISDs and,
    within an ISD, across customer cones.

    Cone-disjointness matters: two stubs under the same provider chain
    cannot be joined by a core-stitched SegR chain (the up and down legs
    would revisit their shared ancestors, and Colibri's segment
    combination forbids shortcut paths, §3.1) — so consecutive picks are
    guaranteed to hang off different cones.
    """
    topology = build_caida_like(**TOPOLOGY_PARAMS[scale])
    buckets: Dict[tuple, List[IsdAs]] = {}
    stubs = 0
    for node in topology.ases():
        if node.is_core or topology.children(node.isd_as):
            continue
        key = (node.isd, str(_cone_root(topology, node.isd_as)))
        buckets.setdefault(key, []).append(node.isd_as)
        stubs += 1
    if stubs < count:
        raise ValueError(f"need {count} stub ASes, topology has {stubs}")
    for bucket in buckets.values():
        bucket.sort(key=str)
    by_isd: Dict[int, List[List[IsdAs]]] = {}
    for key in sorted(buckets):
        by_isd.setdefault(key[0], []).append(buckets[key])
    isds = sorted(by_isd)
    cone_cursor = {isd: 0 for isd in isds}
    picked: List[IsdAs] = []
    while len(picked) < count:
        for isd in isds:
            if len(picked) >= count:
                break
            cones = by_isd[isd]
            for _ in range(len(cones)):
                bucket = cones[cone_cursor[isd] % len(cones)]
                cone_cursor[isd] += 1
                if bucket:
                    picked.append(bucket.pop(0))
                    break
    return picked


def flash_crowd(scale: str = QUICK, seed: int = 0) -> CampaignSpec:
    """Baseline churn, then a flash-crowd surge, then full teardown."""
    intensity = _INTENSITY[scale]
    src_a, dst_a, src_b, dst_b = endpoints(scale, 4)
    baseline = (
        WorkloadSpec(src_a, dst_a, arrival_rate=intensity["arrivals"]),
        WorkloadSpec(src_b, dst_b, arrival_rate=intensity["arrivals"]),
    )
    surge = tuple(
        WorkloadSpec(
            spec.source,
            spec.destination,
            arrival_rate=intensity["arrivals"] * intensity["surge"],
            mean_holding=8.0,
        )
        for spec in baseline
    )
    return CampaignSpec(
        name=f"flash_crowd_{scale}",
        topology=_topology_factory(scale),
        seed=seed,
        phases=(
            Phase("baseline", intensity["duration"], workloads=baseline, drain=False),
            Phase("flash", intensity["duration"], workloads=surge),
        ),
    )


def multi_as_overuse(scale: str = QUICK, seed: int = 0) -> CampaignSpec:
    """Three ASes in different ISDs overuse valid EERs toward one victim."""
    intensity = _INTENSITY[scale]
    src, dst, victim, att_a, att_b, att_c = endpoints(scale, 6)
    honest = (WorkloadSpec(src, dst, arrival_rate=intensity["arrivals"]),)
    attackers = tuple(
        OveruseSpec(
            attacker,
            victim,
            bandwidth=4e5,
            factor=6.0,
            tick=0.1,
        )
        for attacker in (att_a, att_b, att_c)
    )
    return CampaignSpec(
        name=f"multi_as_overuse_{scale}",
        topology=_topology_factory(scale),
        seed=seed,
        phases=(
            Phase("calm", intensity["duration"] / 2, workloads=honest, drain=False),
            Phase("assault", intensity["duration"], overuse=attackers),
        ),
    )


def renewal_storm(scale: str = QUICK, seed: int = 0) -> CampaignSpec:
    """A synchronized EER cohort renewing in waves over background churn."""
    intensity = _INTENSITY[scale]
    src, dst, storm_src, storm_dst = endpoints(scale, 4)
    return CampaignSpec(
        name=f"renewal_storm_{scale}",
        topology=_topology_factory(scale),
        seed=seed,
        phases=(
            Phase(
                "storm",
                # Long enough for at least two full renewal waves
                # (EER_LIFETIME * 0.75 apart).
                max(intensity["duration"], 30.0),
                workloads=(WorkloadSpec(src, dst, arrival_rate=intensity["arrivals"]),),
                storms=(
                    RenewalStormSpec(
                        storm_src, storm_dst, count=intensity["cohort"]
                    ),
                ),
            ),
        ),
    )


def partition_recovery(scale: str = QUICK, seed: int = 0) -> CampaignSpec:
    """A destination AS drops off the control plane, then heals."""
    intensity = _INTENSITY[scale]
    src, dst = endpoints(scale, 2)
    churn = (WorkloadSpec(src, dst, arrival_rate=intensity["arrivals"]),)
    return CampaignSpec(
        name=f"partition_recovery_{scale}",
        topology=_topology_factory(scale),
        seed=seed,
        phases=(
            Phase("steady", intensity["duration"] / 2, workloads=churn, drain=False),
            Phase(
                "partition",
                intensity["duration"],
                workloads=(),
                faults=(FaultSpec(pairs=((None, dst),)),),
                drain=False,
            ),
            Phase("recovery", intensity["duration"] / 2, workloads=()),
        ),
    )


def ddos_mix(scale: str = QUICK, seed: int = 0) -> CampaignSpec:
    """Forged-HVF floods at two victims + a rogue overuser + honest churn."""
    intensity = _INTENSITY[scale]
    src, dst, victim_a, victim_b, rogue, rogue_dst = endpoints(scale, 6)
    return CampaignSpec(
        name=f"ddos_mix_{scale}",
        topology=_topology_factory(scale),
        seed=seed,
        phases=(
            Phase(
                "mix",
                intensity["duration"],
                workloads=(WorkloadSpec(src, dst, arrival_rate=intensity["arrivals"]),),
                overuse=(
                    OveruseSpec(rogue, rogue_dst, bandwidth=4e5, factor=6.0, tick=0.1),
                ),
                bogus=(
                    BogusSpec(src, victim_a, rate=4e6, tick=0.1),
                    BogusSpec(src, victim_b, rate=4e6, tick=0.1),
                ),
            ),
        ),
    )


#: The ROADMAP scenario catalog, in canonical order.
CANONICAL: Dict[str, Callable[..., CampaignSpec]] = {
    "flash_crowd": flash_crowd,
    "multi_as_overuse": multi_as_overuse,
    "renewal_storm": renewal_storm,
    "partition_recovery": partition_recovery,
    "ddos_mix": ddos_mix,
}
