"""Full-system assembly: one call from topology to a running Colibri AS
fabric (§3.2's infrastructure, instantiated per AS).

:class:`ColibriNetwork` builds, for every AS in a topology:

* a per-AS clock (optionally skewed within the paper's ±0.1 s budget);
* DRKey material (:class:`~repro.dataplane.hvf.ColibriKeys`), a key
  server, and registration in the global directory;
* the CServ, the Colibri gateway, and the border router, cross-wired so
  the router reports offenses to the CServ (§4.8) and the CServ installs
  EERs into the gateway (Fig. 1b ➎).

It also offers the two workflows every example and test needs:
:meth:`reserve_segments` (build the SegR "tubes" along a path) and
:meth:`establish_eer` (host-to-host reservation over them), plus
:meth:`send` which walks a data packet hop by hop through the border
routers, returning the per-hop verdicts (Fig. 1c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.control.cserv import ColibriService, EerHandle
from repro.control.rpc import FaultInjector, MessageBus
from repro.crypto.drkey import DrkeyDeriver
from repro.crypto.keyserver import KeyServer, KeyServerDirectory
from repro.crypto.prf import prf
from repro.dataplane.duplicate import DuplicateSuppressor
from repro.dataplane.gateway import ColibriGateway
from repro.dataplane.hvf import ColibriKeys
from repro.dataplane.ofd import OveruseFlowDetector
from repro.dataplane.router import BorderRouter, RouterResult, Verdict
from repro.errors import ColibriError
from repro.obs import ObsContext
from repro.obs.slo import AlertEngine, default_slos, register_journal_gauges
from repro.util.observability import register_telemetry_gauges
from repro.packets.colibri import ColibriPacket
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.beaconing import Beaconing
from repro.topology.graph import Topology
from repro.topology.paths import PathLookup
from repro.util.clock import Clock, SimClock, SkewedClock

DEFAULT_MASTER_SEED = b"colibri-repro-master-seed"


@dataclass
class AsStack:
    """All Colibri components of one AS."""

    isd_as: IsdAs
    clock: Clock
    keys: ColibriKeys
    cserv: ColibriService
    gateway: ColibriGateway
    router: BorderRouter


@dataclass
class DeliveryReport:
    """Outcome of walking one packet across the network."""

    delivered: bool
    verdicts: list  # [(IsdAs, Verdict)]
    packet: ColibriPacket

    @property
    def dropped_at(self) -> Optional[IsdAs]:
        for isd_as, verdict in self.verdicts:
            if verdict.is_drop:
                return isd_as
        return None


class ColibriNetwork:
    """A complete in-process Colibri deployment over a topology."""

    def __init__(
        self,
        topology: Topology,
        clock: Optional[SimClock] = None,
        skew: Optional[Callable[[IsdAs], float]] = None,
        master_seed: bytes = DEFAULT_MASTER_SEED,
        host_acceptor: Optional[Callable] = None,
        faults: Optional[FaultInjector] = None,
        compact_dataplane: bool = False,
    ):
        """``compact_dataplane=True`` shrinks each border router's
        fixed-size policing structures (OFD sketch, duplicate-suppression
        Bloom filter) from the per-router §4.8 production geometry
        (~400 KB) to a few KB.  Detection probabilities degrade
        gracefully — sketches just saturate earlier — which is the right
        trade for thousand-AS campaign fabrics where the default would
        cost ~1 GB of heap before the first packet moves.
        """
        self.topology = topology
        self.clock = clock or SimClock(start=1000.0)
        self.bus = MessageBus(faults=faults)
        self.directory = KeyServerDirectory(self.clock)
        self.beaconing = Beaconing(topology)
        self.path_lookup = PathLookup(self.beaconing)
        #: Optional :class:`~repro.sim.tracing.PacketTracer`; when set,
        #: every router decision in :meth:`forward` is recorded.
        self.tracer = None
        #: Optional :class:`repro.obs.ObsContext` shared by every stack;
        #: attach with :meth:`enable_observability`.
        self.obs = None
        self._stacks: dict[IsdAs, AsStack] = {}

        for node in topology.ases():
            isd_as = node.isd_as
            as_clock: Clock = self.clock
            if skew is not None:
                as_clock = SkewedClock(self.clock, skew(isd_as))
            seed = prf(master_seed, isd_as.packed)
            deriver = DrkeyDeriver(isd_as, as_clock, seed=seed)
            keys = ColibriKeys(deriver)
            self.directory.register(KeyServer(deriver))
            gateway = ColibriGateway(isd_as, as_clock)
            cserv = ColibriService(
                node=node,
                clock=as_clock,
                keys=keys,
                directory=self.directory,
                bus=self.bus,
                topology=topology,
                gateway=gateway,
                host_acceptor=host_acceptor,
                # Retry backoff advances simulated time, so breaker
                # reset windows and timeouts stay meaningful under test.
                retry_sleeper=self.clock.advance,
            )
            router = BorderRouter(
                isd_as,
                keys,
                as_clock,
                duplicates=(
                    DuplicateSuppressor(as_clock, bits=1 << 14, hashes=4)
                    if compact_dataplane
                    else None
                ),
                ofd=(
                    OveruseFlowDetector(width=256, depth=2)
                    if compact_dataplane
                    else None
                ),
                on_offense=cserv.report_offense,
            )
            self._stacks[isd_as] = AsStack(
                isd_as=isd_as,
                clock=as_clock,
                keys=keys,
                cserv=cserv,
                gateway=gateway,
                router=router,
            )

    # -- observability wiring ------------------------------------------------------

    def enable_observability(
        self,
        seed: int = 0,
        trace_capacity: int = 100_000,
        journal: bool = False,
        journal_capacity: int = 65_536,
        slos: bool = False,
        perf: Optional[Clock] = None,
    ) -> ObsContext:
        """Attach one :class:`~repro.obs.ObsContext` across every layer.

        Wires the trace collector into the bus (``bus.call`` spans),
        every CServ (admission workflows and handlers, retries, breaker
        transitions, dissemination), and this network's data-plane walk
        (``packet.send`` → ``gateway.stamp`` → per-hop ``router.hop``
        spans).  Also registers the callback gauges over live data-plane
        state: σ-cache fill and token-bucket occupancy.  Span IDs come
        from ``seed`` and timestamps from the shared simulation clock, so
        a seeded scenario produces a byte-identical trace every run.

        ``journal=True`` additionally arms the
        :class:`~repro.obs.events.EventJournal` flight recorder on every
        emission site of both planes (admission decisions, renewals,
        teardowns, drops, OFD flags, monitor confirmations, duplicate
        suppression, breaker flips) and exposes its cumulative per-type
        counts as registry gauges.  ``slos=True`` attaches a burn-rate
        :class:`~repro.obs.slo.AlertEngine` over
        :func:`~repro.obs.slo.default_slos`, sampled by calling
        ``obs.alerts.tick()`` from the scenario loop.  ``perf`` overrides
        the wall-duration clock for latency instruments — pass the
        network's own :class:`~repro.util.clock.SimClock` to make latency
        histograms (and everything derived from them) byte-deterministic
        per seed.
        """
        obs = ObsContext.create(
            self.clock,
            seed=seed,
            perf=perf,
            trace_capacity=trace_capacity,
            journal=journal,
            journal_capacity=journal_capacity,
        )
        self.obs = obs
        self.bus.tracer = obs.tracer
        for stack in self._stacks.values():
            stack.cserv.obs = obs
            stack.cserv.caller.obs = obs
            stack.cserv.remote_client.obs = obs
            label = str(stack.isd_as)
            router = stack.router
            router.obs = obs
            for policer in (router.monitor, router.ofd, router.duplicates,
                            stack.gateway.monitor):
                policer.obs = obs
                policer.isd_as = label
        obs.metrics.gauge(
            "sigma_cache_entries",
            help_text="Live HopAuth entries across all border-router sigma caches",
        ).set_function(self._sigma_cache_entries)
        obs.metrics.gauge(
            "token_bucket_occupancy",
            help_text="Mean fill ratio of watched token buckets, all monitors",
        ).set_function(self._token_bucket_occupancy)
        # Mirror the flat telemetry counters (router_drops, gateway_sent,
        # sigma_cache_*, …) into the registry so the SLO engine sees the
        # management plane too; render_metrics de-duplicates the scrape.
        register_telemetry_gauges(obs.metrics, self.telemetry)
        obs.metrics.gauge(
            "router_processed_total",
            help_text="Packets processed across all border routers (drops + forwarded)",
        ).set_function(self._router_processed)
        obs.metrics.gauge(
            "circuit_breakers_open",
            help_text="Retry-layer circuit breakers currently not closed",
        ).set_function(self._open_breakers)
        obs.metrics.gauge(
            "monitor_confirmed_flows",
            help_text="Flows confirmed as overusers by deterministic monitors",
        ).set_function(self._confirmed_flows)
        obs.metrics.gauge(
            "ofd_suspects",
            help_text="Flows flagged by overuse-flow detectors this window",
        ).set_function(self._ofd_suspects)
        obs.metrics.gauge(
            "ofd_hits_total",
            help_text="Cumulative flagged-flow observations across all OFDs",
        ).set_function(self._ofd_hits)
        if obs.journal is not None:
            register_journal_gauges(obs.metrics, obs.journal)
        if slos:
            obs.alerts = AlertEngine(default_slos()).watch(obs.metrics, self.clock)
        return obs

    def _sigma_cache_entries(self) -> float:
        return float(
            sum(
                len(stack.router.sigma_cache)
                for stack in self._stacks.values()
                if stack.router.sigma_cache is not None
            )
        )

    def _token_bucket_occupancy(self) -> float:
        monitors = [stack.gateway.monitor for stack in self._stacks.values()]
        monitors += [stack.router.monitor for stack in self._stacks.values()]
        watched = [m for m in monitors if m.watched_count() > 0]
        if not watched:
            return 1.0
        return sum(m.occupancy() for m in watched) / len(watched)

    def _router_processed(self) -> float:
        return float(
            sum(
                count
                for stack in self._stacks.values()
                for count in stack.router.stats.values()
            )
        )

    def _open_breakers(self) -> float:
        return float(
            sum(stack.cserv.caller.open_breakers() for stack in self._stacks.values())
        )

    def _confirmed_flows(self) -> float:
        total = 0
        for stack in self._stacks.values():
            total += stack.router.monitor.confirmed_count()
            total += stack.gateway.monitor.confirmed_count()
        return float(total)

    def _ofd_suspects(self) -> float:
        return float(
            sum(stack.router.ofd.suspect_count() for stack in self._stacks.values())
        )

    def _ofd_hits(self) -> float:
        return float(
            sum(stack.router.ofd.total_hits() for stack in self._stacks.values())
        )

    # -- accessors -----------------------------------------------------------------

    def stack(self, isd_as: IsdAs) -> AsStack:
        stack = self._stacks.get(isd_as)
        if stack is None:
            raise ColibriError(f"no Colibri stack for AS {isd_as}")
        return stack

    def cserv(self, isd_as: IsdAs) -> ColibriService:
        return self.stack(isd_as).cserv

    def gateway(self, isd_as: IsdAs) -> ColibriGateway:
        return self.stack(isd_as).gateway

    def router(self, isd_as: IsdAs) -> BorderRouter:
        return self.stack(isd_as).router

    def ases(self) -> list:
        return list(self._stacks)

    # -- control-plane workflows ------------------------------------------------------

    def reserve_segments(
        self,
        source: IsdAs,
        destination: IsdAs,
        bandwidth: float,
        minimum: float = 0.0,
    ) -> list:
        """Create the SegR "tubes" an EER from ``source`` to
        ``destination`` will ride (§3.1).

        Picks the shortest segment combination the underlying path-aware
        routing offers, then has each segment's first AS set up a SegR
        over it (down-SegRs are initiated by the core AS "upon an explicit
        request by the last AS" — here the request is this call).
        Returns the created :class:`SegmentReservation` records.
        """
        path = self.path_lookup.paths(source, destination, limit=1)[0]
        created = []
        for segment in path.segments:
            initiator = self.cserv(segment.first_as)
            created.append(
                initiator.setup_segment(segment, bandwidth, minimum=minimum)
            )
        return created

    def establish_eer(
        self,
        source: IsdAs,
        destination: IsdAs,
        bandwidth: float,
        src_host: HostAddr = HostAddr(1),
        dst_host: HostAddr = HostAddr(2),
    ) -> EerHandle:
        """Host-to-host EER over previously reserved segments (Fig. 1b)."""
        return self.cserv(source).setup_eer(
            destination, src_host, dst_host, bandwidth
        )

    # -- data-plane workflow ------------------------------------------------------------

    def send(self, source: IsdAs, handle: EerHandle, payload: bytes = b"") -> DeliveryReport:
        """Send one data packet over an EER and walk it across routers.

        Mirrors Fig. 1c: host -> gateway (monitor + stamp) -> border
        routers of every on-path AS -> destination host.  Raises
        :class:`DataPlaneError` subclasses when the *gateway* drops
        (unknown/expired reservation, rate exceeded); router drops are
        reported in the returned :class:`DeliveryReport`.
        """
        gateway = self.gateway(source)
        obs = self.obs
        if obs is None:
            packet = gateway.send(handle.reservation_id, payload)
            return self.forward(packet)
        tracer = obs.tracer
        span = tracer.start(
            "packet.send",
            {
                "source": str(source),
                "reservation": str(handle.reservation_id),
            },
        )
        try:
            with tracer.span("gateway.stamp", isd_as=str(source)):
                packet = gateway.send(handle.reservation_id, payload)
            report = self.forward(packet)
        except BaseException as error:
            tracer.finish(span, status="error", error=type(error).__name__)
            raise
        tracer.finish(span, delivered=report.delivered)
        return report

    def forward(self, packet: ColibriPacket) -> DeliveryReport:
        """Walk an already-stamped packet along its path."""
        obs = self.obs
        verdicts = []
        while True:
            isd_as = packet.path and self._as_at(packet)
            router = self.router(isd_as)
            span = None
            if obs is not None:
                span = obs.tracer.start("router.hop", {"isd_as": str(isd_as)})
            result: RouterResult = router.process(packet)
            if obs is not None:
                obs.tracer.finish(span, verdict=result.verdict.value)
            verdicts.append((isd_as, result.verdict))
            if self.tracer is not None:
                self.tracer.record(
                    self.clock.now(), isd_as, result.verdict, packet
                )
            if result.verdict is Verdict.FORWARD:
                continue
            delivered = result.verdict in (
                Verdict.DELIVER_HOST,
                Verdict.DELIVER_CSERV,
            )
            return DeliveryReport(
                delivered=delivered, verdicts=verdicts, packet=packet
            )

    def _as_at(self, packet: ColibriPacket) -> IsdAs:
        """Which AS currently holds the packet.

        The packet header stores interface pairs, not AS IDs; the walk
        tracks position via the hop pointer against the EER path recorded
        at setup.  We recover the AS from the reservation stored at the
        source CServ — every on-path stack was built from the same
        topology, so positions agree.
        """
        source_cserv = self.cserv(packet.res_info.src_as)
        reservation = source_cserv.store.get_eer(packet.res_info.reservation)
        return reservation.hops[packet.hop_index].isd_as

    # -- time -----------------------------------------------------------------------------

    def advance(self, seconds: float) -> float:
        """Advance the shared simulation clock."""
        return self.clock.advance(seconds)

    def housekeeping(self) -> dict:
        """Run every CServ's sweep; returns aggregate counts."""
        totals = {"eers": 0, "segments": 0, "registry": 0}
        for stack in self._stacks.values():
            removed = stack.cserv.housekeeping()
            for key in totals:
                totals[key] += removed.get(key, 0)
        return totals

    # -- observability ------------------------------------------------------------

    def audit(self) -> list:
        """Cross-AS consistency check; returns a list of violation strings.

        Verifies the distributed invariants no single component can see:

        * every stored EER's SegRs exist at the ASes that store the EER;
        * per-SegR admitted-EER bandwidth never exceeds the SegR's active
          bandwidth;
        * a SegR's active version agrees at every on-path AS (the §4.2
          activation discipline);
        * the incremental allocation sums match exact recomputation.

        An empty list means the deployment is coherent; soak and
        integration tests call this after churn.
        """
        violations = []
        now = self.clock.now()
        # Collect every stored SegR by id across ASes.
        by_id: dict = {}
        for isd_as, stack in self._stacks.items():
            for reservation in stack.cserv.store.segments():
                by_id.setdefault(reservation.reservation_id, []).append(
                    (isd_as, reservation)
                )
        for reservation_id, holders in by_id.items():
            versions = {r.active.version for _, r in holders}
            if len(versions) != 1:
                violations.append(
                    f"SegR {reservation_id}: active version disagrees "
                    f"across ASes: { {str(a): r.active.version for a, r in holders} }"
                )
            bandwidths = {r.bandwidth for _, r in holders}
            if len(bandwidths) != 1:
                violations.append(
                    f"SegR {reservation_id}: active bandwidth disagrees across ASes"
                )
        for isd_as, stack in self._stacks.items():
            store = stack.cserv.store
            for reservation in store.segments():
                total = store.allocated_on_segment(reservation.reservation_id)
                exact = sum(
                    store._eer_alloc[reservation.reservation_id].values()
                )
                if abs(total - exact) > max(1e-6, abs(exact) * 1e-9):
                    violations.append(
                        f"{isd_as}: allocation sum drift on "
                        f"{reservation.reservation_id}: {total} vs {exact}"
                    )
                if total > reservation.bandwidth * (1 + 1e-9):
                    violations.append(
                        f"{isd_as}: SegR {reservation.reservation_id} "
                        f"over-allocated: {total} > {reservation.bandwidth}"
                    )
            for eer in store.eers():
                if eer.is_expired(now):
                    continue
                for segment_id in eer.segment_ids:
                    if store.has_segment(segment_id):
                        continue
                    # The AS must hold at least one of the EER's SegRs
                    # (its own role's segment); a completely unknown set
                    # is inconsistent.
                if not any(
                    store.has_segment(segment_id)
                    for segment_id in eer.segment_ids
                ):
                    violations.append(
                        f"{isd_as}: EER {eer.reservation_id} references only "
                        "unknown SegRs"
                    )
        return violations

    def telemetry(self) -> dict:
        """One snapshot of every component's counters, keyed by AS.

        The management-plane view an operator would scrape: reservation
        counts, admission decisions, router verdicts, gateway traffic,
        policing state.  Aggregates are under the ``"total"`` key.
        """
        per_as = {}
        total = {
            "segments": 0,
            "eers": 0,
            "seg_decisions": 0,
            "eer_decisions": 0,
            "gateway_sent": 0,
            "gateway_dropped": 0,
            "router_drops": 0,
            "router_forwarded": 0,
            "blocked_sources": 0,
            "offenses": 0,
            "bus_calls": self.bus.calls,
        }
        for isd_as, stack in self._stacks.items():
            router_drops = sum(
                count for verdict, count in stack.router.stats.items()
                if verdict.is_drop
            )
            router_forwarded = sum(
                count for verdict, count in stack.router.stats.items()
                if not verdict.is_drop
            )
            snapshot = {
                "segments": stack.cserv.store.segment_count(),
                "eers": stack.cserv.store.eer_count(),
                "seg_decisions": stack.cserv.seg_admission.decisions,
                "eer_decisions": stack.cserv.eer_admission.decisions,
                "gateway_sent": stack.gateway.packets_sent,
                "gateway_dropped": stack.gateway.packets_dropped,
                "router_drops": router_drops,
                "router_forwarded": router_forwarded,
                "blocked_sources": len(stack.router.blocklist),
                "offenses": stack.cserv.offenses_reported,
            }
            # σ-cache effectiveness of this AS's border router (absent
            # when the cache is disabled): hits/misses/evictions plus
            # rejected hints, prefixed ``sigma_cache_``.
            if stack.router.sigma_cache is not None:
                snapshot.update(stack.router.sigma_cache.snapshot())
            per_as[str(isd_as)] = snapshot
            for key, value in snapshot.items():
                total[key] = total.get(key, 0) + value
        per_as["total"] = total
        return per_as
