"""Stochastic control-plane workloads.

The paper's evaluation pre-generates reservations and measures one
admission (§6.1); a deployed CServ instead sees a continuous arrival
process.  :class:`EerWorkload` models it: Poisson EER arrivals with
exponential holding times and a configurable bandwidth distribution,
driven over a :class:`~repro.sim.events.EventLoop`.  Used by the soak
test and the churn bench to exercise setup / renewal / expiry /
housekeeping concurrently over long simulated horizons.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.constants import EER_LIFETIME
from repro.errors import ColibriError
from repro.sim.events import EventLoop
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import HostAddr, IsdAs


@dataclass
class WorkloadStats:
    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0  # sessions that ended by themselves
    renewals: int = 0
    renewal_failures: int = 0
    packets_sent: int = 0
    packets_delivered: int = 0

    @property
    def admission_ratio(self) -> float:
        return self.admitted / self.arrivals if self.arrivals else 0.0

    @property
    def delivery_ratio(self) -> float:
        return self.packets_delivered / self.packets_sent if self.packets_sent else 0.0


@dataclass(eq=False)
class _Session:
    # Identity-hashed (eq=False): the session table must add/remove in
    # O(1) even with 10^5 concurrent sessions, and value-equality over a
    # mutable handle would be meaningless anyway.
    handle: object
    src: IsdAs
    ends_at: float


class EerWorkload:
    """Poisson EER churn between one (src, dst) AS pair.

    * arrivals: Poisson with rate ``arrival_rate`` per second;
    * holding time: exponential with mean ``mean_holding`` (sessions
      outliving ``EER_LIFETIME`` renew just before expiry);
    * bandwidth: log-uniform between ``min_bandwidth`` and
      ``max_bandwidth`` — heavy-tailed like real flows;
    * each session sends one probe packet per renewal period so the data
      plane stays exercised.
    """

    def __init__(
        self,
        network: ColibriNetwork,
        loop: EventLoop,
        source: IsdAs,
        destination: IsdAs,
        arrival_rate: float = 2.0,
        mean_holding: float = 30.0,
        min_bandwidth: float = 1e5,
        max_bandwidth: float = 1e7,
        seed: int = 11,
    ):
        if arrival_rate <= 0 or mean_holding <= 0:
            raise ValueError("arrival rate and holding time must be positive")
        if not 0 < min_bandwidth <= max_bandwidth:
            raise ValueError("bandwidth bounds must satisfy 0 < min <= max")
        self.network = network
        self.loop = loop
        self.source = source
        self.destination = destination
        self.arrival_rate = arrival_rate
        self.mean_holding = mean_holding
        self.min_bandwidth = min_bandwidth
        self.max_bandwidth = max_bandwidth
        self.rng = random.Random(seed)
        self.stats = WorkloadStats()
        # Insertion-ordered identity set: O(1) add/discard, deterministic
        # iteration for retire_all().
        self._sessions: dict = {}
        self._next_host = 1
        self._stopped = False

    # -- distributions -------------------------------------------------------------

    def _interarrival(self) -> float:
        return self.rng.expovariate(self.arrival_rate)

    def _holding(self) -> float:
        return self.rng.expovariate(1.0 / self.mean_holding)

    def _bandwidth(self) -> float:
        low, high = math.log(self.min_bandwidth), math.log(self.max_bandwidth)
        return math.exp(self.rng.uniform(low, high))

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """Arm the first arrival; the process self-perpetuates."""
        self._stopped = False
        self.loop.after(self._interarrival(), self._arrive)

    def stop(self) -> None:
        """Stop the arrival process; already-scheduled arrivals no-op.

        Live sessions keep renewing until their holding time ends — call
        :meth:`retire_all` as well for a hard phase cutoff.
        """
        self._stopped = True

    def retire_all(self) -> None:
        """End every live session at its next maintenance tick.

        Sessions stop renewing, so their EERs expire within one
        ``EER_LIFETIME`` and housekeeping reclaims the state — the
        teardown half of a flash-crowd phase.
        """
        now = self.network.clock.now()
        for session in self._sessions:
            session.ends_at = min(session.ends_at, now)

    def _arrive(self) -> None:
        if self._stopped:
            return
        self.stats.arrivals += 1
        host = HostAddr(self._next_host % (1 << 32))
        self._next_host += 1
        try:
            handle = self.network.cserv(self.source).setup_eer(
                self.destination, host, HostAddr(2), self._bandwidth()
            )
            self.stats.admitted += 1
            session = _Session(
                handle=handle,
                src=self.source,
                ends_at=self.network.clock.now() + self._holding(),
            )
            self._sessions[session] = None
            self.loop.after(EER_LIFETIME * 0.75, lambda: self._maintain(session))
        except ColibriError:
            self.stats.rejected += 1
        self.loop.after(self._interarrival(), self._arrive)

    def _maintain(self, session: _Session) -> None:
        """Renew or retire a session at 3/4 of its EER lifetime."""
        now = self.network.clock.now()
        if now >= session.ends_at:
            self.stats.completed += 1
            self._sessions.pop(session, None)
            return
        # Send a probe over the live reservation.
        try:
            self.stats.packets_sent += 1
            if self.network.send(session.src, session.handle, b"probe").delivered:
                self.stats.packets_delivered += 1
        except ColibriError:
            pass
        try:
            session.handle = self.network.cserv(session.src).renew_eer(
                session.handle
            )
            self.stats.renewals += 1
            self.loop.after(EER_LIFETIME * 0.75, lambda: self._maintain(session))
        except ColibriError:
            self.stats.renewal_failures += 1
            self.stats.completed += 1
            self._sessions.pop(session, None)

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)
