"""A minimal discrete-event engine.

Used by longer-running simulations (renewal cycles, attack scenarios) to
interleave timed actions over the shared :class:`~repro.util.clock.SimClock`.
Deliberately tiny: a heap of (time, sequence, callback) with FIFO
tie-breaking, driving the clock forward as events fire.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.util.clock import SimClock


@dataclass(order=True)
class Event:
    time: float
    sequence: int
    callback: Callable = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventLoop:
    """Heap-based event scheduler over a :class:`SimClock`."""

    def __init__(self, clock: SimClock):
        self.clock = clock
        self._heap: list = []
        self._sequence = itertools.count()
        self.fired = 0

    def at(self, when: float, callback: Callable) -> Event:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self.clock.now():
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self.clock.now()}"
            )
        event = Event(time=when, sequence=next(self._sequence), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable) -> Event:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.clock.now() + delay, callback)

    def every(self, interval: float, callback: Callable, until: float = None) -> None:
        """Schedule a repeating callback (rescheduled after each firing)."""
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")

        def fire():
            callback()
            next_time = self.clock.now() + interval
            if until is None or next_time <= until:
                self.at(next_time, fire)

        self.after(interval, fire)

    def run_until(self, when: float) -> int:
        """Fire all events up to and including time ``when``; the clock
        ends at ``when`` (or later, see below).  Returns the number fired.

        A callback may itself consume simulated time — the retry layer
        advances the shared clock during backoff, for example.  Events
        whose scheduled time has already passed by then fire *late*, at
        the current clock, rather than rewinding time: the clock stays
        monotone and every consumer's "time never goes backwards"
        invariant holds even under fault-heavy schedules.
        """
        fired_before = self.fired
        while self._heap and self._heap[0].time <= when:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time > self.clock.now():
                self.clock.set(event.time)
            event.callback()
            self.fired += 1
        if when > self.clock.now():
            self.clock.set(when)
        return self.fired - fired_before

    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)
