"""Link-level simulation of the data-plane protection experiment (§7.1).

The paper's testbed sends "different mixtures of best-effort and
authentic and unauthentic Colibri traffic over the three input ports,
where the packets are all destined to the same output port" and measures
per-class output rates (Table 2).  :class:`PortSim` reproduces that
geometry:

* several input streams (traffic sources from :mod:`repro.sim.traffic`);
* one border router, which authenticates/polices every Colibri packet;
* one output port with strict-priority class queues
  (:class:`~repro.dataplane.queueing.PriorityScheduler`).

Per tick, arriving packets are run through the router, survivors are
enqueued in their class, and the scheduler drains one tick of the output
capacity.  Output is accounted per traffic class *and* per reservation,
giving exactly the rows of Table 2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.dataplane.queueing import PriorityScheduler, TrafficClass
from repro.dataplane.router import BorderRouter
from repro.util.clock import SimClock


@dataclass
class LinkSim:
    """A point-to-point link: capacity plus a propagation delay.

    Used by multi-hop simulations to model serialization; the Table 2
    port experiment needs only the output side (see :class:`PortSim`).
    """

    capacity: float  # bits per second
    delay: float = 0.0  # seconds

    def transmission_time(self, size_bytes: int) -> float:
        return size_bytes * 8 / self.capacity + self.delay


class AtHop:
    """Adapter placing a source's packets at the measuring router's hop.

    Sources stamp packets at hop 0 (the source AS); the Table 2 router
    sits mid-path, so its position must be set before processing.
    """

    def __init__(self, source, hop_index: int):
        self.source = source
        self.hop_index = hop_index

    def packets(self, now: float, tick: float):
        for packet in self.source.packets(now, tick):
            packet.hop_index = self.hop_index
            yield packet


class PortSim:
    """Three-inputs-one-output congestion experiment (Table 2)."""

    def __init__(self, router: BorderRouter, clock: SimClock, capacity: float):
        self.router = router
        self.clock = clock
        self.scheduler = PriorityScheduler(capacity)
        self.input_bytes: dict = defaultdict(int)  # (port, label) -> bytes
        self.output_bytes: dict = defaultdict(int)  # label -> bytes
        self.router_drops: dict = defaultdict(int)  # verdict -> count
        self._pending: dict = {}  # ReservationId or class label -> queue slot

    # Labels: reservations are tracked individually, other traffic by class.
    BEST_EFFORT = "best-effort"
    UNAUTH = "colibri-unauthentic"

    def run(
        self,
        duration: float,
        colibri_inputs: list,
        best_effort_inputs: list,
        tick: float = 0.001,
    ) -> dict:
        """Drive the port for ``duration`` seconds.

        ``colibri_inputs`` — list of ``(port, source, label)`` where the
        source yields Colibri packets per tick and ``label`` names the
        output row (a reservation name or :data:`UNAUTH`).
        ``best_effort_inputs`` — list of ``(port, source)`` yielding raw
        sizes.

        Returns ``{label: output_gbps}``.
        """
        steps = int(round(duration / tick))
        for _step in range(steps):
            now = self.clock.now()
            for port, source, label in colibri_inputs:
                for packet in source.packets(now, tick):
                    size = packet.total_size
                    self.input_bytes[(port, label)] += size
                    result = self.router.process(packet)
                    if result.verdict.is_drop:
                        self.router_drops[result.verdict] += 1
                        continue
                    if self.scheduler.enqueue(size, TrafficClass.EER_DATA):
                        self._account_later(label, size)
            for port, source in best_effort_inputs:
                for size in source.sizes(now, tick):
                    self.input_bytes[(port, self.BEST_EFFORT)] += size
                    if self.scheduler.enqueue(size, TrafficClass.BEST_EFFORT):
                        self._account_later(self.BEST_EFFORT, size)
            self.scheduler.drain(tick)
            self.clock.advance(tick)
        return self._finalize(duration)

    # The strict-priority scheduler serves whole packets FIFO per class;
    # since every enqueued packet is eventually served or still queued at
    # the end, per-label output = enqueued - backlog share.  We track the
    # enqueue order per class to attribute the backlog precisely.

    def _account_later(self, label: str, size: int) -> None:
        self._pending.setdefault(label, []).append(size)

    def _finalize(self, duration: float) -> dict:
        sent = {}
        # Serve accounting: per class, scheduler.sent_bytes tells how many
        # bytes left the port; attribute them to labels in FIFO order.
        class_of = lambda label: (  # noqa: E731
            TrafficClass.BEST_EFFORT
            if label == self.BEST_EFFORT
            else TrafficClass.EER_DATA
        )
        by_class: dict = defaultdict(list)
        for label, sizes in self._pending.items():
            by_class[class_of(label)].append((label, sizes))
        for traffic_class, labelled in by_class.items():
            budget = self.scheduler.sent_bytes[traffic_class]
            # Interleave FIFO queues per label in round-robin order —
            # matches the per-tick interleaving of sources above closely
            # enough for rate accounting (ticks are small).
            queues = [(label, list(sizes)) for label, sizes in labelled]
            index = 0
            while budget > 0 and any(sizes for _, sizes in queues):
                label, sizes = queues[index % len(queues)]
                index += 1
                if not sizes:
                    continue
                size = sizes.pop(0)
                take = min(size, budget)
                sent[label] = sent.get(label, 0) + take
                budget -= take
        return {
            label: total * 8 / duration / 1e9 for label, total in sent.items()
        }
