"""Multi-hop latency simulation (§9, "Low Overhead").

"Protecting performance-sensitive (e.g., low-latency) traffic is one of
the main benefits of bandwidth reservation systems.  However, if a
system's overhead creates similar or worse effects as congestion, as in
many past proposals, this benefit is negated."

:class:`PathPipeline` quantifies that benefit end to end: a packet walks
every on-path border router and then queues at each hop's output port
(strict-priority classes over :class:`~repro.dataplane.queueing`
semantics), while best-effort cross-traffic loads the same ports.  The
observable is per-packet **end-to-end latency**: Colibri EER packets see
only serialization + propagation, while best-effort packets see the
congestion backlog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dataplane.queueing import TrafficClass
from repro.dataplane.router import Verdict
from repro.errors import ColibriError
from repro.packets.colibri import ColibriPacket, WirePacketView
from repro.packets.wire import PacketArena
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import IsdAs


@dataclass
class HopPort:
    """One hop's output port as a fluid priority queue.

    Tracks per-class backlog in bytes; arrivals join their class, and
    the virtual service process drains strictly by priority.  A packet's
    queueing delay is the time to serve everything ahead of it.
    """

    capacity: float  # bits per second
    propagation: float = 0.001  # seconds
    backlog: dict = field(
        default_factory=lambda: {cls: 0.0 for cls in TrafficClass}
    )
    _last_drain: float = 0.0

    def _drain_to(self, now: float) -> None:
        budget = max(0.0, (now - self._last_drain)) * self.capacity / 8
        self._last_drain = now
        for traffic_class in TrafficClass:  # priority order
            take = min(budget, self.backlog[traffic_class])
            self.backlog[traffic_class] -= take
            budget -= take
            if budget <= 0:
                break

    def offer_cross_traffic(self, size_bytes: float, traffic_class: TrafficClass, now: float) -> None:
        """Background load joining the queue (not individually tracked)."""
        self._drain_to(now)
        self.backlog[traffic_class] += size_bytes

    def transit_delay(self, size_bytes: int, traffic_class: TrafficClass, now: float) -> float:
        """Delay a tracked packet experiences crossing this hop now.

        Queueing (everything at equal-or-higher priority ahead of it) +
        its own serialization + propagation.  The packet's bytes join the
        backlog so later packets queue behind it.
        """
        self._drain_to(now)
        ahead = sum(
            self.backlog[cls] for cls in TrafficClass if cls <= traffic_class
        )
        self.backlog[traffic_class] += size_bytes
        return (ahead + size_bytes) * 8 / self.capacity + self.propagation


@dataclass
class LatencyReport:
    delivered: bool
    latency: float  # seconds, end to end
    per_hop: list  # [(IsdAs, seconds)]
    dropped_at: Optional[IsdAs] = None


class PathPipeline:
    """End-to-end latency of packets along an EER's path."""

    def __init__(
        self,
        network: ColibriNetwork,
        handle,
        capacity: float,
        propagation: float = 0.001,
    ):
        self.network = network
        self.handle = handle
        self.ports = {
            hop.isd_as: HopPort(capacity=capacity, propagation=propagation)
            for hop in handle.hops
        }

    def load_cross_traffic(self, rate: float, duration: float, ases=None) -> None:
        """Pour best-effort volume into (a subset of) the hop ports."""
        targets = ases if ases is not None else list(self.ports)
        for isd_as in targets:
            self.ports[isd_as].offer_cross_traffic(
                rate * duration / 8,
                TrafficClass.BEST_EFFORT,
                self.network.clock.now(),
            )

    def send(self, payload: bytes, traffic_class: TrafficClass = TrafficClass.EER_DATA) -> LatencyReport:
        """One packet through routers + queues, accumulating latency.

        ``traffic_class`` overrides let the ablation push the same packet
        through the best-effort queues (no isolation).
        """
        gateway = self.network.gateway(self.handle.hops[0].isd_as)
        packet = gateway.send(self.handle.reservation_id, payload)
        now = self.network.clock.now()
        latency = 0.0
        per_hop = []
        while True:
            isd_as = self.handle.hops[packet.hop_index].isd_as
            router = self.network.router(isd_as)
            result = router.process(packet)
            if result.verdict.is_drop:
                return LatencyReport(
                    delivered=False,
                    latency=latency,
                    per_hop=per_hop,
                    dropped_at=isd_as,
                )
            hop_delay = self.ports[isd_as].transit_delay(
                packet.total_size, traffic_class, now + latency
            )
            latency += hop_delay
            per_hop.append((isd_as, hop_delay))
            if result.verdict in (Verdict.DELIVER_HOST, Verdict.DELIVER_CSERV):
                return LatencyReport(
                    delivered=True, latency=latency, per_hop=per_hop
                )
            if result.verdict is not Verdict.FORWARD:
                raise ColibriError(f"unexpected verdict {result.verdict}")

    def send_batch(
        self,
        payloads: list,
        traffic_class: TrafficClass = TrafficClass.EER_DATA,
    ) -> List[LatencyReport]:
        """A burst through the batched fast paths, wave by wave.

        One :meth:`~repro.dataplane.gateway.ColibriGateway.send_batch`
        stamps the whole burst, then each hop's router handles the wave
        with one :meth:`~repro.dataplane.router.BorderRouter.process_batch`
        call.  Verdicts are identical to sequential :meth:`send` calls;
        *latencies* model the burst arriving back-to-back, so packets
        queue behind their batch-mates at every port (a burst is a burst
        — sequential sends would interleave drains between packets).
        Returns one report per payload, aligned; gateway drops come back
        undelivered with ``dropped_at`` set to the source AS.
        """
        source = self.handle.hops[0].isd_as
        gateway = self.network.gateway(source)
        outcomes = gateway.send_batch(
            [(self.handle.reservation_id, payload) for payload in payloads]
        )
        now = self.network.clock.now()
        reports: List[Optional[LatencyReport]] = [None] * len(outcomes)
        wave = []
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, ColibriPacket):
                wave.append((index, outcome, 0.0, []))
            else:
                reports[index] = LatencyReport(
                    delivered=False, latency=0.0, per_hop=[], dropped_at=source
                )
        while wave:
            # All burst packets share the handle's path, so one wave sits
            # at one AS and one process_batch call covers it.
            isd_as = self.handle.hops[wave[0][1].hop_index].isd_as
            router = self.network.router(isd_as)
            results = router.process_batch([packet for _, packet, _, _ in wave])
            port = self.ports[isd_as]
            next_wave = []
            for (index, packet, latency, per_hop), result in zip(wave, results):
                if result.verdict.is_drop:
                    reports[index] = LatencyReport(
                        delivered=False,
                        latency=latency,
                        per_hop=per_hop,
                        dropped_at=isd_as,
                    )
                    continue
                hop_delay = port.transit_delay(
                    packet.total_size, traffic_class, now + latency
                )
                latency += hop_delay
                per_hop.append((isd_as, hop_delay))
                if result.verdict in (Verdict.DELIVER_HOST, Verdict.DELIVER_CSERV):
                    reports[index] = LatencyReport(
                        delivered=True, latency=latency, per_hop=per_hop
                    )
                elif result.verdict is Verdict.FORWARD:
                    next_wave.append((index, packet, latency, per_hop))
                else:
                    raise ColibriError(f"unexpected verdict {result.verdict}")
            wave = next_wave
        return reports

    def send_batch_wire(
        self,
        payloads: list,
        traffic_class: TrafficClass = TrafficClass.EER_DATA,
        arena: Optional[PacketArena] = None,
    ) -> List[LatencyReport]:
        """:meth:`send_batch` over zero-copy wire forms.

        The gateway stamps the burst straight into a packet arena
        (:meth:`~repro.dataplane.gateway.ColibriGateway.send_batch_wire`),
        each hop's router validates the views in place
        (:meth:`~repro.dataplane.router.BorderRouter.validate_wire_batch`),
        and forwarding advances the wire hop pointer with a one-byte
        in-place patch — no packet object and no reserialization
        anywhere on the path.  This models the EER *forwarding* fast
        path: a packet validating at every hop is delivered at the
        last one, a packet failing validation drops at that AS
        (control-plane verdicts never arise for EER data packets).
        Latency accounting is identical to :meth:`send_batch`.

        Pass ``arena`` to reuse one slab across bursts; by default a
        burst-sized arena is allocated here.
        """
        source = self.handle.hops[0].isd_as
        gateway = self.network.gateway(source)
        if arena is None:
            header = ColibriPacket.header_size_for(
                len(self.handle.hops), is_eer_data=True
            )
            slot = header + max(
                (len(payload) for payload in payloads), default=0
            )
            arena = PacketArena(slots=max(1, len(payloads)), slot_size=slot)
        outcomes = gateway.send_batch_wire(
            [(self.handle.reservation_id, payload) for payload in payloads],
            arena,
        )
        now = self.network.clock.now()
        reports: List[Optional[LatencyReport]] = [None] * len(outcomes)
        wave = []
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, WirePacketView):
                wave.append((index, outcome, 0.0, []))
            else:
                reports[index] = LatencyReport(
                    delivered=False, latency=0.0, per_hop=[], dropped_at=source
                )
        while wave:
            isd_as = self.handle.hops[wave[0][1].hop_index].isd_as
            router = self.network.router(isd_as)
            valid = router.validate_wire_batch(
                [packet for _, packet, _, _ in wave]
            )
            port = self.ports[isd_as]
            next_wave = []
            for (index, packet, latency, per_hop), ok in zip(wave, valid):
                if not ok:
                    reports[index] = LatencyReport(
                        delivered=False,
                        latency=latency,
                        per_hop=per_hop,
                        dropped_at=isd_as,
                    )
                    continue
                hop_delay = port.transit_delay(
                    len(packet), traffic_class, now + latency
                )
                latency += hop_delay
                per_hop.append((isd_as, hop_delay))
                if packet.hop_index + 1 >= packet.hop_count:
                    reports[index] = LatencyReport(
                        delivered=True, latency=latency, per_hop=per_hop
                    )
                else:
                    packet.advance_hop()
                    next_wave.append((index, packet, latency, per_hop))
            wave = next_wave
        return reports
