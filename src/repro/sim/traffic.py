"""Traffic sources for the data-plane evaluation (§7.1).

The paper's Spirent packet generator produces three traffic classes at
configurable rates; these sources reproduce that mix:

* :class:`ReservationSource` — authentic Colibri traffic conforming to
  its EER (reservations 1 and 2 of Table 2);
* :class:`OverusingSource` — authentic Colibri traffic at a rate above
  the reservation, modelling "a faulty or malicious AS [that] may not
  monitor Colibri flows originating in its network" (threat 3): it
  stamps valid HVFs using the real HopAuths but **bypasses the
  gateway's deterministic monitor**;
* :class:`BogusColibriSource` — packets with random authentication tags
  (threat 2), hoping to overwhelm the router's crypto checks;
* :class:`BestEffortSource` — plain best-effort volume (threat 1).

Each source implements ``packets(now, tick) -> iterator`` yielding what
arrives at the router in one tick.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.constants import L_HVF
from repro.control.cserv import EerHandle
from repro.dataplane.gateway import ColibriGateway
from repro.errors import DataPlaneError
from repro.packets.colibri import ColibriPacket, PacketType
from repro.packets.fields import EerInfo, PathField, ResInfo, Timestamp
from repro.reservation.ids import ReservationId
from repro.topology.addresses import HostAddr, IsdAs


class ReservationSource:
    """Conforming EER traffic through the (honest) gateway."""

    def __init__(
        self,
        gateway: ColibriGateway,
        handle: EerHandle,
        rate: float,
        packet_bytes: int,
    ):
        self.gateway = gateway
        self.handle = handle
        self.rate = rate  # bits per second offered
        self.packet_bytes = packet_bytes
        self._carry = 0.0  # fractional packets carried between ticks
        self.generated = 0
        self.gateway_drops = 0

    def packets(self, now: float, tick: float) -> Iterator[ColibriPacket]:
        """Yield this tick's stamped packets (drops at the gateway are
        counted, not yielded — the gateway refused to authorize them)."""
        exact = self.rate * tick / (self.packet_bytes * 8) + self._carry
        count = int(exact)
        self._carry = exact - count
        payload = b"\x00" * max(0, self.packet_bytes - 120)
        for _ in range(count):
            self.generated += 1
            try:
                yield self.gateway.send(self.handle.reservation_id, payload)
            except DataPlaneError:
                self.gateway_drops += 1


class OverusingSource(ReservationSource):
    """EER traffic stamped *without* monitoring — a rogue source AS.

    Reaches into the gateway's reservation table for the HopAuths (the
    rogue AS operates its own gateway, so it has them) and stamps packets
    directly, skipping the token-bucket check.  Downstream ASes must
    catch this via OFD + deterministic monitoring (§4.8, Table 2 phase 3).
    """

    def packets(self, now: float, tick: float) -> Iterator[ColibriPacket]:
        exact = self.rate * tick / (self.packet_bytes * 8) + self._carry
        count = int(exact)
        self._carry = exact - count
        payload = b"\x00" * max(0, self.packet_bytes - 120)
        entry = self.gateway._reservations[self.handle.reservation_id]
        for _ in range(count):
            self.generated += 1
            version = entry.latest_live(now)
            if version is None:
                self.gateway_drops += 1
                continue
            # Same Ts-uniqueness rule the honest gateway applies, driven
            # off the shared per-entry (micros, sequence) state.
            micros = int((version.expiry - now) * 1e6)
            last = entry.last_micros
            sequence = last[1] + 1 if last is not None and last[0] == micros else 0
            entry.last_micros = (micros, sequence)
            timestamp = Timestamp(micros, sequence)
            packet = ColibriPacket(
                packet_type=PacketType.EER_DATA,
                path=entry.path,
                res_info=version.res_info,
                timestamp=timestamp,
                hvfs=[ColibriPacket.EMPTY_HVF] * len(entry.path),
                eer_info=entry.eer_info,
                payload=payload,
            )
            from repro.dataplane.hvf import eer_hvf  # local to avoid cycle

            size = packet.total_size
            packet.hvfs = [
                eer_hvf(sigma, timestamp, size) for sigma in version.hop_auths
            ]
            yield packet


class BogusColibriSource:
    """Unauthentic Colibri packets: plausible headers, random HVFs (§7.1).

    "An adversary can send Colibri packets without authorization, and
    replace the authentication tags with random strings hoping to
    overwhelm the authentication process on the router."
    """

    def __init__(
        self,
        src_as: IsdAs,
        path_pairs: tuple,
        rate: float,
        packet_bytes: int,
        expiry: float = 1e12,
        seed: int = 99,
    ):
        self.src_as = src_as
        self.path = PathField(path_pairs)
        self.rate = rate
        self.packet_bytes = packet_bytes
        self.expiry = expiry
        self._rng = random.Random(seed)
        self._carry = 0.0
        self.generated = 0

    def packets(self, now: float, tick: float) -> Iterator[ColibriPacket]:
        exact = self.rate * tick / (self.packet_bytes * 8) + self._carry
        count = int(exact)
        self._carry = exact - count
        payload = b"\x00" * max(0, self.packet_bytes - 120)
        for _ in range(count):
            self.generated += 1
            res_info = ResInfo(
                reservation=ReservationId(self.src_as, self._rng.randrange(1 << 31)),
                bandwidth=1e9,
                expiry=self.expiry,
                version=1,
            )
            yield ColibriPacket(
                packet_type=PacketType.EER_DATA,
                path=self.path,
                res_info=res_info,
                timestamp=Timestamp.create(now, self.expiry),
                hvfs=[
                    self._rng.getrandbits(8 * L_HVF).to_bytes(L_HVF, "big")
                    for _ in range(len(self.path))
                ],
                eer_info=EerInfo(HostAddr(1), HostAddr(2)),
                payload=payload,
            )


class BestEffortSource:
    """Plain best-effort volume (packet sizes only, no Colibri headers)."""

    def __init__(self, rate: float, packet_bytes: int):
        self.rate = rate
        self.packet_bytes = packet_bytes
        self._carry = 0.0
        self.generated = 0

    def sizes(self, now: float, tick: float) -> Iterator[int]:
        exact = self.rate * tick / (self.packet_bytes * 8) + self._carry
        count = int(exact)
        self._carry = exact - count
        for _ in range(count):
            self.generated += 1
            yield self.packet_bytes
