"""Simulation substrate: event loop, network assembly, traffic generation."""

from repro.sim.campaign import (
    BogusSpec,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    FaultSpec,
    OveruseSpec,
    Phase,
    PhaseReport,
    RenewalStormSpec,
    WorkloadSpec,
    campaign_slos,
    run_campaign,
)
from repro.sim.campaigns import CANONICAL
from repro.sim.events import Event, EventLoop
from repro.sim.netsim import AtHop, LinkSim, PortSim
from repro.sim.pipeline import HopPort, LatencyReport, PathPipeline
from repro.sim.scenario import ColibriNetwork
from repro.sim.tracing import PacketTracer, TraceEvent
from repro.sim.workload import EerWorkload, WorkloadStats
from repro.sim.traffic import (
    BestEffortSource,
    BogusColibriSource,
    OverusingSource,
    ReservationSource,
)

__all__ = [
    "EventLoop",
    "Event",
    "ColibriNetwork",
    "LinkSim",
    "PortSim",
    "AtHop",
    "PathPipeline",
    "HopPort",
    "LatencyReport",
    "BestEffortSource",
    "BogusColibriSource",
    "OverusingSource",
    "ReservationSource",
    "EerWorkload",
    "WorkloadStats",
    "PacketTracer",
    "TraceEvent",
    "CampaignSpec",
    "CampaignRunner",
    "CampaignResult",
    "Phase",
    "PhaseReport",
    "WorkloadSpec",
    "OveruseSpec",
    "BogusSpec",
    "RenewalStormSpec",
    "FaultSpec",
    "campaign_slos",
    "run_campaign",
    "CANONICAL",
]
