"""Packet tracing: a tcpdump-style record of data-plane decisions.

Attach a :class:`PacketTracer` to a :class:`~repro.sim.scenario.ColibriNetwork`
and every router decision is recorded with the simulated timestamp, the
AS, the verdict, and the packet identity — the forensic view an operator
(or a debugging session) needs when a reservation misbehaves.

The tracer is pull-based and zero-cost when absent: `ColibriNetwork.forward`
calls ``tracer.record`` only if a tracer is installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dataplane.router import Verdict
from repro.packets.colibri import ColibriPacket
from repro.reservation.ids import ReservationId
from repro.topology.addresses import IsdAs


@dataclass(frozen=True)
class TraceEvent:
    """One router decision about one packet.

    The verdict is the authoritative fact of the event.  The recorded
    ``reservation``/``timestamp_id`` are taken from the packet header,
    and for verdicts reached *before* cryptographic authentication
    (expiry, freshness, blocklist, and the HVF failure itself) those
    header bytes are attacker-controlled claims: ``identity_verified``
    is False and identity-keyed queries skip the event by default, so a
    forged packet naming a victim's ResId cannot pollute the victim's
    forensic record.
    """

    when: float
    isd_as: IsdAs
    verdict: Verdict
    reservation: ReservationId
    timestamp_id: bytes  # the packet's unique Ts bytes
    size: int
    #: False when the §4.6 pipeline rejected the packet before (or at)
    #: HVF authentication — the identity above is claimed, not proven.
    identity_verified: bool = True

    def render(self) -> str:
        mark = "x" if self.verdict.is_drop else "."
        # ``res~=`` flags a claimed (unauthenticated) identity.
        claim = "res=" if self.identity_verified else "res~="
        return (
            f"{self.when:12.6f} {mark} {str(self.isd_as):>14} "
            f"{self.verdict.value:<14} {claim}{self.reservation} {self.size}B"
        )


class PacketTracer:
    """Bounded in-memory trace of router decisions."""

    def __init__(self, capacity: int = 10_000):
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: list = []
        self.dropped_events = 0  # trace overflow, not packet drops

    def record(self, when: float, isd_as: IsdAs, verdict: Verdict, packet: ColibriPacket) -> None:
        if len(self._events) >= self.capacity:
            self.dropped_events += 1
            return
        self._events.append(
            TraceEvent(
                when=when,
                isd_as=isd_as,
                verdict=verdict,
                reservation=packet.res_info.reservation,
                timestamp_id=packet.timestamp.packed,
                size=packet.total_size,
                identity_verified=verdict.identity_verified,
            )
        )

    # -- queries -----------------------------------------------------------------

    def events(self) -> list:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def for_reservation(
        self, reservation: ReservationId, include_claimed: bool = False
    ) -> list:
        """Events whose *authenticated* identity names ``reservation``.

        Pre-authentication drops carry a claimed identity an attacker
        chose; attributing them here would frame the reservation's owner.
        ``include_claimed=True`` opts into the raw header view.
        """
        return [
            e
            for e in self._events
            if e.reservation == reservation
            and (include_claimed or e.identity_verified)
        ]

    def drops(self) -> list:
        return [e for e in self._events if e.verdict.is_drop]

    def claimed_drops(self) -> list:
        """Drops judged on unauthenticated header bytes (the reject
        reason is authoritative; the named reservation is not)."""
        return [
            e
            for e in self._events
            if e.verdict.is_drop and not e.identity_verified
        ]

    def packet_journey(
        self,
        reservation: ReservationId,
        timestamp_id: bytes,
        include_claimed: bool = False,
    ) -> list:
        """Every hop decision for one specific packet, in order."""
        return [
            e
            for e in self._events
            if e.reservation == reservation
            and e.timestamp_id == timestamp_id
            and (include_claimed or e.identity_verified)
        ]

    def render(self, limit: Optional[int] = None) -> str:
        """A human-readable timeline (most recent last)."""
        events = self._events if limit is None else self._events[-limit:]
        return "\n".join(event.render() for event in events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped_events = 0
