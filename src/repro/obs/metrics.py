"""Histogram/gauge/counter instruments and their exposition rendering.

The flat :class:`repro.util.metrics.Counters` stay the workhorse for
per-component event counts; this module adds the instrument types the
paper's evaluation needs and that counters cannot express — latency
*distributions* (admission percentiles, §6.1) and point-in-time *levels*
(token-bucket occupancy, σ-cache fill).  Instruments render in the
Prometheus exposition format alongside the counter samples produced by
:func:`repro.util.observability.render_metrics`; histograms follow the
standard ``_bucket{le=…}/_sum/_count`` encoding with cumulative,
monotone bucket counts.

Registries from the shard executor's per-process stacks merge
associatively (:meth:`MetricsRegistry.merge`): counters and histogram
buckets add, gauges take the last written value — the same semantics
Prometheus federation applies.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Iterable, Optional, Sequence

#: Admission workflows are Python-scale: sub-millisecond local admission
#: up to tens of milliseconds for long paths under retries.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
)

#: Attempts per logical call; the retry policies cap max_attempts well
#: below 8, so the top finite bucket catches policy changes.
DEFAULT_RETRY_BUCKETS = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)

#: Occupancy ratios (0..1) for token buckets and caches.
DEFAULT_RATIO_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(f"metric name must be [a-zA-Z0-9_]+, got {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name must not start with a digit: {name!r}")
    return name


class Counter:
    """Monotone event count (registry-level sibling of ``Counters``)."""

    kind = "counter"
    __slots__ = ("name", "help_text", "value")

    def __init__(self, name: str, help_text: str = ""):
        self.name = _validate_name(name)
        self.help_text = help_text
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        self.value += other.value

    def samples(self, prefix: str) -> list:
        return [(f"{prefix}_{self.name}", "", self.value)]


class Gauge:
    """Point-in-time level; optionally backed by a callback so the
    exporter reads the live value (cache fill, bucket occupancy) without
    the instrumented component pushing on every change."""

    kind = "gauge"
    __slots__ = ("name", "help_text", "_value", "_fn")

    def __init__(self, name: str, help_text: str = ""):
        self.name = _validate_name(name)
        self.help_text = help_text
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._fn = None
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def merge_from(self, other: "Gauge") -> None:
        # Last-writer-wins, matching Prometheus federation for gauges;
        # callback gauges are process-local and never arrive via merge.
        self._fn = None
        self._value = other.value

    def samples(self, prefix: str) -> list:
        return [(f"{prefix}_{self.name}", "", self.value)]


class Histogram:
    """Fixed-bucket histogram with cumulative exposition.

    ``buckets`` are the finite upper bounds (strictly increasing); the
    implicit ``+Inf`` bucket always exists.  Internally counts are
    per-bucket (non-cumulative) so :meth:`merge_from` is plain
    elementwise addition; :meth:`samples` emits the cumulative counts
    the exposition format requires.
    """

    kind = "histogram"
    __slots__ = ("name", "help_text", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float], help_text: str = ""):
        self.name = _validate_name(name)
        self.help_text = help_text
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError(f"finite bounds only (+Inf is implicit): {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list:
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket containing the p-th percentile
        observation (the usual histogram-quantile estimate)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            raise ValueError(f"histogram {self.name} is empty")
        rank = math.ceil(self.count * p / 100) or 1
        for bound, cum in zip(
            self.buckets + (math.inf,), self.cumulative_counts()
        ):
            if cum >= rank:
                return bound
        raise RuntimeError(f"rank {rank} unreachable in {self.name}")  # pragma: no cover

    def merge_from(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge {self.name}: bounds {other.buckets} != {self.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def samples(self, prefix: str) -> list:
        base = f"{prefix}_{self.name}"
        out = []
        bounds = [_format_bound(b) for b in self.buckets] + ["+Inf"]
        for bound, cum in zip(bounds, self.cumulative_counts()):
            out.append((f"{base}_bucket", f'{{le="{bound}"}}', cum))
        out.append((f"{base}_sum", "", self.sum))
        out.append((f"{base}_count", "", self.count))
        return out


def _format_bound(bound: float) -> str:
    """Exposition bound formatting: integral bounds render bare
    (``le="2"``), fractional ones in shortest repr (``le="0.005"``)."""
    if bound == int(bound):
        return str(int(bound))
    return repr(bound)


class MetricsRegistry:
    """Get-or-create instrument registry with merge and exposition.

    One registry per process (attached via ``ObsContext``); the shard
    executor returns per-process registries to the parent, which merges
    them into its own before rendering.
    """

    def __init__(self, prefix: str = "colibri"):
        self.prefix = prefix
        self._instruments: dict = {}

    def _get_or_create(self, cls, name: str, **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"{name!r} already registered as {existing.kind}, "
                    f"wanted {cls.kind}"
                )
            return existing
        instrument = cls(name, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text=help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text=help_text)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        help_text: str = "",
    ) -> Histogram:
        """Get or create; omitting ``buckets`` accepts whatever bounds an
        existing registration chose (instrumentation sites observe into
        histograms the context pre-registered with tuned bounds)."""
        existing = self._instruments.get(name)
        if isinstance(existing, Histogram):
            if buckets is not None and existing.buckets != tuple(
                float(b) for b in buckets
            ):
                raise ValueError(
                    f"histogram {name!r} already registered with bounds "
                    f"{existing.buckets}"
                )
            return existing
        return self._get_or_create(
            Histogram,
            name,
            buckets=buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS,
            help_text=help_text,
        )

    def instruments(self) -> list:
        return [self._instruments[name] for name in sorted(self._instruments)]

    def get(self, name: str):
        return self._instruments.get(name)

    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``others`` into this registry (associative, in place;
        returns self for chaining).  Unknown instruments are adopted
        with the same type and bounds."""
        for other in others:
            for name, instrument in other._instruments.items():
                mine = self._instruments.get(name)
                if mine is None:
                    if isinstance(instrument, Histogram):
                        mine = self.histogram(
                            name,
                            buckets=instrument.buckets,
                            help_text=instrument.help_text,
                        )
                    elif isinstance(instrument, Gauge):
                        mine = self.gauge(name, help_text=instrument.help_text)
                    else:
                        mine = self.counter(name, help_text=instrument.help_text)
                mine.merge_from(instrument)
        return self

    # -- multiprocessing transport --------------------------------------------

    def state(self) -> dict:
        """Picklable snapshot for crossing process boundaries (callback
        gauges are frozen to their current reading)."""
        out = {}
        for name, inst in self._instruments.items():
            if isinstance(inst, Histogram):
                out[name] = {
                    "kind": "histogram",
                    "help": inst.help_text,
                    "buckets": inst.buckets,
                    "counts": list(inst.counts),
                    "sum": inst.sum,
                    "count": inst.count,
                }
            else:
                out[name] = {
                    "kind": inst.kind,
                    "help": inst.help_text,
                    "value": inst.value,
                }
        return out

    @classmethod
    def from_state(cls, state: dict, prefix: str = "colibri") -> "MetricsRegistry":
        registry = cls(prefix=prefix)
        for name, payload in state.items():
            if payload["kind"] == "histogram":
                hist = registry.histogram(
                    name, buckets=payload["buckets"], help_text=payload["help"]
                )
                hist.counts = list(payload["counts"])
                hist.sum = payload["sum"]
                hist.count = payload["count"]
            elif payload["kind"] == "gauge":
                registry.gauge(name, help_text=payload["help"]).set(payload["value"])
            else:
                registry.counter(name, help_text=payload["help"]).inc(
                    payload["value"]
                )
        return registry

    # -- exposition -----------------------------------------------------------

    def render(self, exclude: frozenset = frozenset()) -> str:
        """Exposition-format text for every instrument, name-sorted.
        ``render_metrics(telemetry, registry=…)`` appends this block to
        the counter samples so one scrape covers both layers; it passes
        the telemetry-derived names as ``exclude`` so instruments
        mirrored from the flat counters are not reported twice."""
        lines: list = []
        for inst in self.instruments():
            if inst.name in exclude:
                continue
            full = f"{self.prefix}_{inst.name}"
            if inst.help_text:
                lines.append(f"# HELP {full} {inst.help_text}")
            lines.append(f"# TYPE {full} {inst.kind}")
            for sample_name, labels, value in inst.samples(self.prefix):
                lines.append(f"{sample_name}{labels} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if isinstance(value, int) or (
        not math.isinf(value) and float(value) == int(value)
    ):
        return str(int(value))
    return repr(float(value))


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fresh registry holding the fold of ``registries`` (left intact)."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(MetricsRegistry.from_state(registry.state()))
    return merged
