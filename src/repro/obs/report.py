"""Operator health reporting: one seeded scenario, one readable verdict.

``python -m repro health`` drives a small two-ISD deployment with the
full observability stack armed (journal + SLO burn-rate alerting, with
the simulation clock doubling as the latency clock so every number is
byte-deterministic per seed), optionally injects the §7.1 threat-3
overuse attacker, and renders what an on-call operator would want at a
glance:

* the SLO table — each objective's alert state and burn rates;
* firing alerts (a clean run fires none; the attack run burns the
  hop-drop-ratio budget);
* journal statistics and the noisiest reservations by event volume;
* §5 overuse evidence assembled from the journal by
  :class:`~repro.obs.forensics.EvidenceBuilder` and re-checked by
  :func:`~repro.obs.forensics.verify_evidence`.

The module is deliberately CLI-shaped but importable: tests call
:func:`run_health_scenario` + :func:`health_report` directly and assert
on the dict.
"""

from __future__ import annotations

import json

from repro.obs.forensics import EvidenceBuilder, verify_evidence
from repro.sim.scenario import ColibriNetwork
from repro.topology.addresses import HostAddr, IsdAs
from repro.topology.generator import build_two_isd_topology
from repro.util.units import format_bandwidth, gbps, mbps

BASE = 0xFF00_0000_0000
SRC = IsdAs(1, BASE + 101)
DST = IsdAs(2, BASE + 101)
ATTACKER = IsdAs(1, BASE + 111)

#: Engine sampling stride: one AlertEngine tick per this many rounds.
TICK_EVERY = 5


def run_health_scenario(
    seed: int = 0,
    attack: bool = False,
    rounds: int = 1500,
    tick: float = 0.001,
    overuse_factor: float = 10.0,
):
    """Run the canonical health workload; returns ``(network, obs)``.

    Benign traffic flows at exactly its reserved rate throughout.  With
    ``attack=True`` a rogue AS (its gateway "forgetting" to monitor, its
    own border router's OFD blinded — §7.1 threat 3) floods
    ``overuse_factor`` times its reservation over the same destination,
    so transit policing must catch it.  The burn-rate engine is ticked
    throughout; everything downstream is deterministic per ``seed``.
    """
    network = ColibriNetwork(build_two_isd_topology())
    obs = network.enable_observability(
        seed=seed, journal=True, slos=True, perf=network.clock
    )
    network.reserve_segments(SRC, DST, gbps(1))
    network.reserve_segments(ATTACKER, DST, gbps(1))
    benign_handle = network.establish_eer(
        SRC, DST, mbps(8), src_host=HostAddr(1), dst_host=HostAddr(2)
    )
    benign_bytes = int(benign_handle.res_info.bandwidth * tick / 8)
    attack_handle = None
    attack_count = 0
    attack_packet = 0
    if attack:
        attack_handle = network.establish_eer(
            ATTACKER, DST, mbps(8), src_host=HostAddr(3), dst_host=HostAddr(2)
        )
        # The rogue AS does not police its own customers (§7.1 threat 3).
        network.gateway(ATTACKER).monitor.unwatch(
            attack_handle.reservation_id.packed
        )
        network.router(ATTACKER).ofd.overuse_factor = float("inf")
        attack_bytes = int(
            attack_handle.res_info.bandwidth * tick * overuse_factor / 8
        )
        attack_packet = max(200, benign_bytes)
        attack_count = max(1, attack_bytes // attack_packet)
    for index in range(rounds):
        network.send(SRC, benign_handle, b"b" * max(0, benign_bytes - 120))
        for _ in range(attack_count):
            network.send(
                ATTACKER, attack_handle, b"a" * max(0, attack_packet - 120)
            )
        network.advance(tick)
        if index % TICK_EVERY == 0:
            obs.alerts.tick()
    obs.alerts.tick()
    return network, obs


# -- report assembly ---------------------------------------------------------------


def health_report(network, obs, top_n: int = 5) -> dict:
    """The full health snapshot as one JSON-serializable dict."""
    alerts = [
        {
            "slo": alert.slo,
            "state": alert.state,
            "since": alert.since,
            "fast_burn": round(alert.fast_burn, 6),
            "slow_burn": round(alert.slow_burn, 6),
        }
        for alert in obs.alerts.alerts()
    ]
    journal = obs.journal
    evidence = []
    builder = EvidenceBuilder(journal)
    for flow in builder.confirmed_flows():
        record = builder.build(flow)
        problems = verify_evidence(record, journal)
        evidence.append(
            {
                "flow": record.flow,
                "reservation": record.reservation,
                "src_as": record.src_as,
                "isd_as": record.isd_as,
                "admitted_bps": record.admitted_bps,
                "drop_count": record.drop_count,
                "dropped_bytes": record.dropped_bytes,
                "ofd_hits": record.ofd_hits,
                "drkey_epoch": record.drkey_epoch,
                "samples": len(record.sample_packets),
                "accepted": not problems,
                "problems": problems,
            }
        )
    return {
        "slos": alerts,
        "firing": sorted(a["slo"] for a in alerts if a["state"] == "firing"),
        "journal": {
            **journal.stats(),
            "by_type": journal.count_by_type(),
        },
        "noisy_reservations": _noisy_reservations(journal, top_n),
        "evidence": evidence,
        "telemetry_total": network.telemetry()["total"],
    }


def _noisy_reservations(journal, top_n: int) -> list:
    """Reservations by journal event volume, noisiest first."""
    counts: dict = {}
    for event in journal.events():
        reservation = event.attrs.get("reservation")
        if reservation is not None:
            counts[reservation] = counts.get(reservation, 0) + 1
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [
        {"reservation": reservation, "events": count}
        for reservation, count in ranked[:top_n]
    ]


# -- rendering ---------------------------------------------------------------------


def render_health(report: dict) -> str:
    """The text form of :func:`health_report` — the on-call view."""
    lines = ["== SLOs =="]
    if report["slos"]:
        width = max(len(a["slo"]) for a in report["slos"])
        for alert in report["slos"]:
            lines.append(
                f"  {alert['slo']:<{width}}  {alert['state']:<8}"
                f"  fast={alert['fast_burn']:.3f}  slow={alert['slow_burn']:.3f}"
            )
    else:
        lines.append("  (no SLOs registered)")
    firing = report["firing"]
    lines.append("== Firing alerts ==")
    lines.append(
        "  " + (", ".join(firing) if firing else "none — error budgets intact")
    )
    stats = report["journal"]
    lines.append("== Event journal ==")
    lines.append(
        f"  {stats['total']} events recorded, {stats['retained']} retained "
        f"(capacity {stats['capacity']}, {stats['dropped']} evicted)"
    )
    for event_type, count in sorted(stats["by_type"].items()):
        lines.append(f"    {event_type}: {count}")
    lines.append("== Noisy reservations ==")
    if report["noisy_reservations"]:
        for entry in report["noisy_reservations"]:
            lines.append(f"  {entry['reservation']}: {entry['events']} events")
    else:
        lines.append("  none")
    lines.append("== Overuse evidence ==")
    if report["evidence"]:
        for record in report["evidence"]:
            verdict = "ACCEPTED" if record["accepted"] else "REJECTED"
            lines.append(
                f"  flow {record['flow']} (res {record['reservation']}, "
                f"src {record['src_as']}) confirmed at {record['isd_as']}: "
                f"{record['drop_count']} verified drops, "
                f"{record['ofd_hits']} OFD hits, admitted "
                f"{format_bandwidth(record['admitted_bps'])} — {verdict}"
            )
            for problem in record["problems"]:
                lines.append(f"    ! {problem}")
    else:
        lines.append("  none — no monitor-confirmed overuse")
    return "\n".join(lines) + "\n"


def render_events(obs) -> str:
    """Trace spans and journal events interleaved chronologically.

    The ``trace --events`` view: spans sort by start time, journal
    events by record time; ties resolve spans-first (a drop's span opens
    before its journal event is emitted).  Deterministic per seed.
    """
    entries = []
    for span in obs.tracer.spans():
        end = f"{span.end:.6f}" if span.end is not None else "open"
        entries.append(
            (span.start, 0, f"[span ] {span.start:.6f}..{end} {span.name}")
        )
    if obs.journal is not None:
        for event in obs.journal.events():
            attrs = json.dumps(event.attrs, sort_keys=True)
            entries.append(
                (event.time, 1, f"[event] {event.time:.6f} {event.type} {attrs}")
            )
    entries.sort(key=lambda item: (item[0], item[1]))
    return "\n".join(line for _, _, line in entries) + ("\n" if entries else "")
