"""Cross-layer observability: trace spans, metrics, profiling hooks.

The paper evaluates Colibri by *measuring* it — admission latency
percentiles (§6.1), per-hop processing cost (Fig. 5), monitor/OFD
behaviour under attack (§7.1) — so the reproduction needs first-class
instrumentation an operator (and the test suite) can assert on:

* :mod:`repro.obs.trace` — propagated trace spans over the control plane
  (bus calls, retries, breaker transitions, admission decisions,
  renewals, dissemination) and the data plane (gateway stamp, per-hop
  router verdicts), recorded by a seeded, injected-clock
  :class:`~repro.obs.trace.TraceCollector` with JSON-lines export and a
  query API;
* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  with counters, gauges, and fixed-bucket histograms, rendered in the
  Prometheus exposition format next to the flat telemetry counters;
* :mod:`repro.obs.profile` — a zero-cost-when-disabled ``@profiled``
  timer over the hot paths, feeding the ``BENCH_*.json`` writers;
* :mod:`repro.obs.events` — a bounded, typed
  :class:`~repro.obs.events.EventJournal` (flight recorder) both planes
  emit structured events into;
* :mod:`repro.obs.slo` — SLO specs and a multi-window burn-rate
  :class:`~repro.obs.slo.AlertEngine` over registry snapshots;
* :mod:`repro.obs.forensics` — journal-backed
  :class:`~repro.obs.forensics.OveruseEvidence` records for §5
  complaints, with a verifier.

Everything is deterministic (seeded span IDs, injected clocks) and
disabled by default: an un-instrumented run takes the exact same fast
paths as before this module existed (docs/observability.md states the
measured bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.distributed import (
    MergedTelemetry,
    TelemetryFrame,
    TelemetryGapError,
    TraceContext,
    assemble_frames,
    frames_from,
    merge_frames,
    merge_traces,
    render_span_forest,
)
from repro.obs.events import EventJournal, emit
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_RETRY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    Profiler,
    active_profiler,
    install_profiler,
    profiled,
    profiling,
    uninstall_profiler,
)
from repro.obs.sampling import SamplingProfiler
from repro.obs.trace import Span, TraceCollector, traced
from repro.util.clock import Clock, PerfClock

__all__ = [
    "Counter",
    "EventJournal",
    "Gauge",
    "Histogram",
    "MergedTelemetry",
    "MetricsRegistry",
    "ObsContext",
    "Profiler",
    "SamplingProfiler",
    "Span",
    "TelemetryFrame",
    "TelemetryGapError",
    "TraceCollector",
    "TraceContext",
    "active_profiler",
    "assemble_frames",
    "emit",
    "frames_from",
    "install_profiler",
    "merge_frames",
    "merge_traces",
    "profiled",
    "profiling",
    "render_span_forest",
    "traced",
    "uninstall_profiler",
]


@dataclass
class ObsContext:
    """One deployment's observability plumbing, shared across components.

    Components hold an optional ``obs`` attribute (``None`` by default);
    every instrumentation site guards on it, so the disabled state costs
    one attribute read at most.  :meth:`create` wires the standard
    instruments; :meth:`~repro.sim.scenario.ColibriNetwork.enable_observability`
    attaches the context to every stack of a running network.
    """

    tracer: TraceCollector
    metrics: MetricsRegistry
    #: Wall-duration source for latency instruments.  Distinct from the
    #: protocol clock: admission latency is real compute time (§6.1),
    #: not simulated time.
    perf: Clock
    #: Optional flight recorder; ``None`` keeps every ``emit`` site a
    #: no-op even when tracing/metrics are armed.
    journal: Optional[EventJournal] = None
    #: Optional burn-rate alert engine watching :attr:`metrics`.
    alerts: Optional["object"] = None
    #: Optional wire-path sampling profiler
    #: (:class:`~repro.obs.sampling.SamplingProfiler`); ``None`` keeps
    #: ``send_batch_wire``/``validate_wire_batch`` on the untouched
    #: fast path.
    sampler: Optional[SamplingProfiler] = None

    @classmethod
    def create(
        cls,
        clock: Clock,
        seed: int = 0,
        perf: Optional[Clock] = None,
        trace_capacity: int = 100_000,
        journal: bool = False,
        journal_capacity: int = 65_536,
    ) -> "ObsContext":
        metrics = MetricsRegistry()
        metrics.histogram(
            "admission_latency_seconds",
            buckets=DEFAULT_LATENCY_BUCKETS,
            help_text="Wall-clock latency of initiator-side admission workflows",
        )
        metrics.histogram(
            "retry_attempts",
            buckets=DEFAULT_RETRY_BUCKETS,
            help_text="Bus attempts consumed per logical control-plane call",
        )
        return cls(
            tracer=TraceCollector(clock, seed=seed, capacity=trace_capacity),
            metrics=metrics,
            perf=perf if perf is not None else PerfClock(),
            journal=(
                EventJournal(clock, capacity=journal_capacity) if journal else None
            ),
        )
