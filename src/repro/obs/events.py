"""Typed event journal — the flight recorder (docs/observability.md §5).

Spans answer "how long did this take"; the journal answers "what
happened".  Each entry is a typed, structured event with a seeded-clock
timestamp and a monotonic sequence number, held in a bounded ring
buffer.  The journal is the substrate both for forensic evidence
(:mod:`repro.obs.forensics` joins journal events into §5 complaint
records) and for offline SLO evaluation (:mod:`repro.obs.slo` replays a
journal export exactly as it would watch a live registry).

Determinism: timestamps come from the injected clock and attributes are
restricted to JSON scalars, so a seeded scenario exports byte-identical
JSONL on every run — the journal of a run *is* reproducible evidence.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, List, Optional

from repro.util.clock import Clock

# -- event types --------------------------------------------------------------
#
# The closed vocabulary of things worth remembering.  Closed on purpose:
# a typo'd event type is an instrumentation bug, not a new category, so
# ``record`` rejects unknown types instead of silently forking the
# namespace.

ADMISSION_DECIDED = "AdmissionDecided"
RESERVATION_RENEWED = "ReservationRenewed"
RESERVATION_TORN_DOWN = "ReservationTornDown"
VERDICT_DROPPED = "VerdictDropped"
MONITOR_CONFIRMED_OVERUSE = "MonitorConfirmedOveruse"
OFD_FLAGGED = "OfdFlagged"
DUPLICATE_SUPPRESSED = "DuplicateSuppressed"
BREAKER_TRANSITION = "BreakerTransition"
STORE_SWEPT = "StoreSwept"
SHARD_COMPLETED = "ShardCompleted"

EVENT_TYPES = frozenset(
    {
        ADMISSION_DECIDED,
        RESERVATION_RENEWED,
        RESERVATION_TORN_DOWN,
        VERDICT_DROPPED,
        MONITOR_CONFIRMED_OVERUSE,
        OFD_FLAGGED,
        DUPLICATE_SUPPRESSED,
        BREAKER_TRANSITION,
        STORE_SWEPT,
        SHARD_COMPLETED,
    }
)

#: Attribute values must be JSON scalars so exports are deterministic
#: and an imported journal compares equal to the live one.
_SCALARS = (str, int, float, bool, type(None))


class Event:
    """One journal entry: ``(seq, time, type, attrs)``."""

    __slots__ = ("seq", "time", "type", "attrs")

    def __init__(self, seq: int, time: float, type: str, attrs: dict):
        self.seq = seq
        self.time = time
        self.type = type
        self.attrs = attrs

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "time": self.time,
            "type": self.type,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        return cls(data["seq"], data["time"], data["type"], data["attrs"])

    def identity(self) -> tuple:
        """Order- and shard-independent identity: what happened and when,
        regardless of which journal's sequence counter stamped it.  Used
        to compare a serial journal against merged per-shard journals."""
        return (self.time, self.type, json.dumps(self.attrs, sort_keys=True))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.time == other.time
            and self.type == other.type
            and self.attrs == other.attrs
        )

    def __repr__(self) -> str:
        return f"Event(#{self.seq} t={self.time} {self.type} {self.attrs})"


class EventJournal:
    """Bounded, clock-injected flight recorder with a query API.

    Retention is a ring buffer: once ``capacity`` events are held, each
    new event evicts the oldest and bumps ``dropped_events`` —
    ``total_events`` keeps counting, so an operator can tell a quiet
    system from one that wrapped its buffer.
    """

    def __init__(self, clock: Clock, capacity: int = 65_536):
        if capacity <= 0:
            raise ValueError(f"journal capacity must be positive, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        self.total_events = 0
        self.dropped_events = 0
        # Cumulative per-type counts, never decremented by ring eviction:
        # the monotone series the SLO engine's journal gauges export.
        self._type_totals = {event_type: 0 for event_type in EVENT_TYPES}

    # -- recording ------------------------------------------------------------

    def record(self, event_type: str, **attrs) -> Event:
        if event_type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event_type!r}")
        for key, value in attrs.items():
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"event attribute {key}={value!r} is not a JSON scalar"
                )
        event = Event(self._seq, self.clock.now(), event_type, attrs)
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped_events += 1
        self._events.append(event)
        self.total_events += 1
        self._type_totals[event_type] += 1
        return event

    # -- queries --------------------------------------------------------------

    def events(self) -> List[Event]:
        """All retained events, oldest first."""
        return list(self._events)

    def query(
        self,
        event_type: Optional[str] = None,
        reservation: Optional[str] = None,
        isd_as: Optional[str] = None,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Event]:
        """Retained events matching every given filter.  ``start``/``end``
        bound the timestamp as a half-open window ``[start, end)``."""
        result = []
        for event in self._events:
            if event_type is not None and event.type != event_type:
                continue
            if reservation is not None and (
                event.attrs.get("reservation") != reservation
            ):
                continue
            if isd_as is not None and event.attrs.get("isd_as") != isd_as:
                continue
            if start is not None and event.time < start:
                continue
            if end is not None and event.time >= end:
                continue
            result.append(event)
        return result

    def by_type(self, event_type: str) -> List[Event]:
        return self.query(event_type=event_type)

    def by_reservation(self, reservation: str) -> List[Event]:
        return self.query(reservation=reservation)

    def by_as(self, isd_as: str) -> List[Event]:
        return self.query(isd_as=isd_as)

    def in_window(self, start: float, end: float) -> List[Event]:
        return self.query(start=start, end=end)

    def count_by_type(self) -> dict:
        """Retained-event histogram, keyed by type, sorted by key."""
        counts: dict = {}
        for event in self._events:
            counts[event.type] = counts.get(event.type, 0) + 1
        return dict(sorted(counts.items()))

    def total_count(self, event_type: str) -> int:
        """Cumulative count of ``event_type`` ever recorded — monotone
        even after ring-buffer eviction (unlike :meth:`count_by_type`,
        which counts what is still retained)."""
        if event_type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {event_type!r}")
        return self._type_totals[event_type]

    def stats(self) -> dict:
        """Journal bookkeeping for the health report."""
        return {
            "capacity": self.capacity,
            "retained": len(self._events),
            "total": self.total_events,
            "dropped": self.dropped_events,
        }

    def __len__(self) -> int:
        return len(self._events)

    # -- export / import ------------------------------------------------------

    def export_jsonl(self) -> str:
        """One JSON object per retained event, oldest first — byte
        identical across same-seed runs (``sort_keys``, injected clock)."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in self._events
        )

    @classmethod
    def import_jsonl(
        cls, text: str, clock: Clock, capacity: int = 65_536
    ) -> "EventJournal":
        """Rebuild a journal from :meth:`export_jsonl` output.  The
        imported journal re-exports byte-identically; ``clock`` is only
        consulted for events recorded *after* the import."""
        journal = cls(clock, capacity=capacity)
        for event in parse_jsonl(text):
            if len(journal._events) == journal.capacity:
                journal.dropped_events += 1
            journal._events.append(event)
            journal.total_events += 1
            journal._type_totals[event.type] += 1
            journal._seq = max(journal._seq, event.seq + 1)
        return journal


def parse_jsonl(text: str) -> List[Event]:
    """Parse an :meth:`EventJournal.export_jsonl` export into events."""
    return [
        Event.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def merge_events(*streams: Iterable[Event]) -> List[Event]:
    """Merge event streams from independent journals (e.g. one per
    shard) into one chronological stream, ordered by
    :meth:`Event.identity` — deterministic regardless of how work was
    partitioned, so a merged sharded run compares equal to a serial
    one."""
    merged = [event for stream in streams for event in stream]
    merged.sort(key=Event.identity)
    return merged


def emit(obs, event_type: str, **attrs) -> None:
    """Record an event when the component's ``obs`` context carries a
    journal; a cheap no-op otherwise.  Call sites on hot paths should
    guard on ``obs is not None`` *before* building the attrs dict so the
    disabled run pays one attribute read only."""
    if obs is None:
        return
    journal = obs.journal
    if journal is None:
        return
    journal.record(event_type, **attrs)
