"""Attack forensics: overuse evidence records for §5 complaints.

When the deterministic monitor confirms an overusing flow (§4.8), the
blocking AS needs more than a counter: SIBRA-style reservation systems
are deployable only if an AS can *prove* misuse to the reservation's
source (and to a dispute-of-complaint process, §5).  This module joins
the event journal into a per-flow :class:`OveruseEvidence` record — the
artifact an operator exports and attaches to a complaint — and supplies
:func:`verify_evidence`, the receiving side's re-check of every claim
against the journal.

Evidentiary discipline follows :mod:`repro.sim.tracing`: only drops
whose claimed identity was **cryptographically verified** before the
verdict (``Verdict.identity_verified``) may serve as sample packets.
Overuse drops qualify — the §4.6 pipeline authenticates the HVF before
policing — while a forged packet dies earlier as ``drop_bad_hvf`` and is
rejected as evidence (the attacker replayed header bytes naming the
victim, but could not authenticate them).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List

from repro.constants import DRKEY_VALIDITY
from repro.obs.events import (
    MONITOR_CONFIRMED_OVERUSE,
    OFD_FLAGGED,
    VERDICT_DROPPED,
    EventJournal,
)

#: Sample packets attached to an evidence record by default: enough to
#: spot-check, small enough to ship in a complaint.
DEFAULT_MAX_SAMPLES = 5


@dataclass(frozen=True)
class OveruseEvidence:
    """One flow's overuse case, assembled entirely from journal facts.

    ``sample_packets`` are ``{"seq", "time", "size"}`` references to
    MAC-verified overuse drops; ``journal_refs`` lists the sequence
    numbers of the confirmation and OFD events the claims rest on.
    """

    flow: str  # reservation id, packed hex — the monitor's flow label
    reservation: str  # human-readable reservation id
    src_as: str
    isd_as: str  # the AS presenting the evidence
    version: int
    admitted_bps: float  # what admission granted (the bucket's rate)
    confirmed_at: float
    window_start: float  # confirmation streak window
    window_end: float
    drkey_epoch: int  # epoch whose hop key authenticated the samples
    monitor_drops: int  # non-conforming packets in the streak
    ofd_hits: int  # sketch hits while the flow was flagged
    drop_count: int  # verified overuse drops inside the window
    dropped_bytes: int
    sample_packets: tuple
    journal_refs: tuple

    def to_json(self) -> str:
        """Deterministic serialization (sorted keys, no whitespace
        churn) — two builds over the same journal are byte-identical."""
        payload = asdict(self)
        payload["sample_packets"] = list(self.sample_packets)
        payload["journal_refs"] = list(self.journal_refs)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "OveruseEvidence":
        data = json.loads(text)
        data["sample_packets"] = tuple(data["sample_packets"])
        data["journal_refs"] = tuple(data["journal_refs"])
        return cls(**data)


class EvidenceBuilder:
    """Assembles :class:`OveruseEvidence` from an :class:`EventJournal`."""

    def __init__(self, journal: EventJournal):
        self.journal = journal

    def confirmed_flows(self) -> List[str]:
        """Flow labels with at least one confirmed-overuse event,
        discovery order, deduplicated."""
        seen: dict = {}
        for event in self.journal.by_type(MONITOR_CONFIRMED_OVERUSE):
            seen.setdefault(event.attrs["flow"], None)
        return list(seen)

    def build(
        self, flow: str, max_samples: int = DEFAULT_MAX_SAMPLES
    ) -> OveruseEvidence:
        """Evidence for one flow label (reservation id, packed hex).

        Raises :class:`ValueError` when the journal holds no confirmed
        overuse for the flow — evidence cannot outrun its facts.
        """
        confirmations = [
            event
            for event in self.journal.by_type(MONITOR_CONFIRMED_OVERUSE)
            if event.attrs["flow"] == flow
        ]
        if not confirmations:
            raise ValueError(f"no confirmed overuse for flow {flow!r} in journal")
        confirmation = confirmations[-1]
        window = float(confirmation.attrs["window"])
        window_end = confirmation.time
        window_start = window_end - window

        drops = self._verified_drops(flow, window_start, window_end)
        ofd_events = [
            event
            for event in self.journal.by_type(OFD_FLAGGED)
            if event.attrs["flow"] == flow
        ]
        reservation = confirmation.attrs.get("reservation", "")
        src_as = ""
        version = 0
        if drops:
            reservation = drops[0].attrs.get("reservation", reservation)
            src_as = drops[0].attrs.get("src_as", "")
            version = int(drops[0].attrs.get("version", 0))

        return OveruseEvidence(
            flow=flow,
            reservation=reservation,
            src_as=src_as,
            isd_as=confirmation.attrs["isd_as"],
            version=version,
            admitted_bps=float(confirmation.attrs["bandwidth"]),
            confirmed_at=window_end,
            window_start=window_start,
            window_end=window_end,
            drkey_epoch=int(window_end // DRKEY_VALIDITY),
            monitor_drops=int(confirmation.attrs["drops"]),
            ofd_hits=max(
                (int(event.attrs.get("hits", 0)) for event in ofd_events),
                default=0,
            ),
            drop_count=len(drops),
            dropped_bytes=sum(int(event.attrs["size"]) for event in drops),
            sample_packets=tuple(
                {"seq": event.seq, "time": event.time, "size": event.attrs["size"]}
                for event in drops[:max_samples]
            ),
            journal_refs=(confirmation.seq,)
            + tuple(event.seq for event in ofd_events),
        )

    def build_all(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> List[OveruseEvidence]:
        return [
            self.build(flow, max_samples=max_samples)
            for flow in self.confirmed_flows()
        ]

    def _verified_drops(self, flow: str, start: float, end: float) -> list:
        """Identity-verified overuse drops for ``flow`` in the streak
        window (inclusive end: the confirming drop happens *at*
        ``window_end``)."""
        return [
            event
            for event in self.journal.by_type(VERDICT_DROPPED)
            if event.attrs.get("flow") == flow
            and event.attrs.get("verdict") == "drop_overuse"
            and event.attrs.get("identity_verified")
            and start <= event.time <= end
        ]


def verify_evidence(
    evidence: OveruseEvidence, journal: EventJournal
) -> List[str]:
    """Re-check every claim in ``evidence`` against ``journal``.

    Returns the list of discrepancies — empty means the evidence is
    accepted.  This is the receiving AS's side of a §5 complaint: the
    record is only as good as the journal facts it cites, so a tampered
    count, an invented sample packet, or a sample pointing at an
    unverified drop (e.g. a ``drop_bad_hvf`` forgery) all surface here.
    """
    failures: List[str] = []
    builder = EvidenceBuilder(journal)

    confirmations = [
        event
        for event in journal.by_type(MONITOR_CONFIRMED_OVERUSE)
        if event.attrs["flow"] == evidence.flow
        and event.time == evidence.confirmed_at
    ]
    if not confirmations:
        failures.append(
            f"no confirmed-overuse event for flow {evidence.flow} "
            f"at t={evidence.confirmed_at}"
        )
        return failures  # nothing else can be cross-checked
    confirmation = confirmations[-1]
    if int(confirmation.attrs["drops"]) != evidence.monitor_drops:
        failures.append(
            f"monitor drop streak mismatch: journal says "
            f"{confirmation.attrs['drops']}, evidence claims "
            f"{evidence.monitor_drops}"
        )
    if float(confirmation.attrs["bandwidth"]) != evidence.admitted_bps:
        failures.append(
            f"admitted bandwidth mismatch: journal says "
            f"{confirmation.attrs['bandwidth']}, evidence claims "
            f"{evidence.admitted_bps}"
        )
    if evidence.drkey_epoch != int(evidence.confirmed_at // DRKEY_VALIDITY):
        failures.append(
            f"DRKey epoch {evidence.drkey_epoch} does not cover "
            f"t={evidence.confirmed_at}"
        )

    drops = builder._verified_drops(
        evidence.flow, evidence.window_start, evidence.window_end
    )
    if len(drops) != evidence.drop_count:
        failures.append(
            f"drop count mismatch: journal shows {len(drops)} verified "
            f"overuse drops in window, evidence claims {evidence.drop_count}"
        )
    journal_bytes = sum(int(event.attrs["size"]) for event in drops)
    if journal_bytes != evidence.dropped_bytes:
        failures.append(
            f"dropped bytes mismatch: journal shows {journal_bytes}, "
            f"evidence claims {evidence.dropped_bytes}"
        )

    by_seq = {event.seq: event for event in journal.by_type(VERDICT_DROPPED)}
    for sample in evidence.sample_packets:
        event = by_seq.get(sample["seq"])
        if event is None:
            failures.append(f"sample seq {sample['seq']} is not a journal drop")
            continue
        if not event.attrs.get("identity_verified"):
            failures.append(
                f"sample seq {sample['seq']} was never authenticated "
                f"({event.attrs.get('verdict')}): inadmissible"
            )
            continue
        if event.attrs.get("verdict") != "drop_overuse":
            failures.append(
                f"sample seq {sample['seq']} is {event.attrs.get('verdict')}, "
                f"not an overuse drop"
            )
        if event.attrs.get("flow") != evidence.flow:
            failures.append(
                f"sample seq {sample['seq']} belongs to flow "
                f"{event.attrs.get('flow')}, not {evidence.flow}"
            )
        if event.time != sample["time"] or event.attrs["size"] != sample["size"]:
            failures.append(
                f"sample seq {sample['seq']} does not match the journal "
                f"record (time/size tampered)"
            )

    ofd_max = max(
        (
            int(event.attrs.get("hits", 0))
            for event in journal.by_type(OFD_FLAGGED)
            if event.attrs["flow"] == evidence.flow
        ),
        default=0,
    )
    if evidence.ofd_hits > ofd_max:
        failures.append(
            f"OFD hit count inflated: journal supports at most {ofd_max}, "
            f"evidence claims {evidence.ofd_hits}"
        )
    return failures
