"""Zero-cost-when-disabled timing hooks over the hot paths.

``@profiled("name")`` wraps a function so that, while a
:class:`Profiler` is installed, each call's wall duration is accumulated
under ``name``; with no profiler installed the wrapper is a single
module-global ``None`` check in front of the original call.  The hot
sites (σ derivation, HVF stamping, batch send/process, admission) are
chosen at once-per-packet or once-per-burst granularity, so even the
enabled overhead stays a small fraction of the work being measured —
docs/performance.md records the measured disabled-state bound against
the Fig. 5 benchmark.

One profiler is installed process-globally rather than per component:
the decorator must cost nothing when idle, and a module-global read is
the cheapest guard Python offers (an attribute walk through an ``obs``
context would double it).  Benchmarks install a profiler around a
measured pass and attach :meth:`Profiler.snapshot` to their
``BENCH_*.json`` payload, so live telemetry and benchmark numbers come
from the same instrumentation layer.
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

from repro.util.clock import Clock, PerfClock


class ProfileEntry:
    """Accumulated timings for one profiled site."""

    __slots__ = ("calls", "total", "min", "max")

    def __init__(self):
        self.calls = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, elapsed: float) -> None:
        self.calls += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    def to_dict(self) -> dict:
        return {
            "calls": self.calls,
            "total_seconds": self.total,
            "mean_seconds": self.total / self.calls if self.calls else 0.0,
            "min_seconds": self.min if self.calls else 0.0,
            "max_seconds": self.max,
        }


class Profiler:
    """Per-site call/duration accumulator behind the ``@profiled`` sites."""

    def __init__(self, clock: Optional[Clock] = None):
        # PerfClock by default: profiling measures real compute time.
        # Tests inject a SimClock for deterministic assertions.
        self.clock = clock if clock is not None else PerfClock()
        self._entries: dict = {}

    def record(self, name: str, elapsed: float) -> None:
        entry = self._entries.get(name)
        if entry is None:
            entry = self._entries[name] = ProfileEntry()
        entry.add(elapsed)

    def entry(self, name: str) -> Optional[ProfileEntry]:
        return self._entries.get(name)

    def snapshot(self) -> dict:
        """``{site: {calls, total/mean/min/max seconds}}``, name-sorted —
        the shape the ``BENCH_*.json`` ``profile`` field carries."""
        return {
            name: self._entries[name].to_dict() for name in sorted(self._entries)
        }

    def clear(self) -> None:
        self._entries.clear()


#: The installed profiler, or ``None`` (the common case).  Module-global
#: on purpose — see the module docstring.
_active: Optional[Profiler] = None


def install_profiler(profiler: Optional[Profiler] = None) -> Profiler:
    """Activate ``profiler`` (a fresh one by default) and return it."""
    global _active
    if _active is not None:
        raise RuntimeError("a profiler is already installed")
    _active = profiler if profiler is not None else Profiler()
    return _active


def uninstall_profiler() -> Optional[Profiler]:
    """Deactivate and return the current profiler (``None`` if idle)."""
    global _active
    profiler, _active = _active, None
    return profiler


def active_profiler() -> Optional[Profiler]:
    return _active


class profiling:
    """``with profiling() as prof:`` — install for the block's duration."""

    def __init__(self, profiler: Optional[Profiler] = None):
        self.profiler = profiler

    def __enter__(self) -> Profiler:
        self.profiler = install_profiler(self.profiler)
        return self.profiler

    def __exit__(self, *exc_info) -> None:
        uninstall_profiler()


def profiled(name: str) -> Callable:
    """Decorate a hot-path function with an opt-in timer.

    The disabled path is ``if _active is None: return fn(...)`` — one
    global load and an identity check; no dict lookups, no clock reads.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            profiler = _active
            if profiler is None:
                return fn(*args, **kwargs)
            begin = profiler.clock.now()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.record(name, profiler.clock.now() - begin)

        wrapper.__wrapped__ = fn
        wrapper.__profiled_name__ = name
        return wrapper

    return decorate
