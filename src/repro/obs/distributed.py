"""Cross-process observability: context propagation and telemetry merge.

The obs stack of docs/observability.md is per-process: one
:class:`~repro.obs.trace.TraceCollector`, one
:class:`~repro.obs.metrics.MetricsRegistry`, one
:class:`~repro.obs.events.EventJournal`.  The shard executor
(:mod:`repro.dataplane.shards`) and the ROADMAP's deployable service
mode both cross a real process boundary, where none of that survives:
a worker's spans, events and histograms die with the worker.

This module supplies the two halves of the Dapper-style answer:

* **Propagation** — :class:`TraceContext` is the compact, picklable
  (trace_id, parent span_id, sampling decision) triple carried as a
  framing field in :meth:`~repro.control.rpc.MessageBus.call` and in
  :class:`~repro.dataplane.shards.ShardSpec`.  A receiver hands it to
  :meth:`TraceCollector.adopt`, so its root spans graft onto the
  caller's trace with correct parentage.  The sampling decision is a
  seeded hash over the trace ID — every participant derives the same
  verdict without coordination.
* **Collection** — workers package their private collectors into
  bounded, sequence-numbered :class:`TelemetryFrame` chunks
  (:func:`frames_from`) and ship them over the existing result queues.
  The parent reassembles per-worker streams (:func:`assemble_frames`)
  — detecting gaps, truncation and conflicting replays as a typed
  :class:`TelemetryGapError` — and merges them deterministically
  (:func:`merge_frames`, :func:`merge_traces`): parent spans first in
  start order, then workers by ascending worker id, frames by sequence
  number.  Same seed in, byte-identical merged artifacts out.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ColibriError
from repro.obs.events import Event, merge_events
from repro.obs.metrics import MetricsRegistry, merge_registries
from repro.obs.trace import STATUS_ERROR, Span

#: Spans + events per frame.  Small enough that a frame is one cheap
#: queue message, large enough that a typical shard pass fits in one.
FRAME_ITEM_LIMIT = 256


class TelemetryGapError(ColibriError):
    """A worker telemetry stream is missing, gapped, truncated, or
    carries conflicting replays — the merged artifacts would lie."""


# -- trace context ------------------------------------------------------------


def sampling_decision(trace_id: str, seed: int = 0, one_in: int = 1) -> bool:
    """Deterministic head-sampling verdict for a trace.

    Hashes ``(seed, trace_id)`` with unkeyed BLAKE2s — no entropy, no
    coordination: every process that sees the same context derives the
    same verdict.  ``one_in`` is the sampling ratio (one trace in N);
    ``one_in <= 1`` samples always.
    """
    if one_in <= 1:
        return True
    digest = hashlib.blake2s(
        f"{seed}:{trace_id}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % one_in == 0


@dataclass(frozen=True)
class TraceContext:
    """The propagated third of a span: enough for a remote party to
    continue the trace, nothing more.  Frozen and scalar-only, so it is
    picklable (shard specs), hashable (spec cache keys) and has a
    stable one-line wire form (RPC framing)."""

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def from_span(
        cls, span: Span, seed: int = 0, one_in: int = 1
    ) -> "TraceContext":
        """Context a callee should adopt to become ``span``'s child."""
        return cls(
            trace_id=span.trace_id,
            span_id=span.span_id,
            sampled=sampling_decision(span.trace_id, seed=seed, one_in=one_in),
        )

    def to_wire(self) -> str:
        """``"<trace_id>-<span_id>-<sampled>"`` — the framing-field
        encoding (documented in docs/observability.md)."""
        return f"{self.trace_id}-{self.span_id}-{int(self.sampled)}"

    @classmethod
    def from_wire(cls, text: str) -> "TraceContext":
        parts = text.split("-")
        if len(parts) != 3 or parts[2] not in ("0", "1"):
            raise ValueError(f"malformed trace context {text!r}")
        return cls(parts[0], parts[1], parts[2] == "1")


# -- telemetry frames ---------------------------------------------------------


@dataclass(frozen=True)
class TelemetryFrame:
    """One bounded chunk of a worker's telemetry stream.

    ``seq`` numbers are contiguous from 0 per worker; the final frame
    carries ``last=True`` plus the worker's metrics-registry state, so
    the parent can prove it received the whole stream (a missing tail
    is otherwise indistinguishable from a quiet worker).  Payloads are
    plain dicts (:meth:`Span.to_dict` / :meth:`Event.to_dict` /
    :meth:`MetricsRegistry.state`) — cheap to pickle, stable to compare.
    """

    worker_id: int
    seq: int
    spans: Tuple[dict, ...] = ()
    events: Tuple[dict, ...] = ()
    metrics: Optional[dict] = None
    last: bool = False

    def __eq__(self, other) -> bool:
        if not isinstance(other, TelemetryFrame):
            return NotImplemented
        return (
            self.worker_id == other.worker_id
            and self.seq == other.seq
            and self.spans == other.spans
            and self.events == other.events
            and self.metrics == other.metrics
            and self.last == other.last
        )


def frames_from(
    worker_id: int,
    tracer=None,
    registry: Optional[MetricsRegistry] = None,
    journal=None,
    limit: int = FRAME_ITEM_LIMIT,
) -> List[TelemetryFrame]:
    """Package a worker's collectors into a sequence-numbered stream.

    Always emits at least one frame (the ``last`` marker doubles as the
    liveness proof a gap checker needs); spans and events are chunked
    ``limit`` items per frame, metrics state rides on the final frame.
    """
    if limit <= 0:
        raise ValueError(f"frame item limit must be positive, got {limit}")
    items: List[Tuple[str, dict]] = []
    if tracer is not None:
        items.extend(("span", span.to_dict()) for span in tracer.spans())
    if journal is not None:
        items.extend(("event", event.to_dict()) for event in journal.events())
    chunks = [items[i : i + limit] for i in range(0, len(items), limit)] or [[]]
    frames = []
    for seq, chunk in enumerate(chunks):
        final = seq == len(chunks) - 1
        frames.append(
            TelemetryFrame(
                worker_id=worker_id,
                seq=seq,
                spans=tuple(d for kind, d in chunk if kind == "span"),
                events=tuple(d for kind, d in chunk if kind == "event"),
                metrics=registry.state() if final and registry is not None else None,
                last=final,
            )
        )
    return frames


def assemble_frames(
    frames: Iterable[TelemetryFrame],
    expected_workers: Optional[Iterable[int]] = None,
) -> Dict[int, List[TelemetryFrame]]:
    """Reassemble per-worker streams from frames in *any* arrival order.

    Byte-identical replays (a result queue may redeliver) are deduped;
    everything else that breaks the contract raises
    :class:`TelemetryGapError`: a sequence gap, two different frames
    claiming one ``seq``, a stream with no ``last`` marker (truncated),
    frames beyond the marker, or an expected worker with no stream.
    """
    streams: Dict[int, Dict[int, TelemetryFrame]] = {}
    for frame in frames:
        slot = streams.setdefault(frame.worker_id, {})
        existing = slot.get(frame.seq)
        if existing is None:
            slot[frame.seq] = frame
        elif existing != frame:
            raise TelemetryGapError(
                f"worker {frame.worker_id}: conflicting frames for seq "
                f"{frame.seq}"
            )
    if expected_workers is not None:
        missing = sorted(set(expected_workers) - set(streams))
        if missing:
            raise TelemetryGapError(
                f"missing telemetry stream from workers {missing}"
            )
    assembled: Dict[int, List[TelemetryFrame]] = {}
    for worker_id in sorted(streams):
        slot = streams[worker_id]
        seqs = sorted(slot)
        if seqs != list(range(len(seqs))):
            expected = next(i for i in range(len(seqs) + 1) if i not in slot)
            raise TelemetryGapError(
                f"worker {worker_id}: stream gapped at seq {expected} "
                f"(got {seqs})"
            )
        ordered = [slot[seq] for seq in seqs]
        if not ordered[-1].last:
            raise TelemetryGapError(
                f"worker {worker_id}: stream truncated after seq "
                f"{seqs[-1]} (no final frame)"
            )
        if any(frame.last for frame in ordered[:-1]):
            raise TelemetryGapError(
                f"worker {worker_id}: frames received beyond the final "
                f"marker"
            )
        assembled[worker_id] = ordered
    return assembled


# -- deterministic merge ------------------------------------------------------


def _span_from_dict(data: dict) -> Span:
    span = Span(
        trace_id=data["trace_id"],
        span_id=data["span_id"],
        parent_id=data["parent_id"],
        name=data["name"],
        start=data["start"],
        attributes=dict(data["attributes"]),
    )
    span.end = data["end"]
    span.status = data["status"]
    return span


@dataclass
class MergedTelemetry:
    """A reassembled sharded run: everything the workers saw, in the
    parent's hands, deterministically ordered."""

    #: Per-worker span lists, frame/record order — feed
    #: :func:`merge_traces` together with the parent collector's spans.
    spans: Dict[int, List[Span]]
    #: All workers' registries folded via
    #: :func:`~repro.obs.metrics.merge_registries`.
    registry: MetricsRegistry
    #: All workers' journal events via
    #: :func:`~repro.obs.events.merge_events` (identity order).
    events: List[Event]
    #: Stream bookkeeping: ``{worker_id: frame count}``.
    frame_counts: Dict[int, int] = field(default_factory=dict)

    def events_jsonl(self) -> str:
        """Worker events in the journal interchange form, identity
        order — byte-identical across same-seed runs."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in self.events
        )


def merge_frames(
    frames: Iterable[TelemetryFrame],
    expected_workers: Optional[Iterable[int]] = None,
) -> MergedTelemetry:
    """Validate and merge a pile of frames into one
    :class:`MergedTelemetry`.  Raises :class:`TelemetryGapError` on any
    stream defect (see :func:`assemble_frames`)."""
    assembled = assemble_frames(frames, expected_workers=expected_workers)
    spans: Dict[int, List[Span]] = {}
    registries = []
    event_streams = []
    frame_counts = {}
    for worker_id, stream in assembled.items():
        frame_counts[worker_id] = len(stream)
        worker_spans: List[Span] = []
        worker_events: List[Event] = []
        for frame in stream:
            worker_spans.extend(_span_from_dict(d) for d in frame.spans)
            worker_events.extend(Event.from_dict(d) for d in frame.events)
            if frame.metrics is not None:
                registries.append(MetricsRegistry.from_state(frame.metrics))
        spans[worker_id] = worker_spans
        event_streams.append(worker_events)
    return MergedTelemetry(
        spans=spans,
        registry=merge_registries(registries),
        events=merge_events(*event_streams),
        frame_counts=frame_counts,
    )


def merge_traces(
    parent_spans: Sequence[Span],
    worker_spans: Dict[int, List[Span]],
) -> List[Span]:
    """One deterministic span list for a cross-process trace: parent
    spans first (start order, as the collector recorded them), then
    each worker's spans by ascending worker id, frame/seq order within
    a worker.  With seeded collectors on both sides the result is
    byte-identical across same-seed runs."""
    merged = list(parent_spans)
    for worker_id in sorted(worker_spans):
        merged.extend(worker_spans[worker_id])
    return merged


def render_span_forest(spans: Sequence[Span]) -> str:
    """Render a merged span list as a tree, in the same format as
    :meth:`TraceCollector.render_tree`.

    Unlike the collector's renderer this one understands *adopted*
    spans: a span whose parent id references a span in the list is
    indented under it even if it was recorded by a different process;
    a span whose parent is absent entirely renders as a root.
    """
    known = {span.span_id for span in spans}
    by_parent: Dict[Optional[str], List[Span]] = {}
    roots: List[Span] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in known:
            roots.append(span)
        else:
            by_parent.setdefault(span.parent_id, []).append(span)
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        mark = "!" if span.status == STATUS_ERROR else "."
        attrs = " ".join(
            f"{key}={span.attributes[key]}" for key in sorted(span.attributes)
        )
        duration = f"{span.duration * 1e3:9.3f}ms" if span.closed else "     open"
        lines.append(
            f"{duration} {mark} {'  ' * depth}{span.name}"
            + (f" [{attrs}]" if attrs else "")
        )
        for child in by_parent.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def spans_jsonl(spans: Sequence[Span]) -> str:
    """Span-list interchange form, mirroring
    :meth:`TraceCollector.export_jsonl` for merged cross-process
    traces."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans
    )
