"""Sampling profiler for the wire fast paths (docs/observability.md).

``@profiled`` (:mod:`repro.obs.profile`) times whole calls and costs
nothing when no profiler is installed — but it is all-or-nothing: armed,
it times *every* call, which perturbs exactly the steady-state numbers
Fig. 5 reports.  The :class:`SamplingProfiler` takes the opposite trade:
it is attached per-component via ``ObsContext.sampler`` and samples one
burst in N, recording *per-stage* wall timings into fixed-bucket
histograms.  The unsampled N-1 bursts run the untouched fast path; the
disabled state (``obs is None`` — the usual guard discipline, enforced
by colibri-flow CF003) costs one attribute read, preserving the
0%-overhead contract of docs/performance.md §6 (locked in by
``tools/obs_overhead.py`` in CI).

Stage names are dotted sites (``gateway.wire.plan``); bucket bounds are
fixed and log-spaced (:data:`STAGE_BUCKETS`) so snapshots merge and
compare across runs without renormalization.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram
from repro.util.clock import Clock, PerfClock

#: Sample one burst in this many by default — coarse enough that the
#: timed sweeps stay representative, fine enough that a quick bench
#: (tens of bursts) still lands several samples.
DEFAULT_SAMPLE_EVERY = 16

#: Fixed per-stage bounds in seconds, log-spaced ×4 from 1µs: wire
#: bursts are tens-to-hundreds of microseconds on the reference host,
#: and a fixed layout keeps exported snapshots comparable across runs.
STAGE_BUCKETS = (
    1e-06,
    4e-06,
    1.6e-05,
    6.4e-05,
    0.000256,
    0.001024,
    0.004096,
    0.016384,
    0.065536,
)


def _instrument_name(stage: str) -> str:
    """``gateway.wire.plan`` → ``gateway_wire_plan_seconds``."""
    return stage.replace(".", "_") + "_seconds"


class SamplingProfiler:
    """Every-Nth-burst, per-stage wall-time sampler.

    The instrumented site calls :meth:`tick` once per burst — a counter
    bump and a comparison — and only on a ``True`` verdict takes the
    timed variant, reporting its stage durations through
    :meth:`observe_burst`.  ``clock`` defaults to
    :class:`~repro.util.clock.PerfClock`; tests inject a fake for
    deterministic bucket assertions.
    """

    def __init__(
        self,
        every: int = DEFAULT_SAMPLE_EVERY,
        clock: Optional[Clock] = None,
    ):
        if every <= 0:
            raise ValueError(f"sampling period must be positive, got {every}")
        self.every = every
        self.clock = clock if clock is not None else PerfClock()
        self._countdown = every
        self.total_bursts = 0
        self.sampled_bursts = 0
        self._stages: Dict[str, Histogram] = {}
        self._counts: Dict[str, int] = {}

    def tick(self) -> bool:
        """Advance the burst counter; ``True`` means *this* burst is
        sampled (every ``self.every``-th call, starting with the
        ``every``-th so warm-up bursts go unsampled)."""
        self.total_bursts += 1
        self._countdown -= 1
        if self._countdown == 0:
            self._countdown = self.every
            self.sampled_bursts += 1
            return True
        return False

    def observe(self, stage: str, seconds: float) -> None:
        """Record one stage duration from a sampled burst."""
        hist = self._stages.get(stage)
        if hist is None:
            hist = self._stages[stage] = Histogram(
                _instrument_name(stage), STAGE_BUCKETS
            )
        hist.observe(seconds)

    def observe_burst(
        self, packets: int, stages: Sequence[Tuple[str, float]]
    ) -> None:
        """Record a sampled burst: its packet count plus each
        ``(stage, seconds)`` timing."""
        self._counts["sampled_packets"] = (
            self._counts.get("sampled_packets", 0) + packets
        )
        for stage, seconds in stages:
            self.observe(stage, seconds)

    def count(self, key: str, amount: int = 1) -> None:
        """Bump a plain sampled-path count (e.g. σ-cache hits seen in
        sampled bursts) alongside the timing histograms."""
        self._counts[key] = self._counts.get(key, 0) + amount

    def snapshot(self) -> dict:
        """JSON-ready export for ``BENCH_fig5.json`` and campaign
        artifacts: fixed bucket layout, per-stage counts/sum, sampling
        bookkeeping."""
        return {
            "every": self.every,
            "total_bursts": self.total_bursts,
            "sampled_bursts": self.sampled_bursts,
            "counts": dict(sorted(self._counts.items())),
            "stages": {
                stage: {
                    "buckets": list(hist.buckets),
                    "counts": list(hist.counts),
                    "sum": hist.sum,
                    "count": hist.count,
                }
                for stage, hist in sorted(self._stages.items())
            },
        }
