"""Trace spans with propagated trace/span IDs (docs/observability.md).

A *span* is one timed operation; spans nest into a tree per *trace*
(e.g. one EER setup: the initiator's ``eer.setup`` span, under it one
``admission.eer`` span per on-path AS, connected by ``retry.call`` and
``bus.call`` spans).  Because the reproduction's control plane is a
synchronous in-process call graph, context propagation is the
collector's span stack: a span started while another is open becomes its
child and inherits the trace ID — exactly the property the tests assert
survives retries and failover (a retried attempt is a new ``bus.call``
span under the same ``retry.call`` parent, same trace ID).

Determinism: span and trace IDs come from one ``random.Random(seed)``
and timestamps from the injected clock, so a seeded scenario produces a
byte-identical span tree on every run.  The collector is bounded like
:class:`~repro.sim.tracing.PacketTracer`; overflow drops new spans and
counts them rather than growing without bound.
"""

from __future__ import annotations

import functools
import json
import random
from contextlib import contextmanager
from typing import Callable, Optional

from repro.util.clock import Clock

#: Status values a span can end with.
STATUS_OK = "ok"
STATUS_ERROR = "error"


class Span:
    """One timed operation within a trace."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end",
        "status",
        "attributes",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start: float,
        attributes: Optional[dict] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.status = STATUS_OK
        self.attributes = attributes if attributes is not None else {}

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return f"Span({self.name!r}, {state}, trace={self.trace_id})"


class TraceCollector:
    """Seeded, clock-injected span recorder with a query API."""

    def __init__(self, clock: Clock, seed: int = 0, capacity: int = 100_000):
        if capacity <= 0:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.clock = clock
        self.capacity = capacity
        self._rng = random.Random(seed)
        self._spans: list = []  # completion-agnostic, in start order
        self._stack: list = []  # open spans, innermost last
        self._remote_parent: Optional[tuple] = None  # adopted (trace, span)
        self.dropped_spans = 0  # collector overflow, not packet drops

    # -- recording ------------------------------------------------------------

    def _new_id(self, nibbles: int) -> str:
        return f"{self._rng.getrandbits(nibbles * 4):0{nibbles}x}"

    def adopt(self, trace_id: str, span_id: str) -> None:
        """Graft this collector onto a remote trace: spans started with
        no local parent become children of ``span_id`` under
        ``trace_id`` instead of opening a fresh trace.  This is how a
        shard worker (or any process handed a serialized
        :class:`~repro.obs.distributed.TraceContext`) continues its
        caller's trace across the process boundary."""
        self._remote_parent = (trace_id, span_id)

    def current_span(self) -> Optional[Span]:
        """The innermost open span — what a propagated context should
        name as the remote parent — or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, attributes: Optional[dict] = None) -> Optional[Span]:
        """Open a span as a child of the innermost open span (or of the
        adopted remote parent, or a new trace root).  Returns ``None``
        when the collector is full."""
        if len(self._spans) >= self.capacity:
            self.dropped_spans += 1
            return None
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif self._remote_parent is not None:
            trace_id, parent_id = self._remote_parent
        else:
            trace_id, parent_id = self._new_id(16), None
        span = Span(
            trace_id=trace_id,
            span_id=self._new_id(8),
            parent_id=parent_id,
            name=name,
            start=self.clock.now(),
            attributes=attributes,
        )
        self._spans.append(span)
        self._stack.append(span)
        return span

    def finish(
        self, span: Optional[Span], status: str = STATUS_OK, **attributes
    ) -> None:
        """Close ``span`` (a no-op for the ``None`` of an overflowing
        :meth:`start`), popping it — and anything left open under it —
        off the context stack."""
        if span is None:
            return
        if span in self._stack:
            while self._stack:
                leaked = self._stack.pop()
                if leaked is span:
                    break
        span.end = self.clock.now()
        span.status = status
        if attributes:
            span.attributes.update(attributes)

    @contextmanager
    def span(self, name: str, **attributes):
        """``with tracer.span("bus.call", method=m):`` — closes on exit,
        marking the span as errored when the body raises."""
        span = self.start(name, attributes or None)
        try:
            yield span
        except BaseException as error:
            self.finish(span, status=STATUS_ERROR, error=type(error).__name__)
            raise
        self.finish(span)

    def event(self, name: str, **attributes) -> Optional[Span]:
        """A zero-duration span: state transitions (circuit breaker
        flips, monitor confirmations) that have no extent of their own."""
        span = self.start(name, attributes or None)
        self.finish(span)
        return span

    # -- queries --------------------------------------------------------------

    def spans(
        self, name: Optional[str] = None, trace_id: Optional[str] = None
    ) -> list:
        """All recorded spans, optionally filtered, in start order."""
        result = self._spans
        if name is not None:
            result = [s for s in result if s.name == name]
        if trace_id is not None:
            result = [s for s in result if s.trace_id == trace_id]
        return list(result)

    def children(self, span: Span) -> list:
        return [
            s
            for s in self._spans
            if s.parent_id == span.span_id and s.trace_id == span.trace_id
        ]

    def roots(self) -> list:
        return [s for s in self._spans if s.parent_id is None]

    def trace_ids(self) -> list:
        seen: dict = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def open_spans(self) -> list:
        """Spans started but never finished — must be empty after any
        completed workflow (asserted by tests/test_obs_tracing.py)."""
        return [s for s in self._spans if not s.closed]

    def critical_path(self, trace_id: str) -> list:
        """Root-to-leaf chain that determines the trace's wall duration:
        from each span, descend into the child that finishes last."""
        roots = [s for s in self.roots() if s.trace_id == trace_id]
        if not roots:
            raise ValueError(f"no trace {trace_id!r} recorded")
        current = max(roots, key=lambda s: s.end if s.closed else float("inf"))
        path = [current]
        while True:
            closed_children = [c for c in self.children(current) if c.closed]
            if not closed_children:
                return path
            current = max(closed_children, key=lambda s: s.end)
            path.append(current)

    # -- export ---------------------------------------------------------------

    def export_jsonl(self) -> str:
        """One JSON object per span, start order — the interchange form
        (``colibri-repro trace --format jsonl``)."""
        return "".join(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
            for span in self._spans
        )

    def render_tree(self, trace_id: Optional[str] = None) -> str:
        """Human-readable span forest (one trace, or all of them)."""
        lines: list = []
        by_parent: dict = {}
        for span in self._spans:
            if trace_id is not None and span.trace_id != trace_id:
                continue
            by_parent.setdefault(span.parent_id, []).append(span)

        def walk(span: Span, depth: int) -> None:
            mark = "!" if span.status == STATUS_ERROR else "."
            attrs = " ".join(
                f"{key}={span.attributes[key]}" for key in sorted(span.attributes)
            )
            duration = f"{span.duration * 1e3:9.3f}ms" if span.closed else "     open"
            lines.append(
                f"{duration} {mark} {'  ' * depth}{span.name}"
                + (f" [{attrs}]" if attrs else "")
            )
            for child in by_parent.get(span.span_id, []):
                walk(child, depth + 1)

        for root in by_parent.get(None, []):
            walk(root, 0)
        return "\n".join(lines)

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self.dropped_spans = 0

    def __len__(self) -> int:
        return len(self._spans)


def traced(name: str, attrs: Optional[Callable] = None) -> Callable:
    """Method decorator: span ``name`` around the call when the owning
    object carries an enabled ``obs`` context; a plain call otherwise.

    ``attrs`` receives the same arguments as the method and returns the
    span's attribute dict.  Responses exposing ``success``/``granted``
    (the admission response shape) annotate the span automatically, so
    admission outcomes are queryable without per-site code.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            obs = getattr(self, "obs", None)
            if obs is None:
                return fn(self, *args, **kwargs)
            tracer = obs.tracer
            span = tracer.start(
                name, attrs(self, *args, **kwargs) if attrs is not None else None
            )
            try:
                result = fn(self, *args, **kwargs)
            except BaseException as error:
                tracer.finish(span, status=STATUS_ERROR, error=type(error).__name__)
                raise
            extra = {}
            success = getattr(result, "success", None)
            if success is not None:
                extra["success"] = success
            granted = getattr(result, "granted", None)
            if granted is not None:
                extra["granted"] = granted
            tracer.finish(span, **extra)
            return result

        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
