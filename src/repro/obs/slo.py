"""SLO specifications and multi-window burn-rate alerting.

An :class:`SLOSpec` states an objective over instruments in a
:class:`~repro.obs.metrics.MetricsRegistry` — "99% of packets traverse a
hop without being dropped", "95% of admissions complete within 25 ms" —
and the :class:`AlertEngine` evaluates it the way an SRE playbook does:
the *burn rate* (observed bad fraction over the allowed error budget) is
computed over a fast and a slow window, and an alert fires only when
**both** windows burn too hot — the fast window gives detection latency,
the slow window immunity against short blips.  Alerts move through a
``ok → pending → firing → resolved`` state machine driven entirely by an
injected clock, so a seeded scenario alerts identically on every run.

The engine consumes *registry snapshots* (:meth:`MetricsRegistry.state`)
rather than live instruments, which makes it work identically in two
modes:

* **live** — ``engine.watch(registry, clock)`` then ``engine.tick()``
  inside the scenario loop;
* **offline** — :func:`replay_journal` rebuilds per-event-type counters
  from an exported :class:`~repro.obs.events.EventJournal` stream and
  feeds the same engine, so an operator can re-run alerting over a
  flight recording from a different machine.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.obs.events import EVENT_TYPES, Event
from repro.obs.metrics import MetricsRegistry

# Alert states.
OK = "ok"
PENDING = "pending"
FIRING = "firing"
RESOLVED = "resolved"

#: Google-SRE-style defaults, scaled to simulation time: the fast window
#: catches a burn within seconds, the slow window requires it to persist.
DEFAULT_FAST_WINDOW = 5.0
DEFAULT_SLOW_WINDOW = 60.0
DEFAULT_PENDING_FOR = 1.0
DEFAULT_BURN_THRESHOLD = 1.0


@dataclass(frozen=True)
class SLOSpec:
    """One objective over registry instruments.

    ``objective`` is the target *good* fraction (e.g. ``0.99`` = at most
    1% of the total may be bad); the error budget is ``1 - objective``
    and burn rate is ``bad_fraction / budget``.  Three kinds:

    * ``ratio`` — ``numerator`` (bad count) over ``denominator`` (total
      count), both monotone counters or monotone callback gauges; the
      window delta of each is used.
    * ``latency`` — fraction of ``histogram`` observations above
      ``threshold`` seconds in the window.  ``threshold`` should sit on
      a bucket bound; it is aligned *up* to the next bound otherwise
      (fixed-bucket histograms cannot resolve between bounds).
    * ``gauge`` — instantaneous level check: bad iff the gauge reading
      violates ``bound`` (above it, or below it when
      ``violate_below=True``).  Windows still gate how long a violation
      must persist before the alert fires.
    """

    name: str
    objective: float
    kind: str
    numerator: Optional[str] = None
    denominator: Optional[str] = None
    histogram: Optional[str] = None
    threshold: Optional[float] = None
    gauge: Optional[str] = None
    bound: Optional[float] = None
    violate_below: bool = False

    def __post_init__(self):
        if not 0.0 <= self.objective < 1.0:
            raise ValueError(
                f"objective must be in [0, 1), got {self.objective} "
                f"(1.0 leaves a zero error budget)"
            )
        if self.kind not in ("ratio", "latency", "gauge"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def ratio(
        cls, name: str, numerator: str, denominator: str, objective: float
    ) -> "SLOSpec":
        return cls(
            name=name,
            objective=objective,
            kind="ratio",
            numerator=numerator,
            denominator=denominator,
        )

    @classmethod
    def latency(
        cls, name: str, histogram: str, threshold: float, objective: float
    ) -> "SLOSpec":
        return cls(
            name=name,
            objective=objective,
            kind="latency",
            histogram=histogram,
            threshold=threshold,
        )

    @classmethod
    def gauge_bound(
        cls,
        name: str,
        gauge: str,
        bound: float,
        objective: float = 0.0,
        violate_below: bool = False,
    ) -> "SLOSpec":
        """Level check: with the default ``objective=0.0`` the budget is
        1.0 and burn rate equals the violated fraction (0 or 1)."""
        return cls(
            name=name,
            objective=objective,
            kind="gauge",
            gauge=gauge,
            bound=bound,
            violate_below=violate_below,
        )

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    # -- evaluation ------------------------------------------------------------

    def bad_total(self, older: dict, newer: dict) -> tuple:
        """``(bad, total)`` over the window between two registry
        snapshots (:meth:`MetricsRegistry.state` dicts)."""
        if self.kind == "ratio":
            bad = _value(newer, self.numerator) - _value(older, self.numerator)
            total = _value(newer, self.denominator) - _value(
                older, self.denominator
            )
            return max(0.0, bad), max(0.0, total)
        if self.kind == "latency":
            return _latency_bad_total(older, newer, self.histogram, self.threshold)
        value = _value(newer, self.gauge)
        violated = value < self.bound if self.violate_below else value > self.bound
        return (1.0 if violated else 0.0), 1.0

    def burn_rate(self, older: dict, newer: dict) -> float:
        bad, total = self.bad_total(older, newer)
        if total <= 0:
            return 0.0
        return (bad / total) / self.budget


def _value(state: dict, name: str) -> float:
    entry = state.get(name)
    if entry is None or "value" not in entry:
        return 0.0
    return float(entry["value"])


def _latency_bad_total(older: dict, newer: dict, name: str, threshold: float):
    entry = newer.get(name)
    if entry is None or entry.get("kind") != "histogram":
        return 0.0, 0.0
    buckets = tuple(entry["buckets"])
    counts = list(entry["counts"])
    total = entry["count"]
    base = older.get(name)
    if base is not None and base.get("kind") == "histogram":
        for index, count in enumerate(base["counts"]):
            counts[index] -= count
        total -= base["count"]
    # Observations land in the first bucket whose bound >= value, so
    # everything in buckets[0..cut] is known to be <= threshold (with
    # threshold aligned up to a bound); the rest is "bad".
    cut = bisect_left(buckets, threshold)
    if cut < len(buckets) and buckets[cut] == threshold:
        cut += 1
    good = sum(counts[:cut])
    return max(0.0, float(total - good)), max(0.0, float(total))


@dataclass
class Alert:
    """Point-in-time view of one SLO's alert state."""

    slo: str
    state: str
    since: float
    fast_burn: float
    slow_burn: float


@dataclass
class _SloState:
    state: str = OK
    since: float = 0.0
    pending_since: Optional[float] = None
    fast_burn: float = 0.0
    slow_burn: float = 0.0


class AlertEngine:
    """Deterministic multi-window burn-rate alerting over snapshots.

    Feed it with :meth:`ingest` (explicit time + snapshot — the offline
    path) or attach it to a live registry with :meth:`watch` and call
    :meth:`tick` from the scenario loop.  Snapshots older than the slow
    window are pruned, so memory is bounded by the evaluation cadence.
    """

    def __init__(
        self,
        slos: Sequence[SLOSpec],
        fast_window: float = DEFAULT_FAST_WINDOW,
        slow_window: float = DEFAULT_SLOW_WINDOW,
        pending_for: float = DEFAULT_PENDING_FOR,
        burn_threshold: float = DEFAULT_BURN_THRESHOLD,
    ):
        if fast_window <= 0 or slow_window < fast_window:
            raise ValueError(
                f"need 0 < fast_window <= slow_window, got "
                f"{fast_window}/{slow_window}"
            )
        names = [slo.name for slo in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self.slos = tuple(slos)
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.pending_for = pending_for
        self.burn_threshold = burn_threshold
        self._snapshots: List[tuple] = []  # (time, state), time-ordered
        self._states = {slo.name: _SloState() for slo in slos}
        #: Every state change as ``(time, slo, old, new)`` — what the
        #: tests assert on and the health report lists.
        self.transitions: List[tuple] = []
        self._registry: Optional[MetricsRegistry] = None
        self._clock = None

    # -- wiring ---------------------------------------------------------------

    def watch(self, registry: MetricsRegistry, clock) -> "AlertEngine":
        """Attach a live registry + clock so :meth:`tick` can sample."""
        self._registry = registry
        self._clock = clock
        return self

    def tick(self) -> List[Alert]:
        if self._registry is None or self._clock is None:
            raise ValueError("engine not attached; call watch() or use ingest()")
        return self.ingest(self._clock.now(), self._registry.state())

    # -- evaluation -----------------------------------------------------------

    def ingest(self, now: float, state: dict) -> List[Alert]:
        """Evaluate every SLO against the new snapshot; returns the
        alerts that changed state during this evaluation."""
        if self._snapshots and now < self._snapshots[-1][0]:
            raise ValueError(
                f"time went backwards: {now} < {self._snapshots[-1][0]}"
            )
        self._snapshots.append((now, state))
        horizon = now - self.slow_window
        while len(self._snapshots) > 2 and self._snapshots[1][0] <= horizon:
            self._snapshots.pop(0)

        changed = []
        for slo in self.slos:
            fast = slo.burn_rate(self._baseline(now, self.fast_window), state)
            slow = slo.burn_rate(self._baseline(now, self.slow_window), state)
            tracker = self._states[slo.name]
            tracker.fast_burn = fast
            tracker.slow_burn = slow
            breach = (
                fast >= self.burn_threshold and slow >= self.burn_threshold
            )
            if self._advance(slo.name, tracker, breach, now):
                changed.append(self._alert(slo.name, tracker))
        return changed

    def _baseline(self, now: float, window: float) -> dict:
        """The snapshot the window delta is computed against: the newest
        one at or before ``now - window``, else the oldest we kept (a
        partial window while history is still shorter than the window)."""
        target = now - window
        chosen = self._snapshots[0][1]
        for time, state in self._snapshots:
            if time > target:
                break
            chosen = state
        return chosen

    def _advance(
        self, name: str, tracker: _SloState, breach: bool, now: float
    ) -> bool:
        old = tracker.state
        if old in (OK, RESOLVED):
            if breach:
                tracker.state = PENDING
                tracker.pending_since = now
            elif old == RESOLVED:
                tracker.state = OK  # one evaluation of closure, then quiet
        elif old == PENDING:
            if not breach:
                tracker.state = OK
                tracker.pending_since = None
            elif now - tracker.pending_since >= self.pending_for:
                tracker.state = FIRING
        elif old == FIRING and not breach:
            tracker.state = RESOLVED
        if tracker.state != old:
            tracker.since = now
            self.transitions.append((now, name, old, tracker.state))
            return True
        return False

    def _alert(self, name: str, tracker: _SloState) -> Alert:
        return Alert(
            slo=name,
            state=tracker.state,
            since=tracker.since,
            fast_burn=tracker.fast_burn,
            slow_burn=tracker.slow_burn,
        )

    # -- views ----------------------------------------------------------------

    def alerts(self) -> List[Alert]:
        return [self._alert(slo.name, self._states[slo.name]) for slo in self.slos]

    def firing(self) -> List[Alert]:
        return [alert for alert in self.alerts() if alert.state == FIRING]


# -- offline evaluation over an exported journal ------------------------------


def snake_case(name: str) -> str:
    out = []
    for index, char in enumerate(name):
        if char.isupper() and index > 0:
            out.append("_")
        out.append(char.lower())
    return "".join(out)


def event_counter_name(event_type: str) -> str:
    """Registry name of the per-event-type counter — identical live
    (callback gauges over the journal) and offline (rebuilt counters),
    so one SLOSpec evaluates both."""
    return f"events_{snake_case(event_type)}_total"


def register_journal_gauges(registry: MetricsRegistry, journal) -> None:
    """Expose a live journal's cumulative per-type event counts (and the
    overall total) as monotone callback gauges, one per event type."""
    for event_type in sorted(EVENT_TYPES):
        gauge = registry.gauge(
            event_counter_name(event_type),
            help_text=f"Journal events of type {event_type} recorded",
        )
        gauge.set_function(
            lambda event_type=event_type: journal.total_count(event_type)
        )
    total = registry.gauge(
        "events_total", help_text="Journal events recorded (all types)"
    )
    total.set_function(lambda: journal.total_events)


def registry_from_events(
    events: Iterable[Event], upto: Optional[float] = None
) -> MetricsRegistry:
    """Rebuild the journal-derived counters from an exported event
    stream, as of time ``upto``.  Exact equivalence with the live gauges
    holds as long as the journal did not wrap its ring buffer (evicted
    events cannot be recounted — the export is the retention boundary)."""
    registry = MetricsRegistry()
    counts = {event_type: 0 for event_type in EVENT_TYPES}
    total = 0
    for event in events:
        if upto is not None and event.time > upto:
            continue
        counts[event.type] += 1
        total += 1
    for event_type in sorted(EVENT_TYPES):
        registry.gauge(
            event_counter_name(event_type),
            help_text=f"Journal events of type {event_type} recorded",
        ).set(counts[event_type])
    registry.gauge(
        "events_total", help_text="Journal events recorded (all types)"
    ).set(total)
    return registry


def replay_journal(
    events: Sequence[Event],
    engine: AlertEngine,
    times: Iterable[float],
) -> AlertEngine:
    """Drive ``engine`` over an exported event stream at the given
    evaluation instants — the offline twin of calling :meth:`tick` live
    at those same instants."""
    for now in times:
        engine.ingest(now, registry_from_events(events, upto=now).state())
    return engine


def default_slos() -> tuple:
    """The operator starter set wired by ``enable_observability``:

    * ``admission_latency_p95`` — 95% of admission workflows within 25 ms;
    * ``hop_drop_ratio`` — at most 1% of border-router packets dropped;
    * ``token_bucket_saturation`` — mean monitor bucket occupancy must
      not sit below 5% (flows pressing their reserved rates);
    * ``circuit_breakers`` — no breaker may stay open.
    """
    return (
        SLOSpec.latency(
            "admission_latency_p95",
            histogram="admission_latency_seconds",
            threshold=0.025,
            objective=0.95,
        ),
        SLOSpec.ratio(
            "hop_drop_ratio",
            # numerator comes from the mirrored flat telemetry counter;
            # the denominator is the derived processed total (drops +
            # forwarded) registered by ``enable_observability``.
            numerator="router_drops",
            denominator="router_processed_total",
            objective=0.99,
        ),
        SLOSpec.gauge_bound(
            "token_bucket_saturation",
            gauge="token_bucket_occupancy",
            bound=0.05,
            violate_below=True,
        ),
        SLOSpec.gauge_bound(
            "circuit_breakers", gauge="circuit_breakers_open", bound=0.0
        ),
    )
