"""Memoized per-interface aggregates for SegR admission (§4.7, Fig. 3).

The SegR admission at a transit AS "needs to look up all existing SegRs
that use the same egress interface", yet the paper reports constant-time
admission thanks to "memoization techniques".  This index is that
technique: it maintains, incrementally on every SegR add/remove/resize,

* ``ingress_demand[i]``   — total capped demand entering interface *i*
  (input to demand-adjustment rule 1);
* ``source_demand[(S,e)]``— total capped demand of source AS *S* leaving
  via *e* (input to rule 3);
* ``egress_adjusted[e]``  — total *adjusted* demand leaving via *e*
  (the denominator of the proportional share).

With these sums, admitting one more SegR touches a handful of dict
entries regardless of how many reservations exist — the flat lines of
Fig. 3.  The naive alternative (recompute the sums by iterating every
stored SegR) is kept as :meth:`recompute_from` for the memoization
ablation bench.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.reservation.ids import ReservationId
from repro.topology.addresses import IsdAs


@dataclass(frozen=True)
class IndexedDemand:
    """What the index remembers about one admitted SegR."""

    reservation_id: ReservationId
    source: IsdAs
    ingress: int
    egress: int
    capped_demand: float  # after rules 1-2 per-reservation caps
    adjusted_demand: float  # after all adjustment rules
    granted: float = 0.0  # bandwidth actually committed to this SegR


class InterfacePairIndex:
    """Incrementally maintained admission aggregates for one AS."""

    def __init__(self):
        self._entries: dict[ReservationId, IndexedDemand] = {}
        self._ingress_demand: dict[int, float] = defaultdict(float)
        self._source_demand: dict[tuple, float] = defaultdict(float)
        self._egress_adjusted: dict[int, float] = defaultdict(float)
        self._egress_granted: dict[int, float] = defaultdict(float)

    # -- reads (all O(1)) ---------------------------------------------------------

    def ingress_demand(self, ingress: int) -> float:
        return self._ingress_demand.get(ingress, 0.0)

    def source_demand(self, source: IsdAs, egress: int) -> float:
        return self._source_demand.get((source, egress), 0.0)

    def egress_adjusted(self, egress: int) -> float:
        return self._egress_adjusted.get(egress, 0.0)

    def egress_granted(self, egress: int) -> float:
        """Sum of committed grants at an egress — bounds new grants so the
        §5.1 invariant (reservations never exceed capacity) always holds."""
        return self._egress_granted.get(egress, 0.0)

    def entry(self, reservation_id: ReservationId) -> IndexedDemand:
        return self._entries[reservation_id]

    def __contains__(self, reservation_id: ReservationId) -> bool:
        return reservation_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # -- writes -------------------------------------------------------------------

    def add(self, demand: IndexedDemand) -> None:
        if demand.reservation_id in self._entries:
            self.remove(demand.reservation_id)
        self._entries[demand.reservation_id] = demand
        self._ingress_demand[demand.ingress] += demand.capped_demand
        self._source_demand[(demand.source, demand.egress)] += demand.capped_demand
        self._egress_adjusted[demand.egress] += demand.adjusted_demand
        self._egress_granted[demand.egress] += demand.granted

    def remove(self, reservation_id: ReservationId) -> None:
        demand = self._entries.pop(reservation_id, None)
        if demand is None:
            return
        self._ingress_demand[demand.ingress] -= demand.capped_demand
        self._source_demand[(demand.source, demand.egress)] -= demand.capped_demand
        self._egress_adjusted[demand.egress] -= demand.adjusted_demand
        self._egress_granted[demand.egress] -= demand.granted
        # Clamp float drift so long-running services never go negative.
        for mapping, key in (
            (self._ingress_demand, demand.ingress),
            (self._source_demand, (demand.source, demand.egress)),
            (self._egress_adjusted, demand.egress),
            (self._egress_granted, demand.egress),
        ):
            if mapping[key] < 1e-9:
                mapping[key] = 0.0

    # -- ablation support ------------------------------------------------------------

    def recompute_from(self, entries) -> None:
        """Rebuild all sums by full iteration — the *naive* O(n) variant.

        Used by the memoization-ablation bench to show what Fig. 3 would
        look like without incremental maintenance.
        """
        self._entries.clear()
        self._ingress_demand.clear()
        self._source_demand.clear()
        self._egress_adjusted.clear()
        self._egress_granted.clear()
        for demand in entries:
            self.add(demand)
