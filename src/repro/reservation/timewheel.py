"""Time-indexed expiry buckets for the reservation store.

The store's old garbage collection scanned every reservation on every
sweep — O(n) per call, which the ROADMAP's million-reservation control
plane (EERs renewing every 16 s, §4.2) cannot afford.  This module keeps
the classic timer-wheel shape instead: each scheduled key lives in a
bucket covering one quantum of absolute time, and a min-heap over the
bucket indices finds the earliest non-empty bucket in O(log b).
Collecting everything due at ``now`` therefore costs O(log b + dead):
whole buckets strictly in the past drain in bulk, and only the single
boundary bucket straddling ``now`` is filtered item by item, so the
sweep never looks at a key whose expiry lies beyond the current quantum.

The wheel stores *scheduled* expiries, not live ones: reservation
objects mutate their own expiry out of band (renewal versions, aborts,
activation).  The owning store revalidates every candidate the wheel
surfaces against the object's actual state and reschedules the still
live ones — see ``ReservationStore.sweep_expired``.

Invariant: each scheduled key appears in exactly one bucket, the one
covering its recorded expiry, and the heap holds exactly one index per
existing bucket.  ``schedule`` migrates a key between buckets when its
expiry changes; ``collect_due`` removes what it returns.
"""

from __future__ import annotations

import heapq
import math
from typing import Hashable, List, Optional, Tuple

#: Default quantum (seconds) a bucket covers.  EERs live 16 s and SegRs
#: minutes, so one-second buckets keep the bucket count small and
#: constant relative to the reservation count.
DEFAULT_BUCKET_WIDTH = 1.0


class ExpiryWheel:
    """Buckets of keys indexed by quantized expiry, earliest-first."""

    __slots__ = ("_width", "_expiry", "_buckets", "_heap")

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH):
        if bucket_width <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_width}")
        self._width = bucket_width
        self._expiry: dict = {}  # key -> scheduled absolute expiry
        self._buckets: dict = {}  # bucket index -> set of keys
        self._heap: List[int] = []  # one entry per existing bucket

    def __len__(self) -> int:
        return len(self._expiry)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._expiry

    def _bucket_of(self, expiry: float) -> int:
        return math.floor(expiry / self._width)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, key: Hashable, expiry: float) -> None:
        """Index ``key`` under ``expiry``, replacing any prior schedule."""
        previous = self._expiry.get(key)
        if previous is not None:
            if previous == expiry:
                return
            self._discard_from_bucket(key, previous)
        self._expiry[key] = expiry
        index = self._bucket_of(expiry)
        bucket = self._buckets.get(index)
        if bucket is None:
            self._buckets[index] = {key}
            heapq.heappush(self._heap, index)
        else:
            bucket.add(key)

    def remove(self, key: Hashable) -> None:
        """Forget a key; unknown keys are a no-op."""
        expiry = self._expiry.pop(key, None)
        if expiry is not None:
            self._discard_from_bucket(key, expiry)

    def _discard_from_bucket(self, key: Hashable, expiry: float) -> None:
        bucket = self._buckets.get(self._bucket_of(expiry))
        if bucket is not None:
            bucket.discard(key)

    def scheduled_expiry(self, key: Hashable) -> Optional[float]:
        return self._expiry.get(key)

    # -- collection -----------------------------------------------------------

    def collect_due(self, now: float) -> List[Tuple[Hashable, float]]:
        """Remove and return all ``(key, scheduled_expiry)`` with
        ``scheduled_expiry <= now`` — O(log buckets + returned).

        A reservation with ``expiry == now`` is no longer live
        (liveness is ``now < expiry``), so the bound is inclusive.
        """
        due: List[Tuple[Hashable, float]] = []
        while self._heap:
            index = self._heap[0]
            bucket = self._buckets.get(index)
            if not bucket:
                # Emptied by remove()/migration: retire heap entry and slot.
                heapq.heappop(self._heap)
                self._buckets.pop(index, None)
                continue
            if index * self._width > now:
                break  # earliest possible expiry in any bucket is in the future
            if (index + 1) * self._width <= now:
                # The whole bucket lies in the past: drain it in bulk.
                heapq.heappop(self._heap)
                del self._buckets[index]
                for key in bucket:
                    due.append((key, self._expiry.pop(key)))
                continue
            # Boundary bucket straddling `now`: filter item by item, keep
            # the rest scheduled, and stop — later buckets are all future.
            ripe = [key for key in bucket if self._expiry[key] <= now]
            for key in ripe:
                bucket.discard(key)
                due.append((key, self._expiry.pop(key)))
            break
        return due

    def peek_due(self, deadline: float) -> List[Tuple[Hashable, float]]:
        """All ``(key, scheduled_expiry)`` with expiry <= ``deadline``,
        without consuming them — O(buckets + matched), for expiry-window
        queries ("what renews/expires in the next N seconds").
        """
        limit = self._bucket_of(deadline)
        due: List[Tuple[Hashable, float]] = []
        for index in self._heap:
            if index > limit:
                continue
            for key in self._buckets.get(index, ()):
                expiry = self._expiry[key]
                if expiry <= deadline:
                    due.append((key, expiry))
        return due

    def bucket_count(self) -> int:
        """Existing buckets (observability; bounded by the span of
        scheduled expiries over the bucket width, not by key count)."""
        return len(self._buckets)
