"""Reservation state: IDs, segment and end-to-end reservations, stores."""

from repro.reservation.e2e import E2EReservation, E2EVersion
from repro.reservation.ids import ReservationId
from repro.reservation.index import InterfacePairIndex
from repro.reservation.segment import SegmentReservation, SegmentVersion
from repro.reservation.persistence import (
    dump_gateway,
    dump_store,
    dumps_store,
    load_gateway,
    load_store,
    loads_store,
)
from repro.reservation.sharded import ShardedReservationStore
from repro.reservation.store import ReservationStore
from repro.reservation.timewheel import ExpiryWheel

__all__ = [
    "ReservationId",
    "SegmentReservation",
    "SegmentVersion",
    "E2EReservation",
    "E2EVersion",
    "ReservationStore",
    "ShardedReservationStore",
    "ExpiryWheel",
    "InterfacePairIndex",
    "dump_store",
    "dumps_store",
    "load_store",
    "loads_store",
    "dump_gateway",
    "load_gateway",
]
